"""Ablation benchmarks for the design choices DESIGN.md calls out.

* local compatibility check on/off (unsound cycles appear without it);
* beam width sensitivity;
* chain-length cap sensitivity;
* IDF weighting vs uniform weighting in fault clustering.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.bench.runners import bench_config
from repro.core.beam import BeamSearch
from repro.core.clustering import cluster_faults
from repro.core.idf import IdfVectorizer


@pytest.fixture(scope="module")
def hdfs2_campaign(campaign_cache):
    return campaign_cache("minihdfs2")


def test_compat_check_ablation(benchmark, hdfs2_campaign):
    """§6.2: without the local compatibility check, unsound stitches let
    extra (invalid) cycles through."""
    edges = hdfs2_campaign.edges
    scores = hdfs2_campaign.detector.allocation.fault_scores
    on = BeamSearch(bench_config("minihdfs2"), scores).search(edges)

    def run_off():
        return BeamSearch(
            bench_config("minihdfs2", compat_check=False), scores
        ).search(edges)

    off = benchmark.pedantic(run_off, rounds=1, iterations=1)
    rejected = on.compat.rejected_state
    print()
    print(
        "compat check ON: %d cycles (%d stitches rejected by state) | OFF: %d cycles"
        % (len(on.cycles), rejected, len(off.cycles))
    )
    assert rejected > 0
    assert len(off.cycles) >= len(on.cycles)


def test_beam_width_ablation(benchmark, hdfs2_campaign):
    """Wider beams recover more cycles until the chain space is exhausted."""
    edges = hdfs2_campaign.edges
    scores = hdfs2_campaign.detector.allocation.fault_scores

    def sweep():
        counts = {}
        for width in (100, 1_000, 30_000):
            cfg = bench_config("minihdfs2", beam_width=width)
            counts[width] = len(BeamSearch(cfg, scores).search(edges).cycles)
        return counts

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(["Beam width", "Cycles"], sorted(counts.items())))
    widths = sorted(counts)
    assert counts[widths[0]] <= counts[widths[-1]]


def test_chain_length_ablation(benchmark, hdfs2_campaign):
    """Longer chains expose longer cycles (at a cost)."""
    edges = hdfs2_campaign.edges
    scores = hdfs2_campaign.detector.allocation.fault_scores

    def sweep():
        counts = {}
        for max_len in (2, 3, 5):
            cfg = bench_config("minihdfs2", max_chain_len=max_len)
            counts[max_len] = len(BeamSearch(cfg, scores).search(edges).cycles)
        return counts

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(["Max chain len", "Cycles"], sorted(counts.items())))
    assert counts[2] <= counts[5]


def test_idf_weighting_ablation(benchmark, hdfs2_campaign):
    """IDF weighting de-noises ubiquitous faults: clustering with uniform
    weights merges faults that IDF keeps apart (or vice versa), changing
    the cluster structure the 3PA protocol allocates over."""
    records = hdfs2_campaign.detector.allocation.records
    faults = sorted({r.fault for r in records})
    docs = [r.result.interference for r in records]

    def run_both():
        vec = IdfVectorizer(faults).fit(docs)
        idf_vectors = [vec.vectorize(d) for d in docs]
        idx = {f: i for i, f in enumerate(faults)}
        uniform_vectors = []
        for doc in docs:
            v = np.zeros(len(faults))
            for fault in doc:
                if fault in idx:
                    v[idx[fault]] = 1.0
            n = np.linalg.norm(v)
            uniform_vectors.append(v / n if n else v)
        observed = [r.fault for r in records]
        idf_clusters = cluster_faults(observed, idf_vectors)
        uni_clusters = cluster_faults(observed, uniform_vectors)
        return len(idf_clusters), len(uni_clusters)

    n_idf, n_uni = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print("clusters with IDF weights: %d, with uniform weights: %d" % (n_idf, n_uni))
    assert n_idf > 0 and n_uni > 0
