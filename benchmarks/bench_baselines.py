"""Baseline comparisons: Table 3's "Rnd.?"/"Alt.?" columns and §8.2.1.

* random allocation with the same budget (3PA ablation),
* the naive single-fault self-causation strategy,
* Jepsen/Blockade-style blackbox fuzzing (expected: zero bugs found).
"""

import pytest

from repro.baselines import BlackboxFuzzer, NaiveSelfCausation
from repro.bench import format_table, run_random_campaign
from repro.bench.runners import bench_config
from repro.systems import evaluation_systems, get_system


@pytest.mark.parametrize("system", ["minihdfs2", "minihbase", "miniozone"])
def test_random_allocation_underperforms_3pa(benchmark, campaign_cache, system):
    campaign = campaign_cache(system)
    random_report = benchmark.pedantic(
        run_random_campaign, args=(system,), rounds=1, iterations=1
    )
    rows = [
        ["3PA", len(campaign.report.detected_bugs), campaign.report.budget_used],
        ["random", len(random_report.detected_bugs), random_report.budget_used],
    ]
    print()
    print("Allocation comparison (%s)" % system)
    print(format_table(["Protocol", "Bugs detected", "Budget"], rows))
    assert len(random_report.detected_bugs) <= len(campaign.report.detected_bugs)


@pytest.mark.parametrize("system", evaluation_systems())
def test_naive_single_fault_strategy(benchmark, system):
    """§8.2: the naive strategy misses most bugs (the paper: 11 of 15)."""
    naive = NaiveSelfCausation(get_system(system), bench_config(system))
    result = benchmark.pedantic(naive.run, rounds=1, iterations=1)
    rows = [[bug_id, "yes" if hit else "no"] for bug_id, hit in sorted(result.detected_bugs.items())]
    print()
    print("Naive single-fault self-causation (%s)" % system)
    print(format_table(["Bug", "Naive detects"], rows))
    spec = get_system(system)
    for bug in spec.known_bugs:
        if not bug.alt_detectable:
            assert not result.detected_bugs[bug.bug_id], (
                "%s should require stitching" % bug.bug_id
            )


@pytest.mark.parametrize("system", evaluation_systems())
def test_blackbox_fuzzing_finds_nothing(benchmark, system):
    """§8.2.1: coarse external faults trigger none of the 15 cascades."""
    fuzzer = BlackboxFuzzer(get_system(system), bench_config(system), runs_per_workload=3)
    result = benchmark.pedantic(fuzzer.run, rounds=1, iterations=1)
    print()
    print(
        "Blackbox fuzzing (%s): %d runs, %d crashes, %d partitions -> %d bugs"
        % (
            system,
            result.runs,
            result.crashes_injected,
            result.partitions_injected,
            sum(result.detected_bugs.values()),
        )
    )
    assert result.crashes_injected + result.partitions_injected > 0
    assert not any(result.detected_bugs.values())
