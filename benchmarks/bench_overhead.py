"""§8.5 reproduction: instrumentation and monitoring overhead.

The paper measures 63-376% (avg 185%) wall-clock overhead of branch tracing
and call-stack recording on profile runs.  Here we compare the wall-clock
time of profile runs with the full runtime agent against runs with a
disabled (NullRuntime-style) agent.
"""

import time

import pytest

from repro.core.driver import _seed_for
from repro.instrument.runtime import Runtime
from repro.instrument.trace import RunTrace
from repro.sim import SimEnv
from repro.systems import get_system

SYSTEMS = ["minihdfs2", "minihbase", "miniozone"]


def run_profile(spec, test_id, enabled: bool) -> float:
    workload = spec.workloads[test_id]
    seed = _seed_for(test_id, 0, 99)
    trace = RunTrace(test_id=test_id)
    runtime = Runtime(spec.registry, trace=trace, enabled=enabled)
    env = SimEnv(workload.sim_config, seed=seed)
    runtime.bind_env(env)
    env.runtime = runtime
    started = time.perf_counter()
    workload.setup(env, runtime)
    env.run(workload.duration_ms)
    return time.perf_counter() - started


@pytest.mark.parametrize("system", SYSTEMS)
def test_instrumentation_overhead(benchmark, system):
    spec = get_system(system)
    tests = spec.workload_ids()

    def measure():
        bare = sum(min(run_profile(spec, t, enabled=False) for _ in range(3)) for t in tests)
        instrumented = sum(
            min(run_profile(spec, t, enabled=True) for _ in range(3)) for t in tests
        )
        return bare, instrumented

    bare, instrumented = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = (instrumented - bare) / bare * 100.0
    print()
    print(
        "%s: bare %.3fs, instrumented %.3fs -> overhead %.0f%%"
        % (system, bare, instrumented, overhead)
    )
    # Instrumentation costs something; we only assert the direction and a
    # sane bound (the paper reports 63-376%).
    assert instrumented > bare
    assert overhead < 2_000.0
