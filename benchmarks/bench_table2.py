"""Table 2 reproduction: injection points, monitor points, and tests.

Prints the per-system inventory of loop / exception / negation injection
points, branch monitor points, and integration tests — the paper's Table 2
columns (absolute numbers are simulator-scale; the shape — every system
exposes all site kinds, HDFS 3 exposes more than HDFS 2 — is what carries
over).
"""

from repro.bench import format_table
from repro.instrument.analyzer import analyze
from repro.systems import evaluation_systems, get_system


def table2_rows():
    rows = []
    for name in evaluation_systems():
        spec = get_system(name)
        counts = spec.registry.counts()
        rows.append(
            [
                name,
                counts["loop"],
                counts["throw"] + counts["lib_call"],
                counts["detector"],
                counts["branch"],
                len(spec.workloads),
                analyze(spec.registry).counts["injectable"],
            ]
        )
    return rows


def test_table2(benchmark):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    print()
    print("Table 2 — injection points, monitor points, and tests per system")
    print(
        format_table(
            ["System", "Loop", "Exception", "Negation", "Branch", "Test", "Injectable"],
            rows,
        )
    )
    assert len(rows) == 5
    for row in rows:
        assert all(c > 0 for c in row[1:]), row
    # HDFS 3 exposes more handlers/sites than HDFS 2 (§8.4.1).
    hdfs2 = next(r for r in rows if r[0] == "minihdfs2")
    hdfs3 = next(r for r in rows if r[0] == "minihdfs3")
    assert hdfs3[6] > hdfs2[6]
