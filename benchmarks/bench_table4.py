"""Table 4 reproduction: cycles, clusters, true positives; unlimited vs
one-delay beam search.

The paper's shape: raw cycles > distinct clusters > true-positive clusters,
and capping the number of delay injections per cycle cuts the raw cycle
count substantially while keeping most true positives.
"""

import pytest

from repro.bench import format_table, table4_row
from repro.systems import evaluation_systems

HEADERS = ["System", "Cycles", "Clusters", "TP", "Cycles(1D)", "Clusters(1D)", "TP(1D)"]


@pytest.mark.parametrize("system", evaluation_systems())
def test_table4(benchmark, campaign_cache, system):
    campaign = campaign_cache(system)
    unlimited, capped = benchmark.pedantic(
        table4_row, args=(campaign,), rounds=1, iterations=1
    )
    row = [system] + unlimited[:3] + capped[:3]
    print()
    print("Table 4 (%s)" % system)
    print(format_table(HEADERS, [row]))
    cycles, clusters, tp = unlimited[:3]
    cycles1, clusters1, tp1 = capped[:3]
    assert cycles >= clusters >= tp
    assert cycles1 <= cycles  # the delay cap prunes cycles
    assert clusters1 <= clusters
