"""Shared campaign cache for the benchmark suite.

Campaigns are expensive (minutes per system), so they run once per pytest
session and every table benchmark reads from the cache.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.bench import run_campaign  # noqa: E402

_CAMPAIGNS = {}


def get_campaign(system: str):
    if system not in _CAMPAIGNS:
        _CAMPAIGNS[system] = run_campaign(system)
    return _CAMPAIGNS[system]


@pytest.fixture(scope="session")
def campaign_cache():
    return get_campaign
