"""Repo-root conftest: makes ``tests`` and ``repro`` importable everywhere.

Adding ``src`` here (not only via ``PYTHONPATH=src``) lets a bare
``python -m pytest`` work out of the box; when the env var is also set,
the duplicate path entry is harmless.
"""

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent
sys.path.insert(0, str(_ROOT))
sys.path.insert(1, str(_ROOT / "src"))
