"""Repo-root conftest: makes the ``tests`` package importable everywhere."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
