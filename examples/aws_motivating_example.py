#!/usr/bin/env python3
"""Figure 1: the AWS cell-manager cascade, replayed on the simulator.

A cell manager restarts a host and redistributes its shards.  A latent
load-balancer bug concentrates all low-throughput shards on few hosts;
those hosts' status reports grow so large they miss the reporting
deadline, the manager declares them unhealthy and redistributes *their*
shards — to the next victims.  The run prints the shard concentration and
the health-check casualties as the loop feeds itself.

This is a plain simulation (no CSnake pipeline): it shows the failure
class the detector is built for.

    python examples/aws_motivating_example.py
"""

from repro.config import SimConfig
from repro.sim import Node, SimEnv

N_HOSTS = 6
SHARDS_PER_HOST = 12
LOW_THROUGHPUT_FRACTION = 0.5
REPORT_INTERVAL_MS = 3_000.0
REPORT_DEADLINE_MS = 15_000.0
PER_SHARD_REPORT_COST_MS = 400.0  # metadata per hosted shard


class CellManager(Node):
    def __init__(self, env: SimEnv) -> None:
        super().__init__(env, "cell-manager")
        self.hosts = []
        self.last_report = {}
        self.removed = []
        # The health monitor runs on its own thread.
        self.monitor = Node(env, "cell-manager#monitor")
        env.every(self.monitor, 5_000.0, self.health_check)

    def receive_report(self, host_name: str, sent_at: float) -> None:
        def mark() -> None:
            self.last_report[host_name] = max(self.last_report.get(host_name, 0.0), sent_at)

        self.env.schedule_at(self.env.now + 0.1, self.monitor, mark)

    def health_check(self) -> None:
        now = self.env.now
        for host in self.hosts:
            if host.name in self.removed or host.crashed:
                continue
            if now - self.last_report.get(host.name, 0.0) > REPORT_DEADLINE_MS:
                print("  t=%5.1fs  %s declared UNHEALTHY (%d shards) -> redistributing"
                      % (now / 1000, host.name, len(host.shards)))
                self.removed.append(host.name)
                self.redistribute(host)

    def redistribute(self, source) -> None:
        """THE LATENT BUG: all low-throughput shards go to the single host
        with the fewest shards, instead of being spread."""
        low = [s for s in source.shards if s.endswith("L")]
        rest = [s for s in source.shards if not s.endswith("L")]
        source.shards = []
        live = [h for h in self.hosts if h.name not in self.removed and not h.crashed]
        if not live:
            print("  t=%5.1fs  NO HOSTS LEFT — total outage" % (self.env.now / 1000))
            return
        victim = min(live, key=lambda h: len(h.shards))
        victim.shards.extend(low)  # concentrated!
        for i, shard in enumerate(rest):
            live[i % len(live)].shards.append(shard)


class Host(Node):
    def __init__(self, env: SimEnv, manager: CellManager, index: int) -> None:
        super().__init__(env, "host-%d" % index)
        self.manager = manager
        kinds = ["L" if s < SHARDS_PER_HOST * LOW_THROUGHPUT_FRACTION else "H"
                 for s in range(SHARDS_PER_HOST)]
        self.shards = ["h%d-s%d%s" % (index, s, k) for s, k in enumerate(kinds)]
        manager.hosts.append(self)
        manager.last_report[self.name] = 0.0
        env.every(self, REPORT_INTERVAL_MS, self.send_report, jitter_ms=100.0)

    def send_report(self) -> None:
        sent_at = self.env.now
        # Report size — and cost — grows with hosted shard count: this is
        # the performance interference the cascade rides on.
        self.env.spin(PER_SHARD_REPORT_COST_MS * len(self.shards))
        self.env.send(self.manager, self.manager.receive_report, self.name, sent_at)


def main() -> None:
    env = SimEnv(SimConfig(run_duration_ms=120_000.0), seed=42)
    manager = CellManager(env)
    hosts = [Host(env, manager, i) for i in range(N_HOSTS)]

    def routine_upgrade() -> None:
        print("  t=%5.1fs  routine upgrade: restarting %s, redistributing its shards"
              % (env.now / 1000, hosts[0].name))
        hosts[0].crash()
        manager.redistribute(hosts[0])

    env.schedule_at(10_000.0, manager.monitor, routine_upgrade)

    print("Simulating the Figure 1 cascade (%d hosts, %d shards each):"
          % (N_HOSTS, SHARDS_PER_HOST))
    env.run()

    print("\nfinal state:")
    for host in hosts:
        status = "crashed" if host.crashed else (
            "removed" if host.name in manager.removed else "healthy")
        print("  %-8s %-8s %3d shards" % (host.name, status, len(host.shards)))
    casualties = len(manager.removed) + sum(1 for h in hosts if h.crashed)
    print("\n%d of %d hosts lost to a single routine restart — a"
          " self-sustaining cascading failure." % (casualties, N_HOSTS))


if __name__ == "__main__":
    main()
