#!/usr/bin/env python
"""Create a one-handler edited tree for the minihdfs ``diff-run`` flow.

Copies the repository's ``src/`` into DEST and inserts a single
*behaviour-neutral* executable statement into
``DataNode.receive_block`` (minihdfs) — the write-pipeline handler every
datanode shares.  Because the statement is executable, the slice digest
of every site whose slice reaches ``receive_block`` changes — those
experiments are invalidated and re-run — while sites that cannot reach
it (namenode-only paths, client retry logic) keep their digests and
replay from the cache.  Because the statement is behaviour-neutral, the
two campaign reports come out identical:

    $ python examples/diffrun/edit_minihdfs.py /tmp/edited
    $ python -m repro.cli diff-run . /tmp/edited --system minihdfs2

reports the invalidated experiment set, zero appeared/vanished loops,
and ``reports identical``.
"""

import shutil
import sys
from pathlib import Path

#: Anchor uniquely identifying the handler (fails loudly if datanode.py drifts).
ANCHOR = (
    "        self, bid: str, pipeline: List[\"DataNode\"], packets: int,"
    " is_transfer: bool = False\n"
    "    ) -> None:\n"
    "        \"\"\"Receive a block and forward it down the pipeline.\"\"\"\n"
    "        self.check_alive()\n"
)
#: The inserted statement: executable (changes the slice digest) but
#: behaviour-neutral (packets is already an int).
INSERT = "        packets = int(packets)\n"


def make_edited_tree(dest: Path, repo: Path) -> Path:
    """Copy ``repo/src`` to ``dest/src`` and apply the one-handler edit."""
    src = repo / "src"
    dest_src = dest / "src"
    if dest_src.exists():
        shutil.rmtree(str(dest_src))
    shutil.copytree(str(src), str(dest_src))
    target = dest_src / "repro" / "systems" / "minihdfs" / "datanode.py"
    text = target.read_text(encoding="utf-8")
    if ANCHOR not in text:
        raise SystemExit("anchor not found in %s — has receive_block changed?" % target)
    target.write_text(text.replace(ANCHOR, ANCHOR + INSERT, 1), encoding="utf-8")
    return dest


def main(argv):
    if len(argv) != 2:
        print("usage: python examples/diffrun/edit_minihdfs.py DEST", file=sys.stderr)
        return 2
    repo = Path(__file__).resolve().parents[2]
    dest = make_edited_tree(Path(argv[1]), repo)
    print("edited tree at %s (one statement added to DataNode.receive_block)" % dest)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
