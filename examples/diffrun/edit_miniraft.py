#!/usr/bin/env python
"""Create the one-handler edited tree that the ``repro diff-run`` docs use.

Copies the repository's ``src/`` into DEST and inserts a single
*behaviour-neutral* executable statement into
``RaftNode.install_snapshot`` (miniraft).  Because the statement is
executable, the slice digest of every site whose slice reaches
``install_snapshot`` changes — those experiments are invalidated and
re-run — while sites that cannot reach it keep their digests and replay
from the cache.  Because the statement is behaviour-neutral, the two
campaign reports come out identical, so the expected diff-run output is
fully deterministic:

    $ python examples/diffrun/edit_miniraft.py /tmp/edited
    $ python -m repro.cli diff-run . /tmp/edited --system miniraft

reports the invalidated experiment set, zero appeared/vanished loops,
and ``reports identical``.
"""

import shutil
import sys
from pathlib import Path

#: Anchor uniquely identifying the handler (fails loudly if nodes.py drifts).
ANCHOR = (
    "    def install_snapshot(self, term: int, leader: str, snap_index: int)"
    " -> Tuple[int, bool]:\n"
    "        self.check_alive()\n"
)
#: The inserted statement: executable (changes the slice digest) but
#: behaviour-neutral (snap_index is already an int).
INSERT = "        snap_index = int(snap_index)\n"


def make_edited_tree(dest: Path, repo: Path) -> Path:
    """Copy ``repo/src`` to ``dest/src`` and apply the one-handler edit."""
    src = repo / "src"
    dest_src = dest / "src"
    if dest_src.exists():
        shutil.rmtree(str(dest_src))
    shutil.copytree(str(src), str(dest_src))
    target = dest_src / "repro" / "systems" / "miniraft" / "nodes.py"
    text = target.read_text(encoding="utf-8")
    if ANCHOR not in text:
        raise SystemExit("anchor not found in %s — has install_snapshot changed?" % target)
    target.write_text(text.replace(ANCHOR, ANCHOR + INSERT, 1), encoding="utf-8")
    return dest


def main(argv):
    if len(argv) != 2:
        print("usage: python examples/diffrun/edit_miniraft.py DEST", file=sys.stderr)
        return 2
    repo = Path(__file__).resolve().parents[2]
    dest = make_edited_tree(Path(argv[1]), repo)
    print("edited tree at %s (one statement added to RaftNode.install_snapshot)" % dest)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
