#!/usr/bin/env python3
"""§8.3.1 case study: the HBase region-deployment retry cascade (HB-2).

No single HBase test satisfies all four triggering conditions (many region
assignments, an overload-prone cluster, the FavoredStochasticBalancer, and
a long-enough workload).  CSnake reconstructs the cycle from three
injections in three *different* tests:

  t1  delay in the region deployment loop   -> assignment RPC IOEs
  t2  IOE in the assignment RPC             -> canPlaceFavoredNodes fails
  t3  negated balancer check                -> deployment loop grows

    python examples/hbase_case_study.py
"""

from repro.config import CSnakeConfig
from repro.core.beam import BeamSearch
from repro.core.driver import ExperimentDriver
from repro.systems import get_system
from repro.types import FaultKey, InjKind

D, E, N = InjKind.DELAY, InjKind.EXCEPTION, InjKind.NEGATION

EXPERIMENTS = [
    ("t1", FaultKey("rs.deploy.regions", D), "hbase.create_heavy"),
    ("t2", FaultKey("hm.assign.rpc", E), "hbase.rs_fault_tolerance"),
    ("t3", FaultKey("hm.balancer.can_place", N), "hbase.balancer_long"),
]


def main() -> None:
    config = CSnakeConfig(repeats=3, delay_values_ms=(250.0, 1000.0, 8000.0), seed=1234)
    spec = get_system("minihbase")
    driver = ExperimentDriver(spec, config)

    for label, fault, test in EXPERIMENTS:
        result = driver.run_experiment(fault, test)
        print("%s: inject %s into %s" % (label, fault, test))
        for interference in result.interference:
            print("      -> additional fault: %s" % interference)

    # The decoy: the same IOE injection in the five-server balancer test
    # does NOT break the balancer — the causal relationship is conditional
    # on the three-server cluster (the paper's key observation).
    decoy = driver.run_experiment(FaultKey("hm.assign.rpc", E), "hbase.balancer_5rs")
    breaks_balancer = any(f.site_id == "hm.balancer.can_place" for f in decoy.interference)
    print("decoy: same IOE on a 5-server cluster breaks the balancer? %s" % breaks_balancer)

    beam = BeamSearch(config)
    cycles = beam.search(driver.edges.all_edges()).cycles
    bug = spec.bug("HB-2")
    matching = sorted((c for c in cycles if bug.matches(c)), key=len)
    print("\ncycles containing HB-2's core faults: %d" % len(matching))
    if matching:
        best = matching[0]
        print("  %s" % best)
        print("  composition: %s (paper: 1D|1E|1N)" % best.signature())
        print("  stitched from %d tests: %s" % (len(best.tests()), ", ".join(best.tests())))


if __name__ == "__main__":
    main()
