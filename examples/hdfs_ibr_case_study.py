#!/usr/bin/env python3
"""§8.3.2 case study: the HDFS bypassed-IBR-throttling cascade (H2-6).

A failed incremental block report (IBR) is retried at the very next
heartbeat, ignoring the configured report interval.  Under NameNode
overload the timed-out report was actually processed, so the retry
*duplicates* report entries — adding exactly the load that caused the
timeout.  The two causal halves live in two different tests:

  t1  load-balancer test (many blocks, no throttling):
        IBR-processing delay -> report RPC timeouts;
        but an injected RPC failure causes NO report increase here.
  t2  report-interval configuration test (throttling, light load):
        an injected RPC failure bypasses the interval and duplicates
        entries -> IBR processing grows.

    python examples/hdfs_ibr_case_study.py
"""

from repro.config import CSnakeConfig
from repro.core.beam import BeamSearch
from repro.core.driver import ExperimentDriver
from repro.systems import get_system
from repro.types import FaultKey, InjKind

D, E = InjKind.DELAY, InjKind.EXCEPTION


def main() -> None:
    config = CSnakeConfig(repeats=3, delay_values_ms=(250.0, 1000.0, 8000.0), seed=1234)
    spec = get_system("minihdfs2")
    driver = ExperimentDriver(spec, config)

    print("t1: inject IBR-processing delay into the 'load balancer' test")
    r1 = driver.run_experiment(FaultKey("nn.ibr.entries", D), "hdfs2.load_balancer")
    for f in r1.interference:
        print("      -> %s" % f)

    print("t1': inject the report RPC failure into the same test (control)")
    r1c = driver.run_experiment(FaultKey("dn.ibr.rpc", E), "hdfs2.load_balancer")
    grows = any(f.site_id == "nn.ibr.entries" for f in r1c.interference)
    print("      report processing grows without throttling? %s" % grows)

    print("t2: inject the report RPC failure into the 'IBR interval' test")
    r2 = driver.run_experiment(FaultKey("dn.ibr.rpc", E), "hdfs2.ibr_interval")
    for f in r2.interference:
        print("      -> %s" % f)

    beam = BeamSearch(config)
    cycles = beam.search(driver.edges.all_edges()).cycles
    bug = spec.bug("H2-6")
    matching = sorted((c for c in cycles if bug.matches(c)), key=len)
    print("\ncycles containing H2-6's core faults: %d" % len(matching))
    if matching:
        best = matching[0]
        print("  %s" % best)
        print("  stitched from: %s" % ", ".join(best.tests()))


if __name__ == "__main__":
    main()
