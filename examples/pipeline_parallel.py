#!/usr/bin/env python3
"""Pipeline API tour: parallel, observable, resumable campaigns.

Runs the toy campaign twice — serial and with four workers — through the
staged pipeline API, shows stage progress events, persists a session, and
demonstrates that parallel execution and session resume are bit-identical
to the straight-through serial run.

    python examples/pipeline_parallel.py
"""

import tempfile

from repro.config import CSnakeConfig
from repro.pipeline import Pipeline, ProgressPrinter, Session
from repro.systems import get_system

CONFIG = dict(repeats=3, delay_values_ms=(500.0, 2000.0, 8000.0), seed=7)


def main() -> None:
    spec = get_system("toy")

    print("— serial campaign, with progress events —")
    serial_cfg = CSnakeConfig(**CONFIG)
    serial = Pipeline.default(
        get_system("toy"), serial_cfg, observers=[ProgressPrinter()]
    ).run()

    print("\n— same campaign, four workers, persisted to a session —")
    parallel_cfg = CSnakeConfig(experiment_workers=4, **CONFIG)
    session_dir = tempfile.mkdtemp(prefix="csnake-session-")
    session = Session.attach(session_dir, spec.name, parallel_cfg)
    parallel = Pipeline.default(
        get_system("toy"), parallel_cfg, session=session
    ).run()

    a, b = serial.get("report"), parallel.get("report")
    print("parallel == serial:", a.to_dict() == b.to_dict())

    print("\n— resume from the session: every stage loads, nothing re-runs —")
    reopened = Session.open(session_dir)
    resumed = Pipeline.default(
        get_system(reopened.system),
        reopened.config,
        session=reopened,
        observers=[ProgressPrinter()],
    ).run()
    print("resumed == serial:", resumed.get("report").to_dict() == a.to_dict())
    print("session files under", session_dir)

    print("\nreport:", a.summary())
    for bug_id in a.detected_bugs:
        print("  detected:", bug_id)


if __name__ == "__main__":
    main()
