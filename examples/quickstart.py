#!/usr/bin/env python3
"""Quickstart: detect self-sustaining cascading failures in the toy system.

Runs the whole CSnake pipeline — static analysis, profile runs, 3PA-
allocated fault injection, fault causality analysis, causal stitching, and
the beam search for cycles — against the bundled toy client/server system,
then prints the detected cascades.

    python examples/quickstart.py
"""

from repro.config import CSnakeConfig
from repro.core import CSnake
from repro.systems import get_system


def main() -> None:
    config = CSnakeConfig(
        repeats=3,                                # profile/injection repetitions
        delay_values_ms=(500.0, 2000.0, 8000.0),  # contention sweep
        seed=7,
    )
    detector = CSnake(get_system("toy"), config)

    analysis = detector.analyze_static()
    print("fault space: %d injectable faults (%d sites filtered)" % (
        len(analysis.faults), len(analysis.excluded)))

    detector.allocate_and_inject()
    print("experiments: %d (budget %d), causal edges discovered: %d" % (
        detector.allocation.budget_used,
        detector.allocation.budget_total,
        len(detector.driver.edges),
    ))
    for edge in detector.driver.edges.all_edges():
        print("   ", edge)

    detector.detect_cycles()
    report = detector.report()
    print("\ncycles: %d in %d clusters" % (len(report.cycles), len(report.cycle_clusters)))
    for match in report.bug_matches:
        status = "DETECTED" if match.detected else "missed"
        print("\n[%s] %s — %s" % (status, match.bug.bug_id, match.bug.description))
        if match.detected:
            cycle = match.best_cycle
            print("    cycle: %s" % cycle)
            print("    stitched from tests: %s" % ", ".join(cycle.tests()))


if __name__ == "__main__":
    main()
