#!/usr/bin/env python3
"""CI smoke for campaign-as-a-service (docs/service.md).

Starts a real manager (``repro serve``) and two agents (``repro agent``)
as subprocesses, then drives the miniraft environment-fault campaign
through ``--backend remote`` and asserts the service contract end to end:

1. a cold remote campaign produces the serial campaign digest;
2. a warm rerun produces it again, and the agents report a nonzero
   cache hit rate back through the manager;
3. a rerun with an extra agent that dies mid-run holding leased tasks
   (``--fail-after``) still completes with the identical digest — lease
   expiry and re-queue absorb the death.

    PYTHONPATH=src python examples/service_smoke.py
"""

import os
import subprocess
import sys
import tempfile
import threading
import time

from repro.config import CSnakeConfig
from repro.errors import ReproError
from repro.faults import expand_kinds
from repro.pipeline import Pipeline
from repro.service.http import HttpTransport
from repro.service.manager import campaign_digest
from repro.systems import get_system

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

#: The miniraft environment-fault campaign, smoke-sized: every fault
#: kind (classic + crash/partition/msg_drop) over a one-point sweep.
ENV_CAMPAIGN = dict(
    repeats=2,
    delay_values_ms=(2000.0,),
    seed=7,
    budget_per_fault=2,
    fault_kinds=expand_kinds("all"),
)


def _cli(*argv, **popen_kwargs):
    env = dict(os.environ)
    inherited = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC + (os.pathsep + inherited if inherited else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli"] + list(argv), env=env, **popen_kwargs
    )


def _start_manager():
    """`repro serve --port 0`; returns (process, url) once it is healthy."""
    proc = _cli(
        "serve", "--port", "0", "--lease-ttl", "3",
        stdout=subprocess.PIPE, text=True,
    )
    line = proc.stdout.readline().strip()  # "repro manager listening on URL"
    url = line.rsplit(" ", 1)[-1]
    transport = HttpTransport(url)
    for _ in range(50):
        try:
            assert transport.health()["protocol"] == 1
            break
        except (ReproError, OSError):
            time.sleep(0.1)
    else:
        raise RuntimeError("manager at %s never became healthy" % url)
    print("manager up at %s" % url)
    return proc, url


def _start_agent(url, name, *extra):
    return _cli("agent", "--manager", url, "--workers", "2", "--name", name, *extra)


def _remote_run(url, **overrides):
    config = CSnakeConfig(
        experiment_backend="remote", manager_url=url, **dict(ENV_CAMPAIGN, **overrides)
    )
    return campaign_digest(Pipeline.default(get_system("miniraft"), config).run())


def main() -> int:
    serial = campaign_digest(
        Pipeline.default(get_system("miniraft"), CSnakeConfig(**ENV_CAMPAIGN)).run()
    )
    print("serial digest %s" % serial[:16])

    cache_dir = os.path.join(tempfile.mkdtemp(prefix="service-smoke-"), "cache")
    manager, url = _start_manager()
    transport = HttpTransport(url)
    agents = [_start_agent(url, "smoke-a"), _start_agent(url, "smoke-b")]
    doomed = None
    try:
        cold = _remote_run(url, cache_dir=cache_dir)
        assert cold == serial, "cold remote digest diverged: %s != %s" % (cold, serial)
        print("cold remote digest ok")

        warm = _remote_run(url, cache_dir=cache_dir)
        assert warm == serial, "warm remote digest diverged: %s != %s" % (warm, serial)
        fleet = {a["name"]: a.get("cache") or {} for a in transport.health()["agents"]}
        hits = sum(c.get("hits", 0) for c in fleet.values())
        assert hits > 0, "no warm-cache hits reported by any agent: %r" % fleet
        print("warm remote digest ok, %d agent cache hits" % hits)

        # Kill-rejoin.  The manager memoizes finished tasks, so a rerun of
        # the same campaign would be served entirely from its result table
        # — a new seed gives the campaign fresh task digests and forces
        # real execution.  Retire the idle fleet, then run it on an agent
        # that completes its first batch, leases the next one, and dies
        # holding it (--fail-after).  Being alone it is guaranteed the
        # work, so the death is deterministic; once its process exits a
        # fresh survivor joins, the reaper re-queues the held tasks
        # (TTL 3s), and the campaign completes with that seed's serial
        # digest.  No cache here, so the doomed agent holds real work.
        serial_kill = campaign_digest(
            Pipeline.default(
                get_system("miniraft"), CSnakeConfig(**dict(ENV_CAMPAIGN, seed=11))
            ).run()
        )
        requeued_before = transport.health()["tasks"]["requeued"]
        for proc in agents:
            proc.terminate()
        for proc in agents:
            proc.wait(timeout=10)
        agents = []
        doomed = _start_agent(
            url, "smoke-doomed", "--fail-after", "1", "--idle-exit", "60"
        )
        outcome = {}

        def _kill_run():
            try:
                outcome["digest"] = _remote_run(url, seed=11)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                outcome["error"] = exc

        runner = threading.Thread(target=_kill_run)
        runner.start()
        doomed.wait(timeout=120)  # dies as soon as real work flows
        agents = [_start_agent(url, "smoke-survivor")]
        runner.join(timeout=300)
        assert not runner.is_alive(), "kill-rejoin campaign never finished"
        if "error" in outcome:
            raise outcome["error"]
        assert outcome["digest"] == serial_kill, (
            "post-kill remote digest diverged: %s != %s"
            % (outcome["digest"], serial_kill)
        )
        stats = transport.health()["tasks"]
        requeued = stats["requeued"] - requeued_before
        assert requeued > 0, "the doomed agent's leases were never re-queued"
        print(
            "kill-rejoin digest ok (%d executed, %d leases re-queued)"
            % (stats["executed"], requeued)
        )

        status = _cli("status", "--manager", url)
        assert status.wait(timeout=30) == 0, "repro status failed"
    finally:
        for proc in agents + ([doomed] if doomed else []):
            proc.terminate()
        manager.terminate()
        for proc in agents + [manager]:
            proc.wait(timeout=10)
    print("service smoke ok: 3 remote campaigns, all digests == serial")
    return 0


if __name__ == "__main__":
    sys.exit(main())
