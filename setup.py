from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "CSnake reproduction: detecting self-sustaining cascading failures "
        "via causal stitching of fault propagations"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy", "scipy"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
