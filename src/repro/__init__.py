"""CSnake reproduction: detecting self-sustaining cascading failures via
causal stitching of fault propagations (EUROSYS '26).

See README.md for a tour and DESIGN.md for the architecture and the
substitution map relative to the paper's JVM implementation.
"""

__version__ = "1.0.0"
