"""Static code-slice analysis of target-system Python source.

The paper's static analyzer *filters* a declared site registry; this
package goes one layer deeper and analyzes the target system's actual
Python source with :mod:`ast`:

* :mod:`repro.analysis.astutil` — source parsing, function collection
  (with qualified names), and normalized AST digests that are insensitive
  to comments, whitespace, and docstrings;
* :mod:`repro.analysis.cfg` — per-function control-flow graphs, used to
  keep statically dead statements out of the call graph;
* :mod:`repro.analysis.callgraph` — the interprocedural call graph:
  ``self.method`` calls, module-level calls, constructors, and callbacks
  registered through the node/sim API (``env.every``, ``env.rpc``,
  ``rt.rpc_call`` arguments);
* :mod:`repro.analysis.slicer` — per-:class:`~repro.instrument.sites.FaultSite`
  *reachable slices* (every function body transitively reachable from the
  site's enclosing function) and their content digests, plus workload
  entry-point reachability;
* :mod:`repro.analysis.source` — source providers (live modules, source
  trees, git refs) so the same slicer serves the running system and
  ``repro diff-run OLD NEW``;
* :mod:`repro.analysis.diff` — slice-digest and report diffing for
  ``repro diff-run``.

Slice digests are the per-site cache axis of ``CACHE_SCHEMA`` 3: editing
one handler invalidates only the experiments whose reachable slice
contains it (see docs/static-analysis.md).
"""

from .diff import ReportDiff, SliceDiff, diff_reports, diff_slices
from .slicer import SliceAnalysis, analyze_sources, analyze_system
from .source import (
    GitSource,
    SourceProvider,
    TreeSource,
    live_sources,
    module_relpath,
    resolve_provider,
)

__all__ = [
    "GitSource",
    "ReportDiff",
    "SliceAnalysis",
    "SliceDiff",
    "SourceProvider",
    "TreeSource",
    "analyze_sources",
    "analyze_system",
    "diff_reports",
    "diff_slices",
    "live_sources",
    "module_relpath",
    "resolve_provider",
]
