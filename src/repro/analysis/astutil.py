"""AST parsing, function collection, and normalized digests.

Everything downstream (call graph, slices, cache keys) consumes the two
artifacts built here:

* a table of :class:`FunctionInfo` — every ``def``/``async def`` in the
  analyzed modules, keyed by ``module:QualName`` (the qualname uses the
  same ``Cls.method`` / ``outer.<locals>.inner`` convention as
  ``__qualname__``), carrying its AST node, class context, and the fault
  site-id literals it passes to ``rt.*`` hooks;
* a *normalized digest* per function — sha256 over ``ast.dump`` of the
  function node with docstrings stripped.  Comments and whitespace never
  reach the AST, so digests are insensitive to them by construction.

The digest deliberately covers nested functions textually (editing a
closure edits its host's digest too) — a slice that reaches the host
must be invalidated when the closure changes.
"""

from __future__ import annotations

import ast
import copy
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# Runtime hook methods whose first positional argument is a site-id
# string literal (see repro.instrument.runtime.Runtime).
SITE_HOOKS = frozenset(
    ["loop", "loop_guard", "throw_point", "detector", "branch", "rpc_call", "lib_call"]
)


@dataclass
class FunctionInfo:
    """One collected function definition."""

    key: str  # "module:QualName", globally unique
    module: str  # dotted module name
    qualname: str  # __qualname__-style, e.g. "RaftNode.handle_append"
    name: str  # bare name
    cls: Optional[str]  # immediate enclosing class qualname, if any
    node: ast.AST  # the FunctionDef / AsyncFunctionDef node
    lineno: int
    site_literals: Tuple[str, ...] = ()  # site ids passed to rt.* hooks here
    digest: str = ""  # normalized body digest (filled by collect_module)


@dataclass
class ClassInfo:
    """One collected class definition (methods + textual base names)."""

    key: str  # "module:QualName"
    module: str
    qualname: str
    name: str
    bases: Tuple[str, ...] = ()  # base-class names as written (dotted tail)
    methods: Dict[str, str] = field(default_factory=dict)  # name -> function key


@dataclass
class ModuleInfo:
    """Parse result for one module."""

    name: str
    tree: ast.Module
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    # local alias -> (absolute module, attr-or-None); attr None for plain
    # ``import x.y as z`` style bindings.
    imports: Dict[str, Tuple[str, Optional[str]]] = field(default_factory=dict)


def strip_docstrings(node: ast.AST) -> ast.AST:
    """Remove docstring statements (string-constant first statements) from
    every function, class, and module body under ``node``, in place."""
    for sub in ast.walk(node):
        body = getattr(sub, "body", None)
        if not isinstance(sub, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not body:
            continue
        first = body[0]
        if (
            isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)
        ):
            if len(body) == 1:
                # Keep the body non-empty so the tree stays valid.
                body[0] = ast.Pass()
            else:
                del body[0]
    return node


def normalized_dump(node: ast.AST) -> str:
    """``ast.dump`` of ``node`` with docstrings stripped and location
    attributes dropped — the canonical text digests are taken over."""
    clean = strip_docstrings(copy.deepcopy(node))
    return ast.dump(clean, include_attributes=False)


def digest_node(node: ast.AST) -> str:
    return hashlib.sha256(normalized_dump(node).encode("utf-8")).hexdigest()


def digest_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _is_runtime_receiver(expr: ast.AST) -> bool:
    """True for ``rt`` / ``self.rt`` / ``<anything>.rt`` — the Runtime
    handle instrumented code calls hooks on.  Registry *declarations*
    (``reg.loop("site", ...)``) share the method names but never this
    receiver, and must not bind the site to the builder function."""
    if isinstance(expr, ast.Name):
        return expr.id == "rt"
    if isinstance(expr, ast.Attribute):
        return expr.attr == "rt"
    return False


def _site_literal(call: ast.Call) -> Optional[str]:
    """Return the site id if ``call`` is an ``rt.<hook>("site.id", ...)``
    runtime-hook invocation, else None."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in SITE_HOOKS:
        return None
    if not _is_runtime_receiver(func.value):
        return None
    if not call.args:
        return None
    first = call.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


class _Collector(ast.NodeVisitor):
    """Walk one module, recording functions, classes, imports, and the
    site-id literals each function's body contains."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self._qual: List[str] = []  # qualname segments
        self._class_stack: List[ClassInfo] = []
        self._fn_stack: List[FunctionInfo] = []
        self._sites: Dict[str, List[str]] = {}  # function key -> site ids

    # -- imports ------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".", 1)[0]
            self.info.imports[local] = (alias.name, None)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._resolve_relative(node)
        if base is not None:
            for alias in node.names:
                local = alias.asname or alias.name
                self.info.imports[local] = (base, alias.name)

    def _resolve_relative(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        parts = self.info.name.split(".")
        if node.level > len(parts):
            return None
        head = parts[: len(parts) - node.level]
        if node.module:
            head.append(node.module)
        return ".".join(head) if head else None

    # -- classes & functions ------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._qual.append(node.name)
        qual = ".".join(self._qual)
        cls = ClassInfo(
            key="%s:%s" % (self.info.name, qual),
            module=self.info.name,
            qualname=qual,
            name=node.name,
            bases=tuple(_base_name(b) for b in node.bases if _base_name(b)),
        )
        self.info.classes[cls.key] = cls
        self._class_stack.append(cls)
        self.generic_visit(node)
        self._class_stack.pop()
        self._qual.pop()

    def _visit_function(self, node: ast.AST, name: str) -> None:
        self._qual.append(name)
        qual = ".".join(self._qual)
        cls = self._class_stack[-1] if self._class_stack else None
        fn = FunctionInfo(
            key="%s:%s" % (self.info.name, qual),
            module=self.info.name,
            qualname=qual,
            name=name,
            cls=cls.qualname if cls else None,
            node=node,
            lineno=getattr(node, "lineno", 0),
        )
        self.info.functions[fn.key] = fn
        if cls is not None and cls.qualname == _owner_qual(qual):
            cls.methods[name] = fn.key
        self._fn_stack.append(fn)
        self._qual.append("<locals>")
        self.generic_visit(node)
        self._qual.pop()
        self._fn_stack.pop()
        self._qual.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    # -- site literals ------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        site = _site_literal(node)
        if site is not None and self._fn_stack:
            self._sites.setdefault(self._fn_stack[-1].key, []).append(site)
        self.generic_visit(node)

    def finalize(self) -> None:
        for key, sites in self._sites.items():
            self.info.functions[key].site_literals = tuple(sites)
        for fn in self.info.functions.values():
            fn.digest = digest_node(fn.node)


def _owner_qual(fn_qual: str) -> str:
    """Qualname of the scope that owns a function, e.g. the class of a
    method ("Cls.m" -> "Cls"); empty for module-level functions."""
    head, _, _ = fn_qual.rpartition(".")
    return head


def _base_name(expr: ast.AST) -> str:
    """Textual name of a base-class expression: Name -> id, dotted
    Attribute -> last attr (resolution happens against parsed classes)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return ""


def collect_module(name: str, source: str) -> ModuleInfo:
    """Parse ``source`` and collect its functions, classes, and imports."""
    tree = ast.parse(source, filename="%s.py" % name.replace(".", "/"))
    info = ModuleInfo(name=name, tree=tree)
    collector = _Collector(info)
    collector.visit(tree)
    collector.finalize()
    return info
