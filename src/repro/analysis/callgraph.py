"""Interprocedural call graph over collected modules.

Resolution rules, applied in order to every call expression found in a
CFG-reachable statement (see :mod:`repro.analysis.cfg`):

1. **Nested functions** — ``g(...)`` where ``g`` is defined inside the
   calling function (``outer.<locals>.g``).
2. **Module-level calls** — ``f(...)`` for a function defined (or
   imported from a parsed module) at module scope.
3. **Constructors** — ``ClassName(...)`` adds an edge to
   ``ClassName.__init__`` when the class is parsed.
4. **``self.method(...)``** — resolved within the enclosing class, then
   its parsed base classes (breadth-first; unparsed framework bases such
   as ``repro.sim.Node`` are skipped).
5. **Typed locals** — ``x.method(...)`` where ``x`` was assigned
   ``ClassName(...)`` in the same function, or is a parameter annotated
   with a parsed class.
6. **Unique-method-name fallback (CHA-lite)** — any remaining
   ``expr.method(...)`` resolves to *every* parsed class defining
   ``method``.  Over-approximate by design: a slice may include a
   function it cannot reach, never the reverse for these patterns.

**Callbacks**: the simulated node API registers work by reference —
``env.every(self, ms, self.replicate_tick)``,
``env.schedule_at(t, node, node.start_election)``,
``rt.rpc_call("site", ..., peer.handle_append, ...)``.  Every bare
``Name``/``Attribute`` argument of any call that resolves to a known
function or parsed method therefore becomes a call edge from the
registering function.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .astutil import ClassInfo, FunctionInfo, ModuleInfo
from .cfg import FunctionCFG, build_cfg


def stmt_exprs(stmt: ast.stmt) -> List[ast.expr]:
    """Expressions evaluated *by this statement itself* — for compound
    statements only the header (test/iter/items), since the body lives in
    other CFG blocks; for ``def``/``class`` only decorators and defaults
    (the body is a separate function / runs at call time)."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        defaults: List[ast.expr] = [d for d in stmt.args.defaults]
        defaults.extend(d for d in stmt.args.kw_defaults if d is not None)
        return list(stmt.decorator_list) + defaults
    if isinstance(stmt, ast.ClassDef):
        return list(stmt.decorator_list) + list(stmt.bases) + [kw.value for kw in stmt.keywords]
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return [h.type for h in stmt.handlers if h.type is not None]
    return [node for node in ast.iter_child_nodes(stmt) if isinstance(node, ast.expr)]


@dataclass
class CallGraph:
    functions: Dict[str, FunctionInfo]
    classes: Dict[str, ClassInfo]
    modules: Dict[str, ModuleInfo]
    edges: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    cfgs: Dict[str, FunctionCFG] = field(default_factory=dict)
    calls_seen: int = 0
    calls_resolved: int = 0

    @property
    def n_edges(self) -> int:
        return sum(len(v) for v in self.edges.values())

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Transitive closure over call edges, roots included."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(self.edges.get(key, ()))
        return seen


class _Resolver:
    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for mod in modules.values():
            self.functions.update(mod.functions)
            self.classes.update(mod.classes)
        # method name -> every parsed class's implementation (CHA table)
        self.methods_by_name: Dict[str, List[str]] = {}
        for cls in self.classes.values():
            for mname, fkey in cls.methods.items():
                self.methods_by_name.setdefault(mname, []).append(fkey)
        # bare class name -> parsed classes with that name
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        for cls in self.classes.values():
            self.classes_by_name.setdefault(cls.name, []).append(cls)

    # -- class / name resolution --------------------------------------
    def class_named(self, name: str, module: str) -> List[ClassInfo]:
        """Parsed classes a bare name may refer to, seen from ``module``:
        module-local first, then the module's imports, then any parsed
        class with that name (unique only)."""
        local_key = "%s:%s" % (module, name)
        if local_key in self.classes:
            return [self.classes[local_key]]
        mod = self.modules.get(module)
        if mod is not None and name in mod.imports:
            target_mod, attr = mod.imports[name]
            if attr is not None:
                key = "%s:%s" % (target_mod, attr)
                if key in self.classes:
                    return [self.classes[key]]
        candidates = self.classes_by_name.get(name, [])
        return candidates if len(candidates) == 1 else []

    def method_in_class(self, cls: ClassInfo, name: str) -> List[str]:
        """Look up ``name`` in ``cls`` then breadth-first through parsed
        bases (unparsed bases are silently skipped)."""
        queue: List[ClassInfo] = [cls]
        seen: Set[str] = set()
        while queue:
            cur = queue.pop(0)
            if cur.key in seen:
                continue
            seen.add(cur.key)
            if name in cur.methods:
                return [cur.methods[name]]
            for base in cur.bases:
                queue.extend(self.class_named(base, cur.module))
        return []

    def resolve_name(self, name: str, fn: FunctionInfo, *, classes_ok: bool) -> List[str]:
        """Resolve a bare-name reference from inside ``fn``."""
        nested = "%s:%s.<locals>.%s" % (fn.module, fn.qualname, name)
        if nested in self.functions:
            return [nested]
        module_fn = "%s:%s" % (fn.module, name)
        if module_fn in self.functions and self.functions[module_fn].cls is None:
            return [module_fn]
        mod = self.modules.get(fn.module)
        if mod is not None and name in mod.imports:
            target_mod, attr = mod.imports[name]
            if attr is not None:
                key = "%s:%s" % (target_mod, attr)
                if key in self.functions:
                    return [key]
                if classes_ok and key in self.classes:
                    return self._ctor(self.classes[key])
        if classes_ok:
            for cls in self.class_named(name, fn.module):
                return self._ctor(cls)
        return []

    def _ctor(self, cls: ClassInfo) -> List[str]:
        out = self.method_in_class(cls, "__init__")
        return out

    def resolve_attr(self, value: ast.expr, attr: str, fn: FunctionInfo,
                     local_types: Dict[str, ClassInfo]) -> List[str]:
        """Resolve ``<value>.<attr>`` as a method reference."""
        if isinstance(value, ast.Name):
            if value.id == "self" and fn.cls is not None:
                cls_key = "%s:%s" % (fn.module, fn.cls)
                cls = self.classes.get(cls_key)
                if cls is not None:
                    return self.method_in_class(cls, attr)
                return []
            if value.id in local_types:
                hit = self.method_in_class(local_types[value.id], attr)
                if hit:
                    return hit
        # CHA-lite fallback: every parsed class defining this method.
        return list(self.methods_by_name.get(attr, []))

    # -- per-function type hints --------------------------------------
    def local_types(self, fn: FunctionInfo, stmts: Sequence[ast.stmt]) -> Dict[str, ClassInfo]:
        """name -> parsed class, from annotated parameters and
        single-target ``x = ClassName(...)`` assignments."""
        types: Dict[str, ClassInfo] = {}
        args = getattr(fn.node, "args", None)
        if args is not None:
            all_args = list(args.posonlyargs) if hasattr(args, "posonlyargs") else []
            all_args.extend(args.args)
            all_args.extend(args.kwonlyargs)
            for a in all_args:
                ann = a.annotation
                name: Optional[str] = None
                if isinstance(ann, ast.Name):
                    name = ann.id
                elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                    name = ann.value.split(".")[-1].strip()
                if name:
                    hits = self.class_named(name, fn.module)
                    if len(hits) == 1:
                        types[a.arg] = hits[0]
        for stmt in stmts:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Name)
            ):
                hits = self.class_named(stmt.value.func.id, fn.module)
                if len(hits) == 1:
                    types[stmt.targets[0].id] = hits[0]
        return types


def build_call_graph(modules: Dict[str, ModuleInfo]) -> CallGraph:
    resolver = _Resolver(modules)
    graph = CallGraph(functions=resolver.functions, classes=resolver.classes, modules=modules)
    for key, fn in resolver.functions.items():
        cfg = build_cfg(fn.node)
        graph.cfgs[key] = cfg
        stmts = cfg.reachable_statements()
        local_types = resolver.local_types(fn, stmts)
        targets: Set[str] = set()
        for stmt in stmts:
            for expr in stmt_exprs(stmt):
                for node in ast.walk(expr):
                    if not isinstance(node, ast.Call):
                        continue
                    graph.calls_seen += 1
                    resolved = _resolve_call(node, fn, resolver, local_types)
                    if resolved:
                        graph.calls_resolved += 1
                        targets.update(resolved)
                    targets.update(_callback_refs(node, fn, resolver, local_types))
        targets.discard(key)  # self-recursion adds nothing to a closure
        graph.edges[key] = tuple(sorted(targets))
    return graph


def _resolve_call(node: ast.Call, fn: FunctionInfo, resolver: _Resolver,
                  local_types: Dict[str, ClassInfo]) -> List[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return resolver.resolve_name(func.id, fn, classes_ok=True)
    if isinstance(func, ast.Attribute):
        return resolver.resolve_attr(func.value, func.attr, fn, local_types)
    return []


def _callback_refs(node: ast.Call, fn: FunctionInfo, resolver: _Resolver,
                   local_types: Dict[str, ClassInfo]) -> List[str]:
    """Function references passed as arguments — callback registration."""
    out: List[str] = []
    args: List[ast.expr] = list(node.args)
    args.extend(kw.value for kw in node.keywords if kw.value is not None)
    for arg in args:
        if isinstance(arg, ast.Name):
            out.extend(resolver.resolve_name(arg.id, fn, classes_ok=False))
        elif isinstance(arg, ast.Attribute):
            out.extend(resolver.resolve_attr(arg.value, arg.attr, fn, local_types))
    return out
