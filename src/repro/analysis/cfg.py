"""Per-function control-flow graphs.

The call graph only harvests call expressions from *CFG-reachable*
statements, so code that is statically dead inside a function — anything
after an unconditional ``return`` / ``raise`` / ``break`` / ``continue``
in the same block sequence — contributes no edges and no reachability.

The CFG is statement-granular and deliberately conservative:

* every branch of ``if`` / ``for`` / ``while`` / ``try`` / ``with`` is
  assumed takeable (no constant folding, so ``if False:`` bodies still
  count as live);
* every statement of a ``try`` body may transfer to every handler;
* loop bodies get a back edge to the loop header and an exit edge past
  the loop.

Nested ``def``/``class`` statements are treated as plain definitions
here: the nested body is *not* inlined into the host's CFG (it only runs
if called; the call graph adds a separate edge when a reference to it is
found).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


@dataclass
class BasicBlock:
    index: int
    statements: List[ast.stmt] = field(default_factory=list)
    successors: Set[int] = field(default_factory=set)


@dataclass
class FunctionCFG:
    """CFG for one function body: basic blocks, edges, and the subset of
    statements reachable from the entry block."""

    blocks: List[BasicBlock]
    entry: int
    reachable_blocks: Set[int]

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def n_edges(self) -> int:
        return sum(len(b.successors) for b in self.blocks)

    def reachable_statements(self) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        for block in self.blocks:
            if block.index in self.reachable_blocks:
                out.extend(block.statements)
        return out


class _Builder:
    def __init__(self) -> None:
        self.blocks: List[BasicBlock] = []

    def new_block(self) -> BasicBlock:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def link(self, src: BasicBlock, dst: BasicBlock) -> None:
        src.successors.add(dst.index)

    def seq(
        self,
        stmts: Sequence[ast.stmt],
        current: BasicBlock,
        loop: Optional[Tuple[BasicBlock, BasicBlock]] = None,
        handlers: Sequence[BasicBlock] = (),
    ) -> BasicBlock:
        """Lay out ``stmts`` starting in ``current``; return the block that
        control falls out of (it may be unreachable if the sequence always
        terminates).  ``loop`` is (header, after) for break/continue;
        ``handlers`` are the active except-blocks."""
        for stmt in stmts:
            for handler in handlers:
                self.link(current, handler)
            if isinstance(stmt, (ast.If,)):
                current.statements.append(stmt)
                then = self.new_block()
                self.link(current, then)
                then_out = self.seq(stmt.body, then, loop, handlers)
                after = self.new_block()
                if stmt.orelse:
                    els = self.new_block()
                    self.link(current, els)
                    els_out = self.seq(stmt.orelse, els, loop, handlers)
                    self.link(els_out, after)
                else:
                    self.link(current, after)
                self.link(then_out, after)
                current = after
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                current.statements.append(stmt)
                header = self.new_block()
                self.link(current, header)
                body = self.new_block()
                after = self.new_block()
                self.link(header, body)
                self.link(header, after)  # zero iterations / loop exit
                body_out = self.seq(stmt.body, body, (header, after), handlers)
                self.link(body_out, header)  # back edge
                if stmt.orelse:
                    els = self.new_block()
                    self.link(header, els)
                    els_out = self.seq(stmt.orelse, els, loop, handlers)
                    self.link(els_out, after)
                current = after
            elif isinstance(stmt, ast.Try):
                current.statements.append(stmt)
                body = self.new_block()
                self.link(current, body)
                after = self.new_block()
                handler_blocks: List[BasicBlock] = []
                for h in stmt.handlers:
                    hb = self.new_block()
                    handler_blocks.append(hb)
                    h_out = self.seq(h.body, hb, loop, handlers)
                    self.link(h_out, after)
                body_out = self.seq(stmt.body, body, loop, tuple(handlers) + tuple(handler_blocks))
                if stmt.orelse:
                    els = self.new_block()
                    self.link(body_out, els)
                    body_out = self.seq(stmt.orelse, els, loop, handlers)
                self.link(body_out, after)
                if stmt.finalbody:
                    fin = self.new_block()
                    self.link(after, fin)
                    after = self.seq(stmt.finalbody, fin, loop, handlers)
                current = after
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                current.statements.append(stmt)
                body = self.new_block()
                self.link(current, body)
                current = self.seq(stmt.body, body, loop, handlers)
            elif isinstance(stmt, _TERMINATORS):
                current.statements.append(stmt)
                if isinstance(stmt, ast.Continue) and loop is not None:
                    self.link(current, loop[0])
                elif isinstance(stmt, ast.Break) and loop is not None:
                    self.link(current, loop[1])
                # Return/Raise: no successor.  Whatever follows in this
                # sequence lands in a fresh, unlinked (dead) block.
                current = self.new_block()
            else:
                current.statements.append(stmt)
        return current


def build_cfg(fn: ast.AST) -> FunctionCFG:
    """Build the CFG for a FunctionDef/AsyncFunctionDef node."""
    body: List[ast.stmt] = list(getattr(fn, "body", []))
    builder = _Builder()
    entry = builder.new_block()
    builder.seq(body, entry)
    reachable: Set[int] = set()
    stack = [entry.index]
    while stack:
        idx = stack.pop()
        if idx in reachable:
            continue
        reachable.add(idx)
        stack.extend(builder.blocks[idx].successors)
    return FunctionCFG(blocks=builder.blocks, entry=entry.index, reachable_blocks=reachable)


def cfg_stats(cfgs: Dict[str, FunctionCFG]) -> Dict[str, int]:
    """Aggregate block/edge counts for bench reporting."""
    return {
        "cfg_blocks": sum(c.n_blocks for c in cfgs.values()),
        "cfg_edges": sum(c.n_edges for c in cfgs.values()),
        "dead_blocks": sum(c.n_blocks - len(c.reachable_blocks) for c in cfgs.values()),
    }
