"""Diffing two slice analyses and two detection reports.

Backs ``repro diff-run OLD NEW``: the static half decides which cache
entries an edit invalidates; the report half states what actually
changed — fault-induced loops that newly appeared or vanished.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from ..types import FaultKey
from .slicer import SliceAnalysis


@dataclass
class SliceDiff:
    """Per-site and per-entry digest comparison of two analyses."""

    system: str
    changed_sites: Tuple[str, ...] = ()
    unchanged_sites: Tuple[str, ...] = ()
    added_sites: Tuple[str, ...] = ()  # digest only on the NEW side
    removed_sites: Tuple[str, ...] = ()  # digest only on the OLD side
    unresolved_sites: Tuple[str, ...] = ()  # unresolved on either side
    changed_entries: Tuple[str, ...] = ()
    unchanged_entries: Tuple[str, ...] = ()
    changed_functions: Tuple[str, ...] = ()  # function keys with new body digests
    added_functions: Tuple[str, ...] = ()
    removed_functions: Tuple[str, ...] = ()
    source_changed: bool = False

    def invalidates(self, site_id: str) -> bool:
        """Must experiments injecting at ``site_id`` be re-run?

        Unresolved and one-sided sites are conservatively invalidated
        (their fallback key carries the whole-spec digest anyway)."""
        return site_id not in set(self.unchanged_sites)

    def partition_faults(
        self, faults: Sequence[FaultKey]
    ) -> Tuple[List[FaultKey], List[FaultKey]]:
        """Split a fault space into (invalidated, reusable)."""
        invalidated: List[FaultKey] = []
        reusable: List[FaultKey] = []
        for fault in sorted(faults):
            (invalidated if self.invalidates(fault.site_id) else reusable).append(fault)
        return invalidated, reusable

    def to_obj(self) -> Dict[str, Any]:
        return {
            "system": self.system,
            "source_changed": self.source_changed,
            "sites": {
                "changed": list(self.changed_sites),
                "unchanged": list(self.unchanged_sites),
                "added": list(self.added_sites),
                "removed": list(self.removed_sites),
                "unresolved": list(self.unresolved_sites),
            },
            "entries": {
                "changed": list(self.changed_entries),
                "unchanged": list(self.unchanged_entries),
            },
            "functions": {
                "changed": list(self.changed_functions),
                "added": list(self.added_functions),
                "removed": list(self.removed_functions),
            },
        }


def diff_slices(old: SliceAnalysis, new: SliceAnalysis) -> SliceDiff:
    diff = SliceDiff(system=new.system, source_changed=old.source_digest != new.source_digest)

    unresolved = sorted(set(old.unresolved) | set(new.unresolved))
    changed: List[str] = []
    unchanged: List[str] = []
    added: List[str] = []
    removed: List[str] = []
    for site_id in sorted(set(old.site_digests) | set(new.site_digests)):
        if site_id in unresolved:
            continue
        od = old.site_digests.get(site_id)
        nd = new.site_digests.get(site_id)
        if od is None:
            added.append(site_id)
        elif nd is None:
            removed.append(site_id)
        elif od != nd:
            changed.append(site_id)
        else:
            unchanged.append(site_id)
    diff.changed_sites = tuple(changed)
    diff.unchanged_sites = tuple(unchanged)
    diff.added_sites = tuple(added)
    diff.removed_sites = tuple(removed)
    diff.unresolved_sites = tuple(unresolved)

    entries_changed: List[str] = []
    entries_unchanged: List[str] = []
    for test_id in sorted(set(old.entry_digests) | set(new.entry_digests)):
        if old.entry_digests.get(test_id) == new.entry_digests.get(test_id):
            entries_unchanged.append(test_id)
        else:
            entries_changed.append(test_id)
    diff.changed_entries = tuple(entries_changed)
    diff.unchanged_entries = tuple(entries_unchanged)

    old_fns = {k: f.digest for k, f in old.graph.functions.items()}
    new_fns = {k: f.digest for k, f in new.graph.functions.items()}
    diff.changed_functions = tuple(
        sorted(k for k in old_fns.keys() & new_fns.keys() if old_fns[k] != new_fns[k])
    )
    diff.added_functions = tuple(sorted(new_fns.keys() - old_fns.keys()))
    diff.removed_functions = tuple(sorted(old_fns.keys() - new_fns.keys()))
    return diff


# ---------------------------------------------------------------- reports


def _loop_identity(cycle_obj: Dict[str, Any]) -> Tuple[Tuple[str, str, str, str], ...]:
    """Canonical identity of one fault-induced loop: its edge set without
    the recorded local states (those vary run to run)."""
    return tuple(
        sorted(
            (e["src"], e["etype"], e["dst"], e["test_id"])
            for e in cycle_obj.get("edges", [])
        )
    )


def _loop_label(identity: Tuple[Tuple[str, str, str, str], ...]) -> str:
    return " ; ".join("%s -%s-> %s [%s]" % (s, t, d, w) for s, t, d, w in identity)


@dataclass
class ReportDiff:
    """What changed between two detection reports (dict form)."""

    appeared_loops: Tuple[str, ...] = ()
    vanished_loops: Tuple[str, ...] = ()
    appeared_bugs: Tuple[str, ...] = ()
    vanished_bugs: Tuple[str, ...] = ()
    old_summary: Dict[str, int] = field(default_factory=dict)
    new_summary: Dict[str, int] = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        return not (
            self.appeared_loops
            or self.vanished_loops
            or self.appeared_bugs
            or self.vanished_bugs
        )

    def to_obj(self) -> Dict[str, Any]:
        return {
            "appeared_loops": list(self.appeared_loops),
            "vanished_loops": list(self.vanished_loops),
            "appeared_bugs": list(self.appeared_bugs),
            "vanished_bugs": list(self.vanished_bugs),
            "identical": self.identical,
            "old_summary": dict(sorted(self.old_summary.items())),
            "new_summary": dict(sorted(self.new_summary.items())),
        }


def diff_reports(old: Dict[str, Any], new: Dict[str, Any]) -> ReportDiff:
    old_loops = {_loop_identity(c) for c in old.get("cycles", [])}
    new_loops = {_loop_identity(c) for c in new.get("cycles", [])}

    def detected(report: Dict[str, Any]) -> set:
        return {
            m["bug"]["bug_id"]
            for m in report.get("bug_matches", [])
            if m.get("detected")
        }

    old_bugs = detected(old)
    new_bugs = detected(new)
    return ReportDiff(
        appeared_loops=tuple(_loop_label(i) for i in sorted(new_loops - old_loops)),
        vanished_loops=tuple(_loop_label(i) for i in sorted(old_loops - new_loops)),
        appeared_bugs=tuple(sorted(new_bugs - old_bugs)),
        vanished_bugs=tuple(sorted(old_bugs - new_bugs)),
        old_summary=dict(old.get("summary", {})),
        new_summary=dict(new.get("summary", {})),
    )
