"""Per-site reachable slices and their content digests.

For every code :class:`~repro.instrument.sites.FaultSite` the *slice* is
the set of function bodies transitively reachable (over the call graph)
from the site's enclosing function — the code whose behaviour an
experiment injecting at that site can possibly observe.  The slice
digest is a sha256 over the sorted ``(function key, normalized body
digest)`` pairs, so it changes exactly when some executable statement in
the slice changes and never for comment/whitespace/docstring edits.

Site → function binding is primary-by-literal: the analyzer finds the
``rt.<hook>("site.id", ...)`` string literal in a function body.  Sites
whose literal never appears (registry entries declared for code that
does not exist) fall back to the declared ``FaultSite.function``
qualname; if that also fails they are *unresolved* and keep whole-spec
cache keying with an explicit ``slice_unresolved`` reason.

Environment sites (crash/partition — no code location) are keyed on the
whole-source digest: any executable change anywhere invalidates them,
which is the sound conservative choice.

Workload entry points get the same treatment: each test's slice is the
closure from its setup function, and profile cache entries are keyed on
that digest.  Reachability (for fault-space pruning) is only trusted
when *every* entry point resolved.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence, Set, Tuple

from ..types import SiteKind
from .astutil import ModuleInfo, collect_module, digest_text
from .callgraph import CallGraph, build_call_graph
from .cfg import cfg_stats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..instrument.sites import FaultSite
    from ..systems.base import SystemSpec

ENV_KINDS = (SiteKind.ENV_NODE, SiteKind.ENV_LINK)


@dataclass
class SliceAnalysis:
    """Result of slicing one system's source."""

    system: str
    modules: Tuple[str, ...]
    graph: CallGraph
    source_digest: str  # digest over all normalized module dumps
    # site -> enclosing function key(s); usually one, several when the same
    # literal is legitimately instrumented at more than one code location
    # (the slice is then the union of the closures).
    site_roots: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    site_digests: Dict[str, str] = field(default_factory=dict)  # site -> slice digest
    site_slices: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    env_sites: Tuple[str, ...] = ()
    unresolved: Dict[str, str] = field(default_factory=dict)  # site -> reason
    entry_function: Dict[str, str] = field(default_factory=dict)  # test -> fn key
    entry_digests: Dict[str, str] = field(default_factory=dict)
    unresolved_entries: Dict[str, str] = field(default_factory=dict)
    reachable: Set[str] = field(default_factory=set)
    reachability_trusted: bool = False
    timings: Dict[str, float] = field(default_factory=dict)

    def is_reachable(self, site_id: str) -> bool:
        """True unless the site's enclosing function(s) are *known* to be
        unreachable from every workload entry point."""
        roots = self.site_roots.get(site_id)
        if not roots or not self.reachability_trusted:
            return True
        return any(r in self.reachable for r in roots)

    def stats(self) -> Dict[str, object]:
        """Scalar summary for ``repro bench`` / BENCH_campaign.json."""
        out: Dict[str, object] = {
            "modules": len(self.modules),
            "functions": len(self.graph.functions),
            "call_edges": self.graph.n_edges,
            "calls_seen": self.graph.calls_seen,
            "calls_resolved": self.graph.calls_resolved,
            "sites_resolved": len(self.site_roots),
            "sites_env": len(self.env_sites),
            "sites_unresolved": len(self.unresolved),
            "entries_resolved": len(self.entry_function),
            "entries_unresolved": len(self.unresolved_entries),
            "reachable_functions": len(self.reachable),
            "reachability_trusted": self.reachability_trusted,
        }
        out.update(cfg_stats(self.graph.cfgs))
        for phase, wall in sorted(self.timings.items()):
            out["wall_%s_s" % phase] = round(wall, 6)
        return out


def _slice_digest(keys: Sequence[str], graph: CallGraph) -> str:
    pairs = [[k, graph.functions[k].digest] for k in sorted(keys)]
    blob = json.dumps(pairs, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _find_site_functions(
    sites: Sequence["FaultSite"], graph: CallGraph
) -> Tuple[Dict[str, Tuple[str, ...]], Dict[str, str]]:
    """Bind each code site to its enclosing function key(s).

    Primary: the ``rt.*("site.id", ...)`` literal scan — a literal that
    appears in several functions yields a multi-root site (union slice).
    Secondary: the registry-declared qualname, if it names exactly one
    parsed function.
    """
    by_literal: Dict[str, Set[str]] = {}
    for key, fn in graph.functions.items():
        for site_id in fn.site_literals:
            by_literal.setdefault(site_id, set()).add(key)
    by_qualname: Dict[str, List[str]] = {}
    for key, fn in graph.functions.items():
        by_qualname.setdefault(fn.qualname, []).append(key)

    resolved: Dict[str, Tuple[str, ...]] = {}
    unresolved: Dict[str, str] = {}
    for site in sites:
        hits = tuple(sorted(by_literal.get(site.site_id, ())))
        if hits:
            resolved[site.site_id] = hits
            continue
        decl = sorted(by_qualname.get(site.function, []))
        if len(decl) == 1:
            resolved[site.site_id] = (decl[0],)
        else:
            unresolved[site.site_id] = (
                "site literal not found and declared function %r %s"
                % (site.function, "is ambiguous" if decl else "not in source")
            )
    return resolved, unresolved


def analyze_sources(
    system: str,
    sources: Dict[str, str],
    sites: Sequence["FaultSite"],
    entries: Dict[str, str],
) -> SliceAnalysis:
    """Slice ``sources`` (module name -> source text) for the given sites.

    ``entries`` maps test ids to entry-point keys (``module:qualname``).
    Pure function of its inputs — deterministic across processes, which
    is what lets per-worker recomputation produce identical cache keys.
    """
    t0 = time.perf_counter()
    modules: Dict[str, ModuleInfo] = {}
    for name in sorted(sources):
        modules[name] = collect_module(name, sources[name])
    t1 = time.perf_counter()
    graph = build_call_graph(modules)
    t2 = time.perf_counter()

    source_digest = digest_text(
        json.dumps(
            [[k, fn.digest] for k, fn in sorted(graph.functions.items())],
            separators=(",", ":"),
        )
    )
    analysis = SliceAnalysis(
        system=system,
        modules=tuple(sorted(sources)),
        graph=graph,
        source_digest=source_digest,
    )

    code_sites = [s for s in sites if s.kind not in ENV_KINDS]
    analysis.env_sites = tuple(sorted(s.site_id for s in sites if s.kind in ENV_KINDS))
    analysis.site_roots, analysis.unresolved = _find_site_functions(code_sites, graph)

    slice_cache: Dict[Tuple[str, ...], Tuple[Tuple[str, ...], str]] = {}

    def slice_of(roots: Tuple[str, ...]) -> Tuple[Tuple[str, ...], str]:
        if roots not in slice_cache:
            keys = tuple(sorted(graph.reachable_from(roots)))
            slice_cache[roots] = (keys, _slice_digest(keys, graph))
        return slice_cache[roots]

    for site_id in sorted(analysis.site_roots):
        keys, digest = slice_of(analysis.site_roots[site_id])
        analysis.site_slices[site_id] = keys
        analysis.site_digests[site_id] = digest
    for site_id in analysis.env_sites:
        analysis.site_digests[site_id] = source_digest

    for test_id in sorted(entries):
        fn_key = entries[test_id]
        if fn_key in graph.functions:
            analysis.entry_function[test_id] = fn_key
            _, analysis.entry_digests[test_id] = slice_of((fn_key,))
        else:
            analysis.unresolved_entries[test_id] = "entry point %r not in source" % fn_key
    analysis.reachable = graph.reachable_from(analysis.entry_function.values())
    analysis.reachability_trusted = bool(entries) and not analysis.unresolved_entries

    t3 = time.perf_counter()
    analysis.timings = {
        "parse": t1 - t0,
        "callgraph": t2 - t1,
        "slice": t3 - t2,
        "total": t3 - t0,
    }
    return analysis


def entry_key(setup: object) -> str:
    """Cache-key identity of a workload entry point: ``module:qualname``."""
    return "%s:%s" % (
        getattr(setup, "__module__", "?"),
        getattr(setup, "__qualname__", "?"),
    )


def analyze_system(spec: "SystemSpec", sources: Dict[str, str]) -> SliceAnalysis:
    """Slice a built system spec against the given module sources."""
    entries = {wl.test_id: entry_key(wl.setup) for wl in spec.workloads.values()}
    return analyze_sources(spec.name, sources, list(spec.registry), entries)
