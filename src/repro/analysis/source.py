"""Source providers: where module text comes from.

The slicer is a pure function of ``{module name: source text}``; the
providers here produce that mapping from three places:

* :func:`live_sources` — the files backing the currently imported
  ``repro`` package (what ``repro run`` and the cache use);
* :class:`TreeSource` — an on-disk checkout (a repo root containing
  ``src/repro/...`` or a bare ``repro/...`` package directory);
* :class:`GitSource` — a git ref of the current repository, read with
  ``git show`` (no checkout needed for the static phase;
  :meth:`GitSource.materialize` extracts a full tree when diff-run must
  actually execute campaigns from it).
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Dict, Optional, Sequence


def module_relpath(module: str) -> str:
    """Repo-relative path of a module inside the ``src`` layout."""
    return "src/%s.py" % module.replace(".", "/")


class SourceProvider:
    """Read module source text from somewhere."""

    label = "?"

    def read(self, module: str) -> str:
        raise NotImplementedError

    def sources(self, modules: Sequence[str]) -> Dict[str, str]:
        return {m: self.read(m) for m in modules}


class TreeSource(SourceProvider):
    """Modules from an on-disk source tree.

    ``root`` may be a repository root (``<root>/src/repro/...``) or a
    directory that directly contains the package (``<root>/repro/...``).
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.label = str(root)

    def _path(self, module: str) -> Path:
        rel = Path(module.replace(".", "/") + ".py")
        for base in (self.root / "src", self.root):
            candidate = base / rel
            if candidate.is_file():
                return candidate
        raise FileNotFoundError(
            "module %s not found under %s (tried src/%s and %s)" % (module, self.root, rel, rel)
        )

    def read(self, module: str) -> str:
        return self._path(module).read_text(encoding="utf-8")


class GitSource(SourceProvider):
    """Modules from a git ref of ``repo`` (defaults to the cwd repo)."""

    def __init__(self, ref: str, repo: Optional[Path] = None) -> None:
        self.ref = ref
        self.repo = Path(repo) if repo is not None else Path.cwd()
        self.label = ref

    def _git(self, *argv: str) -> bytes:
        return subprocess.check_output(
            ["git"] + list(argv), cwd=str(self.repo), stderr=subprocess.PIPE
        )

    def exists(self) -> bool:
        try:
            self._git("rev-parse", "--verify", "--quiet", "%s^{commit}" % self.ref)
            return True
        except subprocess.CalledProcessError:
            return False

    def read(self, module: str) -> str:
        try:
            blob = self._git("show", "%s:%s" % (self.ref, module_relpath(module)))
        except subprocess.CalledProcessError as exc:
            raise FileNotFoundError(
                "module %s not found at git ref %s" % (module, self.ref)
            ) from exc
        return blob.decode("utf-8")

    def materialize(self, dest: Path) -> Path:
        """Extract the full tree of ``ref`` into ``dest`` (for running
        campaigns from a historical revision); returns ``dest``."""
        dest.mkdir(parents=True, exist_ok=True)
        archive = self._git("archive", "--format=tar", self.ref)
        import io
        import tarfile

        with tarfile.open(fileobj=io.BytesIO(archive)) as tar:
            tar.extractall(str(dest))
        return dest


def resolve_provider(spec: str, repo: Optional[Path] = None) -> SourceProvider:
    """Interpret a diff-run operand: an existing directory wins, anything
    else must be a resolvable git ref."""
    path = Path(spec)
    if path.is_dir():
        return TreeSource(path)
    git = GitSource(spec, repo=repo)
    if git.exists():
        return git
    raise ValueError("%r is neither a source-tree directory nor a git ref" % spec)


def live_sources(modules: Sequence[str]) -> Dict[str, str]:
    """Source text of the given modules as currently importable — read
    from the files backing the installed ``repro`` package."""
    import repro

    pkg_root = Path(repro.__file__).resolve().parent.parent  # .../src
    out: Dict[str, str] = {}
    for module in modules:
        out[module] = (pkg_root / (module.replace(".", "/") + ".py")).read_text(encoding="utf-8")
    return out
