"""Baselines the paper compares CSnake against.

* :mod:`random_alloc` — the random budget-allocation protocol of §8.1
  (Table 3's "Rnd.?" column);
* :mod:`naive` — the single-fault self-causation strategy of §8.2
  (Table 3's "Alt.?" column);
* :mod:`blackbox` — a Jepsen/Blockade-style coarse-grained blackbox fault
  fuzzer (§8.2.1).
"""

from .blackbox import BlackboxFuzzer, BlackboxResult
from .naive import NaiveSelfCausation, NaiveResult
from .random_alloc import RandomAllocator

__all__ = [
    "RandomAllocator",
    "NaiveSelfCausation",
    "NaiveResult",
    "BlackboxFuzzer",
    "BlackboxResult",
]
