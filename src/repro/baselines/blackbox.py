"""Jepsen/Blockade-style blackbox fault fuzzing (§8.2.1).

The fuzzer injects coarse-grained *external* faults — node crashes and
restarts, network partitions and heals — at random times during a workload,
with no bytecode instrumentation and no view of internal fault sites.  A
known self-sustaining cascade counts as triggered only if the run both
(a) naturally exhibits every core fault of the bug and (b) shows runaway
load (event saturation) — the observable signature such a tool could flag.

The paper finds these tools detect none of the 15 bugs, because the
required conditions are fine-grained internal faults (loop contention,
specific exceptions, detector negations) that coarse external faults do
not produce.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..config import CSnakeConfig
from ..core.driver import _seed_for
from ..instrument.runtime import Runtime
from ..instrument.trace import RunTrace
from ..sim import SimEnv
from ..systems.base import SystemSpec


@dataclass
class BlackboxResult:
    runs: int = 0
    crashes_injected: int = 0
    partitions_injected: int = 0
    saturated_runs: int = 0
    detected_bugs: Dict[str, bool] = field(default_factory=dict)


class BlackboxFuzzer:
    """Random crash/partition fuzzing over a system's workloads."""

    def __init__(
        self,
        spec: SystemSpec,
        config: Optional[CSnakeConfig] = None,
        runs_per_workload: int = 4,
        faults_per_run: int = 3,
    ) -> None:
        self.spec = spec
        self.config = config or CSnakeConfig()
        self.runs_per_workload = runs_per_workload
        self.faults_per_run = faults_per_run

    def _schedule_chaos(self, env: SimEnv, rng: random.Random, result: BlackboxResult) -> None:
        """Arm random crash/restart and partition/heal pairs."""
        nodes = [n for n in env.nodes if not n.name.startswith("<")]
        if len(nodes) < 2:
            return
        horizon = 100_000.0
        for _ in range(self.faults_per_run):
            victim = rng.choice(nodes)
            at = rng.uniform(10_000.0, horizon * 0.7)
            duration = rng.uniform(5_000.0, 20_000.0)
            if rng.random() < 0.5:
                result.crashes_injected += 1
                env.schedule_at(at, victim, victim.crash)
                env.schedule_at(at + duration, victim, victim.restart)
            else:
                other = rng.choice([n for n in nodes if n is not victim])
                result.partitions_injected += 1
                env.schedule_at(at, victim, lambda a=victim, b=other: env.partition(a, b))
                env.schedule_at(at + duration, victim, lambda a=victim, b=other: env.heal(a, b))

    def run(self) -> BlackboxResult:
        result = BlackboxResult()
        triggered: Dict[str, bool] = {b.bug_id: False for b in self.spec.known_bugs}
        for test_id in self.spec.workload_ids():
            workload = self.spec.workloads[test_id]
            for i in range(self.runs_per_workload):
                seed = _seed_for(test_id, 1000 + i, self.config.seed)
                rng = random.Random(seed)
                trace = RunTrace(test_id=test_id, injection=None, seed=seed)
                runtime = Runtime(self.spec.registry, trace=trace)
                env = SimEnv(workload.sim_config, seed=seed)
                runtime.bind_env(env)
                env.runtime = runtime
                workload.setup(env, runtime)
                self._schedule_chaos(env, rng, result)
                env.run(workload.duration_ms)
                result.runs += 1
                if env.saturated:
                    result.saturated_runs += 1
                natural = trace.natural_faults()
                for bug in self.spec.known_bugs:
                    if bug.core_faults <= natural and env.saturated:
                        triggered[bug.bug_id] = True
        result.detected_bugs = triggered
        return result
