"""The naive single-fault self-causation strategy of §8.2.

Injects one fault into one test and monitors whether the fault *causes
itself*: a delayed loop whose own iteration count increases, or an
exception/negation that re-occurs naturally after the injection.  No causal
stitching across tests.  A known bug counts as detected if any of its core
faults exhibits self-causation in some single test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..config import CSnakeConfig
from ..core.driver import ExperimentDriver
from ..systems.base import KnownBug, SystemSpec
from ..types import FaultKey


@dataclass
class NaiveResult:
    """Self-causing faults found, and known-bug attribution."""

    self_causing: List[Tuple[FaultKey, str]] = field(default_factory=list)
    experiments: int = 0
    detected_bugs: Dict[str, bool] = field(default_factory=dict)

    def detects(self, bug: KnownBug) -> bool:
        return self.detected_bugs.get(bug.bug_id, False)


class NaiveSelfCausation:
    """Exhaustively tries each (fault, reaching-test) pair up to a cap."""

    def __init__(
        self,
        spec: SystemSpec,
        config: Optional[CSnakeConfig] = None,
        faults: Optional[Sequence[FaultKey]] = None,
        max_tests_per_fault: int = 4,
    ) -> None:
        self.spec = spec
        self.config = config or CSnakeConfig()
        self.driver = ExperimentDriver(spec, self.config)
        if faults is None:
            from ..instrument.analyzer import analyze

            faults = analyze(spec.registry).faults
        self.faults = sorted(set(faults))
        self.max_tests_per_fault = max_tests_per_fault

    def run(self) -> NaiveResult:
        result = NaiveResult()
        self_causing: Set[FaultKey] = set()
        for fault in self.faults:
            reaching = self.driver.tests_reaching(fault)
            # Highest-coverage tests first (the strategy's best shot).
            reaching.sort(key=lambda t: -self.driver.coverage_of(t))
            for test_id in reaching[: self.max_tests_per_fault]:
                outcome = self.driver.run_experiment(fault, test_id)
                result.experiments += 1
                if fault in outcome.interference:
                    result.self_causing.append((fault, test_id))
                    self_causing.add(fault)
                    break
        for bug in self.spec.known_bugs:
            result.detected_bugs[bug.bug_id] = bool(bug.core_faults & self_causing)
        return result
