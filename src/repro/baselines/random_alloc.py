"""Random test-budget allocation (the paper's §8.1 comparison).

Uses the same total budget as the 3PA protocol but picks (fault, test)
combinations uniformly at random *with replacement* — the naive sampling a
tester without the causal feedback loop would do.  Everything downstream
(FCA, stitching, beam search) is identical, so differences in detection
are attributable to allocation alone.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..config import CSnakeConfig
from ..core.allocation import AllocationOutcome, AllocationRecord
from ..core.driver import ExperimentDriver
from ..types import FaultKey


class RandomAllocator:
    """Budget-equivalent random (fault, test) sampling."""

    def __init__(
        self,
        driver: ExperimentDriver,
        faults: Sequence[FaultKey],
        config: Optional[CSnakeConfig] = None,
    ) -> None:
        self.driver = driver
        self.faults = sorted(set(faults))
        self.config = config or driver.config
        self.rng = random.Random(self.config.seed * 17 + 3)
        self.outcome = AllocationOutcome()

    def run(self) -> AllocationOutcome:
        budget = self.config.budget_per_fault * len(self.faults)
        self.outcome.budget_total = budget
        reaching = {
            fault: self.driver.tests_reaching(fault) for fault in self.faults
        }
        candidates: List[FaultKey] = [f for f in self.faults if reaching[f]]
        self.outcome.unreachable = [f for f in self.faults if not reaching[f]]
        if not candidates:
            return self.outcome
        seen = set()
        for _ in range(budget):
            fault = self.rng.choice(candidates)
            test_id = self.rng.choice(reaching[fault])
            if (fault, test_id) in seen:
                # Re-running an identical experiment yields nothing new; it
                # still consumes budget (with-replacement sampling).
                self.outcome.budget_used += 1
                continue
            seen.add((fault, test_id))
            result = self.driver.run_experiment(fault, test_id)
            self.outcome.records.append(
                AllocationRecord(phase=0, fault=fault, test_id=test_id, result=result)
            )
            self.outcome.budget_used += 1
        return self.outcome
