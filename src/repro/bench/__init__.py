"""Shared evaluation harness used by the benchmark suite and EXPERIMENTS.md."""

from .runners import (
    CampaignResult,
    bench_config,
    run_campaign,
    run_random_campaign,
    table3_rows,
    table4_row,
)
from .tables import format_table

__all__ = [
    "CampaignResult",
    "bench_config",
    "run_campaign",
    "run_random_campaign",
    "table3_rows",
    "table4_row",
    "format_table",
]
