"""Shared evaluation harness used by the benchmark suite and EXPERIMENTS.md."""

from .campaign import (
    bench_campaign,
    check_regression,
    measure_agent_overhead,
    write_bench_json,
)
from .runners import (
    CampaignResult,
    bench_config,
    run_campaign,
    run_random_campaign,
    table3_rows,
    table4_row,
)
from .tables import format_table

__all__ = [
    "CampaignResult",
    "bench_config",
    "bench_campaign",
    "check_regression",
    "measure_agent_overhead",
    "write_bench_json",
    "run_campaign",
    "run_random_campaign",
    "table3_rows",
    "table4_row",
    "format_table",
]
