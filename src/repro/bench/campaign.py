"""End-to-end campaign benchmark: the repo's recorded perf trajectory.

``repro bench`` times one full campaign per executor backend (serial /
thread / process), checks that every backend produced a bit-identical
report, measures the runtime agent's instrumentation overhead (the §8.5
experiment), and writes everything to ``BENCH_campaign.json`` — one
reproducible data point per commit, so performance regressions are caught
by comparing files, not by folklore.  CI runs the ``--smoke`` variant
against the checked-in baseline (``benchmarks/baseline_campaign.json``).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import CSnakeConfig
from ..core.driver import _seed_for
from ..instrument.runtime import Runtime
from ..instrument.trace import RunTrace
from ..pipeline import BACKENDS, EventRecorder, Pipeline, make_executor
from ..pipeline.events import STAGE_FINISHED
from ..serialize import edge_to_obj
from ..sim import SimEnv
from ..systems import get_system
from .runners import bench_config

#: Systems whose agent overhead is sampled (mirrors benchmarks/bench_overhead.py).
OVERHEAD_SYSTEMS = ("minihdfs2", "minihbase", "miniozone")

#: Agent overhead of the pre-interning (seed) trace recorder, measured with
#: this harness's method on the PR-3 dev container — the reference point
#: the "measured reduction" claim in README.md is made against.
SEED_OVERHEAD_PCT: Dict[str, float] = {
    "minihdfs2": 116.9,
    "minihbase": 105.7,
    "miniozone": 267.8,
}


def _campaign_once(
    system: str, config: CSnakeConfig, backend: str, workers: int
) -> Dict[str, Any]:
    """Run one full campaign on one backend; returns timing + digests.

    With ``config.cache_dir`` set, the campaign runs through the shared
    experiment cache and its hit/miss/store counters land in the entry —
    since the serial reference runs first (cold) and every later backend
    reuses the same store (warm), the existing cross-backend digest check
    doubles as a cache-cold ≡ cache-warm parity check.
    """
    recorder = EventRecorder()
    executor = make_executor(
        workers if backend != "serial" else 1, backend, manager_url=config.manager_url
    )
    started = time.perf_counter()
    with executor:
        pipeline = Pipeline.default(
            get_system(system), config, executor=executor, observers=[recorder]
        )
        ctx = pipeline.run()
    wall_s = time.perf_counter() - started
    report = ctx.get("report").to_dict()
    edges = [edge_to_obj(e) for e in ctx.driver.edges.all_edges()]
    digest = hashlib.sha256(
        json.dumps({"report": report, "edges": edges}, sort_keys=True).encode()
    ).hexdigest()
    entry = {
        "backend": backend,
        "workers": workers if backend != "serial" else 1,
        "wall_s": round(wall_s, 4),
        "phases": {
            e.stage: round(e.seconds, 4)
            for e in recorder.events
            if e.kind == STAGE_FINISHED
        },
        "runs_executed": ctx.driver.runs_executed,
        "experiments_run": ctx.driver.experiments_run,
        "edges": len(edges),
        "digest": digest,
    }
    if ctx.driver.cache is not None:
        entry["cache"] = ctx.driver.cache.stats()
    return entry


def _profile_wall_s(spec, test_id: str, enabled: bool) -> float:
    """One profile run with the agent enabled or disabled (§8.5 method)."""
    workload = spec.workloads[test_id]
    seed = _seed_for(test_id, 0, 99)
    runtime = Runtime(spec.registry, trace=RunTrace(test_id=test_id), enabled=enabled)
    env = SimEnv(workload.sim_config, seed=seed)
    runtime.bind_env(env)
    env.runtime = runtime
    started = time.perf_counter()
    workload.setup(env, runtime)
    env.run(workload.duration_ms)
    return time.perf_counter() - started


def measure_agent_overhead(
    systems: Sequence[str] = OVERHEAD_SYSTEMS, rounds: int = 3
) -> Dict[str, Dict[str, float]]:
    """Instrumented-vs-bare wall time per system (best of ``rounds``)."""
    out: Dict[str, Dict[str, float]] = {}
    for system in systems:
        spec = get_system(system)
        tests = spec.workload_ids()
        bare = sum(min(_profile_wall_s(spec, t, False) for _ in range(rounds)) for t in tests)
        inst = sum(min(_profile_wall_s(spec, t, True) for _ in range(rounds)) for t in tests)
        entry = {
            "bare_s": round(bare, 4),
            "instrumented_s": round(inst, 4),
            "overhead_pct": round((inst - bare) / bare * 100.0, 1),
        }
        seed_pct = SEED_OVERHEAD_PCT.get(system)
        if seed_pct is not None:
            entry["seed_overhead_pct"] = seed_pct
        out[system] = entry
    return out


def measure_analysis(system: str) -> Optional[Dict[str, Any]]:
    """Code-slice analysis stats for the benched system: call-graph and
    slicing wall time plus resolved/unresolved site counts.

    Computed on a fresh analysis (not the spec's memoized one) so the
    recorded wall times reflect a cold run.  ``None`` for systems that
    declare no ``source_modules``.
    """
    from ..analysis import analyze_system
    from ..analysis.source import live_sources

    spec = get_system(system)
    if not spec.source_modules:
        return None
    return analyze_system(spec, live_sources(spec.source_modules)).stats()


def _schedule_campaign_section(
    backends: Sequence[str],
    workers: int,
    cache_dir: Optional[str],
    schedules: Optional[Sequence[str]],
    adaptive_budget: bool,
) -> Dict[str, Any]:
    """The composed-schedule benchmark: a reduced miniraft campaign with
    fault schedules (and, by default, adaptive budget) enabled, per
    backend.  Records the same digest/parity bits as the main campaign —
    with a shared ``cache_dir`` the serial reference runs cold and every
    later backend warm, so the parity bits double as the cache-cold ≡
    cache-warm check for scheduled, adaptive campaigns.
    """
    from ..faults import registered_schedules

    names = tuple(schedules) if schedules is not None else tuple(registered_schedules())
    config = CSnakeConfig(
        repeats=2,
        delay_values_ms=(500.0, 8000.0),
        seed=7,
        budget_per_fault=2,
        schedules=names,
        adaptive_budget=adaptive_budget,
    )
    if cache_dir is not None:
        import dataclasses

        config = dataclasses.replace(
            config, cache_dir=os.path.join(cache_dir, "schedules")
        )
    system = "miniraft"
    ordered = ["serial"] + [b for b in backends if b != "serial"]
    results: Dict[str, Any] = {}
    for backend in ordered:
        results[backend] = _campaign_once(system, config, backend, workers)
    reference = results["serial"]
    for entry in results.values():
        entry["speedup_vs_serial"] = round(reference["wall_s"] / entry["wall_s"], 3)
        entry["identical_to_serial"] = entry["digest"] == reference["digest"]
    return {
        "system": system,
        "schedules": list(names),
        "adaptive_budget": adaptive_budget,
        "config": config.to_dict(),
        "backends": results,
    }


def _dfs_campaign_section(
    backends: Sequence[str], workers: int, cache_dir: Optional[str]
) -> Dict[str, Any]:
    """The environment-gated benchmark: a reduced minidfs campaign with
    every fault kind and every composed schedule enabled, per backend.
    minidfs is the target whose ground truth is *entirely* environment-
    gated, so this section tracks the cost of the full fault model on a
    topology with both node and link sites — and its parity bits assert
    serial ≡ thread ≡ process, cache-cold ≡ cache-warm, for it.
    """
    from ..faults import expand_kinds, registered_schedules

    config = CSnakeConfig(
        repeats=2,
        delay_values_ms=(500.0, 8000.0),
        seed=7,
        budget_per_fault=2,
        fault_kinds=expand_kinds("all"),
        schedules=tuple(registered_schedules()),
        adaptive_budget=True,
    )
    if cache_dir is not None:
        import dataclasses

        config = dataclasses.replace(config, cache_dir=os.path.join(cache_dir, "dfs"))
    system = "minidfs"
    ordered = ["serial"] + [b for b in backends if b != "serial"]
    results: Dict[str, Any] = {}
    for backend in ordered:
        results[backend] = _campaign_once(system, config, backend, workers)
    reference = results["serial"]
    for entry in results.values():
        entry["speedup_vs_serial"] = round(reference["wall_s"] / entry["wall_s"], 3)
        entry["identical_to_serial"] = entry["digest"] == reference["digest"]
    return {
        "system": system,
        "config": config.to_dict(),
        "backends": results,
    }


def _remote_campaign_section(workers: int) -> Dict[str, Any]:
    """Campaign-as-a-service benchmark (docs/service.md): one reduced toy
    campaign through a live in-process manager (stdlib HTTP server) and
    two agent threads, against its serial reference.

    Records the remote campaign's submit-to-commit wall time (every
    experiment crosses the wire: submit → lease → execute → complete →
    ordered commit), per-agent task throughput, and the manager's
    queue-wait statistics.  The digest parity bit rides the same
    ``identical_to_serial`` convention as every other section, so
    :func:`check_regression` gates remote ≡ serial too.
    """
    import dataclasses
    import threading

    from ..service.agent import Agent
    from ..service.http import HttpTransport, ManagerServer

    config = CSnakeConfig(
        repeats=2, delay_values_ms=(500.0, 8000.0), seed=7, budget_per_fault=2
    )
    system = "toy"
    results: Dict[str, Any] = {"serial": _campaign_once(system, config, "serial", 1)}
    agent_workers = max(1, workers // 2)
    with ManagerServer(port=0) as server:
        agents = []
        threads = []
        for index in range(2):
            agent = Agent(
                HttpTransport(server.url),
                workers=agent_workers,
                name="bench-%d" % index,
            )
            thread = threading.Thread(
                target=agent.run, kwargs={"idle_exit_s": 60.0}, daemon=True
            )
            thread.start()
            agents.append(agent)
            threads.append(thread)
        try:
            remote_config = dataclasses.replace(
                config, experiment_backend="remote", manager_url=server.url
            )
            results["remote"] = _campaign_once(system, remote_config, "remote", workers)
        finally:
            for agent in agents:
                agent.stop()
            for thread in threads:
                thread.join(timeout=10.0)
        stats = server.core.stats()
    reference = results["serial"]
    for entry in results.values():
        entry["speedup_vs_serial"] = round(reference["wall_s"] / entry["wall_s"], 3)
        entry["identical_to_serial"] = entry["digest"] == reference["digest"]
    wall_s = results["remote"]["wall_s"]
    return {
        "system": system,
        "config": config.to_dict(),
        "backends": results,
        "submit_to_commit_wall_s": wall_s,
        "agents": [
            {
                "name": a["name"],
                "workers": a["workers"],
                "tasks_completed": a["completed"],
                "tasks_per_s": round(a["completed"] / wall_s, 3) if wall_s else 0.0,
            }
            for a in stats["agents"]
        ],
        "tasks": stats["tasks"],
        "queue_wait_s": stats["queue_wait_s"],
    }


def bench_campaign(
    system: Optional[str] = None,
    workers: Optional[int] = None,
    backends: Sequence[str] = BACKENDS,
    smoke: bool = False,
    overhead: bool = True,
    cache_dir: Optional[str] = None,
    fault_kinds: Optional[Sequence[str]] = None,
    sweep_overrides: Optional[Sequence] = None,
    schedules: Optional[Sequence[str]] = None,
    adaptive_budget: bool = True,
    profile: bool = False,
) -> Dict[str, Any]:
    """Benchmark one system's campaign across executor backends.

    ``smoke`` switches to a reduced configuration (and, with no explicit
    ``system``, to the toy system) — seconds instead of minutes, for CI.
    The serial backend is always run first as the reference; per-backend
    speedups and report parity are computed against it.  With
    ``cache_dir`` the backends share one experiment cache: serial runs
    cold, every later backend runs warm, and the parity check then also
    asserts cache-warm ≡ cache-cold.

    ``profile`` appends one *extra* serial campaign with every stage under
    cProfile (top-N cumulative functions + collapsed flamegraph stacks per
    phase, :mod:`repro.bench.profiling`).  The timed entries above are
    never the instrumented ones, so the regression gate stays honest.
    """
    if smoke:
        system = system or "toy"
        config = CSnakeConfig(
            repeats=2, delay_values_ms=(500.0, 8000.0), seed=7, budget_per_fault=2
        )
    else:
        system = system or "minihdfs2"
        config = bench_config(system)
    if fault_kinds is not None or sweep_overrides is not None:
        import dataclasses

        overrides: Dict[str, Any] = {}
        if fault_kinds is not None:
            overrides["fault_kinds"] = tuple(fault_kinds)
        if sweep_overrides is not None:
            overrides["sweep_overrides"] = tuple(sweep_overrides)
        config = dataclasses.replace(config, **overrides)
    if cache_dir is not None:
        import dataclasses
        from pathlib import Path

        from ..errors import ReproError

        # The serial reference must run cold — its wall time anchors the
        # speedup columns and the --check regression gate.  A pre-populated
        # store would warm it silently and void both numbers.
        root = Path(cache_dir)
        if root.exists() and any(root.glob("*/*.json")):
            raise ReproError(
                "bench needs a fresh cache dir (the serial reference must "
                "run cold), but %s already holds entries" % cache_dir
            )
        config = dataclasses.replace(config, cache_dir=cache_dir)
    if workers is None:
        workers = os.cpu_count() or 1
    ordered = ["serial"] + [b for b in backends if b != "serial"]
    results: Dict[str, Any] = {}
    for backend in ordered:
        results[backend] = _campaign_once(system, config, backend, workers)
    reference = results["serial"]
    for backend, entry in results.items():
        entry["speedup_vs_serial"] = round(reference["wall_s"] / entry["wall_s"], 3)
        entry["identical_to_serial"] = entry["digest"] == reference["digest"]
    out: Dict[str, Any] = {
        "schema": 1,
        "kind": "smoke" if smoke else "full",
        "created_unix": int(time.time()),
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "system": system,
        "workers": workers,
        "config": config.to_dict(),
        "backends": results,
        "analysis": measure_analysis(system),
        "schedule_campaign": _schedule_campaign_section(
            backends, workers, cache_dir, schedules, adaptive_budget
        ),
        "dfs_campaign": _dfs_campaign_section(backends, workers, cache_dir),
        "remote_campaign": _remote_campaign_section(workers),
    }
    if overhead:
        out["agent_overhead"] = measure_agent_overhead(
            OVERHEAD_SYSTEMS if not smoke else OVERHEAD_SYSTEMS[:1]
        )
    if profile:
        import dataclasses

        from .profiling import profile_campaign

        # Profile the real computation: with a cache_dir the serial timed
        # run above already warmed the store and allocate would replay.
        out["profile"] = profile_campaign(
            system, dataclasses.replace(config, cache_dir=None)
        )
    return out


def write_bench_json(result: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=1, sort_keys=True)
        fh.write("\n")


#: Serial phases gated individually by :func:`check_regression` — the two
#: (former) hot phases this repo's perf work targets.  Gating them
#: separately keeps a regression in one from hiding inside the total.
GATED_PHASES: Tuple[str, ...] = ("allocate", "search")

#: Phase times are gated against ``max(baseline * factor, floor)``: smoke
#: phases run in fractions of a millisecond, where a pure-ratio gate would
#: flake on timer noise.
PHASE_GATE_FLOOR_S = 0.25


def check_regression(
    result: Dict[str, Any], baseline_path: str, max_factor: float = 2.0
) -> List[str]:
    """Compare a bench result against a checked-in baseline.

    Returns a list of human-readable failures (empty = pass).  Only the
    serial backend's wall time is gated — total and per-phase for the
    :data:`GATED_PHASES` — since thread/process times depend on the
    runner's core count; plus the cross-backend parity bits, which must
    hold on any machine.
    """
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures: List[str] = []
    base_wall = baseline["backends"]["serial"]["wall_s"]
    cur_wall = result["backends"]["serial"]["wall_s"]
    if cur_wall > base_wall * max_factor:
        failures.append(
            "serial campaign regressed: %.3fs vs baseline %.3fs (> %.1fx)"
            % (cur_wall, base_wall, max_factor)
        )
    base_phases = baseline["backends"]["serial"].get("phases", {})
    cur_phases = result["backends"]["serial"].get("phases", {})
    for phase in GATED_PHASES:
        base_s = base_phases.get(phase)
        cur_s = cur_phases.get(phase)
        if base_s is None or cur_s is None:
            continue
        limit = max(base_s * max_factor, PHASE_GATE_FLOOR_S)
        if cur_s > limit:
            failures.append(
                "serial %s phase regressed: %.3fs vs baseline %.3fs (limit %.3fs)"
                % (phase, cur_s, base_s, limit)
            )
    for backend, entry in result["backends"].items():
        if not entry.get("identical_to_serial", True):
            failures.append("backend %r diverged from the serial reference" % backend)
    for section, label in (
        ("schedule_campaign", "schedule campaign"),
        ("dfs_campaign", "dfs campaign"),
        ("remote_campaign", "remote campaign"),
    ):
        extra = result.get(section) or {}
        for backend, entry in extra.get("backends", {}).items():
            if not entry.get("identical_to_serial", True):
                failures.append(
                    "%s backend %r diverged from the serial reference"
                    % (label, backend)
                )
    return failures
