"""Per-phase cProfile instrumentation for ``repro bench --profile``.

Wraps every pipeline stage in its own :class:`cProfile.Profile` and
condenses each stage's stats into two views:

* ``top`` — the top-N functions by cumulative time, the "every saved
  second must be named by a function" table printed by the CLI and
  recorded in ``BENCH_campaign.json``;
* ``collapsed`` — folded call stacks in the standard ``a;b;c <value>``
  flamegraph format (values in integer microseconds), reconstructed from
  the profiler's caller tables: each function's own time is apportioned
  to the call paths reaching it, pro rata to per-edge cumulative time.
  The reconstruction is approximate where the call graph merges — exact
  per-path attribution would need tracing, which is precisely the
  overhead this keeps out of the timed benchmark runs.

The profiled campaign is an *extra* serial run: profiling inflates wall
times (typically 1.3-2x), so the timed entries that feed the regression
gate are never the instrumented ones.
"""

from __future__ import annotations

import cProfile
import os
import pstats
from typing import Any, Dict, List, Tuple

from ..config import CSnakeConfig
from ..pipeline import Pipeline, make_executor
from ..pipeline.stage import Stage
from ..pipeline.stages import default_stages
from ..systems import get_system

#: Functions reported per phase in the ``top`` table.
DEFAULT_TOP_N = 15

#: Folded stacks kept per phase (largest first) and maximum stack depth.
MAX_COLLAPSED_LINES = 200
MAX_STACK_DEPTH = 48


class _ProfiledStage(Stage):
    """Delegates one wrapped stage, recording its ``run`` under cProfile."""

    def __init__(self, inner: Stage, sink: Dict[str, pstats.Stats]) -> None:
        self.inner = inner
        self.sink = sink
        self.name = inner.name
        self.requires = inner.requires
        self.uses = inner.uses
        self.provides = inner.provides

    def run(self, ctx) -> None:
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            self.inner.run(ctx)
        finally:
            profiler.disable()
        self.sink[self.name] = pstats.Stats(profiler)

    def hydrate(self, ctx, artifacts) -> None:
        self.inner.hydrate(ctx, artifacts)


def _func_label(func: Tuple[str, int, str]) -> str:
    """``file:line:name`` with the path shortened to its basename."""
    filename, line, name = func
    if filename.startswith("~"):  # built-ins have no file
        return name
    return "%s:%d:%s" % (os.path.basename(filename), line, name)


def _top_functions(stats: pstats.Stats, top_n: int) -> List[Dict[str, Any]]:
    entries = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: (-item[1][3], _func_label(item[0])),
    )
    out = []
    for func, (cc, nc, tt, ct, _callers) in entries[:top_n]:
        out.append(
            {
                "function": _func_label(func),
                "ncalls": nc,
                "tottime_s": round(tt, 4),
                "cumtime_s": round(ct, 4),
            }
        )
    return out


def _collapsed_stacks(stats: pstats.Stats) -> List[str]:
    """Folded flamegraph lines from the profiler's caller tables."""
    entries: Dict[Tuple, Tuple] = stats.stats  # type: ignore[attr-defined]
    children: Dict[Tuple, List[Tuple[Tuple, float]]] = {}
    roots: List[Tuple] = []
    for func, (_cc, _nc, _tt, _ct, callers) in entries.items():
        if not callers:
            roots.append(func)
        for parent, edge in callers.items():
            # edge = (cc, nc, tt, ct) attributed to calls from ``parent``.
            children.setdefault(parent, []).append((func, edge[3]))
    lines: List[Tuple[str, int]] = []

    def walk(func: Tuple, path: Tuple[str, ...], on_path: frozenset, budget: float) -> None:
        total_ct = entries[func][3]
        frac = budget / total_ct if total_ct > 0 else 0.0
        stack = path + (_func_label(func),)
        own_us = int(round(entries[func][2] * frac * 1e6))
        if own_us > 0:
            lines.append((";".join(stack), own_us))
        if len(stack) >= MAX_STACK_DEPTH:
            return
        for child, edge_ct in sorted(
            children.get(func, ()), key=lambda item: _func_label(item[0])
        ):
            if child in on_path:  # recursion: attribute to the first visit
                continue
            walk(child, stack, on_path | {child}, edge_ct * frac)

    for root in sorted(roots, key=_func_label):
        walk(root, (), frozenset({root}), entries[root][3])
    lines.sort(key=lambda item: (-item[1], item[0]))
    return ["%s %d" % line for line in lines[:MAX_COLLAPSED_LINES]]


def profile_campaign(
    system: str, config: CSnakeConfig, top_n: int = DEFAULT_TOP_N
) -> Dict[str, Any]:
    """One serial campaign with every stage under cProfile.

    Returns ``{phase: {"top": [...], "collapsed": [...]}}`` plus a
    ``wall_s`` entry per phase (the *instrumented* wall time — compare
    shapes, not absolute seconds, against the timed entries).
    """
    sink: Dict[str, pstats.Stats] = {}
    stages = [_ProfiledStage(stage, sink) for stage in default_stages()]
    with make_executor(1, "serial") as executor:
        Pipeline(get_system(system), config, stages=stages, executor=executor).run()
    out: Dict[str, Any] = {}
    for phase, stats in sink.items():
        out[phase] = {
            "wall_s": round(stats.total_tt, 4),  # type: ignore[attr-defined]
            "top": _top_functions(stats, top_n),
            "collapsed": _collapsed_stacks(stats),
        }
    return out
