"""Campaign runners shared by the benchmark suite.

A *campaign* is one full CSnake evaluation of one system: static analysis,
profile runs, 3PA-allocated fault injection, FCA, beam search, cycle
clustering, and ground-truth matching.  Campaigns run through the staged
:class:`repro.pipeline.Pipeline` (via the ``CSnake`` wrapper), so the
benchmarks exercise exactly the code path of ``repro run`` — including
parallel experiment fan-out when ``parallel > 1``.  The benchmark files
regenerate the paper's tables from campaign results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import FAST_DELAY_VALUES_MS, CSnakeConfig
from ..core.beam import BeamSearch
from ..core.detector import CSnake
from ..core.driver import ExperimentDriver
from ..core.report import DetectionReport, build_report
from ..baselines.random_alloc import RandomAllocator
from ..instrument.analyzer import analyze
from ..systems import get_system
from ..types import CausalEdge

#: Per-system budget multiplier.  The paper uses 4 x |F| against thousands
#: of tests; our suites have 7-16 tests per system, so the multiplier is
#: scaled to reach a comparable fraction of the (fault, reaching-test)
#: space (documented in DESIGN.md).
BUDGET_PER_FAULT: Dict[str, int] = {
    "toy": 4,
    "minihdfs2": 10,
    "minihdfs3": 12,
    "minihbase": 8,
    "miniflink": 8,
    "miniozone": 8,
}


def bench_config(system: str, **overrides: object) -> CSnakeConfig:
    """The evaluation configuration: 3 repetitions and a 3-point delay sweep
    keep the campaign tractable; everything else is the paper default."""
    params = dict(
        repeats=3,
        delay_values_ms=FAST_DELAY_VALUES_MS,
        seed=7,
        budget_per_fault=BUDGET_PER_FAULT.get(system, 8),
        beam_width=30_000,
        max_chain_len=5,
    )
    params.update(overrides)
    return CSnakeConfig(**params)


@dataclass
class CampaignResult:
    system: str
    report: DetectionReport
    detector: CSnake
    wall_time_s: float = 0.0

    @property
    def edges(self) -> List[CausalEdge]:
        return self.detector.driver.edges.all_edges()

    def detection_phase(self, bug_id: str) -> Optional[int]:
        """3PA phase after which all of the bug's cycle edges were known
        (Table 3's "Alloc." column)."""
        self.detector.spec.bug(bug_id)  # raises KeyError on unknown ids
        match = next(m for m in self.report.bug_matches if m.bug.bug_id == bug_id)
        if not match.detected:
            return None
        cycle = match.best_cycle
        needed = {e.key() for e in cycle.edges}
        discovered: Dict[Tuple, int] = {}
        for record in self.detector.allocation.records:
            for edge in record.result.edges:
                discovered.setdefault(edge.key(), record.phase)
        phases = [discovered.get(k) for k in needed]
        if any(p is None for p in phases):
            return 3  # closed only by the full edge set
        return max(1, max(phases))


def run_campaign(
    system: str,
    config: Optional[CSnakeConfig] = None,
    parallel: Optional[int] = None,
) -> CampaignResult:
    """One full CSnake evaluation of one system, through the pipeline.

    ``parallel`` overrides ``config.experiment_workers``; parallel and
    serial campaigns produce identical results (the pipeline commits
    experiment results in schedule order).
    """
    import dataclasses
    import time

    t0 = time.perf_counter()
    spec = get_system(system)
    cfg = config or bench_config(system)
    if parallel is not None:
        cfg = dataclasses.replace(cfg, experiment_workers=parallel)
    detector = CSnake(spec, cfg)
    report = detector.run()
    return CampaignResult(
        system=system, report=report, detector=detector,
        wall_time_s=time.perf_counter() - t0,
    )


def run_random_campaign(system: str, config: Optional[CSnakeConfig] = None) -> DetectionReport:
    """Same budget, random allocation (Table 3's "Rnd.?" column)."""
    spec = get_system(system)
    cfg = config or bench_config(system)
    driver = ExperimentDriver(spec, cfg)
    faults = analyze(spec.registry).faults
    driver.profile_all()
    allocator = RandomAllocator(driver, faults, cfg)
    outcome = allocator.run()
    beam = BeamSearch(cfg, {})
    result = beam.search(driver.edges.all_edges())
    return build_report(
        spec, result.cycles, None,
        n_faults=len(faults), budget_used=outcome.budget_used,
        runs_executed=driver.runs_executed, n_edges=len(driver.edges),
    )


def table3_rows(campaign: CampaignResult) -> List[List[object]]:
    """Rows of the Table 3 reproduction for one system."""
    rows: List[List[object]] = []
    for match in campaign.report.bug_matches:
        bug = match.bug
        if match.detected:
            cycle = match.best_cycle
            sig = cycle.signature()
            tests = len(cycle.tests())
            phase = campaign.detection_phase(bug.bug_id)
        else:
            sig, tests, phase = "-", 0, None
        rows.append(
            [
                bug.bug_id,
                "yes" if match.detected else "NO",
                bug.signature,
                sig,
                phase if phase is not None else "-",
                tests,
                bug.jira,
            ]
        )
    return rows


def table4_row(campaign: CampaignResult) -> Tuple[List[object], List[object]]:
    """(unlimited, <=1 delay) Table 4 numbers for one system."""
    unlimited = campaign.report
    cfg_capped = bench_config(campaign.system, max_delay_faults=1)
    beam = BeamSearch(cfg_capped, campaign.detector.allocation.fault_scores)
    capped_cycles = beam.search(campaign.edges).cycles
    capped = build_report(
        campaign.detector.spec, capped_cycles, campaign.detector.allocation.clustering
    )

    def nums(report: DetectionReport) -> List[object]:
        return [
            len(report.cycles),
            len(report.cycle_clusters),
            len(report.true_positive_clusters()),
            len(report.detected_bugs),
        ]

    return nums(unlimited), nums(capped)
