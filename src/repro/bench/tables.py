"""Plain-text table formatting for benchmark output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table (paper-style output for the harness)."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([str(c) for c in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        line = "  ".join(c.ljust(w) for c, w in zip(row, widths))
        lines.append(line.rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
