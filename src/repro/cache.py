"""Content-addressed experiment cache: skip re-executing what cannot change.

Every profile run group and every (fault, test) injection experiment is a
pure function of *(system structure, test id, injection plans,
result-affecting config, seeds)* — the determinism guarantee the executor
backends already rely on.  The cache turns that purity into incremental
campaigns: results are stored on disk under a SHA-256 **key digest** of
exactly that tuple, so a repeated campaign replays byte-identical results
instead of re-simulating, and *any* relevant change — a site added to the
registry, a workload renamed, a bumped ``SystemSpec.version``, a different
seed or delay sweep — changes the digest and misses cleanly.  Knobs listed
in :data:`repro.config.EXECUTION_ONLY_KNOBS` (backends, worker counts, the
cache directory itself) are excluded from the key, so a warm cache written
by a serial campaign serves thread- and process-backed ones.

Layout (all writes atomic, safe for concurrent worker processes)::

    <cache-dir>/
        <digest[:2]>/<digest>.json   # {"schema": N, "kind": ..., "key": ..., "data": ...}

Entries embed the full key material for debuggability; unreadable or
mismatching entries are treated as misses.  Hit/miss/store counters are
kept per :class:`ExperimentCache` instance and surfaced by the CLI and by
``repro bench`` JSON.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from .config import EXECUTION_ONLY_KNOBS, CSnakeConfig
from .core.fca import FcaResult
from .faults import fault_models_digest, model_for, schedules_digest
from .instrument.plan import InjectionPlan
from .instrument.trace import RunGroup
from .serialize import (
    atomic_write_json,
    fault_to_obj,
    fca_from_obj,
    fca_to_obj,
    group_from_obj,
    group_to_obj,
    plan_to_obj,
)
from .systems.base import SystemSpec
from .types import FaultKey

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from .analysis import SliceAnalysis

#: Bump when the entry layout or any codec changes incompatibly; old
#: entries then read as misses instead of corrupt results.
#:
#: Schema history:
#:   1 — PR 4 layout (closed three-kind fault taxonomy).
#:   2 — pluggable fault models: plan payloads grew a ``params`` codec,
#:       ``SystemSpec.digest`` covers environment sites, and every key
#:       embeds the fault-model registry digest.
#:   3 — per-site code-slice keying (``repro.analysis``): experiment keys
#:       embed the injected site's slice digest, profile keys the test's
#:       entry-point slice digest, and the whole-spec digest moved into
#:       the *fallback* component used only when the slicer could not
#:       resolve the site (``slice_unresolved``) or the system declares
#:       no ``source_modules``.  Editing one handler now invalidates
#:       exactly the entries whose slice can reach it.
#:   4 — compositional fault schedules: every key embeds the schedule
#:       registry digest, and an experiment key's slice component is the
#:       *union* of the slices of every site its plans touch
#:       (``FaultModel.plan_sites``) — a composed schedule's entry goes
#:       stale when any of its constituent sites' code changes, not just
#:       the anchor site's.
CACHE_SCHEMA = 4


def result_affecting_config(config: CSnakeConfig) -> Dict[str, Any]:
    """The config snapshot experiment keys embed.

    Everything except :data:`~repro.config.EXECUTION_ONLY_KNOBS`: those
    provably cannot change results, and excluding them is what lets one
    cache serve serial, thread, and process campaigns interchangeably.
    """
    out = config.to_dict()
    for knob in EXECUTION_ONLY_KNOBS:
        out.pop(knob, None)
    return out


class ExperimentCache:
    """On-disk, content-addressed store of campaign intermediate results.

    One instance serves one ``(system, config)`` campaign: the spec digest
    and the result-affecting config snapshot are folded into every key at
    construction.  ``hits``/``misses``/``stores`` count this instance's
    lookups only.
    """

    def __init__(self, root: "os.PathLike[str]", spec: SystemSpec, config: CSnakeConfig) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.spec = spec
        self.system = spec.name
        self.spec_digest = spec.digest()
        self.sites_digest = spec.sites_digest()
        self.models_digest = fault_models_digest()
        self.schedules_digest = schedules_digest()
        self.config_snapshot = result_affecting_config(config)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ---------------------------------------------------------------- keys

    def _slices(self) -> Optional["SliceAnalysis"]:
        """The spec's code-slice analysis (lazy: worker processes rebuild
        the cache from a pickled task, and the analysis is a deterministic
        function of the source files, so they re-derive identical keys)."""
        return self.spec.slice_analysis()

    def _site_slice(self, site_id: str) -> Dict[str, Any]:
        """Slice component of an experiment key: the injected site's slice
        digest, or — when the slicer could not bind the site to code, or
        the system declares no source modules — the whole-spec digest
        with an explicit fallback reason."""
        slices = self._slices()
        if slices is None:
            return {"digest": None, "reason": "no_source_analysis", "spec": self.spec_digest}
        digest = slices.site_digests.get(site_id)
        if digest is None:
            return {"digest": None, "reason": "slice_unresolved", "spec": self.spec_digest}
        return {"digest": digest}

    def _entry_slice(self, test_id: str) -> Dict[str, Any]:
        """Slice component of a profile key: the closure from the test's
        workload entry point."""
        slices = self._slices()
        if slices is None:
            return {"digest": None, "reason": "no_source_analysis", "spec": self.spec_digest}
        digest = slices.entry_digests.get(test_id)
        if digest is None:
            return {"digest": None, "reason": "slice_unresolved", "spec": self.spec_digest}
        return {"digest": digest}

    def _digest(self, kind: str, payload: Dict[str, Any], *, test_id: str) -> str:
        material = {
            "schema": CACHE_SCHEMA,
            "kind": kind,
            "system": self.system,
            # All site rows (ids, kinds, metadata) — traces record every
            # registered site and loop parent/sibling rows feed the FCA
            # edge derivation, so results may depend on any of them.
            "sites": self.sites_digest,
            # This test's declared duration and sim config; *other*
            # workloads cannot affect this entry and are not keyed.
            "workload": self.spec.workload_row(test_id),
            # Registry fingerprints: registering or revising a fault model
            # or a fault schedule shifts every key, so results computed
            # under a different fault vocabulary can never replay as hits.
            "fault_models": self.models_digest,
            "schedules": self.schedules_digest,
            "config": self.config_snapshot,
        }
        material.update(payload)
        blob = json.dumps(material, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def profile_key(self, test_id: str) -> str:
        """Key of the fault-free profile run group of ``test_id``."""
        return self._digest(
            "profile",
            {"test_id": test_id, "slice": self._entry_slice(test_id)},
            test_id=test_id,
        )

    def experiment_key(
        self, test_id: str, fault: FaultKey, plans: List[InjectionPlan]
    ) -> str:
        """Key of one (fault, test) injection experiment (its full plan
        sweep counts as one entry, mirroring one budget unit)."""
        model = model_for(fault.kind)
        touched = sorted({site for p in plans for site in model.plan_sites(p)})
        return self._digest(
            "experiment",
            {
                "test_id": test_id,
                "fault": fault_to_obj(fault),
                "plans": [plan_to_obj(p) for p in plans],
                # Slice union over every site the plans touch: one entry
                # per site so any constituent's code change misses.
                "slices": [[site, self._site_slice(site)] for site in touched],
            },
            test_id=test_id,
        )

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / (key + ".json")

    # -------------------------------------------------------------- lookup

    def _load(self, key: str, kind: str) -> Optional[Any]:
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("schema") != CACHE_SCHEMA or payload.get("kind") != kind:
            self.misses += 1
            return None
        self.hits += 1
        return payload["data"]

    def _store(self, key: str, kind: str, key_material: Dict[str, Any], data: Any) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # unique_tmp: worker processes racing on one entry write identical
        # bytes, but must not share a temp-file name while doing so.
        atomic_write_json(
            path,
            {
                "schema": CACHE_SCHEMA,
                "kind": kind,
                "system": self.system,
                "spec": self.spec_digest,
                "key": key_material,
                "data": data,
            },
            unique_tmp=True,
        )
        self.stores += 1

    def lookup_profile(self, key: str) -> Optional[RunGroup]:
        data = self._load(key, "profile")
        if data is None:
            return None
        try:
            return group_from_obj(data)
        except (KeyError, TypeError, ValueError):
            self.hits -= 1  # corrupt entry: count it as the miss it is
            self.misses += 1
            return None

    def store_profile(self, key: str, test_id: str, group: RunGroup) -> None:
        self._store(key, "profile", {"test_id": test_id}, group_to_obj(group))

    def lookup_experiment(self, key: str) -> Optional[Tuple[FcaResult, int]]:
        data = self._load(key, "experiment")
        if data is None:
            return None
        try:
            return fca_from_obj(data["result"]), int(data["runs"])
        except (KeyError, TypeError, ValueError):
            self.hits -= 1
            self.misses += 1
            return None

    def store_experiment(
        self, key: str, test_id: str, fault: FaultKey, result: FcaResult, runs: int
    ) -> None:
        self._store(
            key,
            "experiment",
            {"test_id": test_id, "fault": fault_to_obj(fault)},
            {"result": fca_to_obj(result), "runs": runs},
        )

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        """Number of entries on disk (walks the store; for tests/tools)."""
        return sum(1 for _ in self.root.glob("*/*.json"))

    def stats(self) -> Dict[str, Any]:
        return {
            "dir": str(self.root),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }
