"""Content-addressed experiment cache: skip re-executing what cannot change.

Every profile run group and every (fault, test) injection experiment is a
pure function of *(system structure, test id, injection plans,
result-affecting config, seeds)* — the determinism guarantee the executor
backends already rely on.  The cache turns that purity into incremental
campaigns: results are stored on disk under a SHA-256 **key digest** of
exactly that tuple, so a repeated campaign replays byte-identical results
instead of re-simulating, and *any* relevant change — a site added to the
registry, a workload renamed, a bumped ``SystemSpec.version``, a different
seed or delay sweep — changes the digest and misses cleanly.  Knobs listed
in :data:`repro.config.EXECUTION_ONLY_KNOBS` (backends, worker counts, the
cache directory itself) are excluded from the key, so a warm cache written
by a serial campaign serves thread- and process-backed ones.

Layout (all writes atomic, safe for concurrent worker processes)::

    <cache-dir>/
        <digest[:2]>/<digest>.json   # {"schema": 1, "kind": ..., "key": ..., "data": ...}

Entries embed the full key material for debuggability; unreadable or
mismatching entries are treated as misses.  Hit/miss/store counters are
kept per :class:`ExperimentCache` instance and surfaced by the CLI and by
``repro bench`` JSON.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .config import EXECUTION_ONLY_KNOBS, CSnakeConfig
from .core.fca import FcaResult
from .faults import fault_models_digest
from .instrument.plan import InjectionPlan
from .instrument.trace import RunGroup
from .serialize import (
    atomic_write_json,
    fault_to_obj,
    fca_from_obj,
    fca_to_obj,
    group_from_obj,
    group_to_obj,
    plan_to_obj,
)
from .systems.base import SystemSpec
from .types import FaultKey

#: Bump when the entry layout or any codec changes incompatibly; old
#: entries then read as misses instead of corrupt results.
#:
#: Schema history:
#:   1 — PR 4 layout (closed three-kind fault taxonomy).
#:   2 — pluggable fault models: plan payloads grew a ``params`` codec,
#:       ``SystemSpec.digest`` covers environment sites, and every key
#:       embeds the fault-model registry digest.
CACHE_SCHEMA = 2


def result_affecting_config(config: CSnakeConfig) -> Dict[str, Any]:
    """The config snapshot experiment keys embed.

    Everything except :data:`~repro.config.EXECUTION_ONLY_KNOBS`: those
    provably cannot change results, and excluding them is what lets one
    cache serve serial, thread, and process campaigns interchangeably.
    """
    out = config.to_dict()
    for knob in EXECUTION_ONLY_KNOBS:
        out.pop(knob, None)
    return out


class ExperimentCache:
    """On-disk, content-addressed store of campaign intermediate results.

    One instance serves one ``(system, config)`` campaign: the spec digest
    and the result-affecting config snapshot are folded into every key at
    construction.  ``hits``/``misses``/``stores`` count this instance's
    lookups only.
    """

    def __init__(self, root: "os.PathLike[str]", spec: SystemSpec, config: CSnakeConfig) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.system = spec.name
        self.spec_digest = spec.digest()
        self.models_digest = fault_models_digest()
        self.config_snapshot = result_affecting_config(config)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ---------------------------------------------------------------- keys

    def _digest(self, kind: str, payload: Dict[str, Any]) -> str:
        material = {
            "schema": CACHE_SCHEMA,
            "kind": kind,
            "system": self.system,
            "spec": self.spec_digest,
            # Registry fingerprint: registering or revising a fault model
            # shifts every key, so results computed under a different
            # fault vocabulary can never replay as hits.
            "fault_models": self.models_digest,
            "config": self.config_snapshot,
        }
        material.update(payload)
        blob = json.dumps(material, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def profile_key(self, test_id: str) -> str:
        """Key of the fault-free profile run group of ``test_id``."""
        return self._digest("profile", {"test_id": test_id})

    def experiment_key(
        self, test_id: str, fault: FaultKey, plans: List[InjectionPlan]
    ) -> str:
        """Key of one (fault, test) injection experiment (its full plan
        sweep counts as one entry, mirroring one budget unit)."""
        return self._digest(
            "experiment",
            {
                "test_id": test_id,
                "fault": fault_to_obj(fault),
                "plans": [plan_to_obj(p) for p in plans],
            },
        )

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / (key + ".json")

    # -------------------------------------------------------------- lookup

    def _load(self, key: str, kind: str) -> Optional[Any]:
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("schema") != CACHE_SCHEMA or payload.get("kind") != kind:
            self.misses += 1
            return None
        self.hits += 1
        return payload["data"]

    def _store(self, key: str, kind: str, key_material: Dict[str, Any], data: Any) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # unique_tmp: worker processes racing on one entry write identical
        # bytes, but must not share a temp-file name while doing so.
        atomic_write_json(
            path,
            {
                "schema": CACHE_SCHEMA,
                "kind": kind,
                "system": self.system,
                "spec": self.spec_digest,
                "key": key_material,
                "data": data,
            },
            unique_tmp=True,
        )
        self.stores += 1

    def lookup_profile(self, key: str) -> Optional[RunGroup]:
        data = self._load(key, "profile")
        if data is None:
            return None
        try:
            return group_from_obj(data)
        except (KeyError, TypeError, ValueError):
            self.hits -= 1  # corrupt entry: count it as the miss it is
            self.misses += 1
            return None

    def store_profile(self, key: str, test_id: str, group: RunGroup) -> None:
        self._store(key, "profile", {"test_id": test_id}, group_to_obj(group))

    def lookup_experiment(self, key: str) -> Optional[Tuple[FcaResult, int]]:
        data = self._load(key, "experiment")
        if data is None:
            return None
        try:
            return fca_from_obj(data["result"]), int(data["runs"])
        except (KeyError, TypeError, ValueError):
            self.hits -= 1
            self.misses += 1
            return None

    def store_experiment(
        self, key: str, test_id: str, fault: FaultKey, result: FcaResult, runs: int
    ) -> None:
        self._store(
            key,
            "experiment",
            {"test_id": test_id, "fault": fault_to_obj(fault)},
            {"result": fca_to_obj(result), "runs": runs},
        )

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        """Number of entries on disk (walks the store; for tests/tools)."""
        return sum(1 for _ in self.root.glob("*/*.json"))

    def stats(self) -> Dict[str, Any]:
        return {
            "dir": str(self.root),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }
