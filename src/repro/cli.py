"""Command-line interface: run the CSnake pipeline against a bundled system.

Examples::

    python -m repro.cli list
    python -m repro.cli run toy
    python -m repro.cli run toy --backend process --workers 4 --out report.json
    python -m repro.cli run minihdfs2 --budget 10 --seed 7 --stages analyze,profile
    python -m repro.cli run miniraft --cache-dir /tmp/raft-cache
    python -m repro.cli resume /tmp/s --backend thread --workers 2
    python -m repro.cli inject minihbase hm.assign.rpc:exception hbase.rs_fault_tolerance
    python -m repro.cli bench --smoke --out BENCH_campaign.json

See docs/cli.md for the full flag-by-flag reference.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import List, Optional

from .config import CSnakeConfig
from .core.driver import ExperimentDriver
from .core.report import DetectionReport
from .errors import ReproError
from .faults import (
    all_models,
    all_schedules,
    expand_kinds,
    expand_schedules,
    registered_kinds,
    registered_schedules,
    schedule_model_for,
)
from .pipeline import (
    BACKENDS,
    STAGE_NAMES,
    Pipeline,
    ProgressPrinter,
    Session,
    default_stages,
)
from .systems import available_systems, get_system
from .types import FaultKey, InjKind


def _parse_fault(text: str) -> FaultKey:
    try:
        site, kind = text.rsplit(":", 1)
        return FaultKey(site, InjKind(kind))
    except ValueError:
        raise SystemExit(
            "fault must look like '<site>:<kind>' with kind one of %s, got %r"
            % ("|".join(registered_kinds()), text)
        )


def _parse_delays(text: str) -> tuple:
    try:
        values = tuple(float(v) for v in text.split(",") if v.strip())
    except ValueError:
        raise SystemExit("--delays must be comma-separated milliseconds, got %r" % text)
    if not values:
        raise SystemExit("--delays needs at least one value")
    return values


def _parse_fault_kinds(text: str) -> tuple:
    try:
        return expand_kinds(text)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _parse_schedules(text: str) -> tuple:
    try:
        return expand_schedules(text)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _parse_sweeps(entries: List[str]) -> tuple:
    """``--sweep KIND=V1,V2,...`` entries -> config ``sweep_overrides``."""
    overrides = []
    known = registered_kinds() + registered_schedules()
    for entry in entries:
        kind, eq, values = entry.partition("=")
        kind = kind.strip()
        if not eq or kind not in known:
            raise SystemExit(
                "--sweep must look like '<kind>=V1,V2,...' with kind one of %s, got %r"
                % (", ".join(known), entry)
            )
        try:
            parsed = tuple(float(v) for v in values.split(",") if v.strip())
        except ValueError:
            raise SystemExit("--sweep %s values must be numbers, got %r" % (kind, values))
        if not parsed:
            raise SystemExit("--sweep %s needs at least one value" % kind)
        overrides.append((kind, parsed))
    return tuple(overrides)


def _parse_stages(text: str) -> List[str]:
    names = [n.strip() for n in text.split(",") if n.strip()]
    unknown = [n for n in names if n not in STAGE_NAMES]
    if unknown:
        raise SystemExit(
            "unknown stage(s) %s; choose from %s"
            % (", ".join(unknown), ", ".join(STAGE_NAMES))
        )
    return names


def _config(args: argparse.Namespace) -> CSnakeConfig:
    """Build a config from the experiment flags the user actually passed;
    everything else keeps the ``CSnakeConfig`` (paper) defaults."""
    params = {}
    if getattr(args, "budget", None) is not None:
        params["budget_per_fault"] = args.budget
    if getattr(args, "seed", None) is not None:
        params["seed"] = args.seed
    if getattr(args, "repeats", None) is not None:
        params["repeats"] = args.repeats
    if getattr(args, "delays", None) is not None:
        params["delay_values_ms"] = _parse_delays(args.delays)
    if getattr(args, "fault_kinds", None) is not None:
        params["fault_kinds"] = _parse_fault_kinds(args.fault_kinds)
    if getattr(args, "schedules", None) is not None:
        params["schedules"] = _parse_schedules(args.schedules)
    if getattr(args, "adaptive_budget", False):
        params["adaptive_budget"] = True
    if getattr(args, "sweep", None):
        params["sweep_overrides"] = _parse_sweeps(args.sweep)
    workers = getattr(args, "workers", None)
    if workers is None:
        workers = getattr(args, "parallel", None)  # legacy alias
    backend = getattr(args, "backend", None)
    if backend is not None:
        params["experiment_backend"] = backend
        if workers is None and backend != "serial":
            # A parallel backend without an explicit worker count means
            # "use the machine": one worker per core.
            workers = os.cpu_count() or 1
    if workers is not None:
        params["experiment_workers"] = workers
    if getattr(args, "manager", None) is not None:
        params["manager_url"] = args.manager
    cache_dir = _cache_dir(args)
    if cache_dir is not None:
        params["cache_dir"] = cache_dir
    return CSnakeConfig(**params)


def _cache_dir(args: argparse.Namespace) -> Optional[str]:
    """Resolve the --cache/--no-cache/--cache-dir flags to a directory.

    ``--no-cache`` wins over everything; ``--cache-dir DIR`` selects DIR;
    bare ``--cache`` uses ``<session-dir>/cache`` when a session directory
    is given and ``.repro-cache`` otherwise.
    """
    if getattr(args, "no_cache", False):
        return None
    explicit = getattr(args, "cache_dir", None)
    if explicit:
        return explicit
    if getattr(args, "cache", False):
        session_dir = getattr(args, "session_dir", None)
        if session_dir:
            return os.path.join(session_dir, "cache")
        return ".repro-cache"
    return None


def _print_report(report: DetectionReport, args: argparse.Namespace) -> None:
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=1, sort_keys=True)
        print()
        return
    print("system: %s" % report.system)
    for key, value in report.summary().items():
        print("  %-14s %s" % (key, value))
    for match in report.bug_matches:
        status = "DETECTED" if match.detected else "missed"
        line = "  [%s] %s" % (status, match.bug.bug_id)
        if match.detected:
            cycle = match.best_cycle
            line += "  %s via %d tests" % (cycle.signature(), len(cycle.tests()))
        print(line)


def _run_pipeline(
    spec_name: str,
    config: CSnakeConfig,
    args: argparse.Namespace,
    session: Optional[Session],
    stage_names: Optional[List[str]],
) -> int:
    spec = get_system(spec_name)
    stages = default_stages()
    if stage_names is not None:
        stages = [s for s in stages if s.name in stage_names]
    observers = [ProgressPrinter()] if args.verbose else []
    # The pipeline builds its executor from config (and closes it when the
    # run finishes — process pools must not outlive the campaign).
    pipeline = Pipeline(
        spec,
        config,
        stages=stages,
        observers=observers,
        session=session,
    )
    ctx = pipeline.run()
    report = ctx.get("report")
    if report is None:
        # Partial --stages run: report which artifacts were produced.
        print("completed stages: %s" % ", ".join(s.name for s in stages))
        print("artifacts: %s" % ", ".join(ctx.names()))
        _print_cache_stats(ctx)
        return 0
    _print_report(report, args)
    _print_cache_stats(ctx)
    return 0 if report.detected_bugs else 1


def _print_cache_stats(ctx) -> None:
    """Surface experiment-cache counters (execution metadata, so they are
    printed next to the report rather than embedded in its JSON — report
    digests stay identical between cold and warm runs)."""
    cache = ctx.driver.cache
    if cache is None:
        return
    stats = cache.stats()
    print(
        "cache: %d hits, %d misses, %d stored (%s)"
        % (stats["hits"], stats["misses"], stats["stores"], stats["dir"]),
        file=sys.stderr,
    )


def cmd_list(_args: argparse.Namespace) -> int:
    for name in available_systems():
        spec = get_system(name)
        counts = spec.registry.counts()
        bug_ids = ", ".join(b.bug_id for b in spec.known_bugs) or "-"
        print(
            "%-12s %3d sites (%d loops, %d throws, %d detectors, %d branches, "
            "%d env), %2d tests, bugs: %s"
            % (
                name,
                len(spec.registry),
                counts["loop"],
                counts["throw"] + counts["lib_call"],
                counts["detector"],
                counts["branch"],
                counts["env_node"] + counts["env_link"],
                len(spec.workloads),
                bug_ids,
            )
        )
    print(
        "fault schedules: %s (enable with --schedules; see 'repro faults')"
        % (", ".join(registered_schedules()) or "-")
    )
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """List registered fault models and per-system environment sites."""
    config = CSnakeConfig()
    print("registered fault models:")
    for model in all_models():
        targets = ",".join(k.value for k in model.site_kinds)
        sweep = model.sweep_spec(config)
        if sweep:
            knobs = "; ".join(
                "%s: %s" % (name, ",".join("%g" % v for v in values))
                for name, values in sorted(sweep.items())
            )
        else:
            knobs = "single plan"
        flags = " [env]" if model.environment else ""
        print(
            "  %-10s %s  sites: %-18s sweep %s%s"
            % (model.kind_id, model.char, targets, knobs, flags)
        )
    print("registered fault schedules:")
    for schedule in all_schedules():
        events = "; ".join(
            "%s@%s+%gms%s" % (
                ev.kind_id,
                ev.site,
                ev.offset_ms,
                " stagger %gms" % ev.stagger_ms if ev.stagger_ms else "",
            )
            for ev in schedule.events
        )
        print("  %-24s %s  %s" % (schedule.name, schedule.char, events))
    systems = [args.system] if args.system else available_systems()
    print("injectable environment sites:")
    for name in systems:
        spec = get_system(name)
        sites = [s.site_id for s in spec.registry.env_sites()]
        if not sites:
            print("  %-12s (no EnvFaultPort declared)" % name)
            continue
        nodes = [s for s in sites if s.startswith("env.node.")]
        links = [s for s in sites if s.startswith("env.link.")]
        print("  %-12s %s" % (name, ", ".join(nodes + links)))
    print("schedule anchor sites (per schedule, per system):")
    for name in systems:
        spec = get_system(name)
        for schedule_name in registered_schedules():
            model = schedule_model_for(schedule_name)
            anchors = model.anchor_sites(spec.registry)
            print(
                "  %-12s %-24s %s"
                % (name, schedule_name, ", ".join(anchors) or "(none)")
            )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    config = _config(args)
    stage_names = _parse_stages(args.stages) if args.stages else None
    if stage_names is not None and "report" not in stage_names and (args.json or args.out):
        # A partial run produces no report; don't let --json emit non-JSON
        # text or --out silently write nothing.
        raise SystemExit(
            "--json/--out need the report stage; add it to --stages or drop the flag"
        )
    session = None
    if args.session_dir:
        session = Session.attach(args.session_dir, args.system, config)
    return _run_pipeline(args.system, config, args, session, stage_names)


def cmd_resume(args: argparse.Namespace) -> int:
    session = Session.open(args.session_dir)
    config = session.config
    overrides = {}
    workers = args.workers if args.workers is not None else args.parallel
    if workers is not None:
        overrides["experiment_workers"] = workers
    if args.backend is not None:
        overrides["experiment_backend"] = args.backend
        if workers is None and args.backend != "serial":
            overrides["experiment_workers"] = os.cpu_count() or 1
    if args.manager is not None:
        overrides["manager_url"] = args.manager
    if args.no_cache:
        overrides["cache_dir"] = None
    else:
        cache_dir = _cache_dir(args)
        if cache_dir is not None:
            overrides["cache_dir"] = cache_dir
    if overrides:
        # Backend/worker/cache overrides never change results, only where
        # (and whether) the remaining experiments execute.
        config = dataclasses.replace(config, **overrides)
    result_overrides = {}
    if getattr(args, "fault_kinds", None) is not None:
        result_overrides["fault_kinds"] = _parse_fault_kinds(args.fault_kinds)
    if getattr(args, "schedules", None) is not None:
        result_overrides["schedules"] = _parse_schedules(args.schedules)
    if getattr(args, "adaptive_budget", False):
        result_overrides["adaptive_budget"] = True
    if getattr(args, "sweep", None):
        result_overrides["sweep_overrides"] = _parse_sweeps(args.sweep)
    if result_overrides:
        # Fault kinds, schedules, adaptivity, and sweeps are
        # result-affecting: they must match what the session was created
        # with, or the stored artifacts would mix with a different
        # campaign — verify raises a clear mismatch error.
        config = dataclasses.replace(config, **result_overrides)
        session.verify(session.system, config)
    return _run_pipeline(session.system, config, args, session, None)


def cmd_analyze(args: argparse.Namespace) -> int:
    """Static-analysis report: the fault space, per-site exclusion
    reasons, and the code-slice resolution/reachability status."""
    from .instrument.analyzer import analyze
    from .serialize import analysis_to_obj

    spec = get_system(args.system)
    slices = spec.slice_analysis()
    kinds = _parse_fault_kinds(args.fault_kinds) if args.fault_kinds else None
    schedules = _parse_schedules(args.schedules) if args.schedules else None
    result = analyze(spec.registry, kinds, slices=slices, schedules=schedules)
    if args.json:
        obj = {"analysis": analysis_to_obj(result), "slices": None}
        if slices is not None:
            stats = {
                k: v for k, v in slices.stats().items() if not k.startswith("wall_")
            }
            obj["slices"] = {
                "stats": stats,
                "site_digests": dict(sorted(slices.site_digests.items())),
                "entry_digests": dict(sorted(slices.entry_digests.items())),
                "unresolved": dict(sorted(slices.unresolved.items())),
            }
        json.dump(obj, sys.stdout, indent=1, sort_keys=True)
        print()
        return 0
    print("system: %s" % spec.name)
    if slices is None:
        print("  slices: system declares no source_modules (not sliceable)")
    else:
        stats = slices.stats()
        print(
            "  slices: %d modules, %d functions, %d call edges; "
            "%d sites resolved, %d env, %d unresolved; reachability %s"
            % (
                stats["modules"],
                stats["functions"],
                stats["call_edges"],
                stats["sites_resolved"],
                stats["sites_env"],
                stats["sites_unresolved"],
                "trusted" if stats["reachability_trusted"] else "NOT trusted (no pruning)",
            )
        )
    print(
        "  fault space: %d faults over %d sites (%d sites excluded)"
        % (len(result.faults), len(result.fault_sites()), len(result.excluded))
    )
    for site_id in sorted(result.excluded):
        print("  excluded %-38s %s" % (site_id, "; ".join(result.excluded[site_id])))
    if slices is not None:
        for site_id in sorted(slices.unresolved):
            print("  unresolved %-36s %s" % (site_id, slices.unresolved[site_id]))
    return 0


def _diffrun_side_root(provider, workdir, label):
    """An on-disk tree for one diff-run operand (git refs get extracted)."""
    from .analysis.source import GitSource

    if isinstance(provider, GitSource):
        return provider.materialize(workdir / label)
    return provider.root


def _diffrun_campaign(root, args, cache_dir: str):
    """Run one side's campaign in a subprocess whose ``repro`` package is
    imported from that side's tree, sharing ``cache_dir`` across sides so
    unchanged-slice experiments replay instead of re-simulating."""
    import subprocess

    src = root / "src"
    pythonpath = str(src if src.is_dir() else root)
    cmd = [
        sys.executable, "-m", "repro.cli", "run", args.system,
        "--json", "--cache-dir", cache_dir,
    ]
    for flag, value in (
        ("--budget", args.budget),
        ("--seed", args.seed),
        ("--repeats", args.repeats),
        ("--delays", args.delays),
        ("--fault-kinds", args.fault_kinds),
        ("--schedules", args.schedules),
        ("--backend", args.backend),
        ("--workers", args.workers),
    ):
        if value is not None:
            cmd += [flag, str(value)]
    if getattr(args, "adaptive_budget", False):
        cmd += ["--adaptive-budget"]
    for entry in args.sweep or []:
        cmd += ["--sweep", entry]
    env = dict(os.environ, PYTHONPATH=pythonpath)
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode not in (0, 1):  # 1 just means "no bugs detected"
        raise ReproError(
            "campaign under %s failed (exit %d):\n%s" % (root, proc.returncode, proc.stderr)
        )
    if args.verbose:
        sys.stderr.write(proc.stderr)
    return json.loads(proc.stdout)


def cmd_diff_run(args: argparse.Namespace) -> int:
    """Slice-diff two revisions of a system, then (unless --static-only)
    run both campaigns against one shared cache and diff the reports."""
    import tempfile
    from pathlib import Path

    from .analysis import analyze_system, diff_reports, diff_slices
    from .analysis.source import resolve_provider
    from .instrument.analyzer import analyze

    spec = get_system(args.system)
    if not spec.source_modules:
        raise SystemExit(
            "system %r declares no source_modules; nothing to slice" % args.system
        )
    try:
        old_provider = resolve_provider(args.old)
        new_provider = resolve_provider(args.new)
    except ValueError as exc:
        raise SystemExit(str(exc))

    old_slices = analyze_system(spec, old_provider.sources(spec.source_modules))
    new_slices = analyze_system(spec, new_provider.sources(spec.source_modules))
    sdiff = diff_slices(old_slices, new_slices)
    analysis = analyze(
        spec.registry,
        _parse_fault_kinds(args.fault_kinds) if args.fault_kinds else None,
        slices=new_slices,
    )
    invalidated, reusable = sdiff.partition_faults(analysis.faults)

    payload = {
        "system": spec.name,
        "old": old_provider.label,
        "new": new_provider.label,
        "static": sdiff.to_obj(),
        "experiments": {
            "invalidated": [str(f) for f in invalidated],
            "reusable": [str(f) for f in reusable],
        },
        "reports": None,
    }
    if not args.static_only:
        with tempfile.TemporaryDirectory(prefix="repro-diffrun-") as tmp:
            workdir = Path(tmp)
            cache_dir = _cache_dir(args) or str(workdir / "cache")
            old_root = _diffrun_side_root(old_provider, workdir, "old")
            new_root = _diffrun_side_root(new_provider, workdir, "new")
            old_report = _diffrun_campaign(old_root, args, cache_dir)
            new_report = _diffrun_campaign(new_root, args, cache_dir)
        payload["reports"] = diff_reports(old_report, new_report).to_obj()

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
    if args.json:
        json.dump(payload, sys.stdout, indent=1, sort_keys=True)
        print()
    else:
        print("diff-run %s: %s -> %s" % (spec.name, old_provider.label, new_provider.label))
        print(
            "  functions: %d changed, %d added, %d removed"
            % (
                len(sdiff.changed_functions),
                len(sdiff.added_functions),
                len(sdiff.removed_functions),
            )
        )
        print(
            "  slices: %d sites changed, %d unchanged, %d unresolved; "
            "%d entries changed"
            % (
                len(sdiff.changed_sites),
                len(sdiff.unchanged_sites),
                len(sdiff.unresolved_sites),
                len(sdiff.changed_entries),
            )
        )
        for site_id in sdiff.changed_sites:
            print("    changed %s" % site_id)
        print(
            "  experiments: %d invalidated, %d reusable"
            % (len(invalidated), len(reusable))
        )
        reports = payload["reports"]
        if reports is not None:
            for label in reports["appeared_loops"]:
                print("  loop appeared: %s" % label)
            for label in reports["vanished_loops"]:
                print("  loop vanished: %s" % label)
            for bug in reports["appeared_bugs"]:
                print("  bug appeared: %s" % bug)
            for bug in reports["vanished_bugs"]:
                print("  bug vanished: %s" % bug)
            if reports["identical"]:
                print("  reports identical")
    return 0


def cmd_inject(args: argparse.Namespace) -> int:
    spec = get_system(args.system)
    driver = ExperimentDriver(spec, _config(args))
    fault = _parse_fault(args.fault)
    result = driver.run_experiment(fault, args.test)
    print("inject %s into %s:" % (fault, args.test))
    if not result.interference:
        print("  (no additional faults triggered)")
    for interference in result.interference:
        print("  -> %s" % interference)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import bench_campaign, check_regression, write_bench_json

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    unknown = [b for b in backends if b not in BACKENDS]
    if unknown:
        raise SystemExit(
            "unknown backend(s) %s; choose from %s"
            % (", ".join(unknown), ", ".join(BACKENDS))
        )
    if "remote" in backends:
        # The remote backend needs a live manager + agent fleet; the bench
        # suite self-hosts one in its dedicated remote_campaign section.
        raise SystemExit(
            "--backends remote is not benchable directly; `repro bench` "
            "self-hosts a manager + agents in its remote_campaign section"
        )
    result = bench_campaign(
        system=args.system,
        workers=args.workers,
        backends=backends,
        smoke=args.smoke,
        overhead=not args.no_overhead,
        cache_dir=_cache_dir(args),
        fault_kinds=_parse_fault_kinds(args.fault_kinds) if args.fault_kinds else None,
        sweep_overrides=_parse_sweeps(args.sweep) if args.sweep else None,
        schedules=_parse_schedules(args.schedules) if args.schedules else None,
        adaptive_budget=args.adaptive_budget,
        profile=args.profile,
    )
    write_bench_json(result, args.out)
    for backend in backends:
        entry = result["backends"][backend]
        cache = entry.get("cache")
        print(
            "%-8s %7.3fs  %5.2fx vs serial  %s%s"
            % (
                backend,
                entry["wall_s"],
                entry["speedup_vs_serial"],
                "identical" if entry["identical_to_serial"] else "DIVERGED",
                "  cache %d/%d hit" % (cache["hits"], cache["hits"] + cache["misses"])
                if cache
                else "",
            )
        )
    for system, entry in sorted(result.get("agent_overhead", {}).items()):
        print(
            "agent overhead %-10s %.1f%% (seed: %s%%)"
            % (system, entry["overhead_pct"], entry.get("seed_overhead_pct", "?"))
        )
    analysis = result.get("analysis")
    if analysis:
        print(
            "analysis: %d functions, %d call edges, %d sites resolved / "
            "%d unresolved, %.3fs (parse %.3fs, call graph %.3fs, slice %.3fs)"
            % (
                analysis["functions"],
                analysis["call_edges"],
                analysis["sites_resolved"],
                analysis["sites_unresolved"],
                analysis["wall_total_s"],
                analysis["wall_parse_s"],
                analysis["wall_callgraph_s"],
                analysis["wall_slice_s"],
            )
        )
    schedule = result.get("schedule_campaign")
    if schedule:
        for backend in backends:
            entry = schedule["backends"].get(backend)
            if entry is None:
                continue
            print(
                "schedule %-8s %7.3fs  %s"
                % (
                    backend,
                    entry["wall_s"],
                    "identical" if entry["identical_to_serial"] else "DIVERGED",
                )
            )
    dfs = result.get("dfs_campaign")
    if dfs:
        for backend in backends:
            entry = dfs["backends"].get(backend)
            if entry is None:
                continue
            cache = entry.get("cache")
            print(
                "dfs      %-8s %7.3fs  %s%s"
                % (
                    backend,
                    entry["wall_s"],
                    "identical" if entry["identical_to_serial"] else "DIVERGED",
                    "  cache %d/%d hit" % (cache["hits"], cache["hits"] + cache["misses"])
                    if cache
                    else "",
                )
            )
    remote = result.get("remote_campaign")
    if remote:
        for backend in ("serial", "remote"):
            entry = remote["backends"][backend]
            print(
                "remote   %-8s %7.3fs  %s"
                % (
                    backend,
                    entry["wall_s"],
                    "identical" if entry["identical_to_serial"] else "DIVERGED",
                )
            )
        for agent in remote["agents"]:
            print(
                "remote agent %-10s %d tasks, %.1f tasks/s"
                % (agent["name"], agent["tasks_completed"], agent["tasks_per_s"])
            )
        print(
            "remote queue wait: mean %.3fs, max %.3fs"
            % (remote["queue_wait_s"]["mean"], remote["queue_wait_s"]["max"])
        )
    for phase, entry in sorted(result.get("profile", {}).items()):
        print("profile %-9s %7.3fs (instrumented)" % (phase, entry["wall_s"]))
        for row in entry["top"][:3]:
            print(
                "  %8.3fs cum  %8.3fs own  %7d calls  %s"
                % (row["cumtime_s"], row["tottime_s"], row["ncalls"], row["function"])
            )
    print("wrote %s" % args.out)
    diverged = any(not result["backends"][b]["identical_to_serial"] for b in backends)
    if schedule:
        diverged = diverged or any(
            not e["identical_to_serial"] for e in schedule["backends"].values()
        )
    if dfs:
        diverged = diverged or any(
            not e["identical_to_serial"] for e in dfs["backends"].values()
        )
    if remote:
        diverged = diverged or any(
            not e["identical_to_serial"] for e in remote["backends"].values()
        )
    if diverged:
        print("error: parallel backend diverged from serial", file=sys.stderr)
        return 1
    if args.check:
        failures = check_regression(result, args.check, args.max_regression)
        for failure in failures:
            print("regression: %s" % failure, file=sys.stderr)
        if failures:
            return 1
        print("no regression vs %s" % args.check)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Start the campaign manager (the service's central orchestrator)."""
    from .service import ManagerCore, ManagerServer, create_fastapi_app

    core = ManagerCore(lease_ttl_s=args.lease_ttl)
    impl = args.impl
    if impl == "auto":
        try:
            import fastapi  # noqa: F401
            import uvicorn  # noqa: F401

            impl = "fastapi"
        except ImportError:
            impl = "stdlib"
    if impl == "fastapi":
        import uvicorn

        app = create_fastapi_app(core)
        print("repro manager (fastapi) on http://%s:%d" % (args.host, args.port))
        uvicorn.run(app, host=args.host, port=args.port, log_level="warning")
        return 0
    server = ManagerServer(core, host=args.host, port=args.port, verbose=args.verbose)
    print("repro manager listening on %s" % server.url, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def cmd_agent(args: argparse.Namespace) -> int:
    """Run a worker agent against a manager until interrupted."""
    from .service import Agent, HttpTransport

    agent = Agent(
        HttpTransport(args.manager),
        workers=args.workers or (os.cpu_count() or 1),
        name=args.name or "",
        batch=args.batch,
        fail_after_tasks=args.fail_after,
    )
    print(
        "agent serving %s with %d workers" % (args.manager, agent.workers),
        file=sys.stderr,
    )
    try:
        completed = agent.run(idle_exit_s=args.idle_exit)
    except KeyboardInterrupt:
        agent.stop()
        completed = agent.tasks_completed
    print("agent exiting: %d tasks completed" % completed, file=sys.stderr)
    return 0


def _follow_campaign(transport, campaign_id: str, verbose: bool) -> dict:
    """Stream a campaign's events (long-poll) until it finishes; returns
    the final status."""
    cursor = 0
    while True:
        reply = transport.campaign_events(campaign_id, after=cursor, wait_s=10.0)
        for event in reply["events"]:
            if verbose or event["kind"].startswith("campaign"):
                detail = event["detail"]
                line = ", ".join(
                    "%s=%s" % (k, v) for k, v in sorted(detail.items()) if v not in (None, "")
                )
                print("[%s] %s %s" % (campaign_id, event["kind"], line), file=sys.stderr)
        cursor = reply["next"]
        if reply["state"] != "running" and not reply["events"]:
            return transport.campaign_status(campaign_id)


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a campaign to a manager; optionally wait for the report."""
    from .core.report import DetectionReport
    from .service import HttpTransport

    config = _config(args)
    transport = HttpTransport(args.manager)
    campaign_id = transport.start_campaign(
        args.system, config.to_dict(), label=args.label or ""
    )["campaign"]
    print(campaign_id)
    if not (args.wait or args.follow or args.json or args.out):
        return 0
    if args.follow:
        status = _follow_campaign(transport, campaign_id, args.verbose)
    else:
        while True:
            status = transport.campaign_status(campaign_id)
            if status["state"] != "running":
                break
            reply = transport.campaign_events(
                campaign_id, after=status["events"], wait_s=10.0
            )
            del reply
    if status["state"] == "failed":
        print("error: campaign failed: %s" % status["error"], file=sys.stderr)
        return 2
    report = DetectionReport.from_dict(transport.campaign_report(campaign_id))
    _print_report(report, args)
    return 0 if report.detected_bugs else 1


def cmd_status(args: argparse.Namespace) -> int:
    """Manager overview, or one campaign's status / live event stream."""
    from .service import HttpTransport

    transport = HttpTransport(args.manager)
    if args.campaign is None:
        stats = transport.health()
        if args.json:
            json.dump(stats, sys.stdout, indent=1, sort_keys=True)
            print()
            return 0
        tasks = stats["tasks"]
        print(
            "manager up %.0fs: %d agents, %d campaigns"
            % (stats["uptime_s"], len(stats["agents"]), len(stats["campaigns"]))
        )
        print(
            "tasks: %d total (%d queued, %d leased, %d done, %d failed); "
            "%d executed, %d cross-campaign dedups, %d leases re-queued"
            % (
                tasks["total"], tasks["queued"], tasks["leased"], tasks["done"],
                tasks["failed"], tasks["executed"], tasks["deduped"], tasks["requeued"],
            )
        )
        print(
            "queue wait: mean %.3fs, max %.3fs"
            % (stats["queue_wait_s"]["mean"], stats["queue_wait_s"]["max"])
        )
        for agent in stats["agents"]:
            cache = agent.get("cache") or {}
            print(
                "  agent %-12s %d workers, %d completed%s"
                % (
                    agent["name"], agent["workers"], agent["completed"],
                    "  cache %s/%s hit" % (cache.get("hits"), cache.get("hits", 0) + cache.get("misses", 0))
                    if cache else "",
                )
            )
        for campaign in stats["campaigns"]:
            print(
                "  campaign %-12s %-8s %-8s %d/%d tasks"
                % (
                    campaign["campaign"], campaign["system"], campaign["state"],
                    campaign["tasks"]["done"], campaign["tasks"]["total"],
                )
            )
        return 0
    if args.follow:
        status = _follow_campaign(transport, args.campaign, verbose=True)
    else:
        status = transport.campaign_status(args.campaign)
    if args.json:
        json.dump(status, sys.stdout, indent=1, sort_keys=True)
        print()
        return 0
    print(
        "%s [%s] %s: %d/%d tasks"
        % (
            status["campaign"], status["system"], status["state"],
            status["tasks"]["done"], status["tasks"]["total"],
        )
    )
    if status["error"]:
        print("  error: %s" % status["error"])
    if status["digest"]:
        print("  digest: %s" % status["digest"])
    if status["summary"]:
        for key, value in sorted(status["summary"].items()):
            print("  %-18s %s" % (key, value))
    return 0


def _add_cache_flags(parser: argparse.ArgumentParser, bare: bool = True) -> None:
    """Experiment-cache selection shared by experiment subcommands.

    ``bare=False`` omits the ``--cache`` shorthand: bench requires a fresh
    store (its serial reference must run cold), so pointing it at the
    persistent default location would fail on every reuse.
    """
    if bare:
        parser.add_argument(
            "--cache", action="store_true",
            help="enable the content-addressed experiment cache "
            "(under <session-dir>/cache, or .repro-cache without a session)",
        )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="enable the experiment cache rooted at DIR",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the experiment cache even if --cache/--cache-dir is set",
    )


def _add_backend_flags(parser: argparse.ArgumentParser) -> None:
    """Executor-backend selection shared by experiment subcommands."""
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="experiment executor: serial, thread, process, or remote "
        "(results are bit-identical across backends; remote needs --manager)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker count for thread/process backends (default: all cores)",
    )
    parser.add_argument(
        "--manager", default=None, metavar="URL",
        help="manager URL of a `repro serve` instance (required by "
        "--backend remote; see `repro serve`)",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help=argparse.SUPPRESS,  # legacy alias of --workers (thread backend)
    )


def _add_experiment_flags(parser: argparse.ArgumentParser) -> None:
    """Flags meaningful only to experiment-running subcommands."""
    parser.add_argument("--budget", type=int, default=None, help="budget per fault")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--delays",
        default=None,
        metavar="MS,MS,...",
        help="delay sweep in virtual ms (default: the paper's 7-point sweep); "
        "shorthand for --sweep delay=MS,MS,...",
    )
    _add_fault_flags(parser)


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    """Fault-kind selection and sweep grammar (run/resume/bench)."""
    parser.add_argument(
        "--fault-kinds",
        default=None,
        metavar="K,K,...|all|classic",
        help="fault kinds to inject, by registered model id "
        "(default: classic = exception,delay,negation; all additionally "
        "enables the environment kinds — see 'repro faults')",
    )
    parser.add_argument(
        "--schedules",
        default=None,
        metavar="S,S,...|all",
        help="composed fault schedules to inject, by registered schedule "
        "name (default: none; 'all' enables every registered schedule — "
        "see 'repro faults')",
    )
    parser.add_argument(
        "--adaptive-budget",
        action="store_true",
        help="reallocate a share of the phase-2/3 budget toward the "
        "(fault, test) pairs whose early p-values look promising "
        "(deterministic: identical across serial/thread/process backends)",
    )
    parser.add_argument(
        "--sweep",
        action="append",
        default=None,
        metavar="KIND=V1,V2,...",
        help="override one fault kind's or schedule's parameter sweep "
        "(repeatable), e.g. --sweep partition=10000,30000 --sweep "
        "membership_churn=1,2",
    )


def _add_output_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", action="store_true", help="print the report as JSON")
    parser.add_argument("--out", default=None, metavar="FILE", help="write report JSON to FILE")
    parser.add_argument("-v", "--verbose", action="store_true", help="stage progress on stderr")


def build_parser() -> argparse.ArgumentParser:
    """The full ``repro`` argument parser (also used by the docs tests to
    assert that docs/cli.md covers every subcommand and flag)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list bundled target systems")

    faults = sub.add_parser(
        "faults",
        help="list registered fault models, their parameter sweeps, and "
        "per-system injectable environment sites",
    )
    faults.add_argument(
        "--system", choices=available_systems(), default=None,
        help="show environment sites of this system only",
    )

    run = sub.add_parser("run", help="run the detection pipeline")
    run.add_argument("system", choices=available_systems())
    run.add_argument(
        "--stages",
        default=None,
        metavar="NAME,NAME,...",
        help="run only these stages (of: %s)" % ", ".join(STAGE_NAMES),
    )
    _add_backend_flags(run)
    run.add_argument(
        "--session-dir", default=None, metavar="DIR",
        help="persist per-stage artifacts under DIR (resumable)",
    )
    _add_experiment_flags(run)
    _add_cache_flags(run)
    _add_output_flags(run)

    resume = sub.add_parser("resume", help="resume an interrupted --session-dir run")
    resume.add_argument("session_dir", metavar="DIR")
    _add_backend_flags(resume)
    _add_fault_flags(resume)  # must match the session; verified, not overridden
    _add_cache_flags(resume)
    _add_output_flags(resume)

    analyze = sub.add_parser(
        "analyze",
        help="static-analysis report: fault space, per-site exclusion "
        "reasons, and code-slice resolution status",
    )
    analyze.add_argument("system", choices=available_systems())
    analyze.add_argument(
        "--fault-kinds",
        default=None,
        metavar="K,K,...|all|classic",
        help="fault kinds to include in the reported fault space",
    )
    analyze.add_argument(
        "--schedules",
        default=None,
        metavar="S,S,...|all",
        help="composed fault schedules to include in the reported fault space",
    )
    analyze.add_argument(
        "--json", action="store_true", help="print the analysis as JSON"
    )

    diff_run = sub.add_parser(
        "diff-run",
        help="slice-diff two revisions, report which cached experiments an "
        "edit invalidates, and re-run both campaigns against one cache",
    )
    diff_run.add_argument(
        "old", metavar="OLD", help="baseline: a git ref or a source-tree directory"
    )
    diff_run.add_argument(
        "new", metavar="NEW", help="candidate: a git ref or a source-tree directory"
    )
    diff_run.add_argument(
        "--system", choices=available_systems(), default="miniraft",
        help="target system to diff (default: miniraft)",
    )
    diff_run.add_argument(
        "--static-only", action="store_true",
        help="stop after the slice diff and invalidation report (no campaigns)",
    )
    _add_backend_flags(diff_run)
    _add_experiment_flags(diff_run)
    _add_cache_flags(diff_run, bare=False)
    _add_output_flags(diff_run)

    inject = sub.add_parser("inject", help="run one fault injection experiment")
    inject.add_argument("system", choices=available_systems())
    inject.add_argument("fault", help="<site>:<delay|exception|negation>")
    inject.add_argument("test", help="workload/test id")
    _add_experiment_flags(inject)

    bench = sub.add_parser(
        "bench", help="benchmark a campaign across executor backends"
    )
    bench.add_argument(
        "--system", choices=available_systems(), default=None,
        help="target system (default: minihdfs2, or toy with --smoke)",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="reduced benchmark configuration for CI (seconds, not minutes)",
    )
    bench.add_argument(
        "--backends", default="serial,thread,process", metavar="B,B,...",
        help="comma-separated executor backends to time (default: all)",
    )
    bench.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker count for parallel backends (default: all cores)",
    )
    bench.add_argument(
        "--no-overhead", action="store_true",
        help="skip the instrumentation-overhead measurement",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="add one serial campaign with per-phase cProfile output "
        "(top-N functions + collapsed flamegraph stacks in the JSON)",
    )
    _add_fault_flags(bench)
    _add_cache_flags(bench, bare=False)
    bench.add_argument(
        "--out", default="BENCH_campaign.json", metavar="FILE",
        help="where to write the benchmark JSON (default: BENCH_campaign.json)",
    )
    bench.add_argument(
        "--check", default=None, metavar="FILE",
        help="fail if serial wall time regresses vs this baseline JSON",
    )
    bench.add_argument(
        "--max-regression", type=float, default=2.0, metavar="X",
        help="allowed serial slowdown factor for --check (default 2.0)",
    )

    serve = sub.add_parser(
        "serve",
        help="start the campaign manager: an HTTP work queue that "
        "distributes experiments to `repro agent` workers and runs "
        "submitted campaigns (see docs/service.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="HOST",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8736, metavar="PORT",
        help="bind port; 0 picks an ephemeral port (default 8736)",
    )
    serve.add_argument(
        "--lease-ttl", type=float, default=15.0, metavar="S",
        help="agent lease duration in seconds: an agent silent for this "
        "long is expired and its leased tasks re-queued (default 15)",
    )
    serve.add_argument(
        "--impl", choices=("auto", "stdlib", "fastapi"), default="stdlib",
        help="HTTP implementation: the dependency-free stdlib server "
        "(default), fastapi+uvicorn, or auto (fastapi when installed)",
    )
    serve.add_argument(
        "-v", "--verbose", action="store_true", help="log every HTTP request"
    )

    agent = sub.add_parser(
        "agent",
        help="run a worker agent: lease task batches from a manager, "
        "execute them locally, report results + cache counters",
    )
    agent.add_argument(
        "--manager", required=True, metavar="URL",
        help="manager URL printed by `repro serve`",
    )
    agent.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="local execution threads (default: all cores)",
    )
    agent.add_argument(
        "--name", default=None, metavar="NAME",
        help="agent name reported to the manager (default: assigned id)",
    )
    agent.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="max tasks leased per request (default: the worker count)",
    )
    agent.add_argument(
        "--idle-exit", type=float, default=None, metavar="S",
        help="exit after S seconds with nothing to lease (default: serve forever)",
    )
    agent.add_argument(
        "--fail-after", type=int, default=None, metavar="N",
        help="testing hook: complete N tasks, lease one more batch, then "
        "die holding it (exercises lease expiry + re-queue)",
    )

    submit = sub.add_parser(
        "submit",
        help="submit a campaign to a manager (it runs server-side on the "
        "agent fleet); optionally wait for and print the report",
    )
    submit.add_argument("system", choices=available_systems())
    submit.add_argument(
        "--manager", required=True, metavar="URL",
        help="manager URL printed by `repro serve`",
    )
    submit.add_argument(
        "--label", default=None, metavar="TEXT",
        help="free-form campaign label shown in `repro status`",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the campaign finishes and print the report",
    )
    submit.add_argument(
        "--follow", action="store_true",
        help="like --wait, streaming progress events to stderr meanwhile",
    )
    _add_experiment_flags(submit)
    _add_cache_flags(submit)
    _add_output_flags(submit)

    status = sub.add_parser(
        "status",
        help="manager overview (agents, queue, campaigns) or one "
        "campaign's status / live event stream",
    )
    status.add_argument(
        "campaign", nargs="?", default=None, metavar="CAMPAIGN",
        help="campaign id printed by `repro submit` (omit for the overview)",
    )
    status.add_argument(
        "--manager", required=True, metavar="URL",
        help="manager URL printed by `repro serve`",
    )
    status.add_argument(
        "--follow", action="store_true",
        help="stream the campaign's events until it finishes",
    )
    status.add_argument(
        "--json", action="store_true", help="print the status as JSON"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "list": cmd_list,
        "faults": cmd_faults,
        "analyze": cmd_analyze,
        "diff-run": cmd_diff_run,
        "run": cmd_run,
        "resume": cmd_resume,
        "inject": cmd_inject,
        "bench": cmd_bench,
        "serve": cmd_serve,
        "agent": cmd_agent,
        "submit": cmd_submit,
        "status": cmd_status,
    }[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
