"""Command-line interface: run the CSnake pipeline against a bundled system.

Examples::

    python -m repro.cli list
    python -m repro.cli run toy
    python -m repro.cli run toy --parallel 4 --session-dir /tmp/s --out report.json
    python -m repro.cli run minihdfs2 --budget 10 --seed 7 --stages analyze,profile
    python -m repro.cli resume /tmp/s
    python -m repro.cli inject minihbase hm.assign.rpc:exception hbase.rs_fault_tolerance
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

from .config import CSnakeConfig
from .core.driver import ExperimentDriver
from .core.report import DetectionReport
from .errors import ReproError
from .pipeline import (
    STAGE_NAMES,
    Pipeline,
    ProgressPrinter,
    Session,
    default_stages,
    make_executor,
)
from .systems import available_systems, get_system
from .types import FaultKey, InjKind


def _parse_fault(text: str) -> FaultKey:
    try:
        site, kind = text.rsplit(":", 1)
        return FaultKey(site, InjKind(kind))
    except ValueError:
        raise SystemExit(
            "fault must look like '<site>:<delay|exception|negation>', got %r" % text
        )


def _parse_delays(text: str) -> tuple:
    try:
        values = tuple(float(v) for v in text.split(",") if v.strip())
    except ValueError:
        raise SystemExit("--delays must be comma-separated milliseconds, got %r" % text)
    if not values:
        raise SystemExit("--delays needs at least one value")
    return values


def _parse_stages(text: str) -> List[str]:
    names = [n.strip() for n in text.split(",") if n.strip()]
    unknown = [n for n in names if n not in STAGE_NAMES]
    if unknown:
        raise SystemExit(
            "unknown stage(s) %s; choose from %s"
            % (", ".join(unknown), ", ".join(STAGE_NAMES))
        )
    return names


def _config(args: argparse.Namespace) -> CSnakeConfig:
    """Build a config from the experiment flags the user actually passed;
    everything else keeps the ``CSnakeConfig`` (paper) defaults."""
    params = {}
    if getattr(args, "budget", None) is not None:
        params["budget_per_fault"] = args.budget
    if getattr(args, "seed", None) is not None:
        params["seed"] = args.seed
    if getattr(args, "repeats", None) is not None:
        params["repeats"] = args.repeats
    if getattr(args, "delays", None) is not None:
        params["delay_values_ms"] = _parse_delays(args.delays)
    if getattr(args, "parallel", None) is not None:
        params["experiment_workers"] = args.parallel
    return CSnakeConfig(**params)


def _print_report(report: DetectionReport, args: argparse.Namespace) -> None:
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=1, sort_keys=True)
        print()
        return
    print("system: %s" % report.system)
    for key, value in report.summary().items():
        print("  %-14s %s" % (key, value))
    for match in report.bug_matches:
        status = "DETECTED" if match.detected else "missed"
        line = "  [%s] %s" % (status, match.bug.bug_id)
        if match.detected:
            cycle = match.best_cycle
            line += "  %s via %d tests" % (cycle.signature(), len(cycle.tests()))
        print(line)


def _run_pipeline(
    spec_name: str,
    config: CSnakeConfig,
    args: argparse.Namespace,
    session: Optional[Session],
    stage_names: Optional[List[str]],
) -> int:
    spec = get_system(spec_name)
    stages = default_stages()
    if stage_names is not None:
        stages = [s for s in stages if s.name in stage_names]
    observers = [ProgressPrinter()] if args.verbose else []
    pipeline = Pipeline(
        spec,
        config,
        stages=stages,
        executor=make_executor(config.experiment_workers),
        observers=observers,
        session=session,
    )
    ctx = pipeline.run()
    report = ctx.get("report")
    if report is None:
        # Partial --stages run: report which artifacts were produced.
        print("completed stages: %s" % ", ".join(s.name for s in stages))
        print("artifacts: %s" % ", ".join(ctx.names()))
        return 0
    _print_report(report, args)
    return 0 if report.detected_bugs else 1


def cmd_list(_args: argparse.Namespace) -> int:
    for name in available_systems():
        spec = get_system(name)
        print(
            "%-12s %3d sites, %2d tests, %d known bugs"
            % (name, len(spec.registry), len(spec.workloads), len(spec.known_bugs))
        )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    config = _config(args)
    stage_names = _parse_stages(args.stages) if args.stages else None
    if stage_names is not None and "report" not in stage_names and (args.json or args.out):
        # A partial run produces no report; don't let --json emit non-JSON
        # text or --out silently write nothing.
        raise SystemExit(
            "--json/--out need the report stage; add it to --stages or drop the flag"
        )
    session = None
    if args.session_dir:
        session = Session.attach(args.session_dir, args.system, config)
    return _run_pipeline(args.system, config, args, session, stage_names)


def cmd_resume(args: argparse.Namespace) -> int:
    session = Session.open(args.session_dir)
    config = session.config
    if args.parallel is not None:
        config = dataclasses.replace(config, experiment_workers=args.parallel)
    return _run_pipeline(session.system, config, args, session, None)


def cmd_inject(args: argparse.Namespace) -> int:
    spec = get_system(args.system)
    driver = ExperimentDriver(spec, _config(args))
    fault = _parse_fault(args.fault)
    result = driver.run_experiment(fault, args.test)
    print("inject %s into %s:" % (fault, args.test))
    if not result.interference:
        print("  (no additional faults triggered)")
    for interference in result.interference:
        print("  -> %s" % interference)
    return 0


def _add_experiment_flags(parser: argparse.ArgumentParser) -> None:
    """Flags meaningful only to experiment-running subcommands."""
    parser.add_argument("--budget", type=int, default=None, help="budget per fault")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--delays",
        default=None,
        metavar="MS,MS,...",
        help="delay sweep in virtual ms (default: the paper's 7-point sweep)",
    )


def _add_output_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", action="store_true", help="print the report as JSON")
    parser.add_argument("--out", default=None, metavar="FILE", help="write report JSON to FILE")
    parser.add_argument("-v", "--verbose", action="store_true", help="stage progress on stderr")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list bundled target systems")

    run = sub.add_parser("run", help="run the detection pipeline")
    run.add_argument("system", choices=available_systems())
    run.add_argument(
        "--stages",
        default=None,
        metavar="NAME,NAME,...",
        help="run only these stages (of: %s)" % ", ".join(STAGE_NAMES),
    )
    run.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="fan experiments out over N workers (default 1)",
    )
    run.add_argument(
        "--session-dir", default=None, metavar="DIR",
        help="persist per-stage artifacts under DIR (resumable)",
    )
    _add_experiment_flags(run)
    _add_output_flags(run)

    resume = sub.add_parser("resume", help="resume an interrupted --session-dir run")
    resume.add_argument("session_dir", metavar="DIR")
    resume.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="override the session's worker count (results are unaffected)",
    )
    _add_output_flags(resume)

    inject = sub.add_parser("inject", help="run one fault injection experiment")
    inject.add_argument("system", choices=available_systems())
    inject.add_argument("fault", help="<site>:<delay|exception|negation>")
    inject.add_argument("test", help="workload/test id")
    _add_experiment_flags(inject)

    args = parser.parse_args(argv)
    handler = {
        "list": cmd_list,
        "run": cmd_run,
        "resume": cmd_resume,
        "inject": cmd_inject,
    }[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
