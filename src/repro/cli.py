"""Command-line interface: run CSnake against a bundled system.

Examples::

    python -m repro.cli list
    python -m repro.cli run toy
    python -m repro.cli run minihdfs2 --budget 10 --seed 7
    python -m repro.cli inject minihbase hm.assign.rpc:exception hbase.rs_fault_tolerance
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config import CSnakeConfig
from .core import CSnake
from .core.driver import ExperimentDriver
from .systems import available_systems, get_system
from .types import FaultKey, InjKind


def _parse_fault(text: str) -> FaultKey:
    try:
        site, kind = text.rsplit(":", 1)
        return FaultKey(site, InjKind(kind))
    except ValueError:
        raise SystemExit(
            "fault must look like '<site>:<delay|exception|negation>', got %r" % text
        )


def _config(args: argparse.Namespace) -> CSnakeConfig:
    params = {}
    if args.budget is not None:
        params["budget_per_fault"] = args.budget
    if args.seed is not None:
        params["seed"] = args.seed
    if args.repeats is not None:
        params["repeats"] = args.repeats
    params.setdefault("delay_values_ms", (250.0, 1000.0, 8000.0))
    return CSnakeConfig(**params)


def cmd_list(_args: argparse.Namespace) -> int:
    for name in available_systems():
        spec = get_system(name)
        print(
            "%-12s %3d sites, %2d tests, %d known bugs"
            % (name, len(spec.registry), len(spec.workloads), len(spec.known_bugs))
        )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    detector = CSnake(get_system(args.system), _config(args))
    report = detector.run()
    summary = report.summary()
    print("system: %s" % args.system)
    for key, value in summary.items():
        print("  %-14s %s" % (key, value))
    for match in report.bug_matches:
        status = "DETECTED" if match.detected else "missed"
        line = "  [%s] %s" % (status, match.bug.bug_id)
        if match.detected:
            cycle = match.best_cycle
            line += "  %s via %d tests" % (cycle.signature(), len(cycle.tests()))
        print(line)
    return 0 if report.detected_bugs else 1


def cmd_inject(args: argparse.Namespace) -> int:
    spec = get_system(args.system)
    driver = ExperimentDriver(spec, _config(args))
    fault = _parse_fault(args.fault)
    result = driver.run_experiment(fault, args.test)
    print("inject %s into %s:" % (fault, args.test))
    if not result.interference:
        print("  (no additional faults triggered)")
    for interference in result.interference:
        print("  -> %s" % interference)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list bundled target systems")

    run = sub.add_parser("run", help="run the full detection pipeline")
    run.add_argument("system", choices=available_systems())

    inject = sub.add_parser("inject", help="run one fault injection experiment")
    inject.add_argument("system", choices=available_systems())
    inject.add_argument("fault", help="<site>:<delay|exception|negation>")
    inject.add_argument("test", help="workload/test id")

    for p in sub.choices.values():
        p.add_argument("--budget", type=int, default=None, help="budget per fault")
        p.add_argument("--seed", type=int, default=None)
        p.add_argument("--repeats", type=int, default=None)

    args = parser.parse_args(argv)
    handler = {"list": cmd_list, "run": cmd_run, "inject": cmd_inject}[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
