"""Framework-wide configuration with the paper's default parameters."""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Tuple

from .errors import ConfigError

#: Config knobs that change *how* a campaign executes but provably not its
#: results (parallel campaigns are bit-identical to serial ones, and the
#: experiment cache replays byte-identical results).  Sessions allow a
#: resume to override them, and experiment-cache keys exclude them — a
#: warm cache written by a serial run serves a process-backed one.
EXECUTION_ONLY_KNOBS: Tuple[str, ...] = (
    "experiment_workers",
    "experiment_backend",
    "beam_workers",
    "cache_dir",
    "manager_url",
)

#: Delay sweep used for contention injection (§4.2): seven values between
#: 100 ms and 8 s, in virtual milliseconds.
DELAY_VALUES_MS: Tuple[float, ...] = (100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0)

#: Reduced three-point delay sweep used by the benchmark suite and CI smoke
#: runs: one value per decade keeps campaigns tractable while still
#: exercising the short/medium/long contention regimes.  CLI invocations
#: default to the full :data:`DELAY_VALUES_MS` sweep; pass ``--delays`` to
#: select this (or any other) sweep explicitly.
FAST_DELAY_VALUES_MS: Tuple[float, ...] = (250.0, 1000.0, 8000.0)

#: Restart-delay sweep of the ``node_crash`` environment fault model:
#: a quick crash-recover bounce and a long outage, in virtual ms.
CRASH_RESTART_VALUES_MS: Tuple[float, ...] = (10_000.0, 40_000.0)

#: Duration sweep of the ``partition`` environment fault model: one cut
#: shorter and one longer than the reduced 10-20 s timeouts (§4.2).
PARTITION_VALUES_MS: Tuple[float, ...] = (15_000.0, 45_000.0)

#: Probability sweep of the ``msg_drop`` environment fault model.
DROP_PROB_VALUES: Tuple[float, ...] = (0.3, 0.7)

#: Number of repetitions of every profile and injection run (§4.3).
DEFAULT_REPEATS = 5

#: Significance level of the one-sided t-test on loop iteration counts.
DEFAULT_PVALUE = 0.1

#: Budget multiplier: total test budget is ``budget_per_fault * |F|`` (§5.2).
DEFAULT_BUDGET_PER_FAULT = 4

#: Phase split of the 3PA protocol (§5.2): 25% / 50% / 25%.
PHASE_SPLIT: Tuple[float, float, float] = (0.25, 0.50, 0.25)

#: Minimum allocation weight for a fault cluster in phase three (§A.4).
EPSILON_WEIGHT = 0.01

#: Fraction of lowest-ranked loops (by body size) excluded by the loop
#: scalability analysis unless they perform I/O (§4.1).
LOOP_SIZE_PRUNE_FRAC = 0.10


@dataclass
class CSnakeConfig:
    """Tunable knobs of the whole pipeline, defaulting to paper values."""

    repeats: int = DEFAULT_REPEATS
    p_value: float = DEFAULT_PVALUE
    budget_per_fault: int = DEFAULT_BUDGET_PER_FAULT
    delay_values_ms: Tuple[float, ...] = DELAY_VALUES_MS
    #: Fault kinds this campaign injects, by registered fault-model id
    #: (``repro.faults``).  Defaults to the paper's closed taxonomy;
    #: ``--fault-kinds all`` additionally enables the environment kinds
    #: (node_crash, partition, msg_drop) on systems that declare an
    #: :class:`~repro.faults.EnvFaultPort`.
    fault_kinds: Tuple[str, ...] = ("exception", "delay", "negation")
    #: Fault *schedules* this campaign injects, by registered schedule
    #: name (``repro.faults.schedule``).  Off by default: schedules are
    #: k-fault compositions (a partition during a crash-restart,
    #: membership churn waves) anchored at ``ENV_NODE`` sites, and a
    #: campaign opts in per schedule via ``--schedules``.
    schedules: Tuple[str, ...] = ()
    #: Per-kind sweep overrides: ``(("partition", (10_000.0,)), ...)``
    #: replaces the named fault model's default parameter sweep.  The
    #: ``--delays`` flag is shorthand for overriding the ``delay`` sweep.
    #: Schedule names are accepted too (they sweep a ``time_scale``).
    sweep_overrides: Tuple[Tuple[str, Tuple[float, ...]], ...] = ()
    #: Default parameter sweeps of the environment fault models.
    crash_restart_values_ms: Tuple[float, ...] = CRASH_RESTART_VALUES_MS
    partition_values_ms: Tuple[float, ...] = PARTITION_VALUES_MS
    drop_prob_values: Tuple[float, ...] = DROP_PROB_VALUES
    #: Fraction of injection runs in which a point fault (exception or
    #: negation) must appear — while appearing in no profile run — to count
    #: as an additional fault.  The paper uses "any additional fault" with
    #: 5 repetitions; 0.4 (2 of 5) damps scheduler noise.
    point_event_min_frac: float = 0.4
    #: Hierarchical-clustering cut: faults closer than this cosine distance
    #: are considered causally equivalent.
    cluster_distance: float = 0.5
    #: Beam width.  The paper uses 5e6; our causal graphs are ~1e3 edges so
    #: 10 000 is exhaustive at this scale.
    beam_width: int = 10_000
    #: Maximum number of edges in a propagation chain.
    max_chain_len: int = 6
    #: Cap on delay (contention) faults per reported cycle; ``None`` means
    #: unlimited (Table 4 compares unlimited vs 1).
    max_delay_faults: "int | None" = None
    #: One-shot negation by default (matching the one-time exception throw
    #: convention of §4.2): a sticky (stuck-detector) mode is available but
    #: negating a per-node detector for *every* node at once models a
    #: different, far larger fault than the single-component errors the
    #: paper injects.
    sticky_negation: bool = False
    #: Virtual warmup before armed injections may fire: one-time faults
    #: injected into a cold system reach empty queues and exercise nothing.
    injection_warmup_ms: float = 20_000.0
    #: Base random seed; repetition ``i`` of any run uses ``seed + i``.
    seed: int = 1234
    #: Whether stitching applies the local compatibility check (§6.2).
    compat_check: bool = True
    #: Adaptive budget allocation: carve a pool out of the phase-2/3
    #: budgets and reallocate it toward the faults whose committed FCA
    #: results show the most promising (lowest) loop-interference
    #: p-values.  Reallocation is decided only from committed results in
    #: schedule order, so serial ≡ thread ≡ process parity survives.
    adaptive_budget: bool = False
    #: Number of worker threads for the parallel beam search (1 = serial).
    beam_workers: int = 1
    #: Number of workers for profile and injection experiments
    #: (1 = serial).  Parallel campaigns are bit-identical to serial ones:
    #: experiment *scheduling* is decided before execution and results are
    #: committed in schedule order.
    experiment_workers: int = 1
    #: Executor backend for experiment fan-out: ``"thread"`` (default,
    #: shared-memory workers), ``"process"`` (true multicore via picklable
    #: task descriptors), ``"remote"`` (ship task descriptors to a
    #: ``repro serve`` manager's agent fleet; needs ``manager_url``), or
    #: ``"serial"`` (force the reference backend regardless of
    #: ``experiment_workers``).
    experiment_backend: str = "thread"
    #: Base URL of the campaign manager (``repro serve``) used by the
    #: ``remote`` backend; execution-only, like the backend choice itself.
    manager_url: "Optional[str]" = None
    #: Root directory of the content-addressed experiment cache, or
    #: ``None`` (default) to disable caching.  Cached profile run groups
    #: and FCA results are keyed by a digest of (system digest, test id,
    #: fault, injection plans, result-affecting config), so campaigns that
    #: could produce different results never share entries.
    cache_dir: "Optional[str]" = None

    def __post_init__(self) -> None:
        if self.repeats < 2:
            raise ConfigError("need at least 2 repeats for the t-test")
        if not 0.0 < self.p_value < 1.0:
            raise ConfigError("p_value must be in (0, 1)")
        if self.budget_per_fault < 1:
            raise ConfigError("budget_per_fault must be positive")
        if not self.delay_values_ms:
            raise ConfigError("delay_values_ms must be non-empty")
        if any(not math.isfinite(v) or v <= 0 for v in self.delay_values_ms):
            raise ConfigError("delay values must be finite and positive (virtual ms)")
        self._validate_fault_kinds()
        if self.beam_width < 1:
            raise ConfigError("beam_width must be positive")
        if self.max_chain_len < 2:
            raise ConfigError("cycles need at least 2 edges")
        if self.beam_workers < 1 or self.experiment_workers < 1:
            raise ConfigError("worker counts must be at least 1")
        if self.experiment_backend not in ("serial", "thread", "process", "remote"):
            raise ConfigError(
                "experiment_backend must be serial, thread, process, or remote, got %r"
                % (self.experiment_backend,)
            )
        if self.experiment_backend == "remote" and not self.manager_url:
            raise ConfigError(
                "the remote backend needs manager_url (--manager URL of a "
                "`repro serve` instance)"
            )

    def _validate_fault_kinds(self) -> None:
        if not self.fault_kinds:
            raise ConfigError("fault_kinds must name at least one fault kind")
        from . import faults  # deferred: faults never imports config

        registered = set(faults.registered_kinds())
        unknown = [k for k in self.fault_kinds if k not in registered]
        if unknown:
            raise ConfigError(
                "unknown fault kind(s) %s; registered: %s"
                % (", ".join(unknown), ", ".join(sorted(registered)))
            )
        schedules = set(faults.registered_schedules())
        unknown = [s for s in self.schedules if s not in schedules]
        if unknown:
            raise ConfigError(
                "unknown fault schedule(s) %s; registered: %s"
                % (", ".join(unknown), ", ".join(sorted(schedules)))
            )
        for kind, values in self.sweep_overrides:
            if kind not in registered and kind not in schedules:
                raise ConfigError(
                    "sweep override names unknown fault kind or schedule %r" % (kind,)
                )
            if not values:
                raise ConfigError("sweep override for %r needs at least one value" % (kind,))
            try:
                # Model-owned range rules (e.g. drop probabilities in
                # (0, 1]): fail at config time, not mid-campaign.
                faults.model_for(kind).validate_sweep(tuple(values))
            except ValueError as exc:
                raise ConfigError(str(exc)) from exc
        for values in (
            self.crash_restart_values_ms,
            self.partition_values_ms,
            self.drop_prob_values,
        ):
            if any(not math.isfinite(v) or v < 0 for v in values):
                raise ConfigError("environment sweep values must be finite and >= 0")

    def sweep_for(self, kind_id: str, default: Tuple[float, ...]) -> Tuple[float, ...]:
        """The parameter sweep of fault kind ``kind_id``: its per-kind
        override when one is configured, else ``default``."""
        for kind, values in self.sweep_overrides:
            if kind == kind_id:
                return tuple(values)
        return tuple(default)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible dump, inverse of :meth:`from_dict`.

        Deeply normalized (tuples become lists at every level) so a dump
        compares equal to its own JSON round-trip — session-compatibility
        checks diff these dicts directly.
        """
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "sweep_overrides":
                value = [[kind, list(values)] for kind, values in value]
            elif isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "CSnakeConfig":
        params = dict(obj)
        for name in (
            "delay_values_ms",
            "fault_kinds",
            "schedules",
            "crash_restart_values_ms",
            "partition_values_ms",
            "drop_prob_values",
        ):
            if name in params:
                params[name] = tuple(params[name])
        if "sweep_overrides" in params:
            params["sweep_overrides"] = tuple(
                (kind, tuple(values)) for kind, values in params["sweep_overrides"]
            )
        return cls(**params)

    def phase_budgets(self, n_faults: int) -> Tuple[int, int, int]:
        """Split the total budget ``budget_per_fault * n_faults`` 25/50/25."""
        total = self.budget_per_fault * n_faults
        p1 = round(total * PHASE_SPLIT[0])
        p2 = round(total * PHASE_SPLIT[1])
        p3 = total - p1 - p2
        return (p1, p2, p3)


@dataclass
class SimConfig:
    """Substrate-level configuration for simulated clusters."""

    #: Reduced timeouts (§4.2): systems run with 10–20 s timeouts so they
    #: are sensitive to injected delay, in virtual ms.
    rpc_timeout_ms: float = 10_000.0
    stale_timeout_ms: float = 15_000.0
    heartbeat_interval_ms: float = 3_000.0
    network_latency_ms: float = 2.0
    network_jitter_ms: float = 1.0
    #: Virtual-time horizon of one workload run.
    run_duration_ms: float = 120_000.0
    #: Per-iteration base processing cost charged by instrumented loops.
    loop_iter_cost_ms: float = 0.5

    def __post_init__(self) -> None:
        if self.rpc_timeout_ms <= 0 or self.heartbeat_interval_ms <= 0:
            raise ConfigError("timeouts and intervals must be positive")


#: Cap on distinct local states remembered per site in one run, to bound
#: memory on hot loops.
MAX_STATES_PER_SITE = 64
