"""CSnake's primary contribution: causal stitching of fault propagations.

Public entry point::

    from repro.core import CSnake
    from repro.systems import get_system

    report = CSnake(get_system("minihdfs2")).run()
    for match in report.bug_matches:
        print(match.bug.bug_id, match.detected)
"""

from .allocation import AllocationOutcome, ThreePhaseAllocator
from .beam import BeamSearch, BeamSearchResult
from .compat import CompatChecker
from .cycles import Cycle, CycleCluster, cluster_cycles
from .driver import ExperimentDriver, run_workload
from .edges import EdgeDB
from .fca import FaultCausalityAnalysis, FcaResult
from .idf import IdfVectorizer, cosine_distance
from .report import BugMatch, DetectionReport, build_report


def __getattr__(name: str):
    # CSnake wraps repro.pipeline, which itself imports repro.core —
    # resolving the facade lazily keeps the packages import-order agnostic.
    if name == "CSnake":
        from .detector import CSnake

        return CSnake
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


__all__ = [
    "CSnake",
    "ExperimentDriver",
    "run_workload",
    "FaultCausalityAnalysis",
    "FcaResult",
    "EdgeDB",
    "ThreePhaseAllocator",
    "AllocationOutcome",
    "BeamSearch",
    "BeamSearchResult",
    "CompatChecker",
    "Cycle",
    "CycleCluster",
    "cluster_cycles",
    "IdfVectorizer",
    "cosine_distance",
    "BugMatch",
    "DetectionReport",
    "build_report",
]
