"""Three-phase allocation (3PA) protocol of the test budget (§5, §A).

Phase one (25%) injects each fault into its highest-coverage reaching test
and clusters faults by the IDF-vectorized similarity of their interference
lists (*causally equivalent faults*).  Phase two (50%) distributes quota
round-robin across clusters, injecting a random cluster member into a new
workload each time.  Phase three (25%) allocates by weighted random draw,
weighting clusters by ``max(ε, 1 − SimScore)`` so clusters with
*conditional* causal consequences — a fault causing different things in
different workloads — receive more budget.  Unused quota transfers between
clusters per §5.2.

Within one phase, allocation *decisions* depend only on the seeded RNG and
on which (fault, test) combinations were already scheduled — never on the
outcome of an experiment; results only feed the clustering and SimScore
steps *between* phases.  The allocator exploits this: with an executor it
schedules a whole phase first, then flushes the scheduled experiments as
one parallel batch, committing results in schedule order.  A parallel
allocation is therefore bit-identical to a serial one.

**Adaptive budget** (``CSnakeConfig.adaptive_budget``): a quarter of the
phase-two and phase-three quotas is carved into a reallocation pool spent
on the faults whose committed experiments showed the most *promising*
(smallest) loop-interference p-values — "almost significant" faults earn
extra repeats.  To preserve the parity guarantee above, the promise
ranking is computed only from already-flushed results, frozen before the
pool is spent, and ties break on the fault sort order; no RNG draw and no
mid-batch result ever feeds an adaptive decision, so serial, thread, and
process campaigns still commit identical records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..pipeline.executor import Executor

from ..config import CSnakeConfig
from ..types import FaultKey
from .clustering import Clustering, cluster_faults
from .driver import ExperimentDriver
from .fca import FcaResult
from .idf import IdfVectorizer
from .simscore import allocation_weight, cluster_sim_scores, fault_sim_scores


@dataclass
class AllocationRecord:
    """One consumed budget unit: a (fault, test) injection experiment.

    ``result`` is ``None`` only transiently, while the experiment is
    scheduled but not yet flushed (deferred batch execution).
    """

    phase: int
    fault: FaultKey
    test_id: str
    result: Optional[FcaResult]


@dataclass
class AllocationOutcome:
    """Everything downstream stages need from the budget allocation."""

    records: List[AllocationRecord] = field(default_factory=list)
    clustering: Optional[Clustering] = None
    cluster_scores: Dict[int, float] = field(default_factory=dict)
    fault_scores: Dict[FaultKey, float] = field(default_factory=dict)
    budget_total: int = 0
    budget_used: int = 0
    unreachable: List[FaultKey] = field(default_factory=list)

    def records_in_phase(self, phase: int) -> List[AllocationRecord]:
        return [r for r in self.records if r.phase == phase]


class ThreePhaseAllocator:
    """Runs the 3PA protocol against an experiment driver."""

    def __init__(
        self,
        driver: ExperimentDriver,
        faults: Sequence[FaultKey],
        config: Optional[CSnakeConfig] = None,
        executor: Optional["Executor"] = None,
    ) -> None:
        self.driver = driver
        self.faults = sorted(set(faults))
        self.config = config or driver.config
        self.executor = executor
        self.rng = random.Random(self.config.seed * 31 + 7)
        self._used_tests: Dict[FaultKey, Set[str]] = {f: set() for f in self.faults}
        self._reaching: Dict[FaultKey, List[str]] = {}
        self._scheduled: List[AllocationRecord] = []
        self.outcome = AllocationOutcome()

    # ------------------------------------------------------------- plumbing

    def _reaching_tests(self, fault: FaultKey) -> List[str]:
        tests = self._reaching.get(fault)
        if tests is None:
            tests = self.driver.tests_reaching(fault)
            self._reaching[fault] = tests
        return tests

    def _unused_tests(self, fault: FaultKey) -> List[str]:
        used = self._used_tests[fault]
        return [t for t in self._reaching_tests(fault) if t not in used]

    def _run(self, phase: int, fault: FaultKey, test_id: str) -> AllocationRecord:
        """Schedule one budget unit; execution may be deferred to `_flush`."""
        self._used_tests[fault].add(test_id)
        if self.executor is None:
            result = self.driver.run_experiment(fault, test_id)
            record = AllocationRecord(phase=phase, fault=fault, test_id=test_id, result=result)
        else:
            record = AllocationRecord(phase=phase, fault=fault, test_id=test_id, result=None)
            self._scheduled.append(record)
        self.outcome.records.append(record)
        self.outcome.budget_used += 1
        return record

    def _flush(self) -> None:
        """Execute all scheduled experiments as one (parallel) batch."""
        if not self._scheduled:
            return
        pairs = [(r.fault, r.test_id) for r in self._scheduled]
        results = self.driver.run_experiments(pairs, self.executor)
        for record, result in zip(self._scheduled, results):
            record.result = result
        self._scheduled = []

    def _cluster_combos(self, cluster) -> List[Tuple[FaultKey, str]]:
        combos = []
        for fault in cluster:
            for test_id in self._unused_tests(fault):
                combos.append((fault, test_id))
        return combos

    def _draw_from_cluster(self, cluster, phase: int) -> Optional[AllocationRecord]:
        """Random fault from the cluster into a random new workload."""
        candidates = [f for f in cluster if self._unused_tests(f)]
        if not candidates:
            return None
        fault = self.rng.choice(candidates)
        test_id = self.rng.choice(self._unused_tests(fault))
        return self._run(phase, fault, test_id)

    # ----------------------------------------------------------- vectorizers

    def _fit_and_vectorize(self) -> List[Tuple[FaultKey, "object"]]:
        """(Re)fit the IDF vectorizer on all interference lists so far and
        return (fault, vector) observations (§5.2: the phase-two vectorizer
        is trained on data from both phases)."""
        interferences = [r.result.interference for r in self.outcome.records]
        vectorizer = IdfVectorizer(self.faults).fit(interferences)
        return [
            (r.fault, vectorizer.vectorize(r.result.interference)) for r in self.outcome.records
        ]

    # -------------------------------------------------------------- adaptive

    def _adaptive_split(self, budget: int) -> Tuple[int, int]:
        """Carve the adaptive reallocation pool (a quarter) off a phase
        quota; ``(budget, 0)`` when adaptivity is off."""
        if not self.config.adaptive_budget or budget <= 1:
            return budget, 0
        pool = budget // 4
        return budget - pool, pool

    def _promising_faults(self) -> List[FaultKey]:
        """Faults ranked by their best committed loop p-value (ascending:
        most promising first; ties break on the fault sort order)."""
        promise: Dict[FaultKey, float] = {}
        for record in self.outcome.records:
            result = record.result
            if result is None or result.min_p is None:
                continue
            best = promise.get(record.fault)
            if best is None or result.min_p < best:
                promise[record.fault] = result.min_p
        return sorted(promise, key=lambda f: (promise[f], f))

    def _spend_adaptive(self, pool: int, phase: int) -> int:
        """Spend the carved pool on the most promising faults.

        The ranking is frozen from committed (flushed) results before the
        first unit is spent — a serial backend's eagerly-available results
        must not feed decisions a deferred batch cannot see — and spending
        walks the ranking round-robin (one extra repeat per fault per
        round) until the pool or the unused reaching tests run out.
        Returns the unspendable remainder.
        """
        if pool <= 0:
            return 0
        ranked = self._promising_faults()
        remaining = pool
        progressed = True
        while remaining > 0 and progressed:
            progressed = False
            for fault in ranked:
                if remaining <= 0:
                    break
                unused = self._unused_tests(fault)
                if not unused:
                    continue
                self._run(phase, fault, unused[0])
                remaining -= 1
                progressed = True
        self._flush()
        return remaining

    # ---------------------------------------------------------------- phases

    def _phase_one(self, budget: int) -> int:
        """Each fault once, into its highest-coverage reaching test."""
        used_before = self.outcome.budget_used
        for fault in self.faults:
            if self.outcome.budget_used - used_before >= budget:
                break
            best = self.driver.best_test_for(fault)
            if best is None:
                self.outcome.unreachable.append(fault)
                continue
            self._run(1, fault, best)
        return budget - (self.outcome.budget_used - used_before)

    def _cluster_phase_one(self) -> Clustering:
        observed = self.outcome.records_in_phase(1)
        faults = [r.fault for r in observed]
        vectorizer = IdfVectorizer(self.faults).fit([r.result.interference for r in observed])
        vectors = [vectorizer.vectorize(r.result.interference) for r in observed]
        return cluster_faults(faults, vectors, self.config.cluster_distance)

    def _phase_two(self, budget: int, clustering: Clustering) -> int:
        """Round-robin quota over clusters; leftover moves to larger clusters."""
        remaining = budget
        clusters = list(clustering.clusters)
        exhausted: Set[int] = set()
        idx = 0
        while remaining > 0 and len(exhausted) < len(clusters):
            cluster = clusters[idx % len(clusters)]
            idx += 1
            if cluster.cluster_id in exhausted:
                continue
            record = self._draw_from_cluster(cluster, 2)
            if record is None:
                exhausted.add(cluster.cluster_id)
                # Quota transfer: hand this unit to a random larger,
                # non-exhausted cluster (§5.2).
                larger = [
                    c
                    for c in clusters
                    if c.cluster_id not in exhausted and len(c) >= len(cluster)
                ]
                target = self.rng.choice(larger) if larger else None
                if target is not None:
                    record = self._draw_from_cluster(target, 2)
                    if record is None:
                        exhausted.add(target.cluster_id)
            if record is not None:
                remaining -= 1
        return remaining

    def _phase_three(self, budget: int, clustering: Clustering) -> int:
        """Weighted random allocation favouring conditional clusters."""
        remaining = budget
        clusters = list(clustering.clusters)
        while remaining > 0:
            live = [c for c in clusters if any(self._unused_tests(f) for f in c)]
            if not live:
                break
            weights = [
                allocation_weight(self.outcome.cluster_scores.get(c.cluster_id, 1.0))
                for c in live
            ]
            chosen = self.rng.choices(live, weights=weights, k=1)[0]
            record = self._draw_from_cluster(chosen, 3)
            if record is None:
                # Transfer to the live cluster with the smallest weight (§5.2).
                fallback = min(
                    live,
                    key=lambda c: allocation_weight(
                        self.outcome.cluster_scores.get(c.cluster_id, 1.0)
                    ),
                )
                record = self._draw_from_cluster(fallback, 3)
            if record is not None:
                remaining -= 1
        return remaining

    # ----------------------------------------------------------------- main

    def run(self) -> AllocationOutcome:
        p1, p2, p3 = self.config.phase_budgets(len(self.faults))
        self.outcome.budget_total = p1 + p2 + p3

        leftover = self._phase_one(p1)
        self._flush()
        clustering = self._cluster_phase_one()
        self.outcome.clustering = clustering

        p2_main, p2_pool = self._adaptive_split(p2 + leftover)
        leftover = self._phase_two(p2_main, clustering)
        self._flush()
        leftover += self._spend_adaptive(p2_pool, 2)

        observations = self._fit_and_vectorize()
        self.outcome.cluster_scores = cluster_sim_scores(clustering, observations)

        p3_main, p3_pool = self._adaptive_split(p3 + leftover)
        leftover = self._phase_three(p3_main, clustering)
        self._flush()
        self._spend_adaptive(p3_pool + leftover, 3)

        observations = self._fit_and_vectorize()
        self.outcome.cluster_scores = cluster_sim_scores(clustering, observations)
        self.outcome.fault_scores = fault_sim_scores(clustering, self.outcome.cluster_scores)
        return self.outcome
