"""Beam search for self-sustaining cascading failures (Algorithm 1).

Starting from every causal edge as a length-1 chain, each level appends one
edge to each surviving chain (guarded by the local compatibility check) and
reports a cycle whenever a chain closes back onto its first edge.  At each
level only the best ``B`` chains survive, ranked by the mean intra-cluster
interference similarity score of the injected faults in the chain — chains
built from faults with *conditional* consequences (low SimScore) are kept,
as they most resemble the error-handling tangles developers overlook.

Two engines implement that one contract:

* :class:`BeamSearch` — the production kernel.  The edge set is interned
  once into integer arrays with ids assigned in sorted-``key()`` order, so
  integer comparisons reproduce the reference's lexicographic tie-breaks
  bit-for-bit (see DESIGN.md, "The interned beam kernel").  The pairwise
  ``CompatChecker.match`` relation depends only on the ordered edge pair,
  so it is precomputed into a CSR adjacency (+ a sorted pair-code array
  for closure membership), chain scores and delay counts are carried
  incrementally, and per-level ranking is an ``argpartition``-based
  top-``B`` selection instead of a full sort.  Each beam level is a
  handful of numpy array operations over the whole frontier.
* :class:`ReferenceBeamSearch` — the original chain-at-a-time
  implementation, kept as the differential-testing oracle
  (``tests/property/test_beam_differential.py``) and as the fallback for
  edge sets the interning argument does not cover: duplicate ``key()``s
  (impossible for :class:`~repro.core.edges.EdgeDB` inputs, which dedup
  by key) break the id-order ≡ key-order equivalence, and numpy may be
  absent entirely.

Both engines produce byte-identical :class:`BeamSearchResult`\\ s: the same
cycles in the same order (including which interior test combination
represents each deduplicated chain class), the same ``chains_explored``
and ``levels``, and the same :class:`~repro.core.compat.CompatChecker`
counters.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly by every test
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None  # type: ignore[assignment]

from ..config import CSnakeConfig
from ..types import CausalEdge, FaultKey, InjKind, states_compatible
from .compat import CompatChecker
from .cycles import INJECTION_EDGE_TYPES, Cycle


@dataclass(frozen=True)
class _Chain:
    edges: Tuple[CausalEdge, ...]
    score: float

    @property
    def last(self) -> CausalEdge:
        return self.edges[-1]

    @property
    def first(self) -> CausalEdge:
        return self.edges[0]


@dataclass
class BeamSearchResult:
    cycles: List[Cycle] = field(default_factory=list)
    chains_explored: int = 0
    levels: int = 0
    compat: Optional[CompatChecker] = None


class ReferenceBeamSearch:
    """Chain-at-a-time cycle detector: the oracle the kernel is held to.

    With ``beam_workers > 1`` levels fan out over a thread pool; each
    chunk matches against a worker-local :class:`CompatChecker` whose
    counters are folded back in chunk order, so parallel counters are
    deterministic and equal to a serial run's.
    """

    def __init__(
        self,
        config: Optional[CSnakeConfig] = None,
        sim_scores: Optional[Dict[FaultKey, float]] = None,
    ) -> None:
        self.config = config or CSnakeConfig()
        #: SimScore of each fault's cluster; unknown faults default to 1.0
        #: (maximally unconditional, hence ranked last).
        self.sim_scores = sim_scores or {}
        self.compat = CompatChecker(enabled=self.config.compat_check)
        self._pool: Optional[ThreadPoolExecutor] = None

    # -------------------------------------------------------------- scoring

    def _chain_score(self, edges: Tuple[CausalEdge, ...]) -> float:
        injected = [e.src for e in edges if e.etype in INJECTION_EDGE_TYPES]
        if not injected:
            return 1.0
        total = sum(self.sim_scores.get(f, 1.0) for f in injected)
        return total / len(injected)

    def _delay_count(self, edges: Tuple[CausalEdge, ...]) -> int:
        return sum(
            1
            for e in edges
            if e.etype in INJECTION_EDGE_TYPES and e.src.kind is InjKind.DELAY
        )

    # --------------------------------------------------------------- search

    def search(self, edges: Sequence[CausalEdge]) -> BeamSearchResult:
        # One worker pool for the whole search: levels reuse it instead of
        # paying pool construction/teardown at every beam level.
        self._pool = (
            ThreadPoolExecutor(max_workers=self.config.beam_workers)
            if self.config.beam_workers > 1
            else None
        )
        try:
            return self._search(edges)
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def _search(self, edges: Sequence[CausalEdge]) -> BeamSearchResult:
        result = BeamSearchResult(compat=self.compat)
        edge_list = list(edges)
        # Index edges by source fault: a chain ending in fault f can only be
        # extended by edges injecting f, so candidate lookup is O(out-degree)
        # instead of O(|E|).
        self._by_src: Dict[FaultKey, List[CausalEdge]] = {}
        for edge in edge_list:
            self._by_src.setdefault(edge.src, []).append(edge)
        seen_cycles: Dict[Tuple, Cycle] = {}
        queue: List[_Chain] = []
        for edge in edge_list:
            chain = _Chain((edge,), self._chain_score((edge,)))
            if self._exceeds_delay_cap(chain.edges):
                continue
            result.chains_explored += 1
            # A self-edge (f causes f) is already a cycle of length one.
            if self.compat.match(edge, edge):
                self._report(chain.edges, seen_cycles)
            queue.append(chain)

        while queue and result.levels < self.config.max_chain_len - 1:
            result.levels += 1
            extensions = self._extend_level(queue, edge_list, seen_cycles, result)
            # Exact chain deduplication: future extension depends only on the
            # last edge, closure only on the first, and ranking only on the
            # fault-level signature — interior test combinations are
            # interchangeable, so keep one representative per class.
            unique: Dict[Tuple, _Chain] = {}
            for chain in extensions:
                sig = (
                    tuple((e.src, e.dst, e.etype.value) for e in chain.edges),
                    chain.first.key(),
                    chain.last.key(),
                )
                unique.setdefault(sig, chain)
            extensions = list(unique.values())
            extensions.sort(key=lambda c: (c.score, [e.key() for e in c.edges]))
            queue = extensions[: self.config.beam_width]

        result.cycles = [seen_cycles[k] for k in sorted(seen_cycles)]
        return result

    def _extend_level(
        self,
        queue: List[_Chain],
        edge_list: List[CausalEdge],
        seen_cycles: Dict[Tuple, Cycle],
        result: BeamSearchResult,
    ) -> List[_Chain]:
        if self._pool is not None and len(queue) > 64:
            chunk = (len(queue) + self.config.beam_workers - 1) // self.config.beam_workers
            parts = [queue[i : i + chunk] for i in range(0, len(queue), chunk)]
            outs = list(self._pool.map(self._extend_chains, parts))
        else:
            outs = [self._extend_chains(queue)]
        extensions: List[_Chain] = []
        closed: List[Tuple[CausalEdge, ...]] = []
        # Fold worker-local compat counters in chunk order: totals are
        # deterministic and identical to a serial run's, because the chunks
        # partition the queue and each candidate is matched exactly once.
        for ext, cyc, checker in outs:
            extensions.extend(ext)
            closed.extend(cyc)
            self.compat.absorb(checker)
        for edges in closed:
            self._report(edges, seen_cycles)
        result.chains_explored += len(extensions)
        return extensions

    def _extend_chains(
        self, chains: List[_Chain]
    ) -> Tuple[List[_Chain], List[Tuple[CausalEdge, ...]], CompatChecker]:
        # A worker-local checker: bare int increments on the shared checker
        # would race (and drop counts) across ThreadPoolExecutor workers.
        compat = CompatChecker(enabled=self.compat.enabled)
        extensions: List[_Chain] = []
        closed: List[Tuple[CausalEdge, ...]] = []
        for chain in chains:
            for edge in self._by_src.get(chain.last.dst, ()):
                if edge in chain.edges:
                    continue  # chains never reuse an edge
                if not compat.match(chain.last, edge):
                    continue
                new_edges = chain.edges + (edge,)
                if self._exceeds_delay_cap(new_edges):
                    continue
                if compat.match(edge, chain.first):
                    closed.append(new_edges)
                else:
                    extensions.append(_Chain(new_edges, self._chain_score(new_edges)))
        return extensions, closed, compat

    def _exceeds_delay_cap(self, edges: Tuple[CausalEdge, ...]) -> bool:
        cap = self.config.max_delay_faults
        return cap is not None and self._delay_count(edges) > cap

    def _report(self, edges: Tuple[CausalEdge, ...], seen: Dict[Tuple, Cycle]) -> None:
        cycle = Cycle(edges).canonical()
        seen.setdefault(cycle.key(), cycle)


class BeamSearch:
    """Cycle detector over a causal-edge set (vectorized kernel).

    Drop-in replacement for :class:`ReferenceBeamSearch` with identical
    results and counters; ``config.beam_workers`` is accepted but unused
    (the kernel's array operations replace the thread-level parallelism,
    and the knob is execution-only so results never depend on it).
    """

    def __init__(
        self,
        config: Optional[CSnakeConfig] = None,
        sim_scores: Optional[Dict[FaultKey, float]] = None,
    ) -> None:
        self.config = config or CSnakeConfig()
        self.sim_scores = sim_scores or {}
        self.compat = CompatChecker(enabled=self.config.compat_check)

    def search(self, edges: Sequence[CausalEdge]) -> BeamSearchResult:
        edge_list = list(edges)
        keys = [e.key() for e in edge_list]
        if _np is None or len(set(keys)) != len(keys):
            # Duplicate keys break the id-order ≡ key-order equivalence and
            # the membership-by-id argument (EdgeDB inputs are key-unique;
            # hand-built test edge lists need not be), and numpy may be
            # missing outright — either way the oracle takes over.
            ref = ReferenceBeamSearch(self.config, self.sim_scores)
            result = ref.search(edge_list)
            self.compat = ref.compat
            return result
        return _VectorizedKernel(
            self.config, self.sim_scores, self.compat, edge_list, keys
        ).run()


class _VectorizedKernel:
    """One search over one interned edge set.

    Bit-identity with the reference rests on four invariants (argued in
    DESIGN.md): edge ids are assigned by stable sort of unique ``key()``s,
    so comparing id sequences ≡ comparing key lists; CSR rows preserve the
    reference's insertion-order buckets, so flat candidate order ≡ the
    reference's (chain, bucket-position) generation order, which is what
    picks each dedup class's surviving representative; incremental score
    sums add the same IEEE terms in the same left-to-right order; and the
    argpartition top-``B`` keeps exactly the stable-sort prefix.
    """

    def __init__(
        self,
        config: CSnakeConfig,
        sim_scores: Dict[FaultKey, float],
        compat: CompatChecker,
        edge_list: List[CausalEdge],
        keys: List[Tuple],
    ) -> None:
        self.config = config
        self.compat = compat
        self.n = n = len(edge_list)
        self._checks = 0
        self._rej_fault = 0
        self._rej_state = 0
        if n == 0:
            return
        order = sorted(range(n), key=keys.__getitem__)
        #: Edge objects by interned id (ascending key order).
        self.edges: List[CausalEdge] = [edge_list[i] for i in order]
        #: Edge id at each original input position (the level-0 queue).
        self.input_ids = _np.empty(n, dtype=_np.int64)
        for eid, pos in enumerate(order):
            self.input_ids[pos] = eid

        fault_ids: Dict[FaultKey, int] = {}
        triple_ids: Dict[Tuple[int, int, str], int] = {}
        src = _np.empty(n, dtype=_np.int64)
        dst = _np.empty(n, dtype=_np.int64)
        triple = _np.empty(n, dtype=_np.int64)
        inj = _np.zeros(n, dtype=_np.int64)
        delay = _np.zeros(n, dtype=_np.int64)
        score_term = _np.zeros(n, dtype=_np.float64)
        for eid, e in enumerate(self.edges):
            s = fault_ids.setdefault(e.src, len(fault_ids))
            d = fault_ids.setdefault(e.dst, len(fault_ids))
            src[eid] = s
            dst[eid] = d
            if e.etype in INJECTION_EDGE_TYPES:
                inj[eid] = 1
                if e.src.kind is InjKind.DELAY:
                    delay[eid] = 1
                score_term[eid] = sim_scores.get(e.src, 1.0)
            triple[eid] = triple_ids.setdefault((s, d, e.etype.value), len(triple_ids))
        self.src, self.dst, self.triple = src, dst, triple
        self.inj, self.delay, self.score_term = inj, delay, score_term

        # Source-fault buckets in *input* order — the reference builds
        # ``_by_src`` by appending over the input list, and bucket order
        # decides which interior-test representative survives dedup.
        buckets: Dict[int, List[int]] = {}
        for pos in range(n):
            eid = int(self.input_ids[pos])
            buckets.setdefault(int(src[eid]), []).append(eid)
        empty = _np.empty(0, dtype=_np.int64)
        by_src = {f: _np.asarray(ids, dtype=_np.int64) for f, ids in buckets.items()}
        rows = [by_src.get(int(dst[eid]), empty) for eid in range(n)]
        counts = _np.array([row.shape[0] for row in rows], dtype=_np.int64)
        self.adj_counts = counts
        self.adj_indptr = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(counts, out=self.adj_indptr[1:])
        self.adj = _np.concatenate(rows) if rows else empty

        # Precompute match(l, j) over the CSR entries, which enumerate
        # exactly the fault-compatible ordered pairs (dst[l] == src[j]).
        # State compatibility is memoized per distinct state-set pair.
        total = int(self.adj.shape[0])
        heads = _np.repeat(_np.arange(n, dtype=_np.int64), counts)
        ok = _np.ones(total, dtype=bool)
        if self.compat.enabled:
            set_ids: Dict[frozenset, int] = {}
            sets: List[frozenset] = []

            def _sid(states: frozenset) -> int:
                sid = set_ids.get(states)
                if sid is None:
                    sid = set_ids[states] = len(sets)
                    sets.append(states)
                return sid

            d_sid = [_sid(e.dst_states) for e in self.edges]
            s_sid = [_sid(e.src_states) for e in self.edges]
            pair_ok: Dict[Tuple[int, int], bool] = {}
            adj = self.adj
            for pos in range(total):
                pair = (d_sid[int(heads[pos])], s_sid[int(adj[pos])])
                verdict = pair_ok.get(pair)
                if verdict is None:
                    verdict = pair_ok[pair] = states_compatible(
                        sets[pair[0]], sets[pair[1]]
                    )
                ok[pos] = verdict
        self.adj_ok = ok
        #: Sorted ``l*n + j`` codes of every matching ordered pair — closure
        #: membership (does candidate c match first edge f?) is a
        #: ``searchsorted`` against this array.
        self.match_codes = _np.sort((heads * n + self.adj)[ok])

    # ------------------------------------------------------------- plumbing

    def _is_match(self, left: "_np.ndarray", right: "_np.ndarray") -> "_np.ndarray":
        """Vectorized ``CompatChecker.match`` verdict for ordered id pairs
        (fault-compatible *and* state-compatible), without counters."""
        codes = left * self.n + right
        if self.match_codes.shape[0] == 0:
            return _np.zeros(codes.shape, dtype=bool)
        idx = _np.searchsorted(self.match_codes, codes)
        # Out-of-range probes point past the array; slot 0 holds the
        # minimum code, which such probes can never equal.
        idx[idx == self.match_codes.shape[0]] = 0
        return self.match_codes[idx] == codes

    def _report(self, ids: Sequence[int], seen: Dict[Tuple, Cycle]) -> None:
        cycle = Cycle(tuple(self.edges[int(i)] for i in ids)).canonical()
        seen.setdefault(cycle.key(), cycle)

    # ---------------------------------------------------------------- levels

    def run(self) -> BeamSearchResult:
        result = BeamSearchResult(compat=self.compat)
        if self.n == 0:
            return result
        seen: Dict[Tuple, Cycle] = {}

        # Level 0: every edge is a length-1 chain, in input order (the
        # reference leaves the initial queue unsorted).
        ids = self.input_ids
        cap = self.config.max_delay_faults
        if cap is not None:
            ids = ids[self.delay[ids] <= cap]
        kept = int(ids.shape[0])
        result.chains_explored += kept
        # Self-match (f causes f closes a length-1 cycle): one counted
        # check per surviving edge.
        self._checks += kept
        fault_ok = self.src[ids] == self.dst[ids]
        self._rej_fault += kept - int(fault_ok.sum())
        self_ok = self._is_match(ids, ids)
        self._rej_state += int((fault_ok & ~self_ok).sum())
        for pos in _np.flatnonzero(self_ok):
            self._report((int(ids[pos]),), seen)

        queue = ids[:, None]
        sums = self.score_term[ids].copy()
        cnts = self.inj[ids].copy()
        delays = self.delay[ids].copy()

        while queue.shape[0] and result.levels < self.config.max_chain_len - 1:
            result.levels += 1
            queue, sums, cnts, delays = self._extend_level(
                queue, sums, cnts, delays, seen, result
            )

        self.compat.checks += self._checks
        self.compat.rejected_fault += self._rej_fault
        self.compat.rejected_state += self._rej_state
        result.cycles = [seen[k] for k in sorted(seen)]
        return result

    def _extend_level(
        self,
        queue: "_np.ndarray",
        sums: "_np.ndarray",
        cnts: "_np.ndarray",
        delays: "_np.ndarray",
        seen: Dict[Tuple, Cycle],
        result: BeamSearchResult,
    ) -> Tuple["_np.ndarray", "_np.ndarray", "_np.ndarray", "_np.ndarray"]:
        length = queue.shape[1]

        def _empty_level() -> Tuple[
            "_np.ndarray", "_np.ndarray", "_np.ndarray", "_np.ndarray"
        ]:
            return (
                _np.empty((0, length + 1), dtype=_np.int64),
                _np.empty(0, dtype=_np.float64),
                _np.empty(0, dtype=_np.int64),
                _np.empty(0, dtype=_np.int64),
            )

        # Flat candidate table: one row per (chain, adjacent edge), in
        # (queue order, bucket order) — the reference's generation order.
        last = queue[:, -1]
        deg = self.adj_counts[last]
        total = int(deg.sum())
        if total == 0:
            return _empty_level()
        parent = _np.repeat(_np.arange(queue.shape[0], dtype=_np.int64), deg)
        gpos = _np.repeat(self.adj_indptr[last], deg) + (
            _np.arange(total, dtype=_np.int64) - _np.repeat(_np.cumsum(deg) - deg, deg)
        )
        cand = self.adj[gpos]

        # match(chain.last, edge): candidates come from last.dst's bucket,
        # so the fault leg always holds; only state rejection can fire.
        # Chains never reuse an edge — membership is id equality because
        # keys (hence edges) are unique.
        alive = ~(queue[parent] == cand[:, None]).any(axis=1)
        self._checks += int(alive.sum())
        state_ok = self.adj_ok[gpos]
        self._rej_state += int((alive & ~state_ok).sum())
        alive &= state_ok

        new_delays = delays[parent] + self.delay[cand]
        cap = self.config.max_delay_faults
        if cap is not None:
            alive &= new_delays <= cap

        # match(edge, chain.first): closure check on what survived the cap.
        first = queue[parent, 0]
        self._checks += int(alive.sum())
        fault_ok = self.dst[cand] == self.src[first]
        self._rej_fault += int((alive & ~fault_ok).sum())
        closes = self._is_match(cand, first)
        self._rej_state += int((alive & fault_ok & ~closes).sum())
        for pos in _np.flatnonzero(alive & closes):
            self._report(list(queue[parent[pos]]) + [int(cand[pos])], seen)

        epos = _np.flatnonzero(alive & ~closes)
        result.chains_explored += int(epos.shape[0])
        if epos.shape[0] == 0:
            return _empty_level()
        eparent = parent[epos]
        ecand = cand[epos]
        new_q = _np.concatenate([queue[eparent], ecand[:, None]], axis=1)
        new_sums = sums[eparent] + self.score_term[ecand]
        new_cnts = cnts[eparent] + self.inj[ecand]
        new_del = new_delays[epos]

        # Dedup by (triple sequence, first key, last key), keeping the first
        # occurrence in generation order: lexsort is stable, so within each
        # equal-signature group original positions stay ascending and the
        # group head is the surviving representative.
        sig = _np.empty((epos.shape[0], length + 3), dtype=_np.int64)
        sig[:, : length + 1] = self.triple[new_q]
        sig[:, length + 1] = new_q[:, 0]
        sig[:, length + 2] = new_q[:, -1]
        order = _np.lexsort(sig.T[::-1])
        srows = sig[order]
        head = _np.empty(order.shape[0], dtype=bool)
        head[0] = True
        head[1:] = (srows[1:] != srows[:-1]).any(axis=1)
        keep = _np.sort(order[head])
        new_q, new_sums, new_cnts, new_del = (
            new_q[keep],
            new_sums[keep],
            new_cnts[keep],
            new_del[keep],
        )

        # Rank by (score, id sequence) and keep the stable top B.  Scores
        # divide once at compare time, exactly like the reference's
        # total/len; id-sequence comparison ≡ the reference's key-list
        # comparison because ids were assigned in sorted-key order.
        scores = _np.where(new_cnts > 0, new_sums / _np.maximum(new_cnts, 1), 1.0)
        width = self.config.beam_width
        count = scores.shape[0]
        if count > width:
            # Everything strictly above the B-th smallest score sorts after
            # at least B chains, so restricting the sort to ``scores <=
            # kth`` provably reproduces full-sort[:B].
            kth = _np.partition(scores, width - 1)[width - 1]
            pool = _np.flatnonzero(scores <= kth)
        else:
            pool = _np.arange(count)
        keys = [new_q[pool, col] for col in range(length, -1, -1)]
        keys.append(scores[pool])
        top = pool[_np.lexsort(keys)][:width]
        return new_q[top], new_sums[top], new_cnts[top], new_del[top]
