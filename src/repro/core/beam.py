"""Parallel beam search for self-sustaining cascading failures (Algorithm 1).

Starting from every causal edge as a length-1 chain, each level appends one
edge to each surviving chain (guarded by the local compatibility check) and
reports a cycle whenever a chain closes back onto its first edge.  At each
level only the best ``B`` chains survive, ranked by the mean intra-cluster
interference similarity score of the injected faults in the chain — chains
built from faults with *conditional* consequences (low SimScore) are kept,
as they most resemble the error-handling tangles developers overlook.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import CSnakeConfig
from ..types import CausalEdge, FaultKey, InjKind
from .compat import CompatChecker
from .cycles import INJECTION_EDGE_TYPES, Cycle


@dataclass(frozen=True)
class _Chain:
    edges: Tuple[CausalEdge, ...]
    score: float

    @property
    def last(self) -> CausalEdge:
        return self.edges[-1]

    @property
    def first(self) -> CausalEdge:
        return self.edges[0]


@dataclass
class BeamSearchResult:
    cycles: List[Cycle] = field(default_factory=list)
    chains_explored: int = 0
    levels: int = 0
    compat: Optional[CompatChecker] = None


class BeamSearch:
    """Cycle detector over a causal-edge set."""

    def __init__(
        self,
        config: Optional[CSnakeConfig] = None,
        sim_scores: Optional[Dict[FaultKey, float]] = None,
    ) -> None:
        self.config = config or CSnakeConfig()
        #: SimScore of each fault's cluster; unknown faults default to 1.0
        #: (maximally unconditional, hence ranked last).
        self.sim_scores = sim_scores or {}
        self.compat = CompatChecker(enabled=self.config.compat_check)
        self._pool: Optional[ThreadPoolExecutor] = None

    # -------------------------------------------------------------- scoring

    def _chain_score(self, edges: Tuple[CausalEdge, ...]) -> float:
        injected = [e.src for e in edges if e.etype in INJECTION_EDGE_TYPES]
        if not injected:
            return 1.0
        total = sum(self.sim_scores.get(f, 1.0) for f in injected)
        return total / len(injected)

    def _delay_count(self, edges: Tuple[CausalEdge, ...]) -> int:
        return sum(
            1
            for e in edges
            if e.etype in INJECTION_EDGE_TYPES and e.src.kind is InjKind.DELAY
        )

    # --------------------------------------------------------------- search

    def search(self, edges: Sequence[CausalEdge]) -> BeamSearchResult:
        # One worker pool for the whole search: levels reuse it instead of
        # paying pool construction/teardown at every beam level.
        self._pool = (
            ThreadPoolExecutor(max_workers=self.config.beam_workers)
            if self.config.beam_workers > 1
            else None
        )
        try:
            return self._search(edges)
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def _search(self, edges: Sequence[CausalEdge]) -> BeamSearchResult:
        result = BeamSearchResult(compat=self.compat)
        edge_list = list(edges)
        # Index edges by source fault: a chain ending in fault f can only be
        # extended by edges injecting f, so candidate lookup is O(out-degree)
        # instead of O(|E|).
        self._by_src: Dict[FaultKey, List[CausalEdge]] = {}
        for edge in edge_list:
            self._by_src.setdefault(edge.src, []).append(edge)
        seen_cycles: Dict[Tuple, Cycle] = {}
        queue: List[_Chain] = []
        for edge in edge_list:
            chain = _Chain((edge,), self._chain_score((edge,)))
            if self._exceeds_delay_cap(chain.edges):
                continue
            result.chains_explored += 1
            # A self-edge (f causes f) is already a cycle of length one.
            if self.compat.match(edge, edge):
                self._report(chain.edges, seen_cycles)
            queue.append(chain)

        while queue and result.levels < self.config.max_chain_len - 1:
            result.levels += 1
            extensions = self._extend_level(queue, edge_list, seen_cycles, result)
            # Exact chain deduplication: future extension depends only on the
            # last edge, closure only on the first, and ranking only on the
            # fault-level signature — interior test combinations are
            # interchangeable, so keep one representative per class.
            unique: Dict[Tuple, _Chain] = {}
            for chain in extensions:
                sig = (
                    tuple((e.src, e.dst, e.etype.value) for e in chain.edges),
                    chain.first.key(),
                    chain.last.key(),
                )
                unique.setdefault(sig, chain)
            extensions = list(unique.values())
            extensions.sort(key=lambda c: (c.score, [e.key() for e in c.edges]))
            queue = extensions[: self.config.beam_width]

        result.cycles = [seen_cycles[k] for k in sorted(seen_cycles)]
        return result

    def _extend_level(
        self,
        queue: List[_Chain],
        edge_list: List[CausalEdge],
        seen_cycles: Dict[Tuple, Cycle],
        result: BeamSearchResult,
    ) -> List[_Chain]:
        if self._pool is not None and len(queue) > 64:
            chunk = (len(queue) + self.config.beam_workers - 1) // self.config.beam_workers
            parts = [queue[i : i + chunk] for i in range(0, len(queue), chunk)]
            outs = list(self._pool.map(lambda p: self._extend_chains(p, edge_list), parts))
            extensions: List[_Chain] = []
            closed: List[Tuple[CausalEdge, ...]] = []
            for ext, cyc in outs:
                extensions.extend(ext)
                closed.extend(cyc)
        else:
            extensions, closed = self._extend_chains(queue, edge_list)
        for edges in closed:
            self._report(edges, seen_cycles)
        result.chains_explored += len(extensions)
        return extensions

    def _extend_chains(
        self, chains: List[_Chain], edge_list: List[CausalEdge]
    ) -> Tuple[List[_Chain], List[Tuple[CausalEdge, ...]]]:
        extensions: List[_Chain] = []
        closed: List[Tuple[CausalEdge, ...]] = []
        for chain in chains:
            for edge in self._by_src.get(chain.last.dst, ()):
                if edge in chain.edges:
                    continue  # chains never reuse an edge
                if not self.compat.match(chain.last, edge):
                    continue
                new_edges = chain.edges + (edge,)
                if self._exceeds_delay_cap(new_edges):
                    continue
                if self.compat.match(edge, chain.first):
                    closed.append(new_edges)
                else:
                    extensions.append(_Chain(new_edges, self._chain_score(new_edges)))
        return extensions, closed

    def _exceeds_delay_cap(self, edges: Tuple[CausalEdge, ...]) -> bool:
        cap = self.config.max_delay_faults
        return cap is not None and self._delay_count(edges) > cap

    def _report(self, edges: Tuple[CausalEdge, ...], seen: Dict[Tuple, Cycle]) -> None:
        cycle = Cycle(edges).canonical()
        seen.setdefault(cycle.key(), cycle)
