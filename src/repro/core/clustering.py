"""Hierarchical clustering of causally equivalent faults (§5.2 phase one).

Faults whose phase-one interference vectors are within a cosine-distance
threshold are grouped into one cluster; the 3PA protocol then treats each
cluster, not each fault, as the unit of budget allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..types import FaultKey
from .idf import cosine_distance

try:
    from scipy.cluster.hierarchy import fcluster, linkage
    from scipy.spatial.distance import squareform
except ImportError:  # pragma: no cover
    linkage = None


@dataclass
class FaultCluster:
    """A set of causally equivalent faults."""

    cluster_id: int
    faults: List[FaultKey] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __contains__(self, fault: FaultKey) -> bool:
        return fault in self.faults


@dataclass
class Clustering:
    """Result of hierarchical clustering: clusters plus a reverse index."""

    clusters: List[FaultCluster]
    by_fault: Dict[FaultKey, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.by_fault:
            for cluster in self.clusters:
                for fault in cluster.faults:
                    self.by_fault[fault] = cluster.cluster_id

    def cluster_of(self, fault: FaultKey) -> FaultCluster:
        return self.clusters[self.by_fault[fault]]

    def __len__(self) -> int:
        return len(self.clusters)


def cluster_faults(
    faults: Sequence[FaultKey],
    vectors: Sequence[np.ndarray],
    distance_threshold: float = 0.5,
) -> Clustering:
    """Average-linkage hierarchical clustering on cosine distances.

    Faults are merged while their average cosine distance stays below
    ``distance_threshold``.  Falls back to a simple agglomerative loop if
    scipy is unavailable.
    """
    if len(faults) != len(vectors):
        raise ValueError("faults and vectors must align")
    n = len(faults)
    if n == 0:
        return Clustering(clusters=[])
    if n == 1:
        return Clustering(clusters=[FaultCluster(0, [faults[0]])])

    if linkage is not None:
        dist = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                d = cosine_distance(vectors[i], vectors[j])
                dist[i, j] = dist[j, i] = d
        condensed = squareform(dist, checks=False)
        tree = linkage(condensed, method="average")
        labels = fcluster(tree, t=distance_threshold, criterion="distance")
    else:  # pragma: no cover - scipy is a declared dependency
        labels = _greedy_agglomerate(vectors, distance_threshold)

    groups: Dict[int, List[FaultKey]] = {}
    for fault, label in zip(faults, labels):
        groups.setdefault(int(label), []).append(fault)
    clusters = [
        FaultCluster(i, sorted(members)) for i, (_, members) in enumerate(sorted(groups.items()))
    ]
    return Clustering(clusters=clusters)


def _greedy_agglomerate(vectors: Sequence[np.ndarray], threshold: float) -> List[int]:
    """Fallback single-pass agglomeration (used only without scipy)."""
    labels: List[int] = []
    centroids: List[np.ndarray] = []
    members: List[int] = []
    for vec in vectors:
        best, best_d = -1, threshold
        for ci, centroid in enumerate(centroids):
            d = cosine_distance(vec, centroid)
            if d <= best_d:
                best, best_d = ci, d
        if best < 0:
            labels.append(len(centroids))
            centroids.append(vec.copy())
            members.append(1)
        else:
            labels.append(best)
            centroids[best] = (centroids[best] * members[best] + vec) / (members[best] + 1)
            members[best] += 1
    return labels
