"""Local compatibility check for stitching causal edges (§6.2).

Full path-constraint conjunction checking would need symbolic execution;
CSnake approximates it by requiring, for the fault ``f2`` shared by two
edges (``f1 → f2`` observed in test ``t1``, ``f2 → f3`` injected in test
``t2``):

1. the closest two call-stack levels above ``f2``'s enclosing function
   match between the tests, and
2. the local branch trace (enclosing loop iteration, else enclosing
   function) matches — for loops, *any* pair of iterations matching is
   enough, because delay is injected into every iteration.

Both are encoded in :class:`~repro.types.LocalState`; the check reduces to
a state-set intersection.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..types import CausalEdge, states_compatible


@dataclass
class CompatChecker:
    """Stateful matcher with counters for the ablation benchmarks."""

    enabled: bool = True
    checks: int = 0
    rejected_state: int = 0
    rejected_fault: int = 0

    def match(self, first: CausalEdge, second: CausalEdge) -> bool:
        """Algorithm 1's ``match``: the interference of ``first`` is the
        injected fault of ``second`` and their local states are compatible."""
        self.checks += 1
        if first.dst != second.src:
            self.rejected_fault += 1
            return False
        if self.enabled and not states_compatible(first.dst_states, second.src_states):
            self.rejected_state += 1
            return False
        return True

    def absorb(self, other: "CompatChecker") -> None:
        """Fold a worker-local checker's counters into this one.

        The parallel beam matches each chunk against its own checker and
        absorbs the counters in chunk order — bare int increments on a
        shared checker would race (and silently drop counts) across
        ``ThreadPoolExecutor`` workers.
        """
        self.checks += other.checks
        self.rejected_state += other.rejected_state
        self.rejected_fault += other.rejected_fault

    @property
    def state_rejection_rate(self) -> float:
        considered = self.checks - self.rejected_fault
        return self.rejected_state / considered if considered > 0 else 0.0
