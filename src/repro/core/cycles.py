"""Cycle representation and clustering of reported cycles (§6.3)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..types import CausalEdge, EdgeType, FaultKey, InjKind
from .clustering import Clustering

#: Edge types that represent an actual fault-injection experiment (ICFG and
#: CFG edges are derived from loop nesting, not from an injection).
INJECTION_EDGE_TYPES = frozenset(
    {EdgeType.E_D, EdgeType.SP_D, EdgeType.E_I, EdgeType.SP_I}
)


@dataclass(frozen=True)
class Cycle:
    """A closed propagation chain: a fault that transitively causes itself."""

    edges: Tuple[CausalEdge, ...]

    def __post_init__(self) -> None:
        if not self.edges:
            raise ValueError("a cycle needs at least one edge")

    # ------------------------------------------------------------ identity

    def canonical(self) -> "Cycle":
        """Rotation-invariant canonical form (cycles have no start)."""
        n = len(self.edges)
        rotations = [tuple(self.edges[i:] + self.edges[:i]) for i in range(n)]
        best = min(rotations, key=lambda rot: [e.key() for e in rot])
        return Cycle(best)

    def key(self) -> Tuple:
        """Fault-level identity: two cycles traversing the same faults via
        the same relationship types are the same cascading failure, no
        matter which tests each link was observed in."""
        n = len(self.edges)
        triples = [(e.src, e.dst, e.etype.value) for e in self.edges]
        rotations = [tuple(triples[i:] + triples[:i]) for i in range(n)]
        return min(rotations)

    # ------------------------------------------------------------- content

    def injected_faults(self) -> List[FaultKey]:
        """Faults injected along the cycle (derived edges excluded)."""
        return [e.src for e in self.edges if e.etype in INJECTION_EDGE_TYPES]

    def all_faults(self) -> List[FaultKey]:
        out = []
        for e in self.edges:
            out.append(e.src)
        return out

    def fault_set(self) -> frozenset:
        faults = set()
        for e in self.edges:
            faults.add(e.src)
            faults.add(e.dst)
        return frozenset(faults)

    def tests(self) -> List[str]:
        return sorted({e.test_id for e in self.edges})

    def delay_injections(self) -> int:
        return sum(1 for f in self.injected_faults() if f.kind is InjKind.DELAY)

    def signature(self) -> str:
        """Cycle composition in the paper's Table 3 notation, e.g. ``1D|2E|0N``.

        Kinds beyond the paper's three (registered fault models — e.g. a
        partition's ``P``) are appended as extra ``|<count><char>`` parts,
        so classic cycles keep their historical signatures verbatim.
        """
        counts = Counter(f.kind for f in self.injected_faults())
        sig = "%dD|%dE|%dN" % (
            counts.pop(InjKind.DELAY, 0),
            counts.pop(InjKind.EXCEPTION, 0),
            counts.pop(InjKind.NEGATION, 0),
        )
        if counts:
            from ..faults import model_for  # deferred: faults imports plan

            extras = sorted(
                (model_for(kind).char, n) for kind, n in counts.items()
            )
            sig += "".join("|%d%s" % (n, char) for char, n in extras)
        return sig

    def cluster_signature(self, clustering: Optional[Clustering]) -> Tuple:
        """Multiset of fault clusters involved, for cycle clustering.

        Faults outside the clustering (never injected, e.g. derived parent
        loops) are treated as singleton pseudo-clusters.
        """
        ids: List = []
        for fault in self.injected_faults():
            if clustering is not None and fault in clustering.by_fault:
                ids.append(("G", clustering.by_fault[fault]))
            else:
                ids.append(("f", fault.site_id, fault.kind.value))
        return tuple(sorted(ids))

    def __len__(self) -> int:
        return len(self.edges)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ["%s" % e.src for e in self.edges]
        parts.append(str(self.edges[0].src))
        return " -> ".join(parts) + "  [%s]" % self.signature()


@dataclass
class CycleCluster:
    """Cycles grouped by the fault clusters they involve (§6.3)."""

    signature: Tuple
    cycles: List[Cycle] = field(default_factory=list)

    @property
    def representative(self) -> Cycle:
        """Shortest cycle (ties broken deterministically)."""
        return min(self.cycles, key=lambda c: (len(c), c.key()))

    def __len__(self) -> int:
        return len(self.cycles)


def cluster_cycles(cycles: Sequence[Cycle], clustering: Optional[Clustering]) -> List[CycleCluster]:
    """Group equivalent cycles: same multiset of involved fault clusters."""
    groups: Dict[Tuple, CycleCluster] = {}
    for cycle in cycles:
        sig = cycle.cluster_signature(clustering)
        groups.setdefault(sig, CycleCluster(sig)).cycles.append(cycle)
    return sorted(groups.values(), key=lambda g: g.signature)
