"""The CSnake facade: end-to-end pipeline over one target system.

Wires together the static analyzer, the workload driver, the 3PA budget
allocator, the beam search, cycle clustering, and ground-truth matching
(Figure 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..config import CSnakeConfig
from ..instrument.analyzer import AnalysisResult, analyze
from ..systems.base import SystemSpec
from ..types import FaultKey
from .allocation import AllocationOutcome, ThreePhaseAllocator
from .beam import BeamSearch, BeamSearchResult
from .driver import ExperimentDriver
from .report import DetectionReport, build_report


@dataclass
class CSnake:
    """End-to-end detector for self-sustaining cascading failures."""

    spec: SystemSpec
    config: CSnakeConfig = field(default_factory=CSnakeConfig)

    def __post_init__(self) -> None:
        self.analysis: Optional[AnalysisResult] = None
        self.driver = ExperimentDriver(self.spec, self.config)
        self.allocation: Optional[AllocationOutcome] = None
        self.beam_result: Optional[BeamSearchResult] = None

    # ---------------------------------------------------------------- stages

    def analyze_static(self) -> AnalysisResult:
        """Stage 1: static analyzer selects the injectable fault space F."""
        self.analysis = analyze(self.spec.registry)
        return self.analysis

    def allocate_and_inject(self, faults: Optional[List[FaultKey]] = None) -> AllocationOutcome:
        """Stages 2-3: profile runs, 3PA-allocated injections, FCA."""
        if faults is None:
            if self.analysis is None:
                self.analyze_static()
            faults = list(self.analysis.faults)
        self.driver.profile_all()
        allocator = ThreePhaseAllocator(self.driver, faults, self.config)
        self.allocation = allocator.run()
        return self.allocation

    def detect_cycles(self) -> BeamSearchResult:
        """Stages 4-5: stitch compatible edges, beam-search for cycles."""
        if self.allocation is None:
            raise RuntimeError("run allocate_and_inject() first")
        beam = BeamSearch(self.config, self.allocation.fault_scores)
        self.beam_result = beam.search(self.driver.edges.all_edges())
        return self.beam_result

    def report(self) -> DetectionReport:
        if self.beam_result is None or self.allocation is None:
            raise RuntimeError("pipeline has not run")
        return build_report(
            self.spec,
            self.beam_result.cycles,
            self.allocation.clustering,
            n_faults=len(self.analysis.faults) if self.analysis else 0,
            budget_used=self.allocation.budget_used,
            runs_executed=self.driver.runs_executed,
            n_edges=len(self.driver.edges),
        )

    # ------------------------------------------------------------------ main

    def run(self) -> DetectionReport:
        """Run the whole pipeline and return the detection report."""
        self.analyze_static()
        self.allocate_and_inject()
        self.detect_cycles()
        return self.report()
