"""The CSnake facade, now a thin wrapper over :mod:`repro.pipeline`.

Kept for backwards compatibility: ``CSnake(spec).run()`` and the
per-stage methods (``analyze_static`` / ``allocate_and_inject`` /
``detect_cycles`` / ``report``) behave exactly as before, but every one of
them delegates to the composable pipeline stages, so facade users and
``Pipeline`` users exercise the same code path.  New code should prefer
:class:`repro.pipeline.Pipeline`, which adds stage-graph validation,
parallel execution, progress events, and resumable sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..config import CSnakeConfig
from ..instrument.analyzer import AnalysisResult
from ..pipeline.context import PipelineContext
from ..pipeline.executor import make_executor
from ..pipeline.runner import Pipeline
from ..pipeline.stages import (
    AllocationStage,
    BeamSearchStage,
    ProfileStage,
    ReportStage,
    StaticAnalysisStage,
)
from ..systems.base import SystemSpec
from ..types import FaultKey
from .allocation import AllocationOutcome
from .beam import BeamSearchResult
from .driver import ExperimentDriver
from .report import DetectionReport


@dataclass
class CSnake:
    """End-to-end detector for self-sustaining cascading failures."""

    spec: SystemSpec
    config: CSnakeConfig = field(default_factory=CSnakeConfig)

    def __post_init__(self) -> None:
        self.ctx = PipelineContext(
            self.spec,
            self.config,
            make_executor(
                self.config.experiment_workers,
                self.config.experiment_backend,
                self.config.manager_url,
            ),
        )

    # ----------------------------------------------------- legacy accessors

    @property
    def driver(self) -> ExperimentDriver:
        return self.ctx.driver

    @property
    def analysis(self) -> Optional[AnalysisResult]:
        return self.ctx.get("analysis")

    @property
    def allocation(self) -> Optional[AllocationOutcome]:
        artifact = self.ctx.get("allocation")
        return artifact.outcome if artifact is not None else None

    @property
    def beam_result(self) -> Optional[BeamSearchResult]:
        return self.ctx.get("beam")

    # ---------------------------------------------------------------- stages

    def analyze_static(self) -> AnalysisResult:
        """Stage 1: static analyzer selects the injectable fault space F."""
        StaticAnalysisStage().run(self.ctx)
        return self.ctx.require("analysis")

    def allocate_and_inject(self, faults: Optional[List[FaultKey]] = None) -> AllocationOutcome:
        """Stages 2-3: profile runs, 3PA-allocated injections, FCA."""
        if faults is None and not self.ctx.has("analysis"):
            self.analyze_static()
        if not self.ctx.has("profiles"):
            ProfileStage().run(self.ctx)
        AllocationStage(faults=faults).run(self.ctx)
        return self.ctx.require("allocation").outcome

    def detect_cycles(self) -> BeamSearchResult:
        """Stages 4-5: stitch compatible edges, beam-search for cycles."""
        if not self.ctx.has("allocation"):
            raise RuntimeError("run allocate_and_inject() first")
        BeamSearchStage().run(self.ctx)
        return self.ctx.require("beam")

    def report(self) -> DetectionReport:
        if not self.ctx.has("beam") or not self.ctx.has("allocation"):
            raise RuntimeError("pipeline has not run")
        ReportStage().run(self.ctx)
        return self.ctx.require("report")

    # ------------------------------------------------------------------ main

    def run(self) -> DetectionReport:
        """Run the whole pipeline and return the detection report."""
        Pipeline(self.spec, self.config, ctx=self.ctx).run()
        return self.ctx.require("report")
