"""Workload driver: executes profile and injection runs and feeds FCA.

Each (fault, test) experiment runs the workload ``repeats`` times with the
*same* per-repetition seeds as the test's profile runs — the injection run
is then an exact counterfactual of its profile run (identical seeded
randomness, differing only in the armed fault), which is the strongest
form of the paper's profile/injection comparison.  Delay injections sweep
the configured delay values (§4.2), one FCA per value, interferences
unioned; the sweep counts as a single budget unit.

Experiment execution is split into a pure *execute* step (run the seeded
workload repetitions and FCA — no driver state touched) and an ordered
*commit* step (edge DB, result log, counters).  ``run_experiments`` fans
the execute steps out over a :class:`~repro.pipeline.executor.Executor`
and commits in submission order, so a parallel campaign produces the
exact same ``EdgeDB`` contents and counters as a serial one.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..pipeline.executor import Executor

from ..config import CSnakeConfig
from ..errors import UnknownSite
from ..instrument.plan import InjectionPlan
from ..instrument.runtime import Runtime
from ..instrument.trace import RunGroup, RunTrace
from ..sim import SimEnv
from ..systems.base import SystemSpec, WorkloadSpec
from ..types import FaultKey, InjKind
from .edges import EdgeDB
from .fca import FaultCausalityAnalysis, FcaResult


def _seed_for(test_id: str, rep: int, base: int) -> int:
    """Stable per-(test, repetition) seed shared by profile and injection."""
    digest = hashlib.sha256(("%s#%d#%d" % (test_id, rep, base)).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def run_workload(
    spec: SystemSpec,
    workload: WorkloadSpec,
    plan: Optional[InjectionPlan],
    seed: int,
) -> RunTrace:
    """Execute one run of one workload, optionally with an armed fault."""
    trace = RunTrace(test_id=workload.test_id, injection=plan, seed=seed)
    runtime = Runtime(spec.registry, trace=trace, plan=plan)
    env = SimEnv(workload.sim_config, seed=seed)
    env.runtime = runtime
    runtime.bind_env(env)
    started = time.perf_counter()
    workload.setup(env, runtime)
    env.run(workload.duration_ms)
    trace.wall_time_s = time.perf_counter() - started
    trace.saturated = env.saturated
    trace.virtual_end_ms = env.now
    return trace


@dataclass
class ExperimentDriver:
    """Runs experiments against one system, caching profile runs."""

    spec: SystemSpec
    config: CSnakeConfig = field(default_factory=CSnakeConfig)

    def __post_init__(self) -> None:
        self._profiles: Dict[str, RunGroup] = {}
        self._profile_lock = threading.Lock()
        self.fca = FaultCausalityAnalysis(self.spec.registry, self.config)
        self.edges = EdgeDB()
        self.results: List[FcaResult] = []
        self.experiments_run = 0  # budget units consumed
        self.runs_executed = 0  # individual simulated runs

    # -------------------------------------------------------------- profiles

    def _compute_profile(self, test_id: str) -> RunGroup:
        """Run the profile repetitions of a test (pure; no caching)."""
        workload = self.spec.workloads[test_id]
        group = RunGroup(test_id=test_id, injection=None)
        for rep in range(self.config.repeats):
            seed = _seed_for(test_id, rep, self.config.seed)
            group.add(run_workload(self.spec, workload, None, seed))
        return group

    def profile(self, test_id: str) -> RunGroup:
        """Profile (fault-free) run group of a test; cached."""
        with self._profile_lock:
            group = self._profiles.get(test_id)
            if group is None:
                group = self._compute_profile(test_id)
                self._profiles[test_id] = group
                self.runs_executed += len(group)
        return group

    def profile_all(self, executor: Optional["Executor"] = None) -> None:
        """Profile every workload, optionally fanning tests out over workers.

        Profile runs of different tests are fully independent, so they can
        execute concurrently; the cache is filled in workload-id order
        either way.
        """
        pending = [t for t in self.spec.workload_ids() if t not in self._profiles]
        if executor is None or executor.max_workers <= 1 or len(pending) <= 1:
            for test_id in pending:
                self.profile(test_id)
            return
        groups = executor.map(self._compute_profile, pending)
        with self._profile_lock:
            for test_id, group in zip(pending, groups):
                if test_id not in self._profiles:
                    self._profiles[test_id] = group
                    self.runs_executed += len(group)

    def profiles(self) -> Dict[str, RunGroup]:
        """Snapshot of the profile cache (test id -> run group)."""
        with self._profile_lock:
            return dict(self._profiles)

    def install_profiles(self, groups: Dict[str, RunGroup]) -> None:
        """Seed the profile cache from persisted run groups (session resume)."""
        with self._profile_lock:
            self._profiles.update(groups)

    # -------------------------------------------------------------- coverage

    def tests_reaching(self, fault: FaultKey) -> List[str]:
        """Tests whose profile runs reach the fault's program location."""
        out = []
        for test_id in self.spec.workload_ids():
            if fault.site_id in self.profile(test_id).reached():
                out.append(test_id)
        return out

    def coverage_of(self, test_id: str) -> int:
        return self.profile(test_id).coverage()

    def best_test_for(self, fault: FaultKey) -> Optional[str]:
        """Reaching test with the highest code coverage (phase one rule)."""
        reaching = self.tests_reaching(fault)
        if not reaching:
            return None
        return max(reaching, key=lambda t: (self.coverage_of(t), t))

    # ----------------------------------------------------------- experiments

    def _plans_for(self, fault: FaultKey) -> List[InjectionPlan]:
        warmup = self.config.injection_warmup_ms
        if fault.kind is InjKind.DELAY:
            return [
                InjectionPlan(fault, delay_ms=value, warmup_ms=warmup)
                for value in self.config.delay_values_ms
            ]
        return [
            InjectionPlan(fault, sticky=self.config.sticky_negation, warmup_ms=warmup)
        ]

    def execute_experiment(self, fault: FaultKey, test_id: str) -> Tuple[FcaResult, int]:
        """Pure execution of one experiment: returns (FCA result, runs used).

        Touches no driver state beyond the (lock-protected) profile cache,
        so executions of distinct (fault, test) pairs may run concurrently.
        """
        if fault.site_id not in self.spec.registry:
            raise UnknownSite(fault.site_id)
        workload = self.spec.workloads[test_id]
        profile = self.profile(test_id)
        combined = FcaResult(fault=fault, test_id=test_id)
        interference: Set[FaultKey] = set()
        runs = 0
        for plan in self._plans_for(fault):
            group = RunGroup(test_id=test_id, injection=plan)
            for rep in range(self.config.repeats):
                seed = _seed_for(test_id, rep, self.config.seed)
                group.add(run_workload(self.spec, workload, plan, seed))
                runs += 1
            partial = self.fca.analyze(profile, group)
            combined.edges.extend(partial.edges)
            interference.update(partial.interference)
        combined.interference = sorted(interference)
        return combined, runs

    def commit_result(self, result: FcaResult, runs: int = 0) -> FcaResult:
        """Fold an executed experiment into the edge DB and counters."""
        self.edges.add_all(result.edges)
        self.results.append(result)
        self.experiments_run += 1
        self.runs_executed += runs
        return result

    def run_experiment(self, fault: FaultKey, test_id: str) -> FcaResult:
        """One budget unit: inject ``fault`` into ``test_id`` and run FCA."""
        result, runs = self.execute_experiment(fault, test_id)
        return self.commit_result(result, runs)

    def run_experiments(
        self,
        pairs: Iterable[Tuple[FaultKey, str]],
        executor: Optional["Executor"] = None,
    ) -> List[FcaResult]:
        """Run a batch of independent (fault, test) experiments.

        With an executor, executions fan out across its workers while
        commits happen in ``pairs`` order — the hot path of every campaign,
        and bit-identical to running the batch serially.
        """
        pairs = list(pairs)
        if executor is None or executor.max_workers <= 1 or len(pairs) <= 1:
            return [self.run_experiment(fault, test_id) for fault, test_id in pairs]
        executed = executor.map(lambda p: self.execute_experiment(*p), pairs)
        return [self.commit_result(result, runs) for result, runs in executed]
