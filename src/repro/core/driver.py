"""Workload driver: executes profile and injection runs and feeds FCA.

Each (fault, test) experiment runs the workload ``repeats`` times with the
*same* per-repetition seeds as the test's profile runs — the injection run
is then an exact counterfactual of its profile run (identical seeded
randomness, differing only in the armed fault), which is the strongest
form of the paper's profile/injection comparison.  Delay injections sweep
the configured delay values (§4.2), one FCA per value, interferences
unioned; the sweep counts as a single budget unit.

Experiment execution is split into a pure *execute* step (run the seeded
workload repetitions and FCA — no driver state touched) and an ordered
*commit* step (edge DB, result log, counters).  ``run_experiments`` fans
the execute steps out over a :class:`~repro.pipeline.executor.Executor`
and commits in submission order, so a parallel campaign produces the
exact same ``EdgeDB`` contents and counters as a serial one.

The same split is what makes the content-addressed experiment cache
(:mod:`repro.cache`, enabled via ``CSnakeConfig.cache_dir``) safe: before
dispatching to any backend, the driver resolves cached (fault, test)
results and profile run groups by key digest, and commits replayed
results exactly like fresh ones — a warm campaign skips the simulation
but leaves identical edge-DB contents, counters, and report JSON.

Process-backed executors cannot ship the driver's closures across the
process boundary, so work crosses it as a picklable
:class:`ExperimentTask` *descriptor* — system **name**, test id, fault,
injection-plan payload, and a config snapshot.  The worker resolves the
name through the systems registry and keeps a per-process driver cache
(:func:`execute_experiment_task`), so each worker builds its system spec
once and recomputes each test's profile group at most once.  Profile and
injection runs are pure functions of (spec, config, seeds), which is what
makes the worker-side recomputation bit-identical to the parent's.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover
    from ..pipeline.executor import Executor

from ..config import CSnakeConfig
from ..errors import ReproError, UnknownSite
from ..faults import model_for
from ..instrument.plan import InjectionPlan
from ..instrument.runtime import Runtime
from ..instrument.trace import RunGroup, RunTrace
from ..sim import SimEnv
from ..systems.base import SystemSpec, WorkloadSpec
from ..types import FaultKey
from .edges import EdgeDB
from .fca import FaultCausalityAnalysis, FcaResult


def _seed_for(test_id: str, rep: int, base: int) -> int:
    """Stable per-(test, repetition) seed shared by profile and injection."""
    digest = hashlib.sha256(("%s#%d#%d" % (test_id, rep, base)).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def run_workload(
    spec: SystemSpec,
    workload: WorkloadSpec,
    plan: Optional[InjectionPlan],
    seed: int,
) -> RunTrace:
    """Execute one run of one workload, optionally with an armed fault."""
    trace = RunTrace(test_id=workload.test_id, injection=plan, seed=seed)
    runtime = Runtime(spec.registry, trace=trace, plan=plan)
    env = SimEnv(workload.sim_config, seed=seed)
    env.runtime = runtime
    runtime.bind_env(env)
    if plan is not None:
        # Code-level kinds are armed by the runtime hooks; environment
        # kinds schedule their disturbance on the sim here (a no-op arm
        # for the classic models).
        model_for(plan.fault.kind).arm(env, runtime, plan)
    started = time.perf_counter()
    workload.setup(env, runtime)
    env.run(workload.duration_ms)
    trace.wall_time_s = time.perf_counter() - started
    trace.saturated = env.saturated
    trace.virtual_end_ms = env.now
    return trace


@dataclass(frozen=True)
class ExperimentTask:
    """Picklable by-name work item executed inside a worker process.

    ``fault is None`` marks a profile task (compute the fault-free run
    group of ``test_id``); otherwise the task carries the injection-plan
    payload of one (fault, test) experiment.  The worker resolves
    ``system_name`` through the systems registry — specs themselves hold
    closures and never cross the process boundary.
    """

    system_name: str
    test_id: str
    config_json: str
    fault: Optional[FaultKey] = None
    plans: Tuple[InjectionPlan, ...] = ()


#: Per-process cache of (system name, config) -> driver, so one worker
#: builds each system spec once and computes each profile group once.
_WORKER_DRIVERS: Dict[Tuple[str, str], "ExperimentDriver"] = {}


def _worker_driver(system_name: str, config_json: str) -> "ExperimentDriver":
    key = (system_name, config_json)
    driver = _WORKER_DRIVERS.get(key)
    if driver is None:
        from ..systems import get_system  # deferred: systems import core

        config = CSnakeConfig.from_dict(json.loads(config_json))
        driver = ExperimentDriver(get_system(system_name), config)
        _WORKER_DRIVERS[key] = driver
    return driver


def execute_experiment_task(task: ExperimentTask) -> Union[RunGroup, Tuple[FcaResult, int]]:
    """Worker-process entry point: run one :class:`ExperimentTask`."""
    driver = _worker_driver(task.system_name, task.config_json)
    if task.fault is None:
        return driver.profile(task.test_id)
    return driver._execute_plans(task.fault, task.test_id, list(task.plans))


@dataclass
class ExperimentDriver:
    """Runs experiments against one system, caching profile runs."""

    spec: SystemSpec
    config: CSnakeConfig = field(default_factory=CSnakeConfig)

    def __post_init__(self) -> None:
        self._profiles: Dict[str, RunGroup] = {}
        self._profile_lock = threading.Lock()
        self._plans: Dict[FaultKey, List[InjectionPlan]] = {}
        self.fca = FaultCausalityAnalysis(self.spec.registry, self.config)
        self.edges = EdgeDB()
        self.results: List[FcaResult] = []
        self.experiments_run = 0  # budget units consumed
        self.runs_executed = 0  # individual simulated runs
        self.cache = None
        if self.config.cache_dir:
            from ..cache import ExperimentCache  # deferred: avoids an import cycle

            self.cache = ExperimentCache(self.config.cache_dir, self.spec, self.config)
            # Resolve the code-slice analysis once, eagerly: cache keys
            # embed slice digests, and thread-backend workers computing
            # keys concurrently would otherwise race the spec's lazy
            # memoization (benign — the analysis is deterministic — but
            # needlessly repeated work).
            self.spec.slice_analysis()

    # -------------------------------------------------------------- profiles

    def _compute_profile(self, test_id: str) -> RunGroup:
        """Run the profile repetitions of a test (pure; no caching)."""
        workload = self.spec.workloads[test_id]
        group = RunGroup(test_id=test_id, injection=None)
        for rep in range(self.config.repeats):
            seed = _seed_for(test_id, rep, self.config.seed)
            group.add(run_workload(self.spec, workload, None, seed))
        return group

    def _cached_profile(self, test_id: str) -> RunGroup:
        """Profile group via the experiment cache (compute + store on miss)."""
        if self.cache is None:
            return self._compute_profile(test_id)
        key = self.cache.profile_key(test_id)
        group = self.cache.lookup_profile(key)
        if group is None:
            group = self._compute_profile(test_id)
            self.cache.store_profile(key, test_id, group)
        return group

    def profile(self, test_id: str) -> RunGroup:
        """Profile (fault-free) run group of a test; cached."""
        with self._profile_lock:
            group = self._profiles.get(test_id)
            if group is None:
                group = self._cached_profile(test_id)
                self._profiles[test_id] = group
                self.runs_executed += len(group)
        return group

    def profile_all(self, executor: Optional["Executor"] = None) -> None:
        """Profile every workload, optionally fanning tests out over workers.

        Profile runs of different tests are fully independent, so they can
        execute concurrently; with an experiment cache attached only the
        cache-missing tests are simulated, and either way the in-memory
        cache is filled in workload-id order with identical counters.
        """
        pending = [t for t in self.spec.workload_ids() if t not in self._profiles]
        groups: Dict[str, RunGroup] = {}
        to_run = pending
        keys: Dict[str, str] = {}
        if self.cache is not None:
            for test_id in pending:
                keys[test_id] = self.cache.profile_key(test_id)
                hit = self.cache.lookup_profile(keys[test_id])
                if hit is not None:
                    groups[test_id] = hit
            to_run = [t for t in pending if t not in groups]
        if to_run:
            if executor is None or executor.max_workers <= 1 or len(to_run) <= 1:
                computed = [self._compute_profile(t) for t in to_run]
            elif executor.requires_pickling:
                tasks = [self._profile_task(t) for t in to_run]
                computed = executor.map(execute_experiment_task, tasks)
            else:
                computed = executor.map(self._compute_profile, to_run)
            for test_id, group in zip(to_run, computed):
                groups[test_id] = group
                if self.cache is not None:
                    # Process-backend workers (which rebuild this driver,
                    # cache included) may already have stored the group;
                    # re-writing identical bytes is cheap and keeps the
                    # parent's miss==store counters uniform across backends.
                    self.cache.store_profile(keys[test_id], test_id, group)
        with self._profile_lock:
            for test_id in pending:
                if test_id not in self._profiles:
                    self._profiles[test_id] = groups[test_id]
                    self.runs_executed += len(groups[test_id])

    def profiles(self) -> Dict[str, RunGroup]:
        """Snapshot of the profile cache (test id -> run group)."""
        with self._profile_lock:
            return dict(self._profiles)

    def install_profiles(self, groups: Dict[str, RunGroup]) -> None:
        """Seed the profile cache from persisted run groups (session resume)."""
        with self._profile_lock:
            self._profiles.update(groups)

    # -------------------------------------------------------------- coverage

    def tests_reaching(self, fault: FaultKey) -> List[str]:
        """Tests whose profile runs reach the fault's program location.

        Environment faults have no program location — the simulated world
        they disturb exists in every run — so every workload reaches them.
        """
        if model_for(fault.kind).environment:
            return self.spec.workload_ids()
        out = []
        for test_id in self.spec.workload_ids():
            if fault.site_id in self.profile(test_id).reached():
                out.append(test_id)
        return out

    def coverage_of(self, test_id: str) -> int:
        return self.profile(test_id).coverage()

    def best_test_for(self, fault: FaultKey) -> Optional[str]:
        """Reaching test with the highest code coverage (phase one rule)."""
        reaching = self.tests_reaching(fault)
        if not reaching:
            return None
        return max(reaching, key=lambda t: (self.coverage_of(t), t))

    # ----------------------------------------------------------- experiments

    def _plans_for(self, fault: FaultKey) -> List[InjectionPlan]:
        """The fault's plan sweep, as declared by its registered model.

        Planned through :meth:`FaultModel.plans_for_spec` so models that
        resolve plan content against the system topology (fault
        schedules) see the site registry; single-fault models fall back
        to their plain ``plans_for``.

        Memoized per fault: each experiment derives the same sweep three
        times (cache key, task descriptor, execution), and plans are pure
        functions of (fault, config, registry) — all fixed for the
        driver's lifetime.  Threaded campaigns may race the memo
        benignly: plan derivation is deterministic, so losers overwrite
        winners with identical content.
        """
        plans = self._plans.get(fault)
        if plans is None:
            plans = model_for(fault.kind).plans_for_spec(
                fault, self.config, self.spec.registry
            )
            self._plans[fault] = plans
        return plans

    def execute_experiment(self, fault: FaultKey, test_id: str) -> Tuple[FcaResult, int]:
        """Pure execution of one experiment: returns (FCA result, runs used).

        Touches no driver state beyond the (lock-protected) profile cache,
        so executions of distinct (fault, test) pairs may run concurrently.
        """
        return self._execute_plans(fault, test_id, self._plans_for(fault))

    def _execute_plans(
        self, fault: FaultKey, test_id: str, plans: List[InjectionPlan]
    ) -> Tuple[FcaResult, int]:
        if fault.site_id not in self.spec.registry:
            raise UnknownSite(fault.site_id)
        workload = self.spec.workloads[test_id]
        profile = self.profile(test_id)
        combined = FcaResult(fault=fault, test_id=test_id)
        interference: Set[FaultKey] = set()
        runs = 0
        for plan in plans:
            group = RunGroup(test_id=test_id, injection=plan)
            for rep in range(self.config.repeats):
                seed = _seed_for(test_id, rep, self.config.seed)
                trace = run_workload(self.spec, workload, plan, seed)
                group.add(trace)
                runs += 1
                if trace.saturated:
                    # Graceful degradation: a runaway injection (e.g. a
                    # composed schedule saturating the event loop) stops
                    # at the sim step limit instead of raising; count the
                    # aborted run and keep the campaign going.
                    combined.aborted += 1
            partial = self.fca.analyze(profile, group)
            combined.edges.extend(partial.edges)
            interference.update(partial.interference)
            if partial.min_p is not None and (
                combined.min_p is None or partial.min_p < combined.min_p
            ):
                combined.min_p = partial.min_p
        combined.interference = sorted(interference)
        return combined, runs

    # ----------------------------------------------- process-backend tasks

    def _config_json(self) -> str:
        """Cached canonical config snapshot shipped with task descriptors."""
        snapshot = getattr(self, "_config_json_cache", None)
        if snapshot is None:
            snapshot = json.dumps(self.config.to_dict(), sort_keys=True)
            self._config_json_cache = snapshot
        return snapshot

    def _task_system_name(self) -> str:
        """The registry name workers resolve; fails fast for ad-hoc specs."""
        from ..systems import available_systems  # deferred: systems import core

        name = self.spec.name
        if name not in available_systems():
            raise ReproError(
                "the process backend needs a system registered under "
                "repro.systems to rebuild %r inside workers; use the thread "
                "or serial backend for ad-hoc specs" % (name,)
            )
        return name

    def _experiment_task(self, fault: FaultKey, test_id: str) -> ExperimentTask:
        return ExperimentTask(
            system_name=self._task_system_name(),
            test_id=test_id,
            config_json=self._config_json(),
            fault=fault,
            plans=tuple(self._plans_for(fault)),
        )

    def _profile_task(self, test_id: str) -> ExperimentTask:
        return ExperimentTask(
            system_name=self._task_system_name(),
            test_id=test_id,
            config_json=self._config_json(),
        )

    def commit_result(self, result: FcaResult, runs: int = 0) -> FcaResult:
        """Fold an executed experiment into the edge DB and counters."""
        self.edges.add_all(result.edges)
        self.results.append(result)
        self.experiments_run += 1
        self.runs_executed += runs
        return result

    def run_experiment(self, fault: FaultKey, test_id: str) -> FcaResult:
        """One budget unit: inject ``fault`` into ``test_id`` and run FCA.

        With an experiment cache attached, the cache is consulted first
        and a replayed result commits exactly like a fresh one (including
        the runs counter), so cache-warm campaigns stay bit-identical.
        """
        key = None
        if self.cache is not None:
            key = self.cache.experiment_key(test_id, fault, self._plans_for(fault))
            hit = self.cache.lookup_experiment(key)
            if hit is not None:
                return self.commit_result(*hit)
        result, runs = self.execute_experiment(fault, test_id)
        if key is not None:
            self.cache.store_experiment(key, test_id, fault, result, runs)
        return self.commit_result(result, runs)

    def run_experiments(
        self,
        pairs: Iterable[Tuple[FaultKey, str]],
        executor: Optional["Executor"] = None,
    ) -> List[FcaResult]:
        """Run a batch of independent (fault, test) experiments.

        With an executor, executions fan out across its workers while
        commits happen in ``pairs`` order — the hot path of every campaign,
        and bit-identical to running the batch serially.  With an
        experiment cache attached, cached experiments are resolved before
        dispatch and only the misses reach the backend.
        """
        pairs = list(pairs)
        if executor is None or executor.max_workers <= 1 or len(pairs) <= 1:
            return [self.run_experiment(fault, test_id) for fault, test_id in pairs]
        by_index: Dict[int, Tuple[FcaResult, int]] = {}
        keys: Dict[int, str] = {}
        to_run = list(range(len(pairs)))
        if self.cache is not None:
            for i, (fault, test_id) in enumerate(pairs):
                keys[i] = self.cache.experiment_key(test_id, fault, self._plans_for(fault))
                hit = self.cache.lookup_experiment(keys[i])
                if hit is not None:
                    by_index[i] = hit
            to_run = [i for i in range(len(pairs)) if i not in by_index]
        if to_run:
            if executor.requires_pickling:
                tasks = [self._experiment_task(*pairs[i]) for i in to_run]
                executed = executor.map(execute_experiment_task, tasks)
            else:
                executed = executor.map(lambda i: self.execute_experiment(*pairs[i]), to_run)
            for i, (result, runs) in zip(to_run, executed):
                by_index[i] = (result, runs)
                if self.cache is not None:
                    fault, test_id = pairs[i]
                    self.cache.store_experiment(keys[i], test_id, fault, result, runs)
        return [self.commit_result(*by_index[i]) for i in range(len(pairs))]
