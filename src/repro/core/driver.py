"""Workload driver: executes profile and injection runs and feeds FCA.

Each (fault, test) experiment runs the workload ``repeats`` times with the
*same* per-repetition seeds as the test's profile runs — the injection run
is then an exact counterfactual of its profile run (identical seeded
randomness, differing only in the armed fault), which is the strongest
form of the paper's profile/injection comparison.  Delay injections sweep
the configured delay values (§4.2), one FCA per value, interferences
unioned; the sweep counts as a single budget unit.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..config import CSnakeConfig
from ..errors import UnknownSite
from ..instrument.plan import InjectionPlan
from ..instrument.runtime import Runtime
from ..instrument.trace import RunGroup, RunTrace
from ..sim import SimEnv
from ..systems.base import SystemSpec, WorkloadSpec
from ..types import FaultKey, InjKind
from .edges import EdgeDB
from .fca import FaultCausalityAnalysis, FcaResult


def _seed_for(test_id: str, rep: int, base: int) -> int:
    """Stable per-(test, repetition) seed shared by profile and injection."""
    digest = hashlib.sha256(("%s#%d#%d" % (test_id, rep, base)).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def run_workload(
    spec: SystemSpec,
    workload: WorkloadSpec,
    plan: Optional[InjectionPlan],
    seed: int,
) -> RunTrace:
    """Execute one run of one workload, optionally with an armed fault."""
    trace = RunTrace(test_id=workload.test_id, injection=plan, seed=seed)
    runtime = Runtime(spec.registry, trace=trace, plan=plan)
    env = SimEnv(workload.sim_config, seed=seed)
    env.runtime = runtime
    runtime.bind_env(env)
    started = time.perf_counter()
    workload.setup(env, runtime)
    env.run(workload.duration_ms)
    trace.wall_time_s = time.perf_counter() - started
    trace.saturated = env.saturated
    trace.virtual_end_ms = env.now
    return trace


@dataclass
class ExperimentDriver:
    """Runs experiments against one system, caching profile runs."""

    spec: SystemSpec
    config: CSnakeConfig = field(default_factory=CSnakeConfig)

    def __post_init__(self) -> None:
        self._profiles: Dict[str, RunGroup] = {}
        self.fca = FaultCausalityAnalysis(self.spec.registry, self.config)
        self.edges = EdgeDB()
        self.results: List[FcaResult] = []
        self.experiments_run = 0  # budget units consumed
        self.runs_executed = 0  # individual simulated runs

    # -------------------------------------------------------------- profiles

    def profile(self, test_id: str) -> RunGroup:
        """Profile (fault-free) run group of a test; cached."""
        group = self._profiles.get(test_id)
        if group is None:
            workload = self.spec.workloads[test_id]
            group = RunGroup(test_id=test_id, injection=None)
            for rep in range(self.config.repeats):
                seed = _seed_for(test_id, rep, self.config.seed)
                group.add(run_workload(self.spec, workload, None, seed))
                self.runs_executed += 1
            self._profiles[test_id] = group
        return group

    def profile_all(self) -> None:
        for test_id in self.spec.workload_ids():
            self.profile(test_id)

    # -------------------------------------------------------------- coverage

    def tests_reaching(self, fault: FaultKey) -> List[str]:
        """Tests whose profile runs reach the fault's program location."""
        out = []
        for test_id in self.spec.workload_ids():
            if fault.site_id in self.profile(test_id).reached():
                out.append(test_id)
        return out

    def coverage_of(self, test_id: str) -> int:
        return self.profile(test_id).coverage()

    def best_test_for(self, fault: FaultKey) -> Optional[str]:
        """Reaching test with the highest code coverage (phase one rule)."""
        reaching = self.tests_reaching(fault)
        if not reaching:
            return None
        return max(reaching, key=lambda t: (self.coverage_of(t), t))

    # ----------------------------------------------------------- experiments

    def _plans_for(self, fault: FaultKey) -> List[InjectionPlan]:
        warmup = self.config.injection_warmup_ms
        if fault.kind is InjKind.DELAY:
            return [
                InjectionPlan(fault, delay_ms=value, warmup_ms=warmup)
                for value in self.config.delay_values_ms
            ]
        return [
            InjectionPlan(fault, sticky=self.config.sticky_negation, warmup_ms=warmup)
        ]

    def run_experiment(self, fault: FaultKey, test_id: str) -> FcaResult:
        """One budget unit: inject ``fault`` into ``test_id`` and run FCA."""
        if fault.site_id not in self.spec.registry:
            raise UnknownSite(fault.site_id)
        workload = self.spec.workloads[test_id]
        profile = self.profile(test_id)
        combined = FcaResult(fault=fault, test_id=test_id)
        interference: Set[FaultKey] = set()
        for plan in self._plans_for(fault):
            group = RunGroup(test_id=test_id, injection=plan)
            for rep in range(self.config.repeats):
                seed = _seed_for(test_id, rep, self.config.seed)
                group.add(run_workload(self.spec, workload, plan, seed))
                self.runs_executed += 1
            partial = self.fca.analyze(profile, group)
            combined.edges.extend(partial.edges)
            interference.update(partial.interference)
        combined.interference = sorted(interference)
        self.edges.add_all(combined.edges)
        self.results.append(combined)
        self.experiments_run += 1
        return combined
