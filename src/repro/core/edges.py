"""Edge database: all causal relationships discovered by fault injection."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from ..types import CausalEdge, FaultKey


@dataclass
class EdgeDB:
    """Deduplicated store of causal edges with src-indexed lookup."""

    _edges: Dict[Tuple, CausalEdge] = field(default_factory=dict)
    _by_src: Dict[FaultKey, List[CausalEdge]] = field(default_factory=dict)
    #: Position of each edge key within its ``_by_src`` bucket, so a
    #: state-merge replaces in O(1) instead of linearly scanning the bucket.
    _bucket_pos: Dict[Tuple, int] = field(default_factory=dict)

    def add(self, edge: CausalEdge) -> bool:
        """Insert ``edge``; returns False if an identical edge exists.

        When the same (src, dst, type, test) edge is re-discovered with new
        local states, the state sets are merged so stitching sees every
        context the relationship was observed under.
        """
        key = edge.key()
        existing = self._edges.get(key)
        if existing is not None:
            if (
                edge.src_states <= existing.src_states
                and edge.dst_states <= existing.dst_states
            ):
                return False
            merged = CausalEdge(
                src=edge.src,
                dst=edge.dst,
                etype=edge.etype,
                test_id=edge.test_id,
                src_states=existing.src_states | edge.src_states,
                dst_states=existing.dst_states | edge.dst_states,
            )
            self._replace(key, merged)
            return False
        self._edges[key] = edge
        bucket = self._by_src.setdefault(edge.src, [])
        self._bucket_pos[key] = len(bucket)
        bucket.append(edge)
        return True

    def _replace(self, key: Tuple, new: CausalEdge) -> None:
        self._edges[key] = new
        self._by_src[new.src][self._bucket_pos[key]] = new

    def add_all(self, edges: Iterable[CausalEdge]) -> int:
        return sum(1 for e in edges if self.add(e))

    def edges_from(self, src: FaultKey) -> List[CausalEdge]:
        return list(self._by_src.get(src, ()))

    def all_edges(self) -> List[CausalEdge]:
        return list(self._edges.values())

    def faults(self) -> Set[FaultKey]:
        out: Set[FaultKey] = set()
        for edge in self._edges.values():
            out.add(edge.src)
            out.add(edge.dst)
        return out

    def tests(self) -> Set[str]:
        return {e.test_id for e in self._edges.values()}

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[CausalEdge]:
        return iter(self._edges.values())
