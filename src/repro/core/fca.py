"""Fault causality analysis (§4.3): counterfactual trace comparison.

Given the profile runs of a test (no injection) and the injection runs of a
(fault, test) combination, FCA identifies the *additional* faults the
injection triggered:

* **execution trace interference** — an exception throw or detector
  negation that occurred (naturally) in injection runs but never in profile
  runs → edge types E(D) / E(I);
* **iteration count interference** — a loop whose iteration count
  statistically increased (one-sided t-test, p = 0.1) → S+(D) / S+(I);
* nested/consecutive loop expansion — an S+ interference on a nested loop
  also yields ICFG (child → parent) and CFG (parent → following sibling)
  delay edges (Table 1 rows 5–6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from ..config import CSnakeConfig
from ..faults import model_for
from ..instrument.sites import SiteRegistry
from ..instrument.trace import RunGroup
from ..types import CausalEdge, EdgeType, FaultKey, InjKind, SiteKind
from .stats import one_sided_t_pvalues


@dataclass
class FcaResult:
    """Outcome of analysing one (fault, test) injection experiment."""

    fault: FaultKey
    test_id: str
    edges: List[CausalEdge] = field(default_factory=list)
    #: The interference list I(f, t): additional faults triggered (direct
    #: interferences only; derived ICFG/CFG faults are not part of I).
    interference: List[FaultKey] = field(default_factory=list)
    #: Smallest loop-interference p-value observed across *all* candidate
    #: loop sites — including ones above the significance threshold — or
    #: ``None`` when no loop candidates exist.  The adaptive allocator's
    #: promise signal: "almost significant" experiments earn extra budget.
    min_p: Optional[float] = None
    #: Injection runs that hit the sim step limit (``SimEnv.MAX_EVENTS``)
    #: and were stopped early instead of raising (runaway schedules).
    aborted: int = 0

    @property
    def conditional_ready(self) -> bool:
        return bool(self.interference)


class FaultCausalityAnalysis:
    """Compares profile and injection run groups to derive causal edges."""

    def __init__(self, registry: SiteRegistry, config: Optional[CSnakeConfig] = None) -> None:
        self.registry = registry
        self.config = config or CSnakeConfig()

    # ------------------------------------------------------------- analysis

    def analyze(self, profile: RunGroup, injection: RunGroup) -> FcaResult:
        if injection.injection is None:
            raise ValueError("injection group has no armed fault")
        if profile.test_id != injection.test_id:
            raise ValueError("profile and injection groups are for different tests")
        fault = injection.injection.fault
        result = FcaResult(fault=fault, test_id=injection.test_id)
        self._point_interferences(profile, injection, fault, result)
        self._loop_interferences(profile, injection, fault, result)
        result.interference.sort()
        return result

    def _point_interferences(
        self, profile: RunGroup, injection: RunGroup, fault: FaultKey, result: FcaResult
    ) -> None:
        """Exceptions and negations present under injection, absent in profile."""
        # Edge family by the *model's* declared source class (Table 1):
        # delay-like kinds produce E(D)/S+(D) edges, the rest E(I)/S+(I).
        etype = EdgeType.E_D if model_for(fault.kind).delay_like else EdgeType.E_I
        src_states = injection.injected_states()
        for candidate in sorted(injection.natural_faults()):
            if candidate.kind is InjKind.DELAY:
                continue  # loop faults handled statistically below
            if profile.fault_occurrence_frac(candidate) > 0.0:
                continue  # not counterfactual: happens without the injection
            if injection.fault_occurrence_frac(candidate) < self.config.point_event_min_frac:
                continue  # too rare to attribute (noise damping)
            result.interference.append(candidate)
            result.edges.append(
                CausalEdge(
                    src=fault,
                    dst=candidate,
                    etype=etype,
                    test_id=injection.test_id,
                    src_states=src_states,
                    dst_states=injection.states_of(candidate),
                )
            )

    def _loop_interferences(
        self, profile: RunGroup, injection: RunGroup, fault: FaultKey, result: FcaResult
    ) -> None:
        """Loops whose iteration count statistically increased.

        All candidate sites of the run group are tested in one batched
        (numpy-vectorized) Welch test instead of one python t-test per
        site — the per-experiment hot path of FCA.
        """
        etype = EdgeType.SP_D if model_for(fault.kind).delay_like else EdgeType.SP_I
        src_states = injection.injected_states()
        loop_sites = sorted(injection.loop_sites())
        if not loop_sites:
            return
        treatments = injection.loop_count_rows(loop_sites)
        controls = profile.loop_count_rows(loop_sites)
        pvalues = one_sided_t_pvalues(treatments, controls)
        for site_id, p in zip(loop_sites, pvalues):
            p = float(p)
            if math.isfinite(p) and (result.min_p is None or p < result.min_p):
                result.min_p = p
            if p >= self.config.p_value:
                continue
            dst = FaultKey(site_id, InjKind.DELAY)
            result.interference.append(dst)
            edge = CausalEdge(
                src=fault,
                dst=dst,
                etype=etype,
                test_id=injection.test_id,
                src_states=src_states,
                dst_states=injection.loop_states_of(site_id),
            )
            result.edges.append(edge)
            self._expand_nested(injection, dst, result)

    def _expand_nested(self, injection: RunGroup, delayed: FaultKey, result: FcaResult) -> None:
        """ICFG/CFG expansion for a delayed loop (Table 1 rows 5-6)."""
        site = self.registry.get(delayed.site_id)
        if site.kind is not SiteKind.LOOP or site.loop is None or site.loop.parent is None:
            return
        parent_id = site.loop.parent
        parent = FaultKey(parent_id, InjKind.DELAY)
        result.edges.append(
            CausalEdge(
                src=delayed,
                dst=parent,
                etype=EdgeType.ICFG,
                test_id=injection.test_id,
                src_states=injection.loop_states_of(delayed.site_id),
                dst_states=injection.loop_states_of(parent_id),
            )
        )
        for sibling in self.registry.siblings_after(delayed.site_id):
            if sibling.site_id not in injection.reached():
                continue
            result.edges.append(
                CausalEdge(
                    src=parent,
                    dst=FaultKey(sibling.site_id, InjKind.DELAY),
                    etype=EdgeType.CFG,
                    test_id=injection.test_id,
                    src_states=injection.loop_states_of(parent_id),
                    dst_states=injection.loop_states_of(sibling.site_id),
                )
            )
