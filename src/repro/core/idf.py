"""IDF vectorization of fault interference sets (§A.1).

Each injection experiment yields an interference list ``I(f_i, t_j)`` — the
additional faults triggered.  The vectorizer maps such a list to an
L2-normalised real vector over the fault corpus ``F``, weighting each fault
by its inverse document frequency so that faults triggered by *everything*
(utility-function faults, the "the"s of the corpus) contribute little to
similarity.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..types import FaultKey


class IdfVectorizer:
    """Fits IDF weights over interference lists and vectorizes them.

    ``IDF(f) = log((1 + N) / (1 + N_f))`` where ``N`` is the number of
    experiments and ``N_f`` the number of experiments whose interference
    contains ``f`` (§A.1, smoothed).
    """

    def __init__(self, corpus: Sequence[FaultKey]) -> None:
        if not corpus:
            raise ValueError("fault corpus must be non-empty")
        self._index: Dict[FaultKey, int] = {f: i for i, f in enumerate(sorted(set(corpus)))}
        self._idf = np.zeros(len(self._index))
        self._fitted = False

    @property
    def dim(self) -> int:
        return len(self._index)

    def fit(self, interferences: Iterable[Iterable[FaultKey]]) -> "IdfVectorizer":
        docs: List[set] = [set(doc) for doc in interferences]
        n = len(docs)
        counts = np.zeros(self.dim)
        for doc in docs:
            for fault in doc:
                idx = self._index.get(fault)
                if idx is not None:
                    counts[idx] += 1
        self._idf = np.log((1.0 + n) / (1.0 + counts))
        self._fitted = True
        return self

    def idf_of(self, fault: FaultKey) -> float:
        if not self._fitted:
            raise RuntimeError("vectorizer not fitted")
        idx = self._index.get(fault)
        return float(self._idf[idx]) if idx is not None else 0.0

    def vectorize(self, interference: Iterable[FaultKey]) -> np.ndarray:
        """IDF vector of one interference list, L2-normalised (§A.1 eq. 4)."""
        if not self._fitted:
            raise RuntimeError("vectorizer not fitted")
        vec = np.zeros(self.dim)
        for fault in set(interference):
            idx = self._index.get(fault)
            if idx is not None:
                vec[idx] = self._idf[idx]
        norm = float(np.linalg.norm(vec))
        if norm > 0.0:
            vec /= norm
        return vec


def cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    """``1 - cos(a, b)``; empty (all-zero) vectors are at distance 1 from
    everything except another empty vector (distance 0 — two injections with
    no interference are maximally similar to each other)."""
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na == 0.0 and nb == 0.0:
        return 0.0
    if na == 0.0 or nb == 0.0:
        return 1.0
    cos = float(np.dot(a, b)) / (na * nb)
    return min(1.0, max(0.0, 1.0 - cos))


def mean_pairwise_distance(vectors: Sequence[np.ndarray]) -> float:
    """Average pairwise cosine distance; 0.0 for fewer than two vectors."""
    n = len(vectors)
    if n < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for i in range(n):
        for j in range(i + 1, n):
            total += cosine_distance(vectors[i], vectors[j])
            pairs += 1
    return total / pairs if pairs else 0.0
