"""Detection reports: cycles, cycle clusters, and ground-truth matching."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..systems.base import KnownBug, SystemSpec
from .clustering import Clustering
from .cycles import Cycle, CycleCluster, cluster_cycles


@dataclass
class BugMatch:
    """A known bug and the reported cycles that expose it."""

    bug: KnownBug
    cycles: List[Cycle] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return bool(self.cycles)

    @property
    def best_cycle(self) -> Optional[Cycle]:
        if not self.cycles:
            return None
        return min(self.cycles, key=lambda c: (len(c), c.key()))


@dataclass
class DetectionReport:
    """Full outcome of one CSnake run on one system."""

    system: str
    n_faults: int = 0
    n_tests: int = 0
    budget_used: int = 0
    runs_executed: int = 0
    n_edges: int = 0
    cycles: List[Cycle] = field(default_factory=list)
    cycle_clusters: List[CycleCluster] = field(default_factory=list)
    bug_matches: List[BugMatch] = field(default_factory=list)

    @property
    def detected_bugs(self) -> List[str]:
        return [m.bug.bug_id for m in self.bug_matches if m.detected]

    @property
    def missed_bugs(self) -> List[str]:
        return [m.bug.bug_id for m in self.bug_matches if not m.detected]

    def true_positive_clusters(self) -> List[CycleCluster]:
        """Cycle clusters containing at least one ground-truth cycle."""
        matched = set()
        for match in self.bug_matches:
            for cycle in match.cycles:
                matched.add(cycle.key())
        out = []
        for cluster in self.cycle_clusters:
            if any(c.key() in matched for c in cluster.cycles):
                out.append(cluster)
        return out

    def summary(self) -> Dict[str, int]:
        return {
            "faults": self.n_faults,
            "tests": self.n_tests,
            "budget_used": self.budget_used,
            "edges": self.n_edges,
            "cycles": len(self.cycles),
            "clusters": len(self.cycle_clusters),
            "tp_clusters": len(self.true_positive_clusters()),
            "bugs_detected": len(self.detected_bugs),
            "bugs_total": len(self.bug_matches),
        }


def match_bugs(spec: SystemSpec, cycles: Sequence[Cycle]) -> List[BugMatch]:
    """Match reported cycles against the system's known bugs."""
    matches = []
    for bug in spec.known_bugs:
        match = BugMatch(bug=bug)
        for cycle in cycles:
            if bug.matches(cycle):
                match.cycles.append(cycle)
        matches.append(match)
    return matches


def build_report(
    spec: SystemSpec,
    cycles: Sequence[Cycle],
    clustering: Optional[Clustering],
    *,
    n_faults: int = 0,
    budget_used: int = 0,
    runs_executed: int = 0,
    n_edges: int = 0,
) -> DetectionReport:
    report = DetectionReport(
        system=spec.name,
        n_faults=n_faults,
        n_tests=len(spec.workloads),
        budget_used=budget_used,
        runs_executed=runs_executed,
        n_edges=n_edges,
        cycles=list(cycles),
        cycle_clusters=cluster_cycles(cycles, clustering),
        bug_matches=match_bugs(spec, cycles),
    )
    return report
