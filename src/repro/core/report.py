"""Detection reports: cycles, cycle clusters, and ground-truth matching."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..systems.base import KnownBug, SystemSpec
from ..types import CausalEdge
from .clustering import Clustering
from .cycles import Cycle, CycleCluster, cluster_cycles


def _bug_to_obj(bug: KnownBug) -> Dict[str, Any]:
    from ..serialize import fault_to_obj

    return {
        "bug_id": bug.bug_id,
        "description": bug.description,
        "signature": bug.signature,
        "core_faults": sorted(fault_to_obj(f) for f in bug.core_faults),
        "trigger_faults": sorted(fault_to_obj(f) for f in bug.trigger_faults),
        "alt_detectable": bug.alt_detectable,
        "jira": bug.jira,
    }


def _bug_from_obj(obj: Dict[str, Any]) -> KnownBug:
    from ..serialize import fault_from_obj

    return KnownBug(
        bug_id=obj["bug_id"],
        description=obj["description"],
        signature=obj["signature"],
        core_faults=frozenset(fault_from_obj(f) for f in obj["core_faults"]),
        # .get: reports persisted before trigger faults existed stay readable.
        trigger_faults=frozenset(fault_from_obj(f) for f in obj.get("trigger_faults", [])),
        alt_detectable=obj["alt_detectable"],
        jira=obj["jira"],
    )


def _cluster_sig_to_obj(sig: Tuple) -> List[List[Any]]:
    return [list(entry) for entry in sig]


def _cluster_sig_from_obj(obj: List[List[Any]]) -> Tuple:
    return tuple(tuple(entry) for entry in obj)


@dataclass
class BugMatch:
    """A known bug and the reported cycles that expose it."""

    bug: KnownBug
    cycles: List[Cycle] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return bool(self.cycles)

    @property
    def best_cycle(self) -> Optional[Cycle]:
        if not self.cycles:
            return None
        return min(self.cycles, key=lambda c: (len(c), c.key()))


@dataclass
class DetectionReport:
    """Full outcome of one CSnake run on one system."""

    system: str
    n_faults: int = 0
    n_tests: int = 0
    budget_used: int = 0
    runs_executed: int = 0
    n_edges: int = 0
    #: Injection runs stopped at the sim step limit (runaway composed
    #: faults; graceful degradation — counted, campaign continues).
    aborted_step_limit: int = 0
    cycles: List[Cycle] = field(default_factory=list)
    cycle_clusters: List[CycleCluster] = field(default_factory=list)
    bug_matches: List[BugMatch] = field(default_factory=list)

    @property
    def detected_bugs(self) -> List[str]:
        return [m.bug.bug_id for m in self.bug_matches if m.detected]

    @property
    def missed_bugs(self) -> List[str]:
        return [m.bug.bug_id for m in self.bug_matches if not m.detected]

    def true_positive_clusters(self) -> List[CycleCluster]:
        """Cycle clusters containing at least one ground-truth cycle."""
        matched = set()
        for match in self.bug_matches:
            for cycle in match.cycles:
                matched.add(cycle.key())
        out = []
        for cluster in self.cycle_clusters:
            if any(c.key() in matched for c in cluster.cycles):
                out.append(cluster)
        return out

    def summary(self) -> Dict[str, int]:
        return {
            "faults": self.n_faults,
            "tests": self.n_tests,
            "budget_used": self.budget_used,
            "edges": self.n_edges,
            "cycles": len(self.cycles),
            "clusters": len(self.cycle_clusters),
            "tp_clusters": len(self.true_positive_clusters()),
            "bugs_detected": len(self.detected_bugs),
            "bugs_total": len(self.bug_matches),
            "aborted_step_limit": self.aborted_step_limit,
        }

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable dump (``--json`` / ``--out`` / session files);
        :meth:`from_dict` reconstructs an equivalent report."""
        from ..serialize import cycle_to_obj

        return {
            "system": self.system,
            "n_faults": self.n_faults,
            "n_tests": self.n_tests,
            "budget_used": self.budget_used,
            "runs_executed": self.runs_executed,
            "n_edges": self.n_edges,
            "aborted_step_limit": self.aborted_step_limit,
            "summary": self.summary(),
            "cycles": [cycle_to_obj(c) for c in self.cycles],
            "cycle_clusters": [
                {
                    "signature": _cluster_sig_to_obj(cluster.signature),
                    "cycles": [cycle_to_obj(c) for c in cluster.cycles],
                }
                for cluster in self.cycle_clusters
            ],
            "bug_matches": [
                {
                    "bug": _bug_to_obj(match.bug),
                    "detected": match.detected,
                    "cycles": [cycle_to_obj(c) for c in match.cycles],
                }
                for match in self.bug_matches
            ],
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "DetectionReport":
        from ..serialize import cycle_from_obj

        return cls(
            system=obj["system"],
            n_faults=obj["n_faults"],
            n_tests=obj["n_tests"],
            budget_used=obj["budget_used"],
            runs_executed=obj["runs_executed"],
            n_edges=obj["n_edges"],
            # .get: reports persisted before schedule support lack it.
            aborted_step_limit=obj.get("aborted_step_limit", 0),
            cycles=[cycle_from_obj(c) for c in obj["cycles"]],
            cycle_clusters=[
                CycleCluster(
                    signature=_cluster_sig_from_obj(cluster["signature"]),
                    cycles=[cycle_from_obj(c) for c in cluster["cycles"]],
                )
                for cluster in obj["cycle_clusters"]
            ],
            bug_matches=[
                BugMatch(
                    bug=_bug_from_obj(match["bug"]),
                    cycles=[cycle_from_obj(c) for c in match["cycles"]],
                )
                for match in obj["bug_matches"]
            ],
        )


def _trigger_satisfied(
    bug: KnownBug, cycle: Cycle, edges: Optional[Sequence[CausalEdge]]
) -> bool:
    """A trigger-gated bug needs a discovered edge from one of its trigger
    (environment) faults into the cycle's fault set: the disturbance must
    actually have been observed feeding this cascade."""
    if not bug.trigger_faults:
        return True
    if not edges:
        return False
    targets: frozenset = cycle.fault_set()
    return any(
        e.src in bug.trigger_faults and e.dst in targets for e in edges
    )


def match_bugs(
    spec: SystemSpec,
    cycles: Sequence[Cycle],
    edges: Optional[Sequence[CausalEdge]] = None,
) -> List[BugMatch]:
    """Match reported cycles against the system's known bugs.

    ``edges`` is the campaign's discovered edge set, consulted for bugs
    declaring ``trigger_faults`` (without it, trigger-gated bugs read as
    undetected — e.g. when re-matching a deserialized report).
    """
    matches = []
    for bug in spec.known_bugs:
        match = BugMatch(bug=bug)
        for cycle in cycles:
            if bug.matches(cycle) and _trigger_satisfied(bug, cycle, edges):
                match.cycles.append(cycle)
        matches.append(match)
    return matches


def build_report(
    spec: SystemSpec,
    cycles: Sequence[Cycle],
    clustering: Optional[Clustering],
    *,
    n_faults: int = 0,
    budget_used: int = 0,
    runs_executed: int = 0,
    n_edges: int = 0,
    edges: Optional[Sequence[CausalEdge]] = None,
    aborted_step_limit: int = 0,
) -> DetectionReport:
    report = DetectionReport(
        system=spec.name,
        n_faults=n_faults,
        n_tests=len(spec.workloads),
        budget_used=budget_used,
        runs_executed=runs_executed,
        n_edges=n_edges,
        aborted_step_limit=aborted_step_limit,
        cycles=list(cycles),
        cycle_clusters=cluster_cycles(cycles, clustering),
        bug_matches=match_bugs(spec, cycles, edges),
    )
    return report
