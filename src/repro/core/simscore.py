"""Intra-cluster interference similarity scores (§5.2 / §A.3).

``SimScore(G) = 1 − mean pairwise cosine distance`` of all vectorized
interference results observed for faults in cluster ``G``.  A score of 1
means every injection of every fault in the cluster triggered the same set
of additional faults (no conditional behaviour); low scores flag clusters
with *conditional* causal consequences, which phase three prioritises with
weight ``max(ε, 1 − SimScore)``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..config import EPSILON_WEIGHT
from ..types import FaultKey
from .clustering import Clustering
from .idf import mean_pairwise_distance


def sim_score(vectors: Sequence[np.ndarray]) -> float:
    """SimScore of one cluster from its interference vectors."""
    return 1.0 - mean_pairwise_distance(vectors)


def cluster_sim_scores(
    clustering: Clustering,
    observations: Sequence[Tuple[FaultKey, np.ndarray]],
) -> Dict[int, float]:
    """SimScore per cluster id from (fault, interference-vector) pairs."""
    grouped: Dict[int, List[np.ndarray]] = {c.cluster_id: [] for c in clustering.clusters}
    for fault, vector in observations:
        cid = clustering.by_fault.get(fault)
        if cid is not None:
            grouped[cid].append(vector)
    return {cid: sim_score(vecs) for cid, vecs in grouped.items()}


def allocation_weight(score: float, epsilon: float = EPSILON_WEIGHT) -> float:
    """Phase-three budget weight for a cluster (§A.4)."""
    return max(epsilon, 1.0 - score)


def fault_sim_scores(
    clustering: Clustering, scores_by_cluster: Dict[int, float]
) -> Dict[FaultKey, float]:
    """Per-fault view of the cluster scores (used by chain ranking)."""
    out: Dict[FaultKey, float] = {}
    for fault, cid in clustering.by_fault.items():
        out[fault] = scores_by_cluster.get(cid, 1.0)
    return out
