"""Statistical helpers for fault causality analysis.

The paper uses a one-sided t-test with p = 0.1 to decide whether a loop's
iteration count *statistically increased* in injection runs relative to
profile runs (§4.3).
"""

from __future__ import annotations

import math
import warnings
from typing import Sequence

try:  # scipy is a declared dependency, but keep a pure fallback.
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_stats = None


def one_sided_t_pvalue(treatment: Sequence[float], control: Sequence[float]) -> float:
    """P-value for ``mean(treatment) > mean(control)`` (Welch one-sided).

    Degenerate cases are resolved the way the analysis needs them:

    * fewer than two samples on either side → 1.0 (no evidence);
    * both sides constant and equal → 1.0;
    * both sides constant, treatment strictly higher → 0.0 (a deterministic
      increase is maximal evidence);
    * both sides constant, treatment lower → 1.0.
    """
    if len(treatment) < 2 or len(control) < 2:
        return 1.0
    mt = sum(treatment) / len(treatment)
    mc = sum(control) / len(control)
    vt = sum((x - mt) ** 2 for x in treatment) / (len(treatment) - 1)
    vc = sum((x - mc) ** 2 for x in control) / (len(control) - 1)
    if vt == 0.0 and vc == 0.0:
        return 0.0 if mt > mc else 1.0
    if _scipy_stats is not None:
        with warnings.catch_warnings():
            # Near-identical samples trigger a precision-loss RuntimeWarning;
            # the resulting p-value is still on the right side of 0.1.
            warnings.simplefilter("ignore", RuntimeWarning)
            result = _scipy_stats.ttest_ind(
                list(treatment), list(control), equal_var=False, alternative="greater"
            )
        return float(result.pvalue)
    return _welch_greater_pvalue(mt, mc, vt, vc, len(treatment), len(control))


def _welch_greater_pvalue(mt: float, mc: float, vt: float, vc: float, nt: int, nc: int) -> float:
    """Pure-python Welch t-test (normal approximation of the t CDF)."""
    se = math.sqrt(vt / nt + vc / nc)
    if se == 0.0:
        return 0.0 if mt > mc else 1.0
    t = (mt - mc) / se
    # Normal approximation is adequate for a 0.1 significance screen.
    return 0.5 * math.erfc(t / math.sqrt(2.0))


def significant_increase(
    treatment: Sequence[float], control: Sequence[float], p_value: float = 0.1
) -> bool:
    """True if treatment counts statistically exceed control counts."""
    if not treatment:
        return False
    return one_sided_t_pvalue(treatment, control) < p_value
