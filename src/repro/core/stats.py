"""Statistical helpers for fault causality analysis.

The paper uses a one-sided t-test with p = 0.1 to decide whether a loop's
iteration count *statistically increased* in injection runs relative to
profile runs (§4.3).  :func:`one_sided_t_pvalues` is the batched form FCA
uses on its hot path: all candidate loop sites of a run group are tested
in one vectorized numpy/scipy call instead of one python-level t-test per
site.
"""

from __future__ import annotations

import math
import warnings
from typing import List, Sequence

try:  # scipy is a declared dependency, but keep a pure fallback.
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_stats = None

try:  # numpy powers the batched path; the fallback loops per site.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None


def one_sided_t_pvalue(treatment: Sequence[float], control: Sequence[float]) -> float:
    """P-value for ``mean(treatment) > mean(control)`` (Welch one-sided).

    Degenerate cases are resolved the way the analysis needs them:

    * fewer than two samples on either side → 1.0 (no evidence);
    * both sides constant and equal → 1.0;
    * both sides constant, treatment strictly higher → 0.0 (a deterministic
      increase is maximal evidence);
    * both sides constant, treatment lower → 1.0.
    """
    if len(treatment) < 2 or len(control) < 2:
        return 1.0
    mt = sum(treatment) / len(treatment)
    mc = sum(control) / len(control)
    vt = sum((x - mt) ** 2 for x in treatment) / (len(treatment) - 1)
    vc = sum((x - mc) ** 2 for x in control) / (len(control) - 1)
    if vt == 0.0 and vc == 0.0:
        return 0.0 if mt > mc else 1.0
    if _scipy_stats is not None:
        with warnings.catch_warnings():
            # Near-identical samples trigger a precision-loss RuntimeWarning;
            # the resulting p-value is still on the right side of 0.1.
            warnings.simplefilter("ignore", RuntimeWarning)
            result = _scipy_stats.ttest_ind(
                list(treatment), list(control), equal_var=False, alternative="greater"
            )
        return float(result.pvalue)
    return _welch_greater_pvalue(mt, mc, vt, vc, len(treatment), len(control))


def _welch_greater_pvalue(mt: float, mc: float, vt: float, vc: float, nt: int, nc: int) -> float:
    """Pure-python Welch t-test (normal approximation of the t CDF)."""
    se = math.sqrt(vt / nt + vc / nc)
    if se == 0.0:
        return 0.0 if mt > mc else 1.0
    t = (mt - mc) / se
    # Normal approximation is adequate for a 0.1 significance screen.
    return 0.5 * math.erfc(t / math.sqrt(2.0))


def one_sided_t_pvalues(
    treatments: Sequence[Sequence[float]], controls: Sequence[Sequence[float]]
) -> List[float]:
    """Row-wise batch of :func:`one_sided_t_pvalue`.

    ``treatments[i]`` is tested against ``controls[i]``; all rows of each
    matrix must have equal length (they come from the repeated runs of one
    run group).  Decisions are identical to calling the scalar function
    per row — the degenerate cases are resolved the same way, and the
    non-degenerate rows go through the same Welch test, just vectorized.
    """
    n_rows = len(treatments)
    if n_rows == 0:
        return []
    if _np is None:
        return [one_sided_t_pvalue(t, c) for t, c in zip(treatments, controls)]
    T = _np.asarray(treatments, dtype=float)
    C = _np.asarray(controls, dtype=float)
    out = _np.ones(n_rows)
    if T.shape[1] < 2 or C.shape[1] < 2:
        return out.tolist()
    mt = T.mean(axis=1)
    mc = C.mean(axis=1)
    vt = T.var(axis=1, ddof=1)
    vc = C.var(axis=1, ddof=1)
    const = (vt == 0.0) & (vc == 0.0)
    out[const & (mt > mc)] = 0.0
    live = ~const
    if live.any():
        if _scipy_stats is not None:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                result = _scipy_stats.ttest_ind(
                    T[live], C[live], axis=1, equal_var=False, alternative="greater"
                )
            out[live] = result.pvalue
        else:
            se = _np.sqrt(vt[live] / T.shape[1] + vc[live] / C.shape[1])
            t = (mt[live] - mc[live]) / se
            out[live] = 0.5 * _np.vectorize(math.erfc)(t / math.sqrt(2.0))
    return [float(p) for p in out]


def significant_increase(
    treatment: Sequence[float], control: Sequence[float], p_value: float = 0.1
) -> bool:
    """True if treatment counts statistically exceed control counts."""
    if not treatment:
        return False
    return one_sided_t_pvalue(treatment, control) < p_value
