"""Exception hierarchy shared by the framework and the mini-systems.

``SimFault`` subclasses model the *effects* of faults inside the simulated
distributed systems (software-implemented fault injection, §2 Fault Model).
Framework errors (misconfiguration, protocol violations of the harness
itself) derive from ``ReproError`` instead so they are never confused with
injected or propagated system faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for errors of the framework itself."""


class ConfigError(ReproError):
    """Invalid configuration passed to a framework component."""


class BudgetExhausted(ReproError):
    """The 3PA protocol attempted to run past its test budget."""


class UnknownSite(ReproError):
    """A site id was used that is not present in the site registry."""


class PipelineError(ReproError):
    """Base class for errors of the staged pipeline API."""


class StageDependencyError(PipelineError):
    """A pipeline's stage list cannot satisfy some stage's ``requires``."""


class MissingArtifact(PipelineError):
    """A stage asked the context for an artifact no stage has produced."""


class SessionError(PipelineError):
    """A session directory is unusable (absent, corrupt, or half-written)."""


class SessionMismatch(SessionError):
    """A session was created under a different system or configuration."""


class SimFault(Exception):
    """Base class for fault effects raised inside simulated systems."""


class InjectedFault(SimFault):
    """A fault raised because an injection hook fired (not a natural one).

    Carries the site id so traces can distinguish the injected occurrence
    from natural occurrences of the same fault.
    """

    def __init__(self, site_id: str, wrapped: "SimFault") -> None:
        super().__init__("injected %s at %s" % (type(wrapped).__name__, site_id))
        self.site_id = site_id
        self.wrapped = wrapped


class IOEx(SimFault):
    """Analogue of ``java.io.IOException``."""


class RpcTimeout(IOEx):
    """An RPC did not complete within its timeout."""


class RpcFailure(IOEx):
    """An RPC failed because the callee raised or was unreachable."""


class NodeCrashed(SimFault):
    """The target node of an operation has crashed."""


class ReplicaAlreadyExists(IOEx):
    """HDFS: temporary replica creation raced an existing replica."""


class PrematureEndOfFile(IOEx):
    """HBase: WAL reader hit a truncated trailing record."""


class NotPrimary(IOEx):
    """HDFS HA: RPC reached a NameNode that is no longer active."""


class SafeModeException(IOEx):
    """HDFS: NameNode rejects mutations while in safe mode."""
