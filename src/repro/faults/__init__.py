"""Pluggable fault-model registry: the open set of injectable fault kinds.

The paper's detector shipped a closed taxonomy of three fault kinds wired
through five layers as enum branches.  This package replaces that with a
plugin registry: each kind is a declarative :class:`FaultModel` carrying
its identity, target site kinds, parameter sweep, arm/fire semantics, and
serialization codec.  The driver, static analyzer, serializer, cache, and
CLI all resolve kinds through :func:`model_for` instead of branching.

Bundled models:

* the three paper kinds (:mod:`repro.faults.classic`) — exception, delay,
  negation — bit-identical to their pre-registry behaviour;
* three environment kinds (:mod:`repro.faults.environment`) —
  ``node_crash``, ``partition``, ``msg_drop`` — targeting the environment
  sites a system declares via :class:`EnvFaultPort`.

:func:`fault_models_digest` fingerprints the registered models and is a
component of every experiment-cache key: registering, versioning, or
changing a model invalidates cached results that could now differ.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Tuple, Union

from ..types import InjKind, SiteKind, register_primary_kind
from .base import EnvFaultPort, FaultModel
from .classic import DelayFault, ExceptionFault, NegationFault
from .environment import ENV_STATE, MsgDropFault, NodeCrashFault, PartitionFault

#: Registered models by kind id, in registration order.
_MODELS: Dict[str, FaultModel] = {}

#: The paper's taxonomy — the default ``CSnakeConfig.fault_kinds``.
CLASSIC_FAULT_KINDS: Tuple[str, ...] = ("exception", "delay", "negation")


def register(model: FaultModel) -> FaultModel:
    """Register a fault model, interning its kind handle.

    Re-registering the same kind id replaces the model (supported for
    tests); the interned :class:`InjKind` instance is stable either way.
    """
    if not model.kind_id:
        raise ValueError("a fault model needs a non-empty kind_id")
    InjKind._intern(model.kind_id)
    for site_kind in model.primary_site_kinds:
        register_primary_kind(site_kind, InjKind(model.kind_id))
    _MODELS[model.kind_id] = model
    return model


def model_for(kind: Union[str, InjKind]) -> FaultModel:
    """The registered model behind a kind id or :class:`InjKind` handle.

    Falls back to the fault-*schedule* registry (``repro.faults.schedule``)
    so a composed kind resolves everywhere a single-fault kind does —
    plan validation, serialization codecs, FCA edge typing, signature
    chars — without entering ``_MODELS`` (``expand_kinds("all")`` and
    ``fault_models_digest()`` stay schedule-free).
    """
    kind_id = kind.value if isinstance(kind, InjKind) else kind
    model = _MODELS.get(kind_id)
    if model is not None:
        return model
    from . import schedule as _schedule  # deferred: schedule imports this package

    sched = _schedule._SCHEDULES.get(kind_id)
    if sched is not None:
        return sched
    raise ValueError(
        "no fault model registered for kind %r (known: %s)"
        % (kind_id, ", ".join(list(_MODELS) + list(_schedule._SCHEDULES)))
    )


def all_models() -> List[FaultModel]:
    """Every registered model, in registration order."""
    return list(_MODELS.values())


def registered_kinds() -> List[str]:
    return list(_MODELS)


def models_for_site_kind(site_kind: SiteKind) -> List[FaultModel]:
    """Models that can inject at ``site_kind``, in registration order."""
    return [m for m in _MODELS.values() if site_kind in m.site_kinds]


def expand_kinds(text: Union[str, Iterable[str]]) -> Tuple[str, ...]:
    """Resolve a ``--fault-kinds`` value to a tuple of kind ids.

    Accepts ``"all"`` (every registered kind), ``"classic"`` (the paper's
    three), a comma-separated string, or an iterable of ids.  Unknown ids
    raise ``ValueError`` listing what is registered.
    """
    if isinstance(text, str):
        if text == "all":
            return tuple(_MODELS)
        if text == "classic":
            return CLASSIC_FAULT_KINDS
        names = tuple(n.strip() for n in text.split(",") if n.strip())
    else:
        names = tuple(text)
    unknown = [n for n in names if n not in _MODELS]
    if unknown:
        raise ValueError(
            "unknown fault kind(s) %s; registered: %s"
            % (", ".join(unknown), ", ".join(_MODELS))
        )
    if not names:
        raise ValueError("fault_kinds must name at least one registered kind")
    return names


def fault_models_digest() -> str:
    """Content digest of the registered fault models.

    A component of every experiment-cache key (see ``repro.cache``): any
    change to the set of registered models or to a model's declared
    semantics (its ``version``, targets, parameters) shifts this digest,
    so cached results produced under a different fault vocabulary read as
    clean misses instead of stale hits.
    """
    material = [m.descriptor() for m in sorted(_MODELS.values(), key=lambda m: m.kind_id)]
    return hashlib.sha256(json.dumps(material, sort_keys=True).encode()).hexdigest()


# Bundled models: the paper's three kinds, then the environment kinds.
register(ExceptionFault())
register(DelayFault())
register(NegationFault())
register(NodeCrashFault())
register(PartitionFault())
register(MsgDropFault())

# Compositional fault schedules live in their own registry; importing the
# module (after the single-fault kinds exist — schedules compose them)
# registers the bundled schedules and re-exports the combinator API.
from .schedule import (  # noqa: E402  (models must register first)
    FaultSchedule,
    ScheduleFaultModel,
    TimedFault,
    all_schedules,
    expand_schedules,
    overlap,
    register_schedule,
    registered_schedules,
    schedule_for,
    schedule_model_for,
    schedules_digest,
    seq,
    stagger,
    timed,
)

__all__ = [
    "FaultModel",
    "EnvFaultPort",
    "ENV_STATE",
    "CLASSIC_FAULT_KINDS",
    "register",
    "model_for",
    "all_models",
    "registered_kinds",
    "models_for_site_kind",
    "expand_kinds",
    "fault_models_digest",
    "FaultSchedule",
    "ScheduleFaultModel",
    "TimedFault",
    "timed",
    "seq",
    "overlap",
    "stagger",
    "register_schedule",
    "schedule_for",
    "schedule_model_for",
    "all_schedules",
    "registered_schedules",
    "expand_schedules",
    "schedules_digest",
]
