"""The fault-model plugin API: one declarative class per fault kind.

A :class:`FaultModel` bundles everything the framework needs to know about
one kind of injectable fault:

* **identity** — ``kind_id`` (the wire format of the kind, interned into
  :class:`~repro.types.InjKind`) and ``char`` (its letter in cycle
  signatures like ``1D|1E|0N``);
* **target sites** — which :class:`~repro.types.SiteKind` values host it,
  and whether it is the *primary* kind of those site kinds;
* **parameter sweep** — the plan sweep one budget unit expands to
  (:meth:`plans_for`), driven by :class:`~repro.config.CSnakeConfig`
  sweep values and overridable per kind via ``--sweep``;
* **arm/fire semantics** — code-level kinds are armed by the runtime
  agent's hooks; environment-level kinds override :meth:`arm` to schedule
  their disturbance against the simulated world;
* **serialization codec** — :meth:`params_to_obj` / :meth:`params_from_obj`
  round-trip the model-specific plan parameters.

Adding a fault kind means writing one subclass and registering it — no
enum edits, no new branches in the driver, serializer, or cache.  See
docs/fault-model.md for a worked example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from ..types import FaultKey, InjKind, SiteKind

if TYPE_CHECKING:  # pragma: no cover - typing-only imports (cycle guard)
    from ..config import CSnakeConfig
    from ..instrument.plan import InjectionPlan
    from ..instrument.sites import SiteRegistry


class FaultModel:
    """Base class of all fault kinds; subclasses override the class attrs.

    Instances are stateless — one registered instance serves every
    campaign — so everything here is declarative or derived from the
    ``(fault, config)`` arguments.
    """

    #: Wire identity of the kind (``FaultKey`` serialization, CLI, cache).
    kind_id: str = ""
    #: Single letter used in cycle signatures (``D``/``E``/``N``/...).
    char: str = "?"
    #: Site kinds this model injects at.
    site_kinds: Tuple[SiteKind, ...] = ()
    #: Site kinds for which this model is the *primary* kind (what
    #: ``FaultSite.fault_key`` resolves to).  Subset of ``site_kinds``.
    primary_site_kinds: Tuple[SiteKind, ...] = ()
    #: Table-1 source class: ``True`` puts this kind's edges in the
    #: delay family (``E(D)``/``S+(D)``), ``False`` in the instantaneous
    #: family (``E(I)``/``S+(I)``).
    delay_like: bool = False
    #: Environment-level kinds disturb the simulated world (armed on the
    #: :class:`~repro.sim.SimEnv`), reach every workload by construction,
    #: and are only observable as injections — never as interferences.
    environment: bool = False
    #: Names of the model-specific ``InjectionPlan.params`` entries.
    param_names: Tuple[str, ...] = ()
    #: Bump when the model's semantics change; folded into the
    #: fault-model digest that versions every experiment-cache key.
    version: str = "1"

    # ------------------------------------------------------------- identity

    @property
    def kind(self) -> InjKind:
        return InjKind(self.kind_id)

    def descriptor(self) -> List[Any]:
        """Digest material: everything result-affecting about the model."""
        return [
            self.kind_id,
            self.version,
            self.char,
            sorted(k.value for k in self.site_kinds),
            self.delay_like,
            self.environment,
            list(self.param_names),
        ]

    # ---------------------------------------------------------------- plans

    def sweep_spec(self, config: "CSnakeConfig") -> Dict[str, Tuple[float, ...]]:
        """Parameter name -> swept values under ``config`` (CLI listing)."""
        return {}

    def plans_for(self, fault: FaultKey, config: "CSnakeConfig") -> List["InjectionPlan"]:
        """The plan sweep of one budget unit for ``fault``."""
        raise NotImplementedError

    def plans_for_spec(
        self, fault: FaultKey, config: "CSnakeConfig", registry: "SiteRegistry"
    ) -> List["InjectionPlan"]:
        """Like :meth:`plans_for`, with the target system's site registry.

        Most kinds plan from ``(fault, config)`` alone; models that must
        resolve plan content against the system topology (fault schedules
        resolving site selectors) override this instead.
        """
        return self.plans_for(fault, config)

    def plan_sites(self, plan: "InjectionPlan") -> List[str]:
        """Every site a plan touches (cache slice-invalidation surface).

        Single-fault plans touch only their own site; composed plans
        (schedules) add every event's resolved site so an edit near any
        of them invalidates the cached result.
        """
        return [plan.fault.site_id]

    def validate_sweep(self, values: Tuple[float, ...]) -> None:
        """Reject sweep values this model cannot plan with (``ValueError``).

        Called at config-validation time for ``--sweep`` overrides, so a
        bad value fails at startup instead of mid-campaign.  The default
        matches most knobs (delays, durations): finite and positive.
        """
        import math

        for value in values:
            if not math.isfinite(value) or value <= 0:
                raise ValueError(
                    "%s sweep values must be finite and positive, got %r"
                    % (self.kind_id, value)
                )

    def validate_plan(self, plan: "InjectionPlan") -> None:
        """Reject plan shapes this model cannot arm (raises ``ValueError``)."""
        if plan.delay_ms is not None:
            raise ValueError("delay_ms only applies to delay injection")
        self._validate_param_names(plan)

    def _validate_param_names(self, plan: "InjectionPlan") -> None:
        allowed = set(self.param_names)
        given = {name for name, _ in plan.params}
        unknown = given - allowed
        if unknown:
            raise ValueError(
                "%s plan does not take parameter(s) %s"
                % (self.kind_id, ", ".join(sorted(unknown)))
            )
        missing = allowed - given
        if missing:
            raise ValueError(
                "%s plan requires parameter(s) %s"
                % (self.kind_id, ", ".join(sorted(missing)))
            )

    # ------------------------------------------------------------ semantics

    def arm(self, env: Any, runtime: Any, plan: "InjectionPlan") -> None:
        """Hook called once per run before the workload starts.

        Code-level kinds are armed by the runtime agent's instrumentation
        hooks, so the default is a no-op; environment kinds override this
        to schedule their disturbance on the :class:`~repro.sim.SimEnv`.
        """

    # ---------------------------------------------------------------- codec

    def params_to_obj(self, plan: "InjectionPlan") -> Dict[str, Any]:
        """JSON-compatible dump of the model-specific plan parameters."""
        return {name: value for name, value in plan.params}

    def params_from_obj(self, obj: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
        """Inverse of :meth:`params_to_obj` (sorted tuple form)."""
        return tuple(sorted(obj.items()))


@dataclass(frozen=True)
class EnvFaultPort:
    """A system's declaration of its injectable environment surface.

    Attached to :class:`~repro.systems.base.SystemSpec`; registers one
    ``ENV_NODE`` site per crashable node and one ``ENV_LINK`` site per
    severable node pair, which environment fault models then target
    exactly like code sites.  Node names must match the ``Node.name``
    values the system's workloads construct.
    """

    nodes: Tuple[str, ...] = ()
    links: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        normalized = tuple(tuple(sorted(pair)) for pair in self.links)
        object.__setattr__(self, "links", normalized)
        for a, b in normalized:
            if a == b:
                raise ValueError("a link needs two distinct nodes, got %r" % (a,))

    @staticmethod
    def node_site_id(name: str) -> str:
        return "env.node.%s" % name

    @staticmethod
    def link_site_id(a: str, b: str) -> str:
        a, b = sorted((a, b))
        return "env.link.%s~%s" % (a, b)

    def site_ids(self) -> List[str]:
        out = [self.node_site_id(n) for n in self.nodes]
        out.extend(self.link_site_id(a, b) for a, b in self.links)
        return out

    def register_sites(self, registry: Any) -> None:
        """Declare this port's environment sites in a site registry
        (idempotent — identical redeclaration is a no-op)."""
        for name in self.nodes:
            registry.env_node(self.node_site_id(name), node=name)
        for a, b in self.links:
            registry.env_link(self.link_site_id(a, b), link=(a, b))
