"""The paper's three fault kinds, ported onto the FaultModel registry.

Behaviour is bit-identical to the pre-registry enum branches: the plan
shapes (including the ``sticky`` flag sourced from ``sticky_negation`` and
the warmup), the sweep expansion, and the serialization layout are exactly
what ``driver._plans_for`` and ``serialize.plan_to_obj`` hardcoded before.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..types import FaultKey, SiteKind
from .base import FaultModel


class ExceptionFault(FaultModel):
    """One-time throw at a THROW/LIB_CALL site (§4.2)."""

    kind_id = "exception"
    char = "E"
    site_kinds = (SiteKind.THROW, SiteKind.LIB_CALL)
    primary_site_kinds = (SiteKind.THROW, SiteKind.LIB_CALL)

    def plans_for(self, fault: FaultKey, config) -> List:
        from ..instrument.plan import InjectionPlan

        return [
            InjectionPlan(
                fault,
                sticky=config.sticky_negation,
                warmup_ms=config.injection_warmup_ms,
            )
        ]


class DelayFault(FaultModel):
    """Per-iteration spinning delay at a LOOP site, swept over the
    configured delay values (§4.2) — one FCA per value, one budget unit."""

    kind_id = "delay"
    char = "D"
    site_kinds = (SiteKind.LOOP,)
    primary_site_kinds = (SiteKind.LOOP,)
    delay_like = True

    def sweep_spec(self, config) -> Dict[str, Tuple[float, ...]]:
        return {"delay_ms": config.sweep_for("delay", config.delay_values_ms)}

    def plans_for(self, fault: FaultKey, config) -> List:
        from ..instrument.plan import InjectionPlan

        return [
            InjectionPlan(fault, delay_ms=value, warmup_ms=config.injection_warmup_ms)
            for value in self.sweep_spec(config)["delay_ms"]
        ]

    def validate_plan(self, plan) -> None:
        if plan.delay_ms is None:
            raise ValueError("delay injection requires delay_ms")
        if not plan.delay_ms > 0:
            raise ValueError("delay_ms must be positive, got %r" % (plan.delay_ms,))
        self._validate_param_names(plan)


class NegationFault(FaultModel):
    """Negated return value at a DETECTOR site — once by default, on every
    call while armed when ``sticky_negation`` is configured."""

    kind_id = "negation"
    char = "N"
    site_kinds = (SiteKind.DETECTOR,)
    primary_site_kinds = (SiteKind.DETECTOR,)

    def plans_for(self, fault: FaultKey, config) -> List:
        from ..instrument.plan import InjectionPlan

        return [
            InjectionPlan(
                fault,
                sticky=config.sticky_negation,
                warmup_ms=config.injection_warmup_ms,
            )
        ]
