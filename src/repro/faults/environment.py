"""Environment-level fault models: crash, partition, and message drop.

These kinds disturb the simulated *world* rather than a code path, wired
to the substrate machinery ``repro.sim`` always had (``Node.crash``,
``SimEnv.partition``, silent datagram drop in ``SimEnv.send``) but which
no campaign could reach before the registry existed.  They target the
``ENV_NODE`` / ``ENV_LINK`` sites a system declares through its
:class:`~repro.faults.base.EnvFaultPort`.

Arming is scheduled, not immediate: workloads build their cluster inside
``setup``, so the fire event — placed at the plan's warmup time, like
every other injection — resolves node names against ``env.nodes`` at fire
time.  Each firing records an injected :class:`FaultEvent` under the
synthetic ``("<env>", "<env>")`` local state, which is what FCA uses as
the source states of the edges the disturbance reveals.

Determinism: the message-drop model draws from its own RNG, seeded from
``(site, drop_p, run seed)`` — the main simulation RNG stream (latency
jitter, periodic-tick jitter) is never touched, so an injection run stays
an exact counterfactual of its profile run up to the injected effect.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Tuple

from ..types import EnvMeta, FaultKey, LocalState, SiteKind
from .base import FaultModel

#: Local state attached to environment fault firings (there is no call
#: stack to record — the environment acted, not the program).
ENV_STATE = LocalState(("<env>", "<env>"), ())


def _drop_seed(site_id: str, drop_p: float, run_seed: int) -> int:
    """Stable per-(site, probability, run) seed for the drop RNG."""
    material = "%s#%r#%d" % (site_id, drop_p, run_seed)
    return int.from_bytes(hashlib.sha256(material.encode()).digest()[:8], "big")


class EnvironmentFaultModel(FaultModel):
    """Shared arm/fire plumbing of the environment kinds."""

    environment = True

    def arm(self, env: Any, runtime: Any, plan) -> None:
        meta = runtime.registry.get(plan.fault.site_id).env
        if meta is None:
            raise ValueError(
                "site %s is not an environment site; %s faults need one"
                % (plan.fault.site_id, self.kind_id)
            )
        env.schedule_at(plan.warmup_ms, None, self._fire, env, runtime.trace, plan, meta)

    def _record(self, env: Any, trace: Any, plan) -> None:
        from ..instrument.trace import FaultEvent  # deferred: trace imports plan

        trace.record_event(FaultEvent(plan.fault, env.now, ENV_STATE, injected=True))

    def _fire(self, env: Any, trace: Any, plan, meta: EnvMeta) -> None:
        raise NotImplementedError


class NodeCrashFault(EnvironmentFaultModel):
    """Crash one node at fire time; restart it ``restart_ms`` later.

    A restart clears the crash flag and invokes the node's ``on_restart``
    hook (re-registering periodic behaviour, resetting volatile role
    state); ``restart_ms = 0`` means the node stays down for the rest of
    the run.
    """

    kind_id = "node_crash"
    char = "C"
    site_kinds = (SiteKind.ENV_NODE,)
    primary_site_kinds = (SiteKind.ENV_NODE,)
    param_names = ("restart_ms",)

    def sweep_spec(self, config) -> Dict[str, Tuple[float, ...]]:
        return {"restart_ms": config.sweep_for("node_crash", config.crash_restart_values_ms)}

    def plans_for(self, fault: FaultKey, config) -> List:
        from ..instrument.plan import InjectionPlan, make_params

        return [
            InjectionPlan(
                fault,
                warmup_ms=config.injection_warmup_ms,
                params=make_params(restart_ms=value),
            )
            for value in self.sweep_spec(config)["restart_ms"]
        ]

    def validate_plan(self, plan) -> None:
        super().validate_plan(plan)
        if plan.param("restart_ms") < 0:
            raise ValueError("restart_ms must be >= 0 (0 = never restart)")

    def validate_sweep(self, values) -> None:
        import math

        for value in values:
            if not math.isfinite(value) or value < 0:
                raise ValueError(
                    "node_crash restart_ms sweep values must be finite and "
                    ">= 0 (0 = never restart), got %r" % (value,)
                )

    def _fire(self, env: Any, trace: Any, plan, meta: EnvMeta) -> None:
        node = env.node_named(meta.node)
        if node is None or getattr(node, "crashed", False):
            return  # the workload never built this node, or it is already down
        self._record(env, trace, plan)
        node.crash()
        restart = plan.param("restart_ms", 0.0)
        if restart:
            env.schedule_at(env.now + restart, None, node.restart)


class PartitionFault(EnvironmentFaultModel):
    """Cut one link at fire time; heal it ``duration_ms`` later."""

    kind_id = "partition"
    char = "P"
    site_kinds = (SiteKind.ENV_LINK,)
    primary_site_kinds = (SiteKind.ENV_LINK,)
    param_names = ("duration_ms",)

    def sweep_spec(self, config) -> Dict[str, Tuple[float, ...]]:
        return {"duration_ms": config.sweep_for("partition", config.partition_values_ms)}

    def plans_for(self, fault: FaultKey, config) -> List:
        from ..instrument.plan import InjectionPlan, make_params

        return [
            InjectionPlan(
                fault,
                warmup_ms=config.injection_warmup_ms,
                params=make_params(duration_ms=value),
            )
            for value in self.sweep_spec(config)["duration_ms"]
        ]

    def validate_plan(self, plan) -> None:
        super().validate_plan(plan)
        if not plan.param("duration_ms", 0.0) > 0:
            raise ValueError("partition duration_ms must be positive")

    def _fire(self, env: Any, trace: Any, plan, meta: EnvMeta) -> None:
        a, b = meta.link
        self._record(env, trace, plan)
        env.partition_names(a, b)
        env.schedule_at(env.now + plan.param("duration_ms"), None, env.heal_names, a, b)


class MsgDropFault(EnvironmentFaultModel):
    """Probabilistic, seeded datagram loss on one link from fire time on.

    Only one-way messages (``SimEnv.send``) are dropped — RPCs model a
    connection-oriented transport and keep their timeout semantics.
    """

    kind_id = "msg_drop"
    char = "X"
    site_kinds = (SiteKind.ENV_LINK,)
    param_names = ("drop_p",)

    def sweep_spec(self, config) -> Dict[str, Tuple[float, ...]]:
        return {"drop_p": config.sweep_for("msg_drop", config.drop_prob_values)}

    def plans_for(self, fault: FaultKey, config) -> List:
        from ..instrument.plan import InjectionPlan, make_params

        return [
            InjectionPlan(
                fault,
                warmup_ms=config.injection_warmup_ms,
                params=make_params(drop_p=value),
            )
            for value in self.sweep_spec(config)["drop_p"]
        ]

    def validate_plan(self, plan) -> None:
        super().validate_plan(plan)
        p = plan.param("drop_p", 0.0)
        if not 0.0 < p <= 1.0:
            raise ValueError("drop_p must be in (0, 1], got %r" % (p,))

    def validate_sweep(self, values) -> None:
        for value in values:
            if not 0.0 < value <= 1.0:
                raise ValueError(
                    "msg_drop drop_p sweep values must be in (0, 1], got %r"
                    % (value,)
                )

    def _fire(self, env: Any, trace: Any, plan, meta: EnvMeta) -> None:
        a, b = meta.link
        p = plan.param("drop_p")
        self._record(env, trace, plan)
        env.set_drop_rule(a, b, p, _drop_seed(plan.fault.site_id, p, trace.seed))
