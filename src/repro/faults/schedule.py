"""Compositional fault schedules: k-fault timed compositions.

A :class:`FaultSchedule` is a named composition of *timed events*, each
one an occurrence of a registered single-fault :class:`FaultModel`
(``node_crash``, ``partition``, ...) at a site *selector* and a start
offset.  Compositions are built with three combinators:

* :func:`overlap` — events run concurrently, keeping their own offsets
  (a partition *during* a crash-restart window);
* :func:`seq` — events chain back to back, each one starting when the
  previous one's duration-bearing parameter says it ends;
* :func:`stagger` — one event template fans out across a multi-site
  selector as a wave, successive occurrences ``step_ms`` apart
  (membership churn: rolling crash/restart over every cluster node).

Schedules live in their own registry (:func:`register_schedule`), *not*
in the single-fault model registry — ``expand_kinds("all")`` and
``fault_models_digest()`` are unchanged by registering a schedule, and a
campaign opts in per schedule via ``CSnakeConfig.schedules`` /
``--schedules``.  Each registered schedule is wrapped in a
:class:`ScheduleFaultModel` so the driver, serializer, FCA, and cycle
signatures resolve schedule kinds through the ordinary
:func:`~repro.faults.model_for` path.

Site selectors are resolved against the *anchor* site (the ``ENV_NODE``
site the schedule fault targets) at plan time, purely from the site
registry's declaration order, so plans are deterministic and carry fully
concrete ``(site, kind, offset, params)`` event tuples — worker processes
arm them without re-planning.  :func:`schedules_digest` fingerprints the
registry for the experiment-cache key (schema 4).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Tuple, Union

from ..types import FaultKey, InjKind, SiteKind
from .base import FaultModel

if TYPE_CHECKING:
    from ..config import CSnakeConfig
    from ..instrument.plan import InjectionPlan
    from ..instrument.sites import SiteRegistry

#: Duration-bearing parameter per composable kind: :func:`seq` uses it to
#: chain events back to back (kinds without one count as instantaneous).
_DURATION_PARAM: Dict[str, str] = {
    "node_crash": "restart_ms",
    "partition": "duration_ms",
}

#: Site selectors a timed event may name, resolved at plan time against
#: the schedule's anchor node (see ``ScheduleFaultModel.resolve_events``).
SITE_SELECTORS: Tuple[str, ...] = ("primary", "adjacent_link", "nodes", "other_nodes")


@dataclass(frozen=True)
class TimedFault:
    """One occurrence of a registered fault kind inside a schedule."""

    kind_id: str
    site: str = "primary"
    offset_ms: float = 0.0
    params: Tuple[Tuple[str, float], ...] = ()
    #: Per-occurrence offset increment when ``site`` resolves to several
    #: sites (set by :func:`stagger`; 0 = all occurrences start together).
    stagger_ms: float = 0.0

    def duration_ms(self) -> float:
        """How long this event's disturbance lasts (0 = instantaneous)."""
        name = _DURATION_PARAM.get(self.kind_id)
        if name is None:
            return 0.0
        return dict(self.params).get(name, 0.0)

    def descriptor(self) -> List[Any]:
        return [
            self.kind_id,
            self.site,
            self.offset_ms,
            [[n, v] for n, v in self.params],
            self.stagger_ms,
        ]


def timed(
    kind_id: str, site: str = "primary", offset_ms: float = 0.0, **params: float
) -> TimedFault:
    """A :class:`TimedFault` with validated kind and selector."""
    from . import registered_kinds  # deferred: package imports this module

    if kind_id not in registered_kinds():
        raise ValueError(
            "schedules compose registered single-fault kinds, got %r (known: %s)"
            % (kind_id, ", ".join(registered_kinds()))
        )
    if site not in SITE_SELECTORS:
        raise ValueError(
            "unknown site selector %r; choose from %s" % (site, ", ".join(SITE_SELECTORS))
        )
    return TimedFault(
        kind_id,
        site,
        float(offset_ms),
        tuple(sorted((name, float(value)) for name, value in params.items())),
    )


# ------------------------------------------------------------- combinators


def overlap(*events: TimedFault) -> Tuple[TimedFault, ...]:
    """Concurrent composition: every event keeps its own offset."""
    if not events:
        raise ValueError("overlap() needs at least one event")
    return tuple(events)


def seq(*events: TimedFault, gap_ms: float = 0.0) -> Tuple[TimedFault, ...]:
    """Sequential composition: each event starts after the previous one
    ends (its duration-bearing parameter) plus ``gap_ms``."""
    if not events:
        raise ValueError("seq() needs at least one event")
    out: List[TimedFault] = []
    cursor = 0.0
    for ev in events:
        placed = dataclasses.replace(ev, offset_ms=cursor + ev.offset_ms)
        out.append(placed)
        cursor = placed.offset_ms + ev.duration_ms() + gap_ms
    return tuple(out)


def stagger(event: TimedFault, step_ms: float) -> Tuple[TimedFault, ...]:
    """Wave composition: when ``event.site`` resolves to several sites,
    the i-th occurrence starts ``i * step_ms`` after the first."""
    if step_ms <= 0:
        raise ValueError("stagger step_ms must be positive")
    return (dataclasses.replace(event, stagger_ms=float(step_ms)),)


# ---------------------------------------------------------------- schedule


@dataclass(frozen=True)
class FaultSchedule:
    """A named, registered k-fault composition."""

    name: str
    char: str
    description: str
    events: Tuple[TimedFault, ...]
    version: str = "1"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a fault schedule needs a non-empty name")
        if not self.events:
            raise ValueError("schedule %r composes no events" % self.name)

    def descriptor(self) -> List[Any]:
        """Digest material: everything result-affecting about the schedule."""
        return [
            self.name,
            self.version,
            self.char,
            [ev.descriptor() for ev in self.events],
        ]


class ScheduleFaultModel(FaultModel):
    """FaultModel adapter over one registered :class:`FaultSchedule`.

    Anchored at ``ENV_NODE`` sites: the anchor node is the selector
    origin (``primary``), and every composed event resolves to a concrete
    environment site relative to it.  Arming delegates each resolved
    event to its single-fault model with a sub-plan offset into the run.
    """

    environment = True
    delay_like = False
    site_kinds = (SiteKind.ENV_NODE,)
    # Schedules never claim a site kind's primary fault (node_crash owns
    # ENV_NODE); they are extra keys the analyzer adds when enabled.
    primary_site_kinds: Tuple[SiteKind, ...] = ()
    param_names = ("events",)

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.kind_id = schedule.name
        self.char = schedule.char
        self.version = schedule.version

    def descriptor(self) -> List[Any]:
        return super().descriptor() + [self.schedule.descriptor()]

    # ---------------------------------------------------------------- plans

    def sweep_spec(self, config: "CSnakeConfig") -> Dict[str, Tuple[float, ...]]:
        """One plan per ``time_scale`` value (default: the composition as
        declared); a ``--sweep <name>=0.5,1,2`` override stretches or
        compresses every event offset."""
        return {"time_scale": config.sweep_for(self.kind_id, (1.0,))}

    def plans_for(self, fault: FaultKey, config: "CSnakeConfig") -> List["InjectionPlan"]:
        raise NotImplementedError(
            "schedule %r resolves site selectors against a registry; "
            "plan through plans_for_spec(fault, config, registry)" % self.kind_id
        )

    def plans_for_spec(
        self, fault: FaultKey, config: "CSnakeConfig", registry: "SiteRegistry"
    ) -> List["InjectionPlan"]:
        from ..instrument.plan import InjectionPlan, make_params

        return [
            InjectionPlan(
                fault,
                warmup_ms=config.injection_warmup_ms,
                params=make_params(
                    events=self.resolve_events(fault.site_id, registry, scale)
                ),
            )
            for scale in self.sweep_spec(config)["time_scale"]
        ]

    def resolve_events(
        self, site_id: str, registry: "SiteRegistry", scale: float = 1.0
    ) -> Tuple[Tuple[str, str, float, Tuple[Tuple[str, float], ...]], ...]:
        """Concrete ``(site, kind, offset, params)`` tuples for an anchor.

        Resolution is a pure function of the registry's declaration order
        (deterministic per system builder), so identical plans are built
        in every process of a campaign.
        """
        anchor = registry.get(site_id).env
        if anchor is None or anchor.node is None:
            raise ValueError(
                "schedule %r must anchor at an ENV_NODE site, got %s"
                % (self.kind_id, site_id)
            )
        node_sites = registry.by_kind(SiteKind.ENV_NODE)
        names = [s.env.node for s in node_sites if s.env is not None]
        if anchor.node in names:
            pivot = names.index(anchor.node)
            rotated = names[pivot:] + names[:pivot]
        else:  # pragma: no cover - anchor always among the declared nodes
            rotated = [anchor.node] + names
        by_node = {
            s.env.node: s.site_id for s in node_sites if s.env is not None
        }
        resolved: List[Tuple[str, str, float, Tuple[Tuple[str, float], ...]]] = []
        for ev in self.schedule.events:
            targets = self._targets(ev.site, anchor.node, rotated, by_node, registry)
            for i, target in enumerate(targets):
                offset = (ev.offset_ms + i * ev.stagger_ms) * scale
                resolved.append((target, ev.kind_id, offset, ev.params))
        return tuple(resolved)

    def anchor_sites(self, registry: "SiteRegistry") -> List[str]:
        """ENV_NODE site ids this schedule can anchor at, in declaration
        order — sites whose selectors all resolve (a node with no adjacent
        link cannot anchor a composition that needs one)."""
        out: List[str] = []
        for site in registry.by_kind(SiteKind.ENV_NODE):
            try:
                self.resolve_events(site.site_id, registry)
            except ValueError:
                continue
            out.append(site.site_id)
        return out

    def _targets(
        self,
        selector: str,
        primary: str,
        rotated: List[str],
        by_node: Dict[str, str],
        registry: "SiteRegistry",
    ) -> List[str]:
        if selector == "primary":
            return [by_node[primary]]
        if selector == "nodes":
            return [by_node[n] for n in rotated]
        if selector == "other_nodes":
            return [by_node[n] for n in rotated if n != primary]
        if selector == "adjacent_link":
            links = sorted(
                s.site_id
                for s in registry.by_kind(SiteKind.ENV_LINK)
                if s.env is not None and s.env.link is not None and primary in s.env.link
            )
            if not links:
                raise ValueError(
                    "schedule %r needs a link adjacent to node %r, but the "
                    "system declares none" % (self.kind_id, primary)
                )
            return links[:1]
        raise ValueError("unknown site selector %r" % selector)

    # ----------------------------------------------------------- validation

    def validate_plan(self, plan: "InjectionPlan") -> None:
        super().validate_plan(plan)
        events = plan.param("events", ())
        if not events:
            raise ValueError("schedule %r plan composes no events" % self.kind_id)
        for entry in events:
            if len(entry) != 4:
                raise ValueError(
                    "schedule event must be (site, kind, offset_ms, params), got %r"
                    % (entry,)
                )
            _, _, offset_ms, _ = entry
            if offset_ms < 0:
                raise ValueError("schedule event offsets must be >= 0")

    # ------------------------------------------------------------ semantics

    def arm(self, env: Any, runtime: Any, plan: "InjectionPlan") -> None:
        """Arm every composed event as a sub-plan of its own model."""
        from . import model_for
        from ..instrument.plan import InjectionPlan

        for site_id, kind_id, offset_ms, params in plan.param("events", ()):
            sub_plan = InjectionPlan(
                FaultKey(site_id, InjKind(kind_id)),
                warmup_ms=plan.warmup_ms + offset_ms,
                params=params,
            )
            model_for(kind_id).arm(env, runtime, sub_plan)

    def plan_sites(self, plan: "InjectionPlan") -> List[str]:
        sites = {plan.fault.site_id}
        sites.update(site_id for site_id, _, _, _ in plan.param("events", ()))
        return sorted(sites)

    # ---------------------------------------------------------------- codec

    def params_to_obj(self, plan: "InjectionPlan") -> Dict[str, Any]:
        return {
            "events": [
                [site_id, kind_id, offset_ms, [[n, v] for n, v in params]]
                for site_id, kind_id, offset_ms, params in plan.param("events", ())
            ]
        }

    def params_from_obj(self, obj: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
        events = tuple(
            (
                str(site_id),
                str(kind_id),
                float(offset_ms),
                tuple((str(n), float(v)) for n, v in params),
            )
            for site_id, kind_id, offset_ms, params in obj.get("events", [])
        )
        return (("events", events),)


# ---------------------------------------------------------------- registry

#: Registered schedules by name, in registration order.
_SCHEDULES: Dict[str, ScheduleFaultModel] = {}


def register_schedule(schedule: FaultSchedule) -> FaultSchedule:
    """Register a schedule, interning its kind handle.

    Schedule names share the :class:`InjKind` namespace with single-fault
    kinds (a ``FaultKey`` must resolve unambiguously), so a schedule may
    not shadow a registered model id.
    """
    from . import registered_kinds

    if schedule.name in registered_kinds():
        raise ValueError(
            "schedule name %r collides with a registered fault kind" % schedule.name
        )
    InjKind._intern(schedule.name)
    _SCHEDULES[schedule.name] = ScheduleFaultModel(schedule)
    return schedule


def schedule_model_for(name: Union[str, InjKind]) -> ScheduleFaultModel:
    """The :class:`ScheduleFaultModel` wrapper behind a schedule name."""
    name_id = name.value if isinstance(name, InjKind) else name
    try:
        return _SCHEDULES[name_id]
    except KeyError:
        raise ValueError(
            "no fault schedule registered as %r (known: %s)"
            % (name_id, ", ".join(_SCHEDULES))
        ) from None


def schedule_for(name: Union[str, InjKind]) -> FaultSchedule:
    return schedule_model_for(name).schedule


def all_schedules() -> List[FaultSchedule]:
    """Every registered schedule, in registration order."""
    return [m.schedule for m in _SCHEDULES.values()]


def registered_schedules() -> List[str]:
    return list(_SCHEDULES)


def expand_schedules(text: Union[str, Tuple[str, ...], List[str]]) -> Tuple[str, ...]:
    """Resolve a ``--schedules`` value to a tuple of schedule names.

    Accepts ``"all"``, a comma-separated string, or an iterable of names;
    unknown names raise ``ValueError`` listing what is registered.
    """
    if isinstance(text, str):
        if text == "all":
            return tuple(_SCHEDULES)
        names = tuple(n.strip() for n in text.split(",") if n.strip())
    else:
        names = tuple(text)
    unknown = [n for n in names if n not in _SCHEDULES]
    if unknown:
        raise ValueError(
            "unknown fault schedule(s) %s; registered: %s"
            % (", ".join(unknown), ", ".join(_SCHEDULES))
        )
    if not names:
        raise ValueError("schedules must name at least one registered schedule")
    return names


def schedules_digest() -> str:
    """Content digest of the registered schedules (cache-key axis).

    Like :func:`~repro.faults.fault_models_digest` but over the schedule
    registry: registering, versioning, or recomposing a schedule shifts
    this digest, so cached results produced under a different schedule
    vocabulary read as clean misses.
    """
    material = [
        m.schedule.descriptor()
        for m in sorted(_SCHEDULES.values(), key=lambda m: m.kind_id)
    ]
    return hashlib.sha256(json.dumps(material, sort_keys=True).encode()).hexdigest()


# Bundled schedules.
register_schedule(
    FaultSchedule(
        name="membership_churn",
        char="M",
        description="rolling crash/restart wave across every cluster node, "
        "anchor node first",
        events=stagger(
            timed("node_crash", site="nodes", restart_ms=10_000.0), step_ms=15_000.0
        ),
    )
)
register_schedule(
    FaultSchedule(
        name="partition_during_restart",
        char="R",
        description="crash/restart the anchor node and cut its first link "
        "while it recovers",
        events=overlap(
            timed("node_crash", site="primary", restart_ms=20_000.0),
            timed("partition", site="adjacent_link", offset_ms=5_000.0,
                  duration_ms=40_000.0),
        ),
    )
)
