"""Instrumentation layer: fault sites, static analyzer, runtime agent.

This package substitutes the paper's WALA static analyzer and Byteman
runtime agent.  Mini-systems *declare* their instrumented program locations
in a :class:`~repro.instrument.sites.SiteRegistry` (with the same static
metadata WALA would extract: loop nesting, I/O, bounds, detector purity) and
call :class:`~repro.instrument.runtime.Runtime` hooks at those locations.
The analyzer applies the paper's §4.1/§7 filtering rules; the runtime
performs injection and records the traces fault causality analysis consumes.
"""

from .plan import InjectionPlan
from .runtime import Runtime
from .sites import FaultSite, SiteRegistry
from .trace import FaultEvent, RunGroup, RunTrace

__all__ = [
    "FaultSite",
    "SiteRegistry",
    "Runtime",
    "InjectionPlan",
    "FaultEvent",
    "RunTrace",
    "RunGroup",
]
