"""Static analyzer: selects injectable faults from a site registry.

Applies the paper's conservative filtering rules:

* exceptions (§4.1): reflection- and security-related exceptions and
  exceptions only reachable from tests are excluded;
* loops (§4.1 scalability analysis): loops with a provably constant
  iteration bound are excluded, as are the lowest-ranked 10% of loops by
  reachable-code size unless they perform I/O;
* detectors (§7): boolean functions whose return value depends only on
  final/configuration variables, is constant/unused, or is computed purely
  from primitive utility state are excluded;
* reachability (code-slice analysis, ``repro.analysis``): sites whose
  enclosing function is statically unreachable from every workload entry
  point are excluded — no workload can ever drive execution through them,
  so budget spent there is wasted.  Only applied when a slice analysis is
  supplied *and* every entry point resolved (unresolved sites are kept,
  conservatively).

The output is the fault space ``F`` the 3PA protocol allocates budget over,
plus the monitor-point inventory for the Table 2 reproduction.  A site may
trip several filters; ``AnalysisResult.excluded`` keeps every reason.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..config import LOOP_SIZE_PRUNE_FRAC
from ..faults import CLASSIC_FAULT_KINDS, schedule_model_for
from ..types import FaultKey, InjKind, SiteKind
from .sites import FaultSite, SiteRegistry

if TYPE_CHECKING:  # pragma: no cover - typing-only import (cycle guard)
    from ..analysis.slicer import SliceAnalysis


@dataclass
class AnalysisResult:
    """Injectable fault space plus bookkeeping for reporting."""

    system: str
    faults: List[FaultKey] = field(default_factory=list)
    #: site_id -> every reason that excluded it (a site can trip several
    #: filters, e.g. constant-bound *and* statically unreachable).
    excluded: Dict[str, List[str]] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def fault_sites(self) -> List[str]:
        return [f.site_id for f in self.faults]

    def exclude(self, site_id: str, reason: str) -> None:
        self.excluded.setdefault(site_id, []).append(reason)


class StaticAnalyzer:
    """Rule-based fault selection over a declared site registry.

    ``fault_kinds`` names the registered fault models the campaign may
    inject with (``CSnakeConfig.fault_kinds``); sites whose only models
    are disabled are excluded with an explanatory reason, exactly like
    the paper's static filters.  ``schedules`` names registered fault
    *schedules* (``CSnakeConfig.schedules``): each enabled schedule adds
    one composed fault per environment site it can anchor at.  ``slices``
    (a :class:`repro.analysis.SliceAnalysis`) enables the reachability
    rule.
    """

    def __init__(
        self,
        registry: SiteRegistry,
        loop_prune_frac: float = LOOP_SIZE_PRUNE_FRAC,
        fault_kinds: Optional[Sequence[str]] = None,
        slices: Optional["SliceAnalysis"] = None,
        schedules: Optional[Sequence[str]] = None,
    ) -> None:
        self.registry = registry
        self.loop_prune_frac = loop_prune_frac
        self.fault_kinds = (
            tuple(fault_kinds) if fault_kinds is not None else CLASSIC_FAULT_KINDS
        )
        self.slices = slices
        self.schedules = tuple(schedules) if schedules is not None else ()

    def _enabled(self, kind_id: str) -> bool:
        return kind_id in self.fault_kinds

    def _exclude_kind_disabled(self, result: AnalysisResult, sites: List[FaultSite], kind_id: str) -> None:
        for site in sites:
            result.exclude(site.site_id, "fault kind %r not enabled" % kind_id)

    # ----------------------------------------------------------- per-kind

    def _select_throws(self, result: AnalysisResult) -> None:
        sites = self.registry.by_kind(SiteKind.THROW) + self.registry.by_kind(SiteKind.LIB_CALL)
        if not self._enabled("exception"):
            self._exclude_kind_disabled(result, sites, "exception")
            return
        for site in sites:
            meta = site.throw
            assert meta is not None
            if meta.reflection_related:
                result.exclude(site.site_id, "reflection-related exception")
            elif meta.security_related:
                result.exclude(site.site_id, "security-related exception")
            elif meta.test_only:
                result.exclude(site.site_id, "only reachable from tests")
            else:
                result.faults.append(site.fault_key)

    def _select_loops(self, result: AnalysisResult) -> None:
        loops = self.registry.loops()
        if not self._enabled("delay"):
            self._exclude_kind_disabled(result, loops, "delay")
            return
        candidates: List[FaultSite] = []
        for site in loops:
            meta = site.loop
            assert meta is not None
            if meta.constant_bound:
                result.exclude(site.site_id, "constant iteration bound")
            else:
                candidates.append(site)
        if not candidates:
            return
        # Rank by reachable-code size; prune the bottom fraction unless the
        # loop performs I/O.
        ranked = sorted(candidates, key=lambda s: (s.loop.body_size, s.site_id))
        n_prune = math.floor(len(ranked) * self.loop_prune_frac)
        pruned_ids = set()
        for site in ranked[:n_prune]:
            if not site.loop.does_io:
                pruned_ids.add(site.site_id)
                result.exclude(
                    site.site_id,
                    "short loop without I/O (bottom %d%% by size)"
                    % int(self.loop_prune_frac * 100),
                )
        for site in candidates:
            if site.site_id not in pruned_ids:
                result.faults.append(site.fault_key)

    def _select_detectors(self, result: AnalysisResult) -> None:
        sites = self.registry.by_kind(SiteKind.DETECTOR)
        if not self._enabled("negation"):
            self._exclude_kind_disabled(result, sites, "negation")
            return
        for site in sites:
            meta = site.detector
            assert meta is not None
            if meta.final_only:
                result.exclude(site.site_id, "return depends only on final/config variables")
            elif meta.constant_return:
                result.exclude(site.site_id, "constant return value")
            elif meta.unused_return:
                result.exclude(site.site_id, "return value never used")
            elif meta.primitive_only:
                result.exclude(site.site_id, "primitive-only utility predicate")
            else:
                result.faults.append(site.fault_key)

    def _select_env(self, result: AnalysisResult) -> None:
        """Environment sites: one fault key per enabled model targeting the
        site kind (a link site hosts partition *and* msg_drop faults)."""
        for site in self.registry.env_sites():
            keys = [k for k in site.fault_keys() if self._enabled(k.kind.value)]
            if not keys:
                result.exclude(site.site_id, "environment fault kinds not enabled")
                continue
            result.faults.extend(keys)

    def _select_schedules(self, result: AnalysisResult) -> None:
        """Composed fault schedules: one fault per (schedule, anchor site).

        A schedule anchors at the environment node sites where all of its
        site selectors resolve (a node with no adjacent link cannot anchor
        a composition that needs one); the other events are resolved
        relative to that anchor at planning time.
        """
        for name in self.schedules:
            model = schedule_model_for(name)
            for site_id in model.anchor_sites(self.registry):
                result.faults.append(FaultKey(site_id, InjKind(name)))

    def _prune_unreachable(self, result: AnalysisResult) -> int:
        """Reachability rule: drop faults at sites the slice analysis
        proves unreachable from every workload entry point.  Applies to
        filter-surviving faults *and* stamps an extra reason on already
        excluded unreachable sites (multi-reason bookkeeping)."""
        slices = self.slices
        if slices is None or not slices.reachability_trusted:
            return 0
        reason = "statically unreachable from any workload entry point"
        kept: List[FaultKey] = []
        dropped = 0
        for fault in result.faults:
            if slices.is_reachable(fault.site_id):
                kept.append(fault)
            else:
                if reason not in result.excluded.get(fault.site_id, []):
                    result.exclude(fault.site_id, reason)
                dropped += 1
        result.faults = kept
        for site_id in list(result.excluded):
            if not slices.is_reachable(site_id) and reason not in result.excluded[site_id]:
                result.exclude(site_id, reason)
        return dropped

    # -------------------------------------------------------------- driver

    def analyze(self) -> AnalysisResult:
        result = AnalysisResult(system=self.registry.system)
        self._select_throws(result)
        self._select_loops(result)
        self._select_detectors(result)
        self._select_env(result)
        self._select_schedules(result)
        n_unreachable = self._prune_unreachable(result)
        result.faults.sort()
        result.counts = self.registry.counts()
        result.counts["injectable"] = len(result.faults)
        result.counts["excluded"] = len(result.excluded)
        if self.slices is not None:
            result.counts["unreachable_pruned"] = n_unreachable
            result.counts["slices_resolved"] = len(self.slices.site_roots)
            result.counts["slices_unresolved"] = len(self.slices.unresolved)
        return result


def analyze(
    registry: SiteRegistry,
    fault_kinds: Optional[Sequence[str]] = None,
    slices: Optional["SliceAnalysis"] = None,
    schedules: Optional[Sequence[str]] = None,
) -> AnalysisResult:
    """Convenience wrapper: run the static analyzer with default settings
    (``fault_kinds`` defaults to the paper's classic taxonomy)."""
    return StaticAnalyzer(
        registry, fault_kinds=fault_kinds, slices=slices, schedules=schedules
    ).analyze()
