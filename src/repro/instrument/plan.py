"""Injection plans: what the runtime agent (or the sim) arms for one run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..types import FaultKey, InjKind

#: Generic per-model parameters of a plan, as a sorted, hashable tuple of
#: (name, value) pairs — e.g. ``(("duration_ms", 15000.0),)`` for a
#: partition fault.  The classic kinds keep their dedicated fields
#: (``delay_ms``, ``sticky``) for ergonomics and serialization stability.
PlanParams = Tuple[Tuple[str, Any], ...]


def make_params(**values: Any) -> PlanParams:
    """Normalize keyword parameters into the canonical sorted tuple form."""
    return tuple(sorted(values.items()))


@dataclass(frozen=True)
class InjectionPlan:
    """One armed fault for one run.

    * ``EXCEPTION``: a one-time throw the next time the guarding
      if-statement (throw point) or library call site is reached.
    * ``DELAY``: ``delay_ms`` of spinning added to **every** iteration of
      the target loop.
    * ``NEGATION``: the detector's return value is negated — on every call
      while armed if ``sticky`` (default, a stuck error detector), else once.
    * environment kinds (``node_crash`` / ``partition`` / ``msg_drop``):
      armed against the simulation environment instead of a code hook,
      with their model-specific knobs carried in ``params``.

    Validation is delegated to the fault's registered
    :class:`~repro.faults.FaultModel`, so a new fault kind brings its own
    plan-shape rules instead of growing branches here.
    """

    fault: FaultKey
    delay_ms: Optional[float] = None
    sticky: bool = True
    #: Injections stay dormant until this virtual time: firing the one-time
    #: fault into a cold, empty system exercises nothing (§2's "different
    #: time points" — we pick a warmed-up one).
    warmup_ms: float = 0.0
    #: Model-specific parameters (sorted (name, value) pairs).
    params: PlanParams = ()

    def __post_init__(self) -> None:
        if self.params and tuple(sorted(self.params)) != self.params:
            object.__setattr__(self, "params", tuple(sorted(self.params)))
        from ..faults import model_for  # deferred: faults builds plans

        model_for(self.fault.kind).validate_plan(self)

    @property
    def site_id(self) -> str:
        return self.fault.site_id

    def param(self, name: str, default: Any = None) -> Any:
        """Value of one model-specific parameter."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.fault.kind is InjKind.DELAY:
            return "%s(%.0fms)" % (self.fault, self.delay_ms or 0.0)
        if self.params:
            knobs = ",".join("%s=%g" % (k, v) for k, v in self.params)
            return "%s(%s)" % (self.fault, knobs)
        return str(self.fault)
