"""Injection plans: what the runtime agent arms for one run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..types import FaultKey, InjKind


@dataclass(frozen=True)
class InjectionPlan:
    """One armed fault for one run.

    * ``EXCEPTION``: a one-time throw the next time the guarding
      if-statement (throw point) or library call site is reached.
    * ``DELAY``: ``delay_ms`` of spinning added to **every** iteration of
      the target loop.
    * ``NEGATION``: the detector's return value is negated — on every call
      while armed if ``sticky`` (default, a stuck error detector), else once.
    """

    fault: FaultKey
    delay_ms: Optional[float] = None
    sticky: bool = True
    #: Injections stay dormant until this virtual time: firing the one-time
    #: fault into a cold, empty system exercises nothing (§2's "different
    #: time points" — we pick a warmed-up one).
    warmup_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.fault.kind is InjKind.DELAY and not self.delay_ms:
            raise ValueError("delay injection requires delay_ms")
        if self.fault.kind is not InjKind.DELAY and self.delay_ms:
            raise ValueError("delay_ms only applies to delay injection")

    @property
    def site_id(self) -> str:
        return self.fault.site_id

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.fault.kind is InjKind.DELAY:
            return "%s(%.0fms)" % (self.fault, self.delay_ms or 0.0)
        return str(self.fault)
