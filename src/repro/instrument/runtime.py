"""Runtime agent: fault injection hooks and trace recording.

Mini-system code calls these hooks at its declared sites:

* ``with rt.function("Cls.method"):`` — call-stack frame (2-call-site
  sensitivity for local states);
* ``if rt.branch("site", cond):`` — monitor point, records the outcome
  locally (within the enclosing loop iteration or function);
* ``for x in rt.loop("site", items):`` / ``while rt.loop_guard("site", c):``
  — iteration counting, per-iteration local states, delay injection;
* ``rt.throw_point("site", ExcCls, natural=cond)`` — throw point: raises
  when the guard is naturally true or when an exception injection is armed;
* ``value = rt.detector("site", value)`` — error detector: records natural
  error returns and applies negation injection.

The runtime is deliberately cheap when ``enabled=False`` so the §8.5
overhead experiment can compare instrumented vs bare execution.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterable, Iterator, List, Optional, Type

from ..config import MAX_STATES_PER_SITE
from ..errors import SimFault, UnknownSite
from ..types import FaultKey, InjKind, LocalState
from .plan import InjectionPlan
from .sites import SiteRegistry
from .trace import FaultEvent, RunTrace

_ROOT = "<root>"


class _Scope:
    """A local branch-recording scope: a function body or loop iteration.

    ``owner`` is ``None`` for a function-body scope and the loop site id for
    an iteration scope.
    """

    __slots__ = ("owner", "branches")

    def __init__(self, owner: Optional[str]) -> None:
        self.owner = owner
        self.branches: List[tuple] = []


class _Frame:
    """One function invocation on the instrumented call stack."""

    __slots__ = ("site", "scopes", "above")

    def __init__(self, site: str, above: tuple) -> None:
        self.site = site
        self.scopes: List[_Scope] = [_Scope(None)]
        #: The two call-stack levels above this frame (2-call-site
        #: sensitivity) — fixed for the frame's lifetime, so local-state
        #: recording reads it instead of re-walking the stack.
        self.above = above


class Runtime:
    """Injection + monitoring agent for one run of one workload."""

    def __init__(
        self,
        registry: SiteRegistry,
        trace: Optional[RunTrace] = None,
        plan: Optional[InjectionPlan] = None,
        env: Any = None,
        enabled: bool = True,
    ) -> None:
        self.registry = registry
        self.trace = trace if trace is not None else RunTrace(test_id="<untracked>")
        self.plan = plan
        self.env = env
        self.enabled = enabled
        self._frames: List[_Frame] = []
        self._exception_fired = False
        self._negation_fired = False
        self._injected_delay_iters = 0
        # Interned recording: resolve site ids to dense integers once and
        # record into the trace's flat stores, avoiding per-event string
        # hashing (the §8.5 overhead hot path).
        self._index = registry.interner().mapping
        if enabled:
            self.trace.bind_interner(registry.interner())
        # Iteration states already recorded, keyed by the raw
        # (site, stack, branches) tuples: repeat states of a hot loop skip
        # LocalState construction and dataclass hashing entirely.
        self._state_memo: set = set()
        self._detector_meta: dict = {}

    def bind_env(self, env: Any) -> None:
        """Attach the simulation environment (needed for delay injection)."""
        self.env = env

    # ------------------------------------------------------------- internals

    def _now(self) -> float:
        return self.env.now if self.env is not None else 0.0

    def _spin(self, ms: float) -> None:
        if self.env is not None:
            self.env.spin(ms)

    def _stack_above_enclosing(self) -> tuple:
        """Closest two call-stack levels above the enclosing function."""
        frames = self._frames
        return frames[-1].above if frames else (_ROOT, _ROOT)

    def _local_state(self) -> LocalState:
        branches = tuple(self._frames[-1].scopes[-1].branches) if self._frames else ()
        return LocalState(self._stack_above_enclosing(), branches)

    def _armed(self, site_id: str, kind: InjKind) -> bool:
        return (
            self.plan is not None
            and self.plan.fault.site_id == site_id
            and self.plan.fault.kind is kind
            and self._now() >= self.plan.warmup_ms
        )

    def _record_iteration_state(self, site_id: str, scope: _Scope) -> None:
        key = (site_id, self._stack_above_enclosing(), tuple(scope.branches))
        if key in self._state_memo:
            return
        states = self.trace.states_bucket(site_id)
        if len(states) < MAX_STATES_PER_SITE:
            self._state_memo.add(key)
            states.add(LocalState(key[1], key[2]))

    # ----------------------------------------------------------- call stack

    @contextmanager
    def function(self, site_id: str) -> Iterator[None]:
        """Push an instrumented function frame."""
        if not self.enabled:
            yield
            return
        frames = self._frames
        n = len(frames)
        above = (
            frames[n - 1].site if n >= 1 else _ROOT,
            frames[n - 2].site if n >= 2 else _ROOT,
        )
        frames.append(_Frame(site_id, above))
        try:
            yield
        finally:
            frames.pop()

    # -------------------------------------------------------------- branches

    def branch(self, site_id: str, cond: Any) -> bool:
        """Record a monitor-point branch outcome; returns ``bool(cond)``."""
        outcome = bool(cond)
        if not self.enabled:
            return outcome
        trace = self.trace
        idx = self._index.get(site_id)
        if idx is None:
            trace._extra_reached.add(site_id)
        else:
            trace._reached_flags[idx] = 1
        trace.branches_recorded += 1
        if self._frames:
            self._frames[-1].scopes[-1].branches.append((site_id, outcome))
        return outcome

    # ----------------------------------------------------------------- loops

    def loop(self, site_id: str, iterable: Iterable) -> Iterator:
        """Instrumented ``for`` loop: counts iterations, records local
        per-iteration states, and applies armed delay injection at the top
        of every iteration."""
        if not self.enabled:
            for item in iterable:
                yield item
            return
        delay = self.plan.delay_ms if self._armed(site_id, InjKind.DELAY) else None
        frame = self._frames[-1] if self._frames else None
        trace = self.trace
        idx = self._index.get(site_id)
        if idx is None:
            counts, flags = trace._extra_counts, None
        else:
            counts, flags = trace._counts, trace._reached_flags
        key = site_id if idx is None else idx
        for item in iterable:
            counts[key] += 1
            if flags is None:
                trace._extra_reached.add(site_id)
            else:
                flags[key] = 1
            scope = _Scope(site_id)
            if frame is not None:
                frame.scopes.append(scope)
            if delay:
                self._spin(delay)
                self._injected_delay_iters += 1
            try:
                yield item
            finally:
                if frame is not None:
                    while frame.scopes and frame.scopes[-1] is not scope:
                        frame.scopes.pop()
                    if frame.scopes and frame.scopes[-1] is scope:
                        frame.scopes.pop()
                self._record_iteration_state(site_id, scope)

    def loop_guard(self, site_id: str, cond: Any) -> bool:
        """Instrumented ``while`` guard.

        Counts an iteration each time the guard evaluates true.  The scope
        of the previous iteration of *this* loop (identified by owner tag)
        is closed and its state recorded; abandoned scopes of inner loops
        exited via exceptions are discarded along the way.
        """
        outcome = bool(cond)
        if not self.enabled:
            return outcome
        frame = self._frames[-1] if self._frames else None
        if frame is not None:
            open_idx = None
            for i in range(len(frame.scopes) - 1, 0, -1):
                if frame.scopes[i].owner == site_id:
                    open_idx = i
                    break
            if open_idx is not None:
                closed = frame.scopes[open_idx]
                del frame.scopes[open_idx:]
                self._record_iteration_state(site_id, closed)
        if not outcome:
            return False
        idx = self._index.get(site_id)
        if idx is None:
            self.trace._extra_counts[site_id] += 1
            self.trace._extra_reached.add(site_id)
        else:
            self.trace._counts[idx] += 1
            self.trace._reached_flags[idx] = 1
        if frame is not None:
            frame.scopes.append(_Scope(site_id))
        if self._armed(site_id, InjKind.DELAY):
            self._spin(self.plan.delay_ms or 0.0)
            self._injected_delay_iters += 1
        return True

    # ------------------------------------------------------------ exceptions

    def throw_point(
        self,
        site_id: str,
        exc_cls: Type[SimFault],
        natural: Any = False,
    ) -> None:
        """Throw point / library-call site.

        Raises ``exc_cls`` if the natural guard holds; raises a one-time
        injected instance if an exception injection is armed for this site.
        """
        if not self.enabled:
            if natural:
                raise exc_cls("natural fault at %s" % site_id)
            return
        self.trace.mark_reached(site_id)
        if self._armed(site_id, InjKind.EXCEPTION) and not self._exception_fired:
            self._exception_fired = True
            key = FaultKey(site_id, InjKind.EXCEPTION)
            self.trace.record_event(FaultEvent(key, self._now(), self._local_state(), injected=True))
            # Raise the *same* exception type the site naturally throws so
            # the system's own handlers catch it (software-implemented fault
            # injection: we inject the effect, not a marker).
            raise exc_cls("injected fault at %s" % site_id)
        if natural:
            key = FaultKey(site_id, InjKind.EXCEPTION)
            self.trace.record_event(FaultEvent(key, self._now(), self._local_state(), injected=False))
            raise exc_cls("natural fault at %s" % site_id)

    def lib_call(self, site_id: str, exc_cls: Type[SimFault], fn, *args, **kwargs):
        """Library-call exception site (§4.1).

        The site is *reached* on every invocation (which is where the paper
        injects the declared exception), an armed exception injection fires
        one-time instead of calling the library, and a natural raise of the
        declared exception type is recorded as a fault occurrence before
        propagating.
        """
        if not self.enabled:
            return fn(*args, **kwargs)
        self.trace.mark_reached(site_id)
        if self._armed(site_id, InjKind.EXCEPTION) and not self._exception_fired:
            self._exception_fired = True
            key = FaultKey(site_id, InjKind.EXCEPTION)
            self.trace.record_event(FaultEvent(key, self._now(), self._local_state(), injected=True))
            raise exc_cls("injected fault at %s" % site_id)
        try:
            return fn(*args, **kwargs)
        except exc_cls:
            key = FaultKey(site_id, InjKind.EXCEPTION)
            self.trace.record_event(FaultEvent(key, self._now(), self._local_state(), injected=False))
            raise

    def rpc_call(self, site_id: str, exc_cls: Type[SimFault], fn, *args, **kwargs):
        """RPC invocation site with *response-loss* injection semantics.

        Like :meth:`lib_call`, but an armed exception injection lets the
        remote call **execute first** and then raises the declared
        exception — the fault effect of a ``SocketTimeoutException`` on a
        completed-but-slow RPC (request delivered, response lost).  This is
        the code path retry-duplication cascades (e.g. HDFS IBR resends)
        feed on; injecting before the call would simulate a connect failure
        instead and mask them.
        """
        if not self.enabled:
            return fn(*args, **kwargs)
        self.trace.mark_reached(site_id)
        armed = self._armed(site_id, InjKind.EXCEPTION) and not self._exception_fired
        try:
            result = fn(*args, **kwargs)
        except exc_cls:
            key = FaultKey(site_id, InjKind.EXCEPTION)
            self.trace.record_event(FaultEvent(key, self._now(), self._local_state(), injected=False))
            raise
        if armed:
            self._exception_fired = True
            key = FaultKey(site_id, InjKind.EXCEPTION)
            self.trace.record_event(FaultEvent(key, self._now(), self._local_state(), injected=True))
            raise exc_cls("injected response loss at %s" % site_id)
        return result

    # ------------------------------------------------------------- detectors

    def detector(self, site_id: str, value: Any) -> bool:
        """Error-detector site: returns the (possibly negated) value."""
        result = bool(value)
        if not self.enabled:
            return result
        self.trace.mark_reached(site_id)
        if self._armed(site_id, InjKind.NEGATION) and (
            self.plan.sticky or not self._negation_fired
        ):
            self._negation_fired = True
            key = FaultKey(site_id, InjKind.NEGATION)
            self.trace.record_event(FaultEvent(key, self._now(), self._local_state(), injected=True))
            return not result
        error_value = self._detector_meta.get(site_id)
        if error_value is None:
            try:
                meta = self.registry.get(site_id).detector
            except UnknownSite:
                meta = None
            error_value = meta.error_value if meta is not None else True
            self._detector_meta[site_id] = error_value
        if result == error_value:
            key = FaultKey(site_id, InjKind.NEGATION)
            self.trace.record_event(FaultEvent(key, self._now(), self._local_state(), injected=False))
        return result


class NullRuntime(Runtime):
    """A disabled runtime with the same interface (overhead baseline)."""

    def __init__(self, registry: SiteRegistry) -> None:
        super().__init__(registry, trace=None, plan=None, env=None, enabled=False)
