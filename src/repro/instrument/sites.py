"""Fault-site model and registry (the static view of a target system)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import UnknownSite

if TYPE_CHECKING:  # pragma: no cover - typing-only import (cycle guard)
    from ..analysis.slicer import SliceAnalysis as SliceAnalysisLike
from ..types import (
    DetectorMeta,
    EnvMeta,
    FaultKey,
    LoopMeta,
    SiteKind,
    ThrowMeta,
    inj_kind_for_site,
)


@dataclass(frozen=True)
class FaultSite:
    """One instrumented program location of a target system.

    Environment sites (``ENV_NODE`` / ``ENV_LINK``) name a piece of the
    simulated world instead of a code location; their ``function`` is the
    synthetic ``"<environment>"``.
    """

    site_id: str
    kind: SiteKind
    system: str
    function: str  # enclosing function, e.g. "DataNode.offerService"
    loop: Optional[LoopMeta] = None
    detector: Optional[DetectorMeta] = None
    throw: Optional[ThrowMeta] = None
    env: Optional[EnvMeta] = None

    def __post_init__(self) -> None:
        if self.kind is SiteKind.LOOP and self.loop is None:
            object.__setattr__(self, "loop", LoopMeta())
        if self.kind is SiteKind.DETECTOR and self.detector is None:
            object.__setattr__(self, "detector", DetectorMeta())
        if self.kind in (SiteKind.THROW, SiteKind.LIB_CALL) and self.throw is None:
            object.__setattr__(self, "throw", ThrowMeta())

    @property
    def fault_key(self) -> FaultKey:
        """The site's *primary* fault key (see :meth:`fault_keys`)."""
        return FaultKey(self.site_id, inj_kind_for_site(self.kind))

    def fault_keys(self) -> List[FaultKey]:
        """Every fault key injectable here, one per registered fault model
        targeting this site kind — a link site, for example, hosts both
        partition and message-drop faults."""
        from ..faults import models_for_site_kind  # deferred: faults import plan

        return [
            FaultKey(self.site_id, model.kind)
            for model in models_for_site_kind(self.kind)
        ]


class SiteInterner:
    """Frozen ``site_id`` <-> dense-integer mapping of one registry build.

    The runtime agent and :class:`~repro.instrument.trace.RunTrace` record
    against the integer indices (flat array stores, no per-event string
    hashing); analysis and serialization translate back through
    :meth:`name`.  Indices follow registry declaration order, which is
    deterministic per system builder — traces recorded in different worker
    processes of the same campaign agree on the mapping.
    """

    __slots__ = ("_names", "mapping")

    def __init__(self, names: Sequence[str]) -> None:
        self._names = tuple(names)
        #: Read-only view for hot paths (``mapping.get(site_id)``); callers
        #: must never mutate it.
        self.mapping: Dict[str, int] = {n: i for i, n in enumerate(self._names)}

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, site_id: str) -> bool:
        return site_id in self.mapping

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SiteInterner) and self._names == other._names

    def __hash__(self) -> int:
        return hash(self._names)

    def index(self, site_id: str) -> Optional[int]:
        """Dense index of ``site_id``, or ``None`` for unregistered sites."""
        return self.mapping.get(site_id)

    def name(self, idx: int) -> str:
        return self._names[idx]

    def names(self) -> Tuple[str, ...]:
        return self._names

    def __getstate__(self) -> Tuple[str, ...]:
        return self._names

    def __setstate__(self, names: Tuple[str, ...]) -> None:
        self.__init__(names)


class SiteRegistry:
    """All instrumented sites of one target system.

    Mini-systems build their registry at import time via the ``loop`` /
    ``throw`` / ``lib_call`` / ``detector`` / ``branch`` helpers, mirroring
    what the paper's static analyzer extracts from bytecode.
    """

    def __init__(self, system: str) -> None:
        self.system = system
        self._sites: Dict[str, FaultSite] = {}
        self._interner: Optional[SiteInterner] = None
        self._slice_digests: Dict[str, str] = {}
        self._slice_unresolved: Dict[str, str] = {}

    # -------------------------------------------------------- declaration

    def _add(self, site: FaultSite) -> str:
        if site.site_id in self._sites:
            existing = self._sites[site.site_id]
            if existing != site:
                raise ValueError("conflicting redefinition of site %s" % site.site_id)
            return site.site_id
        self._sites[site.site_id] = site
        self._interner = None  # adding a site invalidates the frozen mapping
        return site.site_id

    def interner(self) -> SiteInterner:
        """The frozen site-id interner of the current registry contents."""
        if self._interner is None:
            self._interner = SiteInterner(tuple(self._sites))
        return self._interner

    def loop(
        self,
        site_id: str,
        function: str,
        parent: Optional[str] = None,
        order: int = 0,
        constant_bound: bool = False,
        does_io: bool = False,
        body_size: int = 10,
    ) -> str:
        meta = LoopMeta(parent=parent, order=order, constant_bound=constant_bound, does_io=does_io, body_size=body_size)
        return self._add(FaultSite(site_id, SiteKind.LOOP, self.system, function, loop=meta))

    def throw(self, site_id: str, function: str, exception: str = "IOException", **meta: bool) -> str:
        return self._add(
            FaultSite(site_id, SiteKind.THROW, self.system, function, throw=ThrowMeta(exception=exception, **meta))
        )

    def lib_call(self, site_id: str, function: str, exception: str = "IOException", **meta: bool) -> str:
        return self._add(
            FaultSite(site_id, SiteKind.LIB_CALL, self.system, function, throw=ThrowMeta(exception=exception, **meta))
        )

    def detector(self, site_id: str, function: str, error_value: bool = True, **meta: bool) -> str:
        return self._add(
            FaultSite(
                site_id,
                SiteKind.DETECTOR,
                self.system,
                function,
                detector=DetectorMeta(error_value=error_value, **meta),
            )
        )

    def branch(self, site_id: str, function: str) -> str:
        return self._add(FaultSite(site_id, SiteKind.BRANCH, self.system, function))

    def env_node(self, site_id: str, node: str) -> str:
        """Environment site: one crashable cluster node (by ``Node.name``)."""
        return self._add(
            FaultSite(
                site_id, SiteKind.ENV_NODE, self.system, "<environment>",
                env=EnvMeta(node=node),
            )
        )

    def env_link(self, site_id: str, link: Tuple[str, str]) -> str:
        """Environment site: one severable node-pair link."""
        a, b = sorted(link)
        return self._add(
            FaultSite(
                site_id, SiteKind.ENV_LINK, self.system, "<environment>",
                env=EnvMeta(link=(a, b)),
            )
        )

    def env_sites(self) -> List[FaultSite]:
        """All environment sites (nodes and links) of this registry."""
        return self.by_kind(SiteKind.ENV_NODE) + self.by_kind(SiteKind.ENV_LINK)

    # ------------------------------------------------------------- queries

    def __contains__(self, site_id: str) -> bool:
        return site_id in self._sites

    def __len__(self) -> int:
        return len(self._sites)

    def __iter__(self) -> Iterator[FaultSite]:
        return iter(self._sites.values())

    def get(self, site_id: str) -> FaultSite:
        try:
            return self._sites[site_id]
        except KeyError:
            raise UnknownSite(site_id) from None

    def by_kind(self, kind: SiteKind) -> List[FaultSite]:
        return [s for s in self._sites.values() if s.kind is kind]

    def loops(self) -> List[FaultSite]:
        return self.by_kind(SiteKind.LOOP)

    def children_of(self, loop_site_id: str) -> List[FaultSite]:
        """Loops directly nested inside ``loop_site_id``."""
        return [s for s in self.loops() if s.loop and s.loop.parent == loop_site_id]

    def siblings_after(self, loop_site_id: str) -> List[FaultSite]:
        """Consecutive sibling loops that *follow* ``loop_site_id`` under the
        same parent (the CFG relation of §4.3)."""
        site = self.get(loop_site_id)
        if site.kind is not SiteKind.LOOP or site.loop is None:
            return []
        return [
            s
            for s in self.loops()
            if s.loop
            and s.site_id != site.site_id
            and s.loop.parent == site.loop.parent
            and s.loop.parent is not None
            and s.loop.order > site.loop.order
        ]

    # -------------------------------------------------------- slice digests

    def attach_slice_digests(self, slices: "SliceAnalysisLike") -> None:
        """Record the per-site slice digests of a code-slice analysis
        (``repro.analysis``).  Overwrites any previous attachment — the
        toy system shares one module-level registry across spec builds,
        and re-attaching the same deterministic analysis is a no-op."""
        self._slice_digests = dict(slices.site_digests)
        self._slice_unresolved = dict(slices.unresolved)

    def slice_digest(self, site_id: str) -> Optional[str]:
        """Slice digest of ``site_id``, or ``None`` when no analysis is
        attached or the slicer could not resolve the site."""
        return self._slice_digests.get(site_id)

    def slice_unresolved_reason(self, site_id: str) -> Optional[str]:
        """Why the attached analysis could not resolve ``site_id`` (only
        meaningful when :meth:`slice_digest` returns ``None``)."""
        return self._slice_unresolved.get(site_id)

    def counts(self) -> Dict[str, int]:
        """Site counts per kind, for the Table 2 reproduction."""
        out: Dict[str, int] = {}
        for kind in SiteKind:
            out[kind.value] = len(self.by_kind(kind))
        return out
