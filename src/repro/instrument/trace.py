"""Execution traces recorded by the runtime agent.

A :class:`RunTrace` is everything fault causality analysis needs from one
run: the fault events encountered (with their local states), per-loop
iteration counts (with local iteration states), and the set of sites
reached.  A :class:`RunGroup` bundles the repeated runs (default five) of
one (test, injection) combination.

Recording is the instrumentation hot path (the §8.5 overhead experiment),
so a trace bound to a :class:`~repro.instrument.sites.SiteInterner`
records into *flat, integer-indexed* structures — an ``array`` of
iteration counts, a ``bytearray`` of reached flags, and an int-keyed
local-state dict — instead of hashing site-id strings on every event.
The historical string-keyed surface (``loop_counts`` / ``loop_states`` /
``reached``) is preserved as properties: live structures on an unbound
trace, materialized views on an interned one.  FCA and serialization see
identical values either way.
"""

from __future__ import annotations

from array import array
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set

from ..config import MAX_STATES_PER_SITE
from ..types import FaultKey, LocalState, StateSet
from .plan import InjectionPlan
from .sites import SiteInterner


@dataclass(frozen=True)
class FaultEvent:
    """One occurrence of a fault (natural or injected) during a run."""

    fault: FaultKey
    time: float
    state: LocalState
    injected: bool = False


@dataclass(eq=False)
class RunTrace:
    """Trace of a single run of a single test."""

    test_id: str
    injection: Optional[InjectionPlan] = None
    seed: int = 0
    events: List[FaultEvent] = field(default_factory=list)
    branches_recorded: int = 0
    saturated: bool = False
    wall_time_s: float = 0.0
    virtual_end_ms: float = 0.0
    #: Bound by the runtime agent (via :meth:`bind_interner`) before
    #: recording starts; ``None`` means string-keyed (legacy) storage.
    interner: Optional[SiteInterner] = None

    def __post_init__(self) -> None:
        # String-keyed stores.  On an unbound trace they hold everything;
        # on an interned trace they only hold sites missing from the
        # registry (rare — ad-hoc sites used by tests).
        self._extra_counts: Counter = Counter()
        self._extra_reached: Set[str] = set()
        self._extra_loop_states: Dict[str, Set[LocalState]] = {}
        self._alloc_interned()

    def _alloc_interned(self) -> None:
        if self.interner is None:
            self._counts: Optional[array] = None
            self._reached_flags: Optional[bytearray] = None
            self._loop_states: Dict[int, Set[LocalState]] = {}
        else:
            n = len(self.interner)
            self._counts = array("q", bytes(8 * n))
            self._reached_flags = bytearray(n)
            self._loop_states = {}

    # ------------------------------------------------------------- binding

    def bind_interner(self, interner: SiteInterner) -> None:
        """Switch to interned recording, migrating any recorded data.

        Called by the runtime agent before a run starts; rebinding to the
        same interner is a no-op.
        """
        if self.interner is interner or self.interner == interner:
            return
        counts = self.loop_counts
        reached = self.reached
        loop_states = self.loop_states
        self.interner = interner
        self._extra_counts = Counter()
        self._extra_reached = set()
        self._extra_loop_states = {}
        self._alloc_interned()
        self.loop_counts = counts
        self.reached = reached
        self.loop_states = loop_states

    # ------------------------------------------------- string-keyed views

    @property
    def loop_counts(self) -> Counter:
        """Per-site iteration counts (live Counter when unbound, snapshot
        when interned — mutate through ``record_*``, not through this)."""
        if self.interner is None:
            return self._extra_counts
        out = Counter(self._extra_counts)
        name = self.interner.name
        for idx, count in enumerate(self._counts):
            if count:
                out[name(idx)] = count
        return out

    @loop_counts.setter
    def loop_counts(self, value: Mapping[str, int]) -> None:
        if self.interner is None:
            self._extra_counts = Counter(value)
            return
        self._counts = array("q", bytes(8 * len(self.interner)))
        self._extra_counts = Counter()
        index = self.interner.index
        for site_id, count in value.items():
            idx = index(site_id)
            if idx is None:
                self._extra_counts[site_id] = count
            else:
                self._counts[idx] = count

    @property
    def reached(self) -> Set[str]:
        """Sites reached at least once (live set when unbound)."""
        if self.interner is None:
            return self._extra_reached
        name = self.interner.name
        out = {name(idx) for idx, flag in enumerate(self._reached_flags) if flag}
        out |= self._extra_reached
        return out

    @reached.setter
    def reached(self, value: Iterable[str]) -> None:
        if self.interner is None:
            self._extra_reached = set(value)
            return
        self._reached_flags = bytearray(len(self.interner))
        self._extra_reached = set()
        index = self.interner.index
        for site_id in value:
            idx = index(site_id)
            if idx is None:
                self._extra_reached.add(site_id)
            else:
                self._reached_flags[idx] = 1

    @property
    def loop_states(self) -> Dict[str, Set[LocalState]]:
        """Per-site local iteration states (live dict when unbound)."""
        if self.interner is None:
            return self._extra_loop_states
        name = self.interner.name
        out = {name(idx): states for idx, states in self._loop_states.items()}
        out.update(self._extra_loop_states)
        return out

    @loop_states.setter
    def loop_states(self, value: Mapping[str, Iterable[LocalState]]) -> None:
        if self.interner is None:
            self._extra_loop_states = {site: set(states) for site, states in value.items()}
            return
        self._loop_states = {}
        self._extra_loop_states = {}
        index = self.interner.index
        for site_id, states in value.items():
            idx = index(site_id)
            if idx is None:
                self._extra_loop_states[site_id] = set(states)
            else:
                self._loop_states[idx] = set(states)

    # ------------------------------------------------------------ recording

    def mark_reached(self, site_id: str) -> None:
        if self.interner is None:
            self._extra_reached.add(site_id)
            return
        idx = self.interner.index(site_id)
        if idx is None:
            self._extra_reached.add(site_id)
        else:
            self._reached_flags[idx] = 1

    def record_event(self, event: FaultEvent) -> None:
        self.events.append(event)
        self.mark_reached(event.fault.site_id)

    def record_loop_iteration(self, site_id: str, state: Optional[LocalState]) -> None:
        if self.interner is not None:
            idx = self.interner.index(site_id)
        else:
            idx = None
        if idx is None:
            self._extra_counts[site_id] += 1
            self._extra_reached.add(site_id)
        else:
            self._counts[idx] += 1
            self._reached_flags[idx] = 1
        if state is not None:
            states = self.states_bucket(site_id)
            if len(states) < MAX_STATES_PER_SITE:
                states.add(state)

    def states_bucket(self, site_id: str) -> Set[LocalState]:
        """The live (mutable) local-state set of ``site_id``."""
        if self.interner is not None:
            idx = self.interner.index(site_id)
            if idx is not None:
                states = self._loop_states.get(idx)
                if states is None:
                    states = self._loop_states[idx] = set()
                return states
        states = self._extra_loop_states.get(site_id)
        if states is None:
            states = self._extra_loop_states[site_id] = set()
        return states

    # -------------------------------------------------------------- queries

    def loop_count(self, site_id: str) -> int:
        """Iteration count of one site (no view materialization)."""
        if self.interner is not None:
            idx = self.interner.index(site_id)
            if idx is not None:
                return self._counts[idx]
        return self._extra_counts.get(site_id, 0)

    def loop_sites(self) -> Set[str]:
        """Sites with at least one recorded iteration."""
        if self.interner is None:
            return {site for site, count in self._extra_counts.items() if count}
        name = self.interner.name
        out = {name(idx) for idx, count in enumerate(self._counts) if count}
        out |= {site for site, count in self._extra_counts.items() if count}
        return out

    def loop_states_at(self, site_id: str) -> Set[LocalState]:
        """Local states of one site (no view materialization)."""
        if self.interner is not None:
            idx = self.interner.index(site_id)
            if idx is not None:
                return self._loop_states.get(idx, set())
        return self._extra_loop_states.get(site_id, set())

    def was_reached(self, site_id: str) -> bool:
        if self.interner is not None:
            idx = self.interner.index(site_id)
            if idx is not None:
                return bool(self._reached_flags[idx])
        return site_id in self._extra_reached

    def natural_faults(self) -> Set[FaultKey]:
        """Faults that occurred without being the injected one."""
        return {e.fault for e in self.events if not e.injected}

    def states_of(self, fault: FaultKey, natural_only: bool = True) -> StateSet:
        states = {
            e.state for e in self.events if e.fault == fault and (not natural_only or not e.injected)
        }
        return frozenset(states)

    def injected_states(self) -> StateSet:
        """Local states at which the armed injection actually fired."""
        if self.injection is None:
            return frozenset()
        from ..types import InjKind

        if self.injection.fault.kind is InjKind.DELAY:
            return frozenset(self.loop_states_at(self.injection.site_id))
        return frozenset(e.state for e in self.events if e.injected)

    def __eq__(self, other: object) -> bool:
        """Content equality, independent of interned vs string storage."""
        if not isinstance(other, RunTrace):
            return NotImplemented
        return (
            self.test_id == other.test_id
            and self.injection == other.injection
            and self.seed == other.seed
            and self.events == other.events
            and self.branches_recorded == other.branches_recorded
            and self.saturated == other.saturated
            and self.wall_time_s == other.wall_time_s
            and self.virtual_end_ms == other.virtual_end_ms
            and self.loop_counts == other.loop_counts
            and self.loop_states == other.loop_states
            and self.reached == other.reached
        )


@dataclass
class RunGroup:
    """The repeated runs of one (test, injection) combination."""

    test_id: str
    injection: Optional[InjectionPlan]
    runs: List[RunTrace] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._invalidate()

    def _invalidate(self) -> None:
        """Drop the derived-statistic caches (every ``add`` calls this).

        A profile group is queried once per *experiment* — every FCA against
        test t re-derives t's control matrices and occurrence maps — so the
        answers are memoized per group and rebuilt only when the group gains
        a run.  Queries hand out copies, never the cached containers.
        Threaded campaigns may fill a slot concurrently: benign, the values
        are deterministic and the assignments atomic under the GIL.
        """
        self._loop_rows: Dict[str, Tuple[int, ...]] = {}
        self._natural_hits: Optional[Dict[FaultKey, int]] = None
        self._reached: Optional[Set[str]] = None

    def __len__(self) -> int:
        return len(self.runs)

    def add(self, run: RunTrace) -> None:
        if run.test_id != self.test_id:
            raise ValueError("run belongs to test %s, not %s" % (run.test_id, self.test_id))
        self.runs.append(run)
        self._invalidate()

    def _loop_row(self, site_id: str) -> Tuple[int, ...]:
        row = self._loop_rows.get(site_id)
        if row is None:
            row = self._loop_rows[site_id] = tuple(
                run.loop_count(site_id) for run in self.runs
            )
        return row

    def loop_samples(self, site_id: str) -> List[int]:
        """Iteration counts of ``site_id`` across the repeated runs."""
        return list(self._loop_row(site_id))

    def loop_count_rows(self, site_ids: List[str]) -> List[List[int]]:
        """Iteration-count matrix: one row per site, one column per run."""
        return [list(self._loop_row(site_id)) for site_id in site_ids]

    def loop_sites(self) -> Set[str]:
        """Sites with at least one iteration in any run of the group."""
        out: Set[str] = set()
        for run in self.runs:
            out |= run.loop_sites()
        return out

    def _natural_hit_counts(self) -> Dict[FaultKey, int]:
        """Per-fault count of runs in which it occurred naturally."""
        hits = self._natural_hits
        if hits is None:
            hits = {}
            for run in self.runs:
                for fault in run.natural_faults():
                    hits[fault] = hits.get(fault, 0) + 1
            self._natural_hits = hits
        return hits

    def fault_occurrence_frac(self, fault: FaultKey) -> float:
        """Fraction of runs in which ``fault`` occurred naturally."""
        if not self.runs:
            return 0.0
        return self._natural_hit_counts().get(fault, 0) / len(self.runs)

    def natural_faults(self) -> Set[FaultKey]:
        return set(self._natural_hit_counts())

    def states_of(self, fault: FaultKey) -> StateSet:
        states: Set[LocalState] = set()
        for run in self.runs:
            states |= run.states_of(fault)
        return frozenset(states)

    def loop_states_of(self, site_id: str) -> StateSet:
        states: Set[LocalState] = set()
        for run in self.runs:
            states |= run.loop_states_at(site_id)
        return frozenset(states)

    def injected_states(self) -> StateSet:
        states: Set[LocalState] = set()
        for run in self.runs:
            states |= run.injected_states()
        return frozenset(states)

    def reached(self) -> Set[str]:
        out = self._reached
        if out is None:
            out = set()
            for run in self.runs:
                out |= run.reached
            self._reached = out
        return set(out)

    def coverage(self) -> int:
        """Coverage score of the test: number of distinct sites reached."""
        return len(self.reached())
