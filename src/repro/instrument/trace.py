"""Execution traces recorded by the runtime agent.

A :class:`RunTrace` is everything fault causality analysis needs from one
run: the fault events encountered (with their local states), per-loop
iteration counts (with local iteration states), and the set of sites
reached.  A :class:`RunGroup` bundles the repeated runs (default five) of
one (test, injection) combination.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..config import MAX_STATES_PER_SITE
from ..types import FaultKey, LocalState, StateSet
from .plan import InjectionPlan


@dataclass(frozen=True)
class FaultEvent:
    """One occurrence of a fault (natural or injected) during a run."""

    fault: FaultKey
    time: float
    state: LocalState
    injected: bool = False


@dataclass
class RunTrace:
    """Trace of a single run of a single test."""

    test_id: str
    injection: Optional[InjectionPlan] = None
    seed: int = 0
    events: List[FaultEvent] = field(default_factory=list)
    loop_counts: Counter = field(default_factory=Counter)
    loop_states: Dict[str, Set[LocalState]] = field(default_factory=dict)
    reached: Set[str] = field(default_factory=set)
    branches_recorded: int = 0
    saturated: bool = False
    wall_time_s: float = 0.0
    virtual_end_ms: float = 0.0

    # ------------------------------------------------------------ recording

    def record_event(self, event: FaultEvent) -> None:
        self.events.append(event)
        self.reached.add(event.fault.site_id)

    def record_loop_iteration(self, site_id: str, state: Optional[LocalState]) -> None:
        self.loop_counts[site_id] += 1
        self.reached.add(site_id)
        if state is not None:
            states = self.loop_states.setdefault(site_id, set())
            if len(states) < MAX_STATES_PER_SITE:
                states.add(state)

    # -------------------------------------------------------------- queries

    def natural_faults(self) -> Set[FaultKey]:
        """Faults that occurred without being the injected one."""
        return {e.fault for e in self.events if not e.injected}

    def states_of(self, fault: FaultKey, natural_only: bool = True) -> StateSet:
        states = {
            e.state for e in self.events if e.fault == fault and (not natural_only or not e.injected)
        }
        return frozenset(states)

    def injected_states(self) -> StateSet:
        """Local states at which the armed injection actually fired."""
        if self.injection is None:
            return frozenset()
        from ..types import InjKind

        if self.injection.fault.kind is InjKind.DELAY:
            return frozenset(self.loop_states.get(self.injection.site_id, set()))
        return frozenset(e.state for e in self.events if e.injected)


@dataclass
class RunGroup:
    """The repeated runs of one (test, injection) combination."""

    test_id: str
    injection: Optional[InjectionPlan]
    runs: List[RunTrace] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.runs)

    def add(self, run: RunTrace) -> None:
        if run.test_id != self.test_id:
            raise ValueError("run belongs to test %s, not %s" % (run.test_id, self.test_id))
        self.runs.append(run)

    def loop_samples(self, site_id: str) -> List[int]:
        """Iteration counts of ``site_id`` across the repeated runs."""
        return [run.loop_counts.get(site_id, 0) for run in self.runs]

    def fault_occurrence_frac(self, fault: FaultKey) -> float:
        """Fraction of runs in which ``fault`` occurred naturally."""
        if not self.runs:
            return 0.0
        hits = sum(1 for run in self.runs if fault in run.natural_faults())
        return hits / len(self.runs)

    def natural_faults(self) -> Set[FaultKey]:
        out: Set[FaultKey] = set()
        for run in self.runs:
            out |= run.natural_faults()
        return out

    def states_of(self, fault: FaultKey) -> StateSet:
        states: Set[LocalState] = set()
        for run in self.runs:
            states |= run.states_of(fault)
        return frozenset(states)

    def loop_states_of(self, site_id: str) -> StateSet:
        states: Set[LocalState] = set()
        for run in self.runs:
            states |= run.loop_states.get(site_id, set())
        return frozenset(states)

    def injected_states(self) -> StateSet:
        states: Set[LocalState] = set()
        for run in self.runs:
            states |= run.injected_states()
        return frozenset(states)

    def reached(self) -> Set[str]:
        out: Set[str] = set()
        for run in self.runs:
            out |= run.reached
        return out

    def coverage(self) -> int:
        """Coverage score of the test: number of distinct sites reached."""
        return len(self.reached())
