"""Composable, parallel, resumable campaign pipeline.

The top-level API of the reproduction::

    from repro.pipeline import Pipeline
    from repro.systems import get_system

    ctx = Pipeline.default(get_system("toy")).run()
    report = ctx.get("report")

Stages declare ``requires``/``provides`` artifact names and are validated
as a DAG before anything runs; independent injection experiments fan out
over a pluggable :class:`Executor`; attaching a :class:`Session` persists
each stage's artifact as JSON so an interrupted campaign resumes exactly
where it stopped.  See DESIGN.md for the stage graph and session layout.
"""

from .artifacts import ARTIFACT_CODECS, AllocationArtifact, ProfilesArtifact
from .context import PipelineContext
from .events import (
    EventRecorder,
    PipelineEvent,
    PipelineObserver,
    ProgressPrinter,
)
from .executor import (
    BACKENDS,
    Executor,
    ParallelExecutor,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
)
from .runner import Pipeline
from .session import Session
from .stage import Stage
from .stages import (
    STAGE_NAMES,
    AllocationStage,
    BeamSearchStage,
    ProfileStage,
    ReportStage,
    StaticAnalysisStage,
    default_stages,
)

__all__ = [
    "Pipeline",
    "PipelineContext",
    "Stage",
    "default_stages",
    "STAGE_NAMES",
    "StaticAnalysisStage",
    "ProfileStage",
    "AllocationStage",
    "BeamSearchStage",
    "ReportStage",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ProcessExecutor",
    "BACKENDS",
    "make_executor",
    "Session",
    "PipelineEvent",
    "PipelineObserver",
    "ProgressPrinter",
    "EventRecorder",
    "ProfilesArtifact",
    "AllocationArtifact",
    "ARTIFACT_CODECS",
]
