"""Typed pipeline artifacts and their JSON codecs.

Each pipeline stage publishes exactly one named artifact; this module
defines the wrapper types that carry driver bookkeeping alongside the
domain results, plus a ``dump``/``load`` codec per artifact name.  The
codec registry (:data:`ARTIFACT_CODECS`) is what session persistence
iterates over — adding a new stage with a durable artifact means
registering its codec here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from ..core.allocation import AllocationOutcome, AllocationRecord
from ..core.beam import BeamSearchResult
from ..core.report import DetectionReport
from ..instrument.trace import RunGroup
from ..serialize import (
    analysis_from_obj,
    analysis_to_obj,
    clustering_from_obj,
    clustering_to_obj,
    cycle_from_obj,
    cycle_to_obj,
    fault_from_obj,
    fault_to_obj,
    fca_from_obj,
    fca_to_obj,
    group_from_obj,
    group_to_obj,
)

# ---------------------------------------------------------------- wrappers


@dataclass
class ProfilesArtifact:
    """Profile run groups plus the driver's run counter at stage end."""

    groups: Dict[str, RunGroup] = field(default_factory=dict)
    runs_executed: int = 0


@dataclass
class AllocationArtifact:
    """3PA outcome plus the driver counters at stage end.

    The edge DB is *not* stored separately: replaying each record's FCA
    edges in record order rebuilds it exactly (same insertion order, same
    merged state sets).
    """

    outcome: AllocationOutcome
    experiments_run: int = 0
    runs_executed: int = 0


# ------------------------------------------------------------------ codecs


def _profiles_dump(artifact: ProfilesArtifact) -> Dict[str, Any]:
    return {
        "runs_executed": artifact.runs_executed,
        "groups": {t: group_to_obj(g) for t, g in sorted(artifact.groups.items())},
    }


def _profiles_load(obj: Dict[str, Any]) -> ProfilesArtifact:
    return ProfilesArtifact(
        groups={t: group_from_obj(g) for t, g in obj["groups"].items()},
        runs_executed=obj["runs_executed"],
    )


def _allocation_dump(artifact: AllocationArtifact) -> Dict[str, Any]:
    outcome = artifact.outcome
    return {
        "experiments_run": artifact.experiments_run,
        "runs_executed": artifact.runs_executed,
        "budget_total": outcome.budget_total,
        "budget_used": outcome.budget_used,
        "unreachable": [fault_to_obj(f) for f in outcome.unreachable],
        "clustering": clustering_to_obj(outcome.clustering),
        "cluster_scores": [
            [int(cid), float(score)] for cid, score in sorted(outcome.cluster_scores.items())
        ],
        "fault_scores": [
            [fault_to_obj(f), float(score)]
            for f, score in sorted(outcome.fault_scores.items())
        ],
        "records": [
            {
                "phase": r.phase,
                "fault": fault_to_obj(r.fault),
                "test_id": r.test_id,
                "result": fca_to_obj(r.result) if r.result is not None else None,
            }
            for r in outcome.records
        ],
    }


def _allocation_load(obj: Dict[str, Any]) -> AllocationArtifact:
    outcome = AllocationOutcome(
        records=[
            AllocationRecord(
                phase=r["phase"],
                fault=fault_from_obj(r["fault"]),
                test_id=r["test_id"],
                result=fca_from_obj(r["result"]) if r["result"] is not None else None,
            )
            for r in obj["records"]
        ],
        clustering=clustering_from_obj(obj["clustering"]),
        cluster_scores={cid: score for cid, score in obj["cluster_scores"]},
        fault_scores={fault_from_obj(f): score for f, score in obj["fault_scores"]},
        budget_total=obj["budget_total"],
        budget_used=obj["budget_used"],
        unreachable=[fault_from_obj(f) for f in obj["unreachable"]],
    )
    return AllocationArtifact(
        outcome=outcome,
        experiments_run=obj["experiments_run"],
        runs_executed=obj["runs_executed"],
    )


def _beam_dump(result: BeamSearchResult) -> Dict[str, Any]:
    return {
        "cycles": [cycle_to_obj(c) for c in result.cycles],
        "chains_explored": result.chains_explored,
        "levels": result.levels,
    }


def _beam_load(obj: Dict[str, Any]) -> BeamSearchResult:
    return BeamSearchResult(
        cycles=[cycle_from_obj(c) for c in obj["cycles"]],
        chains_explored=obj["chains_explored"],
        levels=obj["levels"],
    )


#: artifact name -> (dump to JSON-compatible obj, load back).
ARTIFACT_CODECS: Dict[str, Tuple[Callable[[Any], Any], Callable[[Any], Any]]] = {
    "analysis": (analysis_to_obj, analysis_from_obj),
    "profiles": (_profiles_dump, _profiles_load),
    "allocation": (_allocation_dump, _allocation_load),
    "beam": (_beam_dump, _beam_load),
    "report": (lambda r: r.to_dict(), DetectionReport.from_dict),
}
