"""The typed artifact store threaded through every pipeline stage."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..config import CSnakeConfig
from ..core.driver import ExperimentDriver
from ..errors import MissingArtifact
from ..systems.base import SystemSpec
from .executor import Executor, SerialExecutor


class PipelineContext:
    """Everything stages share: spec, config, driver, executor, artifacts.

    Artifacts are keyed by name (``analysis``, ``profiles``,
    ``allocation``, ``beam``, ``report``); :meth:`require` raises
    :class:`~repro.errors.MissingArtifact` with the producing stage's name
    when a dependency was skipped, instead of the old facade's opaque
    ``RuntimeError``.
    """

    def __init__(
        self,
        spec: SystemSpec,
        config: Optional[CSnakeConfig] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        self.spec = spec
        self.config = config or CSnakeConfig()
        self.executor = executor or SerialExecutor()
        #: The shared workload driver: profile cache, edge DB, counters.
        self.driver = ExperimentDriver(self.spec, self.config)
        self._artifacts: Dict[str, Any] = {}

    # -------------------------------------------------------------- storage

    def put(self, name: str, value: Any) -> None:
        self._artifacts[name] = value

    def get(self, name: str, default: Any = None) -> Any:
        return self._artifacts.get(name, default)

    def has(self, name: str) -> bool:
        return name in self._artifacts

    def require(self, name: str) -> Any:
        try:
            return self._artifacts[name]
        except KeyError:
            raise MissingArtifact(
                "artifact %r has not been produced; run its stage first" % name
            ) from None

    def names(self) -> List[str]:
        return sorted(self._artifacts)
