"""Observer hooks for pipeline progress reporting.

The runner emits one :class:`PipelineEvent` per lifecycle transition;
observers subscribe by implementing :meth:`PipelineObserver.on_event`.
Events are purely informational — observers cannot alter pipeline
behaviour, and a misbehaving observer fails the run loudly rather than
corrupting it silently.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, TextIO

#: Event kinds, in lifecycle order.
PIPELINE_STARTED = "pipeline_started"
STAGE_STARTED = "stage_started"
STAGE_FINISHED = "stage_finished"
STAGE_RESUMED = "stage_resumed"  # artifacts loaded from a session, not run
STAGE_CACHED = "stage_cached"  # artifacts already present in the context
PIPELINE_FINISHED = "pipeline_finished"


@dataclass(frozen=True)
class PipelineEvent:
    """One lifecycle transition of a pipeline run."""

    kind: str
    stage: Optional[str] = None  # stage name, None for pipeline-level events
    seconds: float = 0.0  # wall time, for *_finished events
    detail: Dict[str, Any] = field(default_factory=dict)


class PipelineObserver:
    """Base observer: override :meth:`on_event` (default ignores all)."""

    def on_event(self, event: PipelineEvent) -> None:  # pragma: no cover
        pass


class ProgressPrinter(PipelineObserver):
    """Human-readable stage progress on a stream (stderr by default)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream or sys.stderr

    def on_event(self, event: PipelineEvent) -> None:
        if event.kind == STAGE_STARTED:
            line = "[pipeline] %s ..." % event.stage
        elif event.kind == STAGE_FINISHED:
            line = "[pipeline] %s done in %.2fs" % (event.stage, event.seconds)
        elif event.kind == STAGE_RESUMED:
            line = "[pipeline] %s resumed from session" % event.stage
        elif event.kind == STAGE_CACHED:
            line = "[pipeline] %s already computed, skipping" % event.stage
        elif event.kind == PIPELINE_FINISHED:
            line = "[pipeline] finished in %.2fs" % event.seconds
        else:
            return
        print(line, file=self.stream)


class EventRecorder(PipelineObserver):
    """Records every event; handy for tests and programmatic inspection."""

    def __init__(self) -> None:
        self.events = []

    def on_event(self, event: PipelineEvent) -> None:
        self.events.append(event)

    def kinds(self, stage: Optional[str] = None):
        return [e.kind for e in self.events if stage is None or e.stage == stage]
