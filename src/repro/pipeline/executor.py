"""Pluggable execution backends for independent pipeline work items.

An :class:`Executor` maps a function over a batch of independent items and
returns the results **in input order** — that ordering contract is what
lets the driver and the 3PA allocator commit parallel results
deterministically.  Two backends ship by default:

* :class:`SerialExecutor` — plain in-order loop (the reference semantics);
* :class:`ThreadPoolExecutor`-backed :class:`ParallelExecutor` — fans items
  out over worker threads.  Workload runs build their own ``SimEnv`` and
  ``Runtime`` per run and share no mutable state, so they are thread-safe;
  on free-threaded CPython builds this scales with cores, on GIL builds it
  still overlaps the numpy/scipy portions of FCA and clustering.

A process-based backend would slot in behind the same two-method surface;
it is not shipped because workload ``setup`` callables are closures and
not generally picklable.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Iterable, List, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class Executor:
    """Strategy interface: ordered map over independent work items."""

    #: Degree of parallelism; callers may skip fan-out entirely when 1.
    max_workers: int = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (no-op by default)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-order, single-threaded execution (the reference backend)."""

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(item) for item in items]


class ParallelExecutor(Executor):
    """``concurrent.futures`` thread-pool execution, results in input order.

    The pool is scoped to each :meth:`map` call — campaigns issue a handful
    of large batches (profile fan-out, one flush per 3PA phase), so per-call
    pool setup is noise, and nothing leaks threads when callers (the CLI,
    the ``CSnake`` facade, benchmarks) drop the executor without closing it.
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-exp"
        ) as pool:
            futures = [pool.submit(fn, item) for item in items]
            # Collect in submission order; re-raises the first worker error.
            return [f.result() for f in futures]


def make_executor(workers: int) -> Executor:
    """Serial backend for ``workers <= 1``, thread pool otherwise."""
    if workers <= 1:
        return SerialExecutor()
    return ParallelExecutor(workers)
