"""Pluggable execution backends for independent pipeline work items.

An :class:`Executor` maps a function over a batch of independent items and
returns the results **in input order** — that ordering contract is what
lets the driver and the 3PA allocator commit parallel results
deterministically.  Three backends ship by default:

* :class:`SerialExecutor` — plain in-order loop (the reference semantics);
* :class:`ParallelExecutor` — ``ThreadPoolExecutor``-backed fan-out over
  worker threads.  Workload runs build their own ``SimEnv`` and ``Runtime``
  per run and share no mutable state, so they are thread-safe; on
  free-threaded CPython builds this scales with cores, on GIL builds it
  still overlaps the numpy/scipy portions of FCA and clustering;
* :class:`ProcessExecutor` — ``ProcessPoolExecutor``-backed fan-out over
  worker *processes*, sidestepping the GIL entirely.  It advertises
  ``requires_pickling``, and callers that fan out closures (the driver, the
  profile stage) respond by sending picklable by-name task descriptors
  (see :mod:`repro.core.driver`) instead of bound methods.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: The executor backends accepted by :func:`make_executor` and the CLI.
#: ``remote`` is the distributed one: it ships task descriptors to a
#: ``repro serve`` manager whose agent fleet executes them
#: (:mod:`repro.service`).
BACKENDS = ("serial", "thread", "process", "remote")


class Executor:
    """Strategy interface: ordered map over independent work items."""

    #: Degree of parallelism; callers may skip fan-out entirely when 1.
    max_workers: int = 1

    #: True when work items cross a process boundary: callers must submit
    #: picklable module-level callables and task descriptors, not closures.
    requires_pickling: bool = False

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (no-op by default)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-order, single-threaded execution (the reference backend)."""

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(item) for item in items]


class ParallelExecutor(Executor):
    """``concurrent.futures`` thread-pool execution, results in input order.

    The pool is scoped to each :meth:`map` call — campaigns issue a handful
    of large batches (profile fan-out, one flush per 3PA phase), so per-call
    pool setup is noise, and nothing leaks threads when callers (the CLI,
    the ``CSnake`` facade, benchmarks) drop the executor without closing it.
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-exp"
        ) as pool:
            futures = [pool.submit(fn, item) for item in items]
            # Collect in submission order; re-raises the first worker error.
            return [f.result() for f in futures]


class ProcessExecutor(Executor):
    """``concurrent.futures`` process-pool execution, results in input order.

    Unlike the thread backend, worker processes are expensive to start and
    warm per-process caches (target-system specs, profile run groups), so
    the pool persists across :meth:`map` calls and is released by
    :meth:`close` — one pool serves a whole campaign (profile fan-out plus
    the three 3PA flushes).  The pool is created lazily, so a closed
    executor transparently re-opens on its next ``map``.
    """

    requires_pickling = True

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers
            )
        return self._pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(
    workers: int, backend: str = "thread", manager_url: Optional[str] = None
) -> Executor:
    """Build the backend named by ``backend`` with ``workers`` workers.

    ``workers <= 1`` (or ``backend="serial"``) always yields the serial
    reference backend — a one-worker pool adds overhead and nothing else.
    The ``remote`` backend ignores the local worker count (its parallelism
    is the agent fleet's) and requires ``manager_url``.
    """
    if backend not in BACKENDS:
        raise ValueError(
            "unknown executor backend %r (choose from %s)" % (backend, ", ".join(BACKENDS))
        )
    if backend == "remote":
        if not manager_url:
            raise ValueError("the remote backend needs a manager URL (--manager)")
        from ..service import HttpTransport, RemoteExecutor  # deferred: optional layer

        return RemoteExecutor(HttpTransport(manager_url), max_workers=max(2, workers))
    if workers <= 1 or backend == "serial":
        return SerialExecutor()
    if backend == "process":
        return ProcessExecutor(workers)
    return ParallelExecutor(workers)
