"""The pipeline runner: validated stage DAG, events, session persistence."""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..config import CSnakeConfig
from ..errors import StageDependencyError
from ..systems.base import SystemSpec
from .context import PipelineContext
from .events import (
    PIPELINE_FINISHED,
    PIPELINE_STARTED,
    STAGE_CACHED,
    STAGE_FINISHED,
    STAGE_RESUMED,
    STAGE_STARTED,
    PipelineEvent,
    PipelineObserver,
)
from .executor import Executor, make_executor
from .session import Session
from .stage import Stage
from .stages import default_stages, producer_of


class Pipeline:
    """Composable staged campaign over one target system.

    The stage list is validated up front: every stage's ``requires`` must
    be provided by an earlier stage, already present in the context, or
    restorable from the attached session — ordering mistakes fail before
    any experiment runs, not three stages in.
    """

    def __init__(
        self,
        spec: SystemSpec,
        config: Optional[CSnakeConfig] = None,
        stages: Optional[Sequence[Stage]] = None,
        executor: Optional[Executor] = None,
        observers: Sequence[PipelineObserver] = (),
        session: Optional[Session] = None,
        ctx: Optional[PipelineContext] = None,
    ) -> None:
        self.spec = spec
        self.config = config or (ctx.config if ctx is not None else CSnakeConfig())
        self._owns_executor = executor is None and ctx is None
        if ctx is not None:
            # Stages always execute on ctx.executor — reconcile rather than
            # letting an explicit executor argument silently diverge from it.
            if executor is not None:
                ctx.executor = executor
            self.ctx = ctx
            self.executor = ctx.executor
        else:
            self.executor = executor or make_executor(
                self.config.experiment_workers,
                self.config.experiment_backend,
                self.config.manager_url,
            )
            self.ctx = PipelineContext(spec, self.config, self.executor)
        self.stages: List[Stage] = list(stages) if stages is not None else default_stages()
        self.observers = list(observers)
        self.session = session
        self.validate()

    # ------------------------------------------------------------ wiring

    @classmethod
    def default(cls, spec: SystemSpec, config: Optional[CSnakeConfig] = None, **kwargs) -> "Pipeline":
        """The standard five-stage CSnake pipeline."""
        return cls(spec, config, stages=default_stages(), **kwargs)

    def validate(self) -> None:
        """Check stage-name uniqueness and requires/provides satisfiability."""
        seen_names = set()
        available = set(self.ctx.names())
        if self.session is not None:
            available |= {n for n in self.session.completed if self.session.has_artifact(n)}
        for stage in self.stages:
            if not stage.name:
                raise StageDependencyError("stage %r has no name" % stage)
            if stage.name in seen_names:
                raise StageDependencyError("duplicate stage name %r" % stage.name)
            seen_names.add(stage.name)
            missing = [r for r in stage.requires if r not in available]
            if missing:
                raise StageDependencyError(
                    "stage %r requires %s, provided by no earlier stage"
                    % (stage.name, ", ".join(repr(m) for m in missing))
                )
            available.update(stage.provides)

    def _emit(self, kind: str, stage: Optional[str] = None, seconds: float = 0.0, **detail) -> None:
        event = PipelineEvent(kind=kind, stage=stage, seconds=seconds, detail=detail)
        for observer in self.observers:
            observer.on_event(event)

    def _load_requirements(self, stage: Stage) -> None:
        """Restore a live stage's missing requirements from the session.

        A filtered stage list (``--stages allocate`` continuing an earlier
        ``--stages analyze,profile`` session) runs a stage whose producers
        are absent; their persisted artifacts are loaded and hydrated via
        the default producer so shared driver state is rewired too.
        """
        if self.session is None:
            return
        for name in stage.requires + stage.uses:
            if self.ctx.has(name) or not self.session.has_artifact(name):
                continue
            value = self.session.load_artifact(name)
            self.ctx.put(name, value)
            producer = producer_of(name)
            if producer is not None:
                producer.hydrate(self.ctx, {name: value})
                self._emit(STAGE_RESUMED, producer.name)

    # -------------------------------------------------------------- running

    def run(self) -> PipelineContext:
        """Run (or resume) the pipeline; returns the final context.

        With a session attached, the longest prefix of stages whose
        artifacts are already persisted is *loaded* instead of run
        (``stage_resumed`` events); every stage that does run live has its
        artifacts persisted on completion.
        """
        started = time.perf_counter()
        self._emit(PIPELINE_STARTED)
        try:
            self._run_stages()
        finally:
            if self._owns_executor:
                # Release backend resources (worker processes, in
                # particular).  Executors re-open lazily, so a re-run of
                # the same pipeline object still works.
                self.executor.close()
        self._emit(PIPELINE_FINISHED, seconds=time.perf_counter() - started)
        return self.ctx

    def _run_stages(self) -> None:
        resuming = self.session is not None
        for stage in self.stages:
            if all(self.ctx.has(name) for name in stage.provides):
                self._emit(STAGE_CACHED, stage.name)
                continue
            if resuming and all(self.session.has_artifact(n) for n in stage.provides):
                loaded = {n: self.session.load_artifact(n) for n in stage.provides}
                for name, value in loaded.items():
                    self.ctx.put(name, value)
                stage.hydrate(self.ctx, loaded)
                self._emit(STAGE_RESUMED, stage.name)
                continue
            # Once one stage runs live, later artifacts on disk are stale
            # relative to the in-memory driver state — rerun them too.
            resuming = False
            self._load_requirements(stage)
            self._emit(STAGE_STARTED, stage.name)
            t0 = time.perf_counter()
            stage.run(self.ctx)
            missing = [n for n in stage.provides if not self.ctx.has(n)]
            if missing:
                raise StageDependencyError(
                    "stage %r finished without providing %s"
                    % (stage.name, ", ".join(repr(m) for m in missing))
                )
            seconds = time.perf_counter() - t0
            if self.session is not None:
                names = self.session.persistable(stage.provides)
                self.session.save_artifacts(
                    stage.name, {n: self.ctx.get(n) for n in names}
                )
            self._emit(STAGE_FINISHED, stage.name, seconds)
