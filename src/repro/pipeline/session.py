"""Durable pipeline sessions: per-stage artifacts persisted as JSON.

Layout of a session directory::

    <session-dir>/
        manifest.json        # schema version, system, config, completed stages
        analysis.json        # one file per completed artifact ...
        profiles.json
        allocation.json
        beam.json
        report.json

Every write is atomic (temp file + rename) and the manifest's ``completed``
list is only extended *after* the stage's artifact files are on disk, so a
killed run always leaves a loadable prefix.  ``repro resume <dir>`` then
skips the completed prefix and re-runs the rest; because experiment seeds
are deterministic per (test, repetition), the resumed run is bit-identical
to a straight-through one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List

from ..config import EXECUTION_ONLY_KNOBS, CSnakeConfig
from ..errors import SessionError, SessionMismatch
from ..serialize import atomic_write_json
from .artifacts import ARTIFACT_CODECS

MANIFEST_NAME = "manifest.json"
SCHEMA_VERSION = 1

#: Config knobs a resume may override without invalidating the session:
#: they change execution strategy (backends, workers, caching) but provably
#: not results — parallel and cache-warm campaigns are bit-identical to
#: serial cold ones.
_EXECUTION_ONLY_KNOBS = EXECUTION_ONLY_KNOBS


def _atomic_write(path: Path, payload: Dict[str, Any]) -> None:
    atomic_write_json(path, payload, indent=1)


class Session:
    """One durable pipeline run rooted at a directory."""

    def __init__(self, root: Path, manifest: Dict[str, Any]) -> None:
        self.root = Path(root)
        self.manifest = manifest

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def attach(cls, root: "os.PathLike[str]", system: str, config: CSnakeConfig) -> "Session":
        """Create a session at ``root``, or re-open a compatible existing one.

        Re-opening an existing session under a different system or a
        result-affecting config difference raises
        :class:`~repro.errors.SessionMismatch` instead of silently mixing
        incompatible artifacts.
        """
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if manifest_path.exists():
            session = cls.open(root)
            session.verify(system, config)
            return session
        root.mkdir(parents=True, exist_ok=True)
        manifest = {
            "schema": SCHEMA_VERSION,
            "system": system,
            "config": config.to_dict(),
            "completed": [],
        }
        session = cls(root, manifest)
        session._write_manifest()
        return session

    @classmethod
    def open(cls, root: "os.PathLike[str]") -> "Session":
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            raise SessionError("no session manifest at %s" % manifest_path)
        try:
            with open(manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, ValueError) as exc:
            raise SessionError("unreadable session manifest: %s" % exc) from exc
        if manifest.get("schema") != SCHEMA_VERSION:
            raise SessionError(
                "session schema %r is not the supported %r"
                % (manifest.get("schema"), SCHEMA_VERSION)
            )
        return cls(root, manifest)

    def _write_manifest(self) -> None:
        _atomic_write(self.root / MANIFEST_NAME, self.manifest)

    # ------------------------------------------------------------- identity

    @property
    def system(self) -> str:
        return self.manifest["system"]

    @property
    def config(self) -> CSnakeConfig:
        return CSnakeConfig.from_dict(self.manifest["config"])

    def verify(self, system: str, config: CSnakeConfig) -> None:
        """Raise :class:`SessionMismatch` on any result-affecting difference."""
        if system != self.system:
            raise SessionMismatch(
                "session was created for system %r, not %r" % (self.system, system)
            )
        stored, current = dict(self.manifest["config"]), config.to_dict()
        for knob in _EXECUTION_ONLY_KNOBS:
            stored.pop(knob, None)
            current.pop(knob, None)
        if stored != current:
            diff = sorted(
                k for k in set(stored) | set(current) if stored.get(k) != current.get(k)
            )
            raise SessionMismatch(
                "session config differs on %s; use a fresh --session-dir" % ", ".join(diff)
            )

    # ------------------------------------------------------------ artifacts

    def _artifact_path(self, name: str) -> Path:
        return self.root / ("%s.json" % name)

    @property
    def completed(self) -> List[str]:
        return list(self.manifest["completed"])

    def has_artifact(self, name: str) -> bool:
        return name in self.manifest["completed"] and self._artifact_path(name).exists()

    def save_artifacts(self, stage_name: str, artifacts: Dict[str, Any]) -> None:
        """Persist a completed stage's artifacts, then mark them durable."""
        for name, value in artifacts.items():
            dump, _ = ARTIFACT_CODECS[name]
            _atomic_write(self._artifact_path(name), {"artifact": name, "data": dump(value)})
        for name in artifacts:
            if name not in self.manifest["completed"]:
                self.manifest["completed"].append(name)
        if stage_name not in self.manifest.setdefault("stages", []):
            self.manifest["stages"].append(stage_name)
        self._write_manifest()

    def load_artifact(self, name: str) -> Any:
        _, load = ARTIFACT_CODECS[name]
        path = self._artifact_path(name)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError) as exc:
            raise SessionError("unreadable artifact %s: %s" % (path, exc)) from exc
        return load(payload["data"])

    def persistable(self, names: Iterable[str]) -> List[str]:
        """Subset of ``names`` that have a registered codec."""
        return [n for n in names if n in ARTIFACT_CODECS]
