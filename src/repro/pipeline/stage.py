"""The stage protocol: named, dependency-typed units of pipeline work.

A stage declares which artifacts it ``requires`` from the context and
which it ``provides`` back; the :class:`~repro.pipeline.runner.Pipeline`
validates that every requirement is met by an earlier stage (or by a
resumed session) *before* anything runs, replacing the old facade's
hidden "call this method first" ordering constraints with a checked DAG.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .context import PipelineContext


class Stage:
    """One unit of pipeline work.

    Subclasses set the three class attributes and implement :meth:`run`,
    which reads its inputs via ``ctx.require(...)`` and publishes each
    artifact named in ``provides`` via ``ctx.put(...)``.  The runner
    verifies the contract (all ``provides`` present) after ``run``.
    """

    #: Unique stage name, used by ``--stages`` and progress events.
    name: str = ""
    #: Artifact names this stage reads from the context.
    requires: Tuple[str, ...] = ()
    #: Artifact names this stage reads *if present* (not validated; loaded
    #: from a session when available so resumed runs stay faithful).
    uses: Tuple[str, ...] = ()
    #: Artifact names this stage publishes to the context.
    provides: Tuple[str, ...] = ()

    def run(self, ctx: "PipelineContext") -> None:
        raise NotImplementedError

    def hydrate(self, ctx: "PipelineContext", artifacts: Dict[str, Any]) -> None:
        """Wire session-loaded artifacts into live state (driver caches).

        Called instead of :meth:`run` when every artifact in ``provides``
        was restored from a session; ``artifacts`` maps each provided name
        to its loaded value (already ``put`` into the context).  The
        default is a no-op — stages whose artifacts feed shared mutable
        state (the experiment driver) override this.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<stage %s: %s -> %s>" % (
            self.name,
            ",".join(self.requires) or "()",
            ",".join(self.provides),
        )
