"""The CSnake Figure-3 pipeline, ported to composable stages.

Stage graph (artifact names on the edges)::

    analyze ──analysis──┐
                        ├─> allocate ──allocation──> search ──beam──┐
    profile ──profiles──┘        │                                  ├─> report
                                 └──────────(edge DB, counters)─────┘

``analyze`` and ``profile`` are independent roots; ``allocate`` consumes
both and runs the 3PA-scheduled injection experiments (fanning them out
over the context's executor); ``search`` stitches the discovered edge DB
into cycles; ``report`` matches them against ground truth.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..core.allocation import ThreePhaseAllocator
from ..core.beam import BeamSearch
from ..core.report import build_report
from ..instrument.analyzer import analyze
from ..types import FaultKey
from .artifacts import AllocationArtifact, ProfilesArtifact
from .context import PipelineContext
from .stage import Stage


class StaticAnalysisStage(Stage):
    """Stage 1: static analyzer selects the injectable fault space F
    (restricted to the fault kinds the campaign's config enables, and
    pruned by code-slice reachability when the system is sliceable)."""

    name = "analyze"
    provides = ("analysis",)

    def run(self, ctx: PipelineContext) -> None:
        ctx.put(
            "analysis",
            analyze(
                ctx.spec.registry,
                ctx.config.fault_kinds,
                slices=ctx.spec.slice_analysis(),
                schedules=ctx.config.schedules,
            ),
        )


class ProfileStage(Stage):
    """Stage 2: fault-free profile runs of every workload (parallel)."""

    name = "profile"
    provides = ("profiles",)

    def run(self, ctx: PipelineContext) -> None:
        ctx.driver.profile_all(ctx.executor)
        ctx.put(
            "profiles",
            ProfilesArtifact(groups=ctx.driver.profiles(), runs_executed=ctx.driver.runs_executed),
        )

    def hydrate(self, ctx: PipelineContext, artifacts: Dict[str, Any]) -> None:
        profiles: ProfilesArtifact = artifacts["profiles"]
        ctx.driver.install_profiles(profiles.groups)
        ctx.driver.runs_executed = profiles.runs_executed


class AllocationStage(Stage):
    """Stage 3: 3PA budget allocation driving the injection experiments.

    The (fault, test) experiments scheduled within each 3PA phase are
    independent, so they fan out over the context's executor — the hot
    path of every campaign.
    """

    name = "allocate"
    requires = ("analysis", "profiles")
    provides = ("allocation",)

    def __init__(self, faults: Optional[Sequence[FaultKey]] = None) -> None:
        #: Optional override of the fault space (defaults to the analysis).
        self.faults = list(faults) if faults is not None else None

    def run(self, ctx: PipelineContext) -> None:
        faults = self.faults if self.faults is not None else list(ctx.require("analysis").faults)
        allocator = ThreePhaseAllocator(
            ctx.driver, faults, ctx.config, executor=ctx.executor
        )
        outcome = allocator.run()
        ctx.put(
            "allocation",
            AllocationArtifact(
                outcome=outcome,
                experiments_run=ctx.driver.experiments_run,
                runs_executed=ctx.driver.runs_executed,
            ),
        )

    def hydrate(self, ctx: PipelineContext, artifacts: Dict[str, Any]) -> None:
        allocation: AllocationArtifact = artifacts["allocation"]
        # Replaying each record's edges in record order rebuilds the edge DB
        # exactly as the live run left it (insertion order, merged states).
        for record in allocation.outcome.records:
            if record.result is None:
                continue
            ctx.driver.edges.add_all(record.result.edges)
            ctx.driver.results.append(record.result)
        ctx.driver.experiments_run = allocation.experiments_run
        ctx.driver.runs_executed = allocation.runs_executed


class BeamSearchStage(Stage):
    """Stages 4-5: stitch compatible edges, beam-search for cycles."""

    name = "search"
    requires = ("allocation",)
    provides = ("beam",)

    def run(self, ctx: PipelineContext) -> None:
        outcome = ctx.require("allocation").outcome
        beam = BeamSearch(ctx.config, outcome.fault_scores)
        ctx.put("beam", beam.search(ctx.driver.edges.all_edges()))


class ReportStage(Stage):
    """Final stage: cycle clustering and ground-truth matching."""

    name = "report"
    requires = ("allocation", "beam")
    #: ``analysis`` is optional: a faults-override campaign (CSnake's
    #: ``allocate_and_inject(faults=...)``) legitimately has none.
    uses = ("analysis",)
    provides = ("report",)

    def run(self, ctx: PipelineContext) -> None:
        allocation = ctx.require("allocation").outcome
        beam = ctx.require("beam")
        analysis = ctx.get("analysis")
        ctx.put(
            "report",
            build_report(
                ctx.spec,
                beam.cycles,
                allocation.clustering,
                n_faults=len(analysis.faults) if analysis else 0,
                budget_used=allocation.budget_used,
                runs_executed=ctx.driver.runs_executed,
                n_edges=len(ctx.driver.edges),
                # Trigger-gated bugs (env-fault ground truth) are matched
                # against the campaign's discovered edge set.
                edges=ctx.driver.edges.all_edges(),
                # Runs that hit the sim step limit under a composed fault
                # (graceful degradation: recorded, not raised).
                aborted_step_limit=sum(r.aborted for r in ctx.driver.results),
            ),
        )


def default_stages() -> List[Stage]:
    """The standard five-stage CSnake pipeline, in dependency order."""
    return [
        StaticAnalysisStage(),
        ProfileStage(),
        AllocationStage(),
        BeamSearchStage(),
        ReportStage(),
    ]


#: Stage names accepted by ``--stages``, in canonical order.
STAGE_NAMES = tuple(s.name for s in default_stages())


def producer_of(artifact: str) -> Optional[Stage]:
    """The default stage that provides ``artifact`` (None if not standard).

    Used when resuming a *filtered* stage list: a live stage's requirement
    may have to be loaded from the session even though its producing stage
    is absent, and hydration logic lives on the producer.
    """
    for stage in default_stages():
        if artifact in stage.provides:
            return stage
    return None
