"""JSON codecs for the framework's value types.

One round-trippable ``*_to_obj`` / ``*_from_obj`` pair per domain type,
shared by session persistence (``repro.pipeline.session``) and the
machine-readable report output (``DetectionReport.to_dict``).  All
``to_obj`` functions emit plain JSON-compatible values (dicts, lists,
strings, numbers, bools) with deterministic ordering, so dumping the same
artifact twice yields byte-identical files.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .core.driver import ExperimentTask

from .core.clustering import Clustering, FaultCluster
from .core.cycles import Cycle
from .core.fca import FcaResult
from .faults import model_for  # also interns every registered fault kind
from .instrument.analyzer import AnalysisResult
from .instrument.plan import InjectionPlan
from .instrument.trace import FaultEvent, RunGroup, RunTrace
from .types import CausalEdge, EdgeType, FaultKey, InjKind, LocalState, StateSet

# ------------------------------------------------------------ atomic writes


def atomic_write_json(
    path: "os.PathLike[str]",
    payload: Any,
    indent: Optional[int] = None,
    unique_tmp: bool = False,
) -> None:
    """Write ``payload`` as sorted JSON via temp file + ``os.replace``.

    The single atomic-write implementation shared by session persistence
    and the experiment cache.  ``unique_tmp`` makes the temp name
    pid-unique so concurrent writers of the same entry (cache-sharing
    worker processes) cannot clobber each other's half-written temp.
    """
    path = Path(path)
    if unique_tmp:
        tmp = path.with_suffix(".tmp.%d" % os.getpid())
    else:
        tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=indent, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


# --------------------------------------------------------------- fault keys


def fault_to_obj(fault: FaultKey) -> str:
    return "%s:%s" % (fault.site_id, fault.kind.value)


def fault_from_obj(obj: str) -> FaultKey:
    site_id, kind = obj.rsplit(":", 1)
    return FaultKey(site_id, InjKind(kind))


# ------------------------------------------------------------ local states


def state_to_obj(state: LocalState) -> Dict[str, Any]:
    return {
        "stack": list(state.call_stack),
        "branches": [[site, taken] for site, taken in state.branch_trace],
    }


def state_from_obj(obj: Dict[str, Any]) -> LocalState:
    return LocalState(
        call_stack=tuple(obj["stack"]),
        branch_trace=tuple((site, bool(taken)) for site, taken in obj["branches"]),
    )


def states_to_obj(states: StateSet) -> List[Dict[str, Any]]:
    ordered = sorted(states, key=lambda s: (s.call_stack, s.branch_trace))
    return [state_to_obj(s) for s in ordered]


def states_from_obj(obj: List[Dict[str, Any]]) -> StateSet:
    return frozenset(state_from_obj(o) for o in obj)


# ------------------------------------------------------------ causal edges


def edge_to_obj(edge: CausalEdge) -> Dict[str, Any]:
    return {
        "src": fault_to_obj(edge.src),
        "dst": fault_to_obj(edge.dst),
        "etype": edge.etype.value,
        "test_id": edge.test_id,
        "src_states": states_to_obj(edge.src_states),
        "dst_states": states_to_obj(edge.dst_states),
    }


def edge_from_obj(obj: Dict[str, Any]) -> CausalEdge:
    return CausalEdge(
        src=fault_from_obj(obj["src"]),
        dst=fault_from_obj(obj["dst"]),
        etype=EdgeType(obj["etype"]),
        test_id=obj["test_id"],
        src_states=states_from_obj(obj["src_states"]),
        dst_states=states_from_obj(obj["dst_states"]),
    )


# --------------------------------------------------------- injection plans


def plan_to_obj(plan: Optional[InjectionPlan]) -> Optional[Dict[str, Any]]:
    if plan is None:
        return None
    fault = plan.fault
    out = {
        "fault": fault_to_obj(fault),
        "delay_ms": plan.delay_ms,
        "sticky": plan.sticky,
        "warmup_ms": plan.warmup_ms,
    }
    params = model_for(fault.kind).params_to_obj(plan)
    if params:
        # Omitted when empty: classic plans keep their historical layout.
        out["params"] = params
    return out


def plan_from_obj(obj: Optional[Dict[str, Any]]) -> Optional[InjectionPlan]:
    if obj is None:
        return None
    fault = fault_from_obj(obj["fault"])
    return InjectionPlan(
        fault=fault,
        delay_ms=obj["delay_ms"],
        sticky=obj["sticky"],
        warmup_ms=obj["warmup_ms"],
        params=model_for(fault.kind).params_from_obj(obj.get("params", {})),
    )


# ------------------------------------------------------------------ traces


def trace_to_obj(trace: RunTrace) -> Dict[str, Any]:
    return {
        "test_id": trace.test_id,
        "injection": plan_to_obj(trace.injection),
        "seed": trace.seed,
        "events": [
            {
                "fault": fault_to_obj(e.fault),
                "time": e.time,
                "state": state_to_obj(e.state),
                "injected": e.injected,
            }
            for e in trace.events
        ],
        "loop_counts": {site: count for site, count in sorted(trace.loop_counts.items())},
        "loop_states": {
            site: states_to_obj(frozenset(states))
            for site, states in sorted(trace.loop_states.items())
        },
        "reached": sorted(trace.reached),
        "branches_recorded": trace.branches_recorded,
        "saturated": trace.saturated,
        "wall_time_s": trace.wall_time_s,
        "virtual_end_ms": trace.virtual_end_ms,
    }


def trace_from_obj(obj: Dict[str, Any]) -> RunTrace:
    trace = RunTrace(
        test_id=obj["test_id"],
        injection=plan_from_obj(obj["injection"]),
        seed=obj["seed"],
    )
    trace.events = [
        FaultEvent(
            fault=fault_from_obj(e["fault"]),
            time=e["time"],
            state=state_from_obj(e["state"]),
            injected=e["injected"],
        )
        for e in obj["events"]
    ]
    trace.loop_counts = Counter({site: count for site, count in obj["loop_counts"].items()})
    trace.loop_states = {
        site: set(states_from_obj(states)) for site, states in obj["loop_states"].items()
    }
    trace.reached = set(obj["reached"])
    trace.branches_recorded = obj["branches_recorded"]
    trace.saturated = obj["saturated"]
    trace.wall_time_s = obj["wall_time_s"]
    trace.virtual_end_ms = obj["virtual_end_ms"]
    return trace


def group_to_obj(group: RunGroup) -> Dict[str, Any]:
    return {
        "test_id": group.test_id,
        "injection": plan_to_obj(group.injection),
        "runs": [trace_to_obj(t) for t in group.runs],
    }


def group_from_obj(obj: Dict[str, Any]) -> RunGroup:
    group = RunGroup(test_id=obj["test_id"], injection=plan_from_obj(obj["injection"]))
    for run in obj["runs"]:
        group.add(trace_from_obj(run))
    return group


# ------------------------------------------------- experiment task descriptors


def task_to_obj(task: "ExperimentTask") -> Dict[str, Any]:
    """Wire form of one :class:`~repro.core.driver.ExperimentTask`.

    The config snapshot stays the *canonical JSON string* the driver
    computed (sorted keys), so a round-trip reproduces the exact
    ``config_json`` and the worker-side driver cache keys on identical
    strings whichever transport carried the task.
    """
    return {
        "system": task.system_name,
        "test_id": task.test_id,
        "config_json": task.config_json,
        "fault": None if task.fault is None else fault_to_obj(task.fault),
        "plans": [plan_to_obj(p) for p in task.plans],
    }


def task_from_obj(obj: Dict[str, Any]) -> "ExperimentTask":
    from .core.driver import ExperimentTask  # deferred: core imports serialize users

    fault = obj["fault"]
    plans = [plan_from_obj(p) for p in obj["plans"]]
    return ExperimentTask(
        system_name=obj["system"],
        test_id=obj["test_id"],
        config_json=obj["config_json"],
        fault=None if fault is None else fault_from_obj(fault),
        plans=tuple(p for p in plans if p is not None),
    )


def task_result_to_obj(result: Any) -> Dict[str, Any]:
    """Wire form of what :func:`execute_experiment_task` returns.

    Profile tasks yield a :class:`RunGroup`; experiment tasks yield an
    ``(FcaResult, runs)`` pair.  The envelope is tagged so the receiving
    side needs no out-of-band knowledge of which task produced it.
    """
    if isinstance(result, RunGroup):
        return {"kind": "profile", "group": group_to_obj(result)}
    fca, runs = result
    return {"kind": "experiment", "fca": fca_to_obj(fca), "runs": runs}


def task_result_from_obj(obj: Dict[str, Any]) -> Any:
    if obj["kind"] == "profile":
        return group_from_obj(obj["group"])
    return (fca_from_obj(obj["fca"]), obj["runs"])


# ------------------------------------------------------------- FCA results


def fca_to_obj(result: FcaResult) -> Dict[str, Any]:
    return {
        "fault": fault_to_obj(result.fault),
        "test_id": result.test_id,
        "edges": [edge_to_obj(e) for e in result.edges],
        "interference": [fault_to_obj(f) for f in result.interference],
        "min_p": result.min_p,
        "aborted": result.aborted,
    }


def fca_from_obj(obj: Dict[str, Any]) -> FcaResult:
    # ``min_p``/``aborted`` were added with fault schedules; sessions and
    # cache entries written before then simply lack them.
    return FcaResult(
        fault=fault_from_obj(obj["fault"]),
        test_id=obj["test_id"],
        edges=[edge_from_obj(e) for e in obj["edges"]],
        interference=[fault_from_obj(f) for f in obj["interference"]],
        min_p=obj.get("min_p"),
        aborted=obj.get("aborted", 0),
    )


# ---------------------------------------------------------- analysis result


def analysis_to_obj(analysis: AnalysisResult) -> Dict[str, Any]:
    return {
        "system": analysis.system,
        "faults": [fault_to_obj(f) for f in analysis.faults],
        "excluded": {k: list(v) for k, v in sorted(analysis.excluded.items())},
        "counts": dict(sorted(analysis.counts.items())),
    }


def analysis_from_obj(obj: Dict[str, Any]) -> AnalysisResult:
    # Schema ≤ 2 sessions stored one reason string per site; wrap those
    # into the multi-reason list form.
    excluded = {
        k: [v] if isinstance(v, str) else list(v) for k, v in obj["excluded"].items()
    }
    return AnalysisResult(
        system=obj["system"],
        faults=[fault_from_obj(f) for f in obj["faults"]],
        excluded=excluded,
        counts=dict(obj["counts"]),
    )


# ------------------------------------------------------------------ cycles


def cycle_to_obj(cycle: Cycle) -> Dict[str, Any]:
    return {"edges": [edge_to_obj(e) for e in cycle.edges]}


def cycle_from_obj(obj: Dict[str, Any]) -> Cycle:
    return Cycle(tuple(edge_from_obj(e) for e in obj["edges"]))


# -------------------------------------------------------- fault clustering


def clustering_to_obj(clustering: Optional[Clustering]) -> Optional[Dict[str, Any]]:
    if clustering is None:
        return None
    return {
        "clusters": [
            {"cluster_id": c.cluster_id, "faults": [fault_to_obj(f) for f in c.faults]}
            for c in clustering.clusters
        ]
    }


def clustering_from_obj(obj: Optional[Dict[str, Any]]) -> Optional[Clustering]:
    if obj is None:
        return None
    clusters = [
        FaultCluster(c["cluster_id"], [fault_from_obj(f) for f in c["faults"]])
        for c in obj["clusters"]
    ]
    return Clustering(clusters=clusters)
