"""Campaign-as-a-service: manager/agent distributed execution.

The subsystem has four parts, layered so every piece is testable without
a network and the whole service runs on the standard library alone:

* :mod:`repro.service.manager` — :class:`ManagerCore`, the thread-safe
  lease-based work queue + campaign registry (pure state machine, clock
  injectable);
* :mod:`repro.service.remote` — :class:`RemoteExecutor`, the fourth
  :class:`~repro.pipeline.executor.Executor` backend (``--backend
  remote``), plus the transport seam (:class:`LocalTransport` in-process,
  :class:`~repro.service.http.HttpTransport` over the wire);
* :mod:`repro.service.http` — stdlib ``http.server`` JSON API (FastAPI
  app factory available when the package is installed);
* :mod:`repro.service.agent` — the worker agent loop (``repro agent``).
"""

from .agent import Agent, execute_wire_task
from .http import HttpTransport, ManagerServer, create_fastapi_app
from .manager import ManagerCore, task_digest
from .remote import LocalTransport, RemoteExecutor

__all__ = [
    "Agent",
    "HttpTransport",
    "LocalTransport",
    "ManagerCore",
    "ManagerServer",
    "RemoteExecutor",
    "create_fastapi_app",
    "execute_wire_task",
    "task_digest",
]
