"""The worker agent: leases task batches and executes them locally.

An agent is the remote twin of a :class:`ProcessExecutor` worker process:
it resolves task descriptors through the systems registry, keeps a
per-(system, config) driver cache so each spec is built and each profile
group computed at most once, and — when the task's config names a cache
directory — consults and populates the shared content-addressed
experiment cache before and after simulating.  Its cache hit/miss/store
counters travel back to the manager with every completion, so the fleet's
dedup behaviour is observable from ``repro status``.

Execution is a pure function of the descriptor, which is what makes the
lease discipline safe: an agent that dies mid-lease is simply reaped, its
tasks re-queued, and any other agent's re-execution is bit-identical.
``fail_after_tasks`` turns that property into a test/CI hook — the agent
completes N tasks, leases one more batch, and exits *without* completing
or heartbeating, exactly the failure the reaper must absorb.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from typing import Any, Dict, Optional

from ..core.driver import _worker_driver
from ..serialize import task_from_obj, task_result_to_obj

#: Default long-poll duration of one lease request.
LEASE_WAIT_S = 5.0


def execute_wire_task(obj: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one wire-form task; returns the wire-form result envelope.

    Profile tasks flow through :meth:`ExperimentDriver.profile` (already
    cache-aware); experiment tasks get an explicit cache lookup/store
    around the pure execution, mirroring what the submitting driver does
    for local backends — so a warm shared cache short-circuits agent-side
    simulation too.
    """
    task = task_from_obj(obj)
    driver = _worker_driver(task.system_name, task.config_json)
    if task.fault is None:
        return task_result_to_obj(driver.profile(task.test_id))
    plans = list(task.plans)
    key = None
    if driver.cache is not None:
        key = driver.cache.experiment_key(task.test_id, task.fault, plans)
        hit = driver.cache.lookup_experiment(key)
        if hit is not None:
            return task_result_to_obj(hit)
    result, runs = driver._execute_plans(task.fault, task.test_id, plans)
    if key is not None:
        driver.cache.store_experiment(key, task.test_id, task.fault, result, runs)
    return task_result_to_obj((result, runs))


def agent_cache_stats(obj: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Cache counters of the driver that executed ``obj``, if any."""
    task = task_from_obj(obj)
    driver = _worker_driver(task.system_name, task.config_json)
    return None if driver.cache is None else driver.cache.stats()


class Agent:
    """The agent loop: register, lease, execute, complete, heartbeat.

    ``transport`` needs the agent-side manager surface
    (``register_agent`` / ``heartbeat`` / ``lease`` / ``complete``) —
    either an :class:`~repro.service.http.HttpTransport` or a
    :class:`~repro.service.manager.ManagerCore` directly.
    """

    def __init__(
        self,
        transport: Any,
        workers: int = 1,
        name: str = "",
        batch: Optional[int] = None,
        lease_wait_s: float = LEASE_WAIT_S,
        fail_after_tasks: Optional[int] = None,
    ) -> None:
        self.transport = transport
        self.workers = max(1, int(workers))
        self.name = name
        self.batch = batch or self.workers
        self.lease_wait_s = lease_wait_s
        self.fail_after_tasks = fail_after_tasks
        self.agent_id: Optional[str] = None
        self.tasks_completed = 0
        self.died = False  # set by the fail_after_tasks hook
        self._stop = threading.Event()
        self._count_lock = threading.Lock()
        self._heartbeat_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------ plumbing

    def stop(self) -> None:
        self._stop.set()

    def _register(self) -> float:
        reply = self.transport.register_agent(name=self.name, workers=self.workers)
        self.agent_id = reply["agent"]
        return float(reply["lease_ttl_s"])

    def _start_heartbeat(self, lease_ttl_s: float) -> None:
        interval = max(0.2, lease_ttl_s / 3.0)

        def beat() -> None:
            while not self._stop.wait(interval):
                try:
                    if not self.transport.heartbeat(self.agent_id)["ok"]:
                        # Lease lapsed (manager restarted, long GC pause):
                        # re-register rather than working unleased.
                        self._register()
                except Exception:  # noqa: BLE001 - transient transport errors
                    time.sleep(interval)

        self._heartbeat_thread = threading.Thread(
            target=beat, name="repro-agent-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()

    def _execute_one(self, entry: Dict[str, Any]) -> None:
        obj = entry["task"]
        try:
            result = execute_wire_task(obj)
            outcome: Dict[str, Any] = {"result": result}
        except Exception as exc:  # noqa: BLE001 - report, don't crash the fleet
            outcome = {"error": "%s: %s" % (type(exc).__name__, exc)}
        self.transport.complete(
            self.agent_id, entry["id"], cache=agent_cache_stats(obj), **outcome
        )
        with self._count_lock:
            self.tasks_completed += 1

    # ---------------------------------------------------------------- loop

    def run(self, idle_exit_s: Optional[float] = None) -> int:
        """Serve the queue until stopped; returns tasks completed.

        ``idle_exit_s`` makes the agent exit after that long without
        leasing anything (tests and smoke scripts); the CLI default is to
        serve forever.
        """
        lease_ttl_s = self._register()
        self._start_heartbeat(lease_ttl_s)
        idle_since = time.monotonic()
        try:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-agent"
            ) as pool:
                while not self._stop.is_set():
                    try:
                        reply = self.transport.lease(
                            self.agent_id,
                            max_tasks=self.batch,
                            wait_s=min(self.lease_wait_s, lease_ttl_s / 2.0),
                        )
                    except Exception:  # noqa: BLE001 - manager briefly unreachable
                        if self._stop.wait(0.5):
                            break
                        lease_ttl_s = self._register()
                        continue
                    entries = reply["tasks"]
                    if not entries:
                        if (
                            idle_exit_s is not None
                            and time.monotonic() - idle_since >= idle_exit_s
                        ):
                            break
                        continue
                    idle_since = time.monotonic()
                    if (
                        self.fail_after_tasks is not None
                        and self.tasks_completed >= self.fail_after_tasks
                    ):
                        # Simulated crash: hold the fresh leases, stop
                        # heartbeating, and vanish.  The manager's reaper
                        # must re-queue everything this agent held.
                        self.died = True
                        self._stop.set()
                        break
                    futures = [pool.submit(self._execute_one, e) for e in entries]
                    for future in futures:
                        future.result()
        finally:
            self._stop.set()
        return self.tasks_completed
