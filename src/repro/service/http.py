"""HTTP framing for the manager: stdlib server, JSON client, SSE stream.

The wire protocol is deliberately boring: every endpoint is JSON over
POST/GET, a thin shim over one :class:`~repro.service.manager.ManagerCore`
method each, so the in-process transport used by tests exercises the same
state machine as the network.  The primary server is built on
``http.server.ThreadingHTTPServer`` — no dependency beyond the standard
library, which is what keeps the tier-1 test suite runnable anywhere.
When FastAPI *is* installed, :func:`create_fastapi_app` exposes the same
routes as an ASGI app (``repro serve --impl fastapi``).

Endpoints (all request/response bodies JSON):

========  ==================================  =====================================
 method    path                                core method
========  ==================================  =====================================
 GET       ``/api/health``                     ``stats()`` (plus protocol version)
 POST      ``/api/agents/register``            ``register_agent(name, workers)``
 POST      ``/api/agents/heartbeat``           ``heartbeat(agent, cache)``
 POST      ``/api/agents/lease``               ``lease(agent, max_tasks, wait_s)``
 POST      ``/api/agents/complete``            ``complete(agent, id, result|error)``
 POST      ``/api/tasks``                      ``submit_tasks(tasks, campaign)``
 POST      ``/api/results``                    ``poll_results(ids, wait_s)``
 POST      ``/api/campaigns``                  ``start_campaign(system, config)``
 GET       ``/api/campaigns``                  ``list_campaigns()``
 GET       ``/api/campaigns/<id>``             ``campaign_status(id)``
 GET       ``/api/campaigns/<id>/report``      ``campaign_report(id)``
 GET       ``/api/campaigns/<id>/events``      ``campaign_events(id, after, wait)``
 GET       ``/api/campaigns/<id>/stream``      SSE wrapper over the event feed
========  ==================================  =====================================

Failure semantics: a :class:`~repro.errors.ReproError` from the core maps
to HTTP 400 with ``{"error": ...}``; anything else to 500.  Long-polling
endpoints (``lease``, ``results``, ``events``) bound their own wait, so a
client timeout only needs a small margin over the requested wait.
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ReproError
from .manager import ManagerCore

#: Extra client-side slack over a long-poll's server-side wait bound.
CLIENT_TIMEOUT_MARGIN_S = 30.0


# ---------------------------------------------------------------- server


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the owning server's :class:`ManagerCore`."""

    server_version = "repro-manager/1"
    protocol_version = "HTTP/1.1"

    # Quiet by default; the CLI flips this on with ``repro serve -v``.
    def log_message(self, fmt: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    @property
    def core(self) -> ManagerCore:
        return self.server.core  # type: ignore[attr-defined]

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        return json.loads(self.rfile.read(length).decode("utf-8"))

    def _reply(self, payload: Dict[str, Any], status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, fn: Callable[[], Dict[str, Any]]) -> None:
        try:
            self._reply(fn())
        except ReproError as exc:
            self._reply({"error": str(exc)}, status=400)
        except BrokenPipeError:  # client hung up mid-long-poll
            pass
        except Exception as exc:  # noqa: BLE001 - report, don't kill the thread
            self._reply({"error": "%s: %s" % (type(exc).__name__, exc)}, status=500)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parsed = urllib.parse.urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = {k: v[-1] for k, v in urllib.parse.parse_qs(parsed.query).items()}
        if parts == ["api", "health"]:
            self._dispatch(self.core.stats)
        elif parts == ["api", "campaigns"]:
            self._dispatch(self.core.list_campaigns)
        elif len(parts) == 3 and parts[:2] == ["api", "campaigns"]:
            self._dispatch(lambda: self.core.campaign_status(parts[2]))
        elif len(parts) == 4 and parts[:2] == ["api", "campaigns"] and parts[3] == "report":
            self._dispatch(lambda: {"report": self.core.campaign_report(parts[2])})
        elif len(parts) == 4 and parts[:2] == ["api", "campaigns"] and parts[3] == "events":
            self._dispatch(
                lambda: self.core.campaign_events(
                    parts[2],
                    after=int(query.get("after", 0)),
                    wait_s=float(query.get("wait", 0.0)),
                )
            )
        elif len(parts) == 4 and parts[:2] == ["api", "campaigns"] and parts[3] == "stream":
            self._stream(parts[2], after=int(query.get("after", 0)))
        else:
            self._reply({"error": "no such endpoint: %s" % parsed.path}, status=404)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parts = [p for p in urllib.parse.urlparse(self.path).path.split("/") if p]
        try:
            body = self._body()
        except (ValueError, UnicodeDecodeError) as exc:
            self._reply({"error": "bad request body: %s" % exc}, status=400)
            return
        routes: Dict[Tuple[str, ...], Callable[[], Dict[str, Any]]] = {
            ("api", "agents", "register"): lambda: self.core.register_agent(
                name=body.get("name", ""), workers=int(body.get("workers", 1))
            ),
            ("api", "agents", "heartbeat"): lambda: self.core.heartbeat(
                body["agent"], cache=body.get("cache")
            ),
            ("api", "agents", "lease"): lambda: self.core.lease(
                body["agent"],
                max_tasks=int(body.get("max_tasks", 1)),
                wait_s=float(body.get("wait_s", 0.0)),
            ),
            ("api", "agents", "complete"): lambda: self.core.complete(
                body["agent"],
                body["id"],
                result=body.get("result"),
                error=body.get("error"),
                cache=body.get("cache"),
            ),
            ("api", "tasks"): lambda: self.core.submit_tasks(
                body["tasks"], campaign=body.get("campaign")
            ),
            ("api", "results"): lambda: self.core.poll_results(
                body["ids"], wait_s=float(body.get("wait_s", 0.0))
            ),
            ("api", "campaigns"): lambda: self.core.start_campaign(
                body["system"], body["config"], label=body.get("label", "")
            ),
        }
        fn = routes.get(tuple(parts))
        if fn is None:
            self._reply({"error": "no such endpoint: %s" % self.path}, status=404)
        else:
            self._dispatch(fn)

    def _stream(self, campaign_id: str, after: int) -> None:
        """Server-sent events: one ``data:`` line per campaign event,
        closing once the campaign leaves the running state."""
        try:
            self.core.campaign_status(campaign_id)  # 400 on unknown id
        except ReproError as exc:
            self._reply({"error": str(exc)}, status=400)
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        cursor = after
        try:
            while True:
                reply = self.core.campaign_events(campaign_id, after=cursor, wait_s=10.0)
                for event in reply["events"]:
                    data = json.dumps(event, sort_keys=True)
                    self.wfile.write(("data: %s\n\n" % data).encode("utf-8"))
                self.wfile.flush()
                cursor = reply["next"]
                if reply["state"] != "running" and not reply["events"]:
                    break
        except (BrokenPipeError, ConnectionResetError):
            pass


class ManagerServer:
    """The stdlib HTTP manager: a ``ThreadingHTTPServer`` over a core.

    ``port=0`` binds an ephemeral port (tests, benchmarks); ``url`` is
    available after construction either way.  ``serve_forever`` blocks;
    ``start`` serves from a daemon thread.
    """

    def __init__(
        self,
        core: Optional[ManagerCore] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.core = core or ManagerCore()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.core = self.core  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return "http://%s:%d" % (host, port)

    def start(self) -> "ManagerServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-manager-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever(poll_interval=0.1)

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ManagerServer":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.shutdown()


# ---------------------------------------------------------------- client


class HttpTransport:
    """JSON client for the manager API (urllib; no dependencies).

    Implements both the executor-side surface (``submit_tasks`` /
    ``poll_results``) and the agent-side one (``register_agent`` /
    ``heartbeat`` / ``lease`` / ``complete``), plus the campaign verbs
    the CLI uses — one class is the entire protocol.
    """

    def __init__(self, url: str, timeout_s: float = CLIENT_TIMEOUT_MARGIN_S) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    def _call(
        self,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        wait_s: float = 0.0,
    ) -> Dict[str, Any]:
        url = self.url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            request = urllib.request.Request(url, data=data, headers=headers)
        except ValueError as exc:
            raise ReproError("invalid manager URL %r: %s" % (self.url, exc)) from exc
        try:
            with urllib.request.urlopen(request, timeout=wait_s + self.timeout_s) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 - body may not be JSON
                detail = ""
            raise ReproError(
                "manager %s replied %d%s" % (url, exc.code, ": %s" % detail if detail else "")
            ) from exc
        except (urllib.error.URLError, socket.timeout, ConnectionError) as exc:
            raise ReproError("cannot reach manager at %s: %s" % (url, exc)) from exc

    # executor-side -----------------------------------------------------

    def submit_tasks(
        self, tasks: List[Dict[str, Any]], campaign: Optional[str] = None
    ) -> Dict[str, Any]:
        return self._call("/api/tasks", {"tasks": tasks, "campaign": campaign})

    def poll_results(self, ids: List[str], wait_s: float = 0.0) -> Dict[str, Any]:
        return self._call("/api/results", {"ids": ids, "wait_s": wait_s}, wait_s=wait_s)

    # agent-side --------------------------------------------------------

    def register_agent(self, name: str = "", workers: int = 1) -> Dict[str, Any]:
        return self._call("/api/agents/register", {"name": name, "workers": workers})

    def heartbeat(self, agent: str, cache: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        return self._call("/api/agents/heartbeat", {"agent": agent, "cache": cache})

    def lease(self, agent: str, max_tasks: int = 1, wait_s: float = 0.0) -> Dict[str, Any]:
        return self._call(
            "/api/agents/lease",
            {"agent": agent, "max_tasks": max_tasks, "wait_s": wait_s},
            wait_s=wait_s,
        )

    def complete(
        self,
        agent: str,
        task_id: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        cache: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        return self._call(
            "/api/agents/complete",
            {"agent": agent, "id": task_id, "result": result, "error": error, "cache": cache},
        )

    # campaign verbs ----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._call("/api/health")

    def start_campaign(
        self, system: str, config_obj: Dict[str, Any], label: str = ""
    ) -> Dict[str, Any]:
        return self._call(
            "/api/campaigns", {"system": system, "config": config_obj, "label": label}
        )

    def list_campaigns(self) -> Dict[str, Any]:
        return self._call("/api/campaigns", {})

    def campaign_status(self, campaign_id: str) -> Dict[str, Any]:
        return self._call("/api/campaigns/%s" % campaign_id)

    def campaign_report(self, campaign_id: str) -> Optional[Dict[str, Any]]:
        return self._call("/api/campaigns/%s/report" % campaign_id)["report"]

    def campaign_events(
        self, campaign_id: str, after: int = 0, wait_s: float = 0.0
    ) -> Dict[str, Any]:
        return self._call(
            "/api/campaigns/%s/events?after=%d&wait=%s" % (campaign_id, after, wait_s),
            wait_s=wait_s,
        )


# ---------------------------------------------------------------- fastapi


def create_fastapi_app(core: Optional[ManagerCore] = None) -> Any:
    """The same API as an ASGI app, for deployments that have FastAPI.

    Raises :class:`ReproError` when FastAPI is not installed — the stdlib
    :class:`ManagerServer` is the dependency-free default and the tier-1
    suite never needs this path.
    """
    try:
        from fastapi import FastAPI, Request
        from fastapi.responses import JSONResponse, StreamingResponse
    except ImportError as exc:  # pragma: no cover - exercised only sans fastapi
        raise ReproError(
            "FastAPI is not installed; `repro serve` uses the stdlib HTTP "
            "server by default (pass --impl stdlib or install fastapi+uvicorn)"
        ) from exc

    core = core or ManagerCore()
    app = FastAPI(title="repro manager", version="1")
    app.state.core = core

    def guard(fn: Callable[[], Dict[str, Any]]) -> Any:
        try:
            return fn()
        except ReproError as exc:
            return JSONResponse({"error": str(exc)}, status_code=400)

    @app.get("/api/health")
    def health() -> Any:
        return guard(core.stats)

    @app.post("/api/agents/register")
    async def register(request: Request) -> Any:
        body = await request.json()
        return guard(
            lambda: core.register_agent(
                name=body.get("name", ""), workers=int(body.get("workers", 1))
            )
        )

    @app.post("/api/agents/heartbeat")
    async def heartbeat(request: Request) -> Any:
        body = await request.json()
        return guard(lambda: core.heartbeat(body["agent"], cache=body.get("cache")))

    @app.post("/api/agents/lease")
    async def lease(request: Request) -> Any:
        body = await request.json()
        return guard(
            lambda: core.lease(
                body["agent"],
                max_tasks=int(body.get("max_tasks", 1)),
                wait_s=float(body.get("wait_s", 0.0)),
            )
        )

    @app.post("/api/agents/complete")
    async def complete(request: Request) -> Any:
        body = await request.json()
        return guard(
            lambda: core.complete(
                body["agent"],
                body["id"],
                result=body.get("result"),
                error=body.get("error"),
                cache=body.get("cache"),
            )
        )

    @app.post("/api/tasks")
    async def tasks(request: Request) -> Any:
        body = await request.json()
        return guard(lambda: core.submit_tasks(body["tasks"], campaign=body.get("campaign")))

    @app.post("/api/results")
    async def results(request: Request) -> Any:
        body = await request.json()
        return guard(
            lambda: core.poll_results(body["ids"], wait_s=float(body.get("wait_s", 0.0)))
        )

    @app.post("/api/campaigns")
    async def submit_campaign(request: Request) -> Any:
        body = await request.json()
        return guard(
            lambda: core.start_campaign(
                body["system"], body["config"], label=body.get("label", "")
            )
        )

    @app.get("/api/campaigns")
    def campaigns() -> Any:
        return guard(core.list_campaigns)

    @app.get("/api/campaigns/{campaign_id}")
    def campaign_status(campaign_id: str) -> Any:
        return guard(lambda: core.campaign_status(campaign_id))

    @app.get("/api/campaigns/{campaign_id}/report")
    def campaign_report(campaign_id: str) -> Any:
        return guard(lambda: {"report": core.campaign_report(campaign_id)})

    @app.get("/api/campaigns/{campaign_id}/events")
    def campaign_events(campaign_id: str, after: int = 0, wait: float = 0.0) -> Any:
        return guard(lambda: core.campaign_events(campaign_id, after=after, wait_s=wait))

    @app.get("/api/campaigns/{campaign_id}/stream")
    def campaign_stream(campaign_id: str, after: int = 0) -> Any:
        core.campaign_status(campaign_id)  # raise early on unknown id

        def generate() -> Any:
            cursor = after
            while True:
                reply = core.campaign_events(campaign_id, after=cursor, wait_s=10.0)
                for event in reply["events"]:
                    yield "data: %s\n\n" % json.dumps(event, sort_keys=True)
                cursor = reply["next"]
                if reply["state"] != "running" and not reply["events"]:
                    return

        return StreamingResponse(generate(), media_type="text/event-stream")

    return app
