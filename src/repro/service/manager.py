"""The manager core: lease-based work queue + campaign registry.

:class:`ManagerCore` is a pure, thread-safe state machine — no sockets,
no JSON framing, no clocks it does not own.  The HTTP layer
(:mod:`repro.service.http`) is a thin framing shim over its public
methods, and every method speaks JSON-compatible values, so the in-process
transport used by tests and manager-side campaigns exercises the exact
code paths the wire does.

Liveness follows the lease discipline of Timed Quorum Systems: an agent
*joins* (``register_agent``), holds a lease it renews by heartbeat (or by
any other call), and *expires* when the lease lapses — at which point
every task it held is silently re-queued for the surviving fleet.  Task
execution is a pure function of the task descriptor (system name, test
id, config, plans, seeds), so a re-queued task re-executes bit-identically
on any other agent and the deterministic commit order downstream (the
driver commits in submission order) is never at risk.

Tasks are keyed by the SHA-256 of their *result-affecting* content
(:func:`task_digest` strips the execution-only config knobs), which makes
the queue itself the dedup layer: two concurrent campaigns submitting the
same (fault, test) experiment share one queue entry, one execution, and
one result.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set

from ..config import EXECUTION_ONLY_KNOBS
from ..errors import ReproError

#: Default lease duration granted to agents; renewed by any agent call.
DEFAULT_LEASE_TTL_S = 15.0

#: Cap on buffered progress events per campaign (a ring; oldest dropped).
MAX_CAMPAIGN_EVENTS = 4096


def task_digest(task_obj: Dict[str, Any]) -> str:
    """Content address of a wire-form task: the dedup identity.

    Execution-only config knobs (workers, backend, cache dir, manager
    URL) are stripped before hashing — two campaigns that could not
    produce different results for this task must collide here, whatever
    machine or cache layout each runs with.
    """
    config = json.loads(task_obj["config_json"])
    for knob in EXECUTION_ONLY_KNOBS:
        config.pop(knob, None)
    identity = {
        "system": task_obj["system"],
        "test_id": task_obj["test_id"],
        "fault": task_obj["fault"],
        "plans": task_obj["plans"],
        "config": config,
    }
    return hashlib.sha256(json.dumps(identity, sort_keys=True).encode()).hexdigest()


class _Task:
    __slots__ = (
        "digest",
        "obj",
        "state",
        "agent",
        "result",
        "error",
        "attempts",
        "campaigns",
        "enqueued_at",
        "leased_at",
        "finished_at",
    )

    def __init__(self, digest: str, obj: Dict[str, Any], now: float) -> None:
        self.digest = digest
        self.obj = obj
        self.state = "queued"  # queued | leased | done | failed
        self.agent: Optional[str] = None
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.attempts = 0
        self.campaigns: Set[str] = set()
        self.enqueued_at = now
        self.leased_at: Optional[float] = None
        self.finished_at: Optional[float] = None


class _Agent:
    __slots__ = ("agent_id", "name", "workers", "deadline", "completed", "cache", "joined_at")

    def __init__(self, agent_id: str, name: str, workers: int, deadline: float, now: float) -> None:
        self.agent_id = agent_id
        self.name = name
        self.workers = workers
        self.deadline = deadline
        self.completed = 0
        self.cache: Dict[str, Any] = {}
        self.joined_at = now


class _Campaign:
    __slots__ = (
        "campaign_id",
        "system",
        "label",
        "state",  # running | done | failed
        "error",
        "report",
        "digest",
        "summary",
        "events",
        "next_seq",
        "submitted_at",
        "finished_at",
        "tasks_total",
        "tasks_done",
    )

    def __init__(self, campaign_id: str, system: str, label: str, now: float) -> None:
        self.campaign_id = campaign_id
        self.system = system
        self.label = label
        self.state = "running"
        self.error: Optional[str] = None
        self.report: Optional[Dict[str, Any]] = None
        self.digest: Optional[str] = None
        self.summary: Optional[Dict[str, Any]] = None
        self.events: Deque[Dict[str, Any]] = deque(maxlen=MAX_CAMPAIGN_EVENTS)
        self.next_seq = 0
        self.submitted_at = now
        self.finished_at: Optional[float] = None
        self.tasks_total = 0
        self.tasks_done = 0


class ManagerCore:
    """Thread-safe lease-based task queue + campaign registry.

    All public methods take and return JSON-compatible values; the lock
    is a single condition variable so long-polls (``lease``,
    ``poll_results``, ``campaign_events``) wake on any state change.
    ``clock`` is injectable (monotonic seconds) so lease-expiry tests
    never sleep.
    """

    def __init__(
        self,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if lease_ttl_s <= 0:
            raise ReproError("lease_ttl_s must be positive")
        self.lease_ttl_s = lease_ttl_s
        self._clock = clock or time.monotonic
        # Default Condition (RLock-backed): several public methods compose
        # others (stats -> list_campaigns) under one critical section.
        self._cond = threading.Condition()
        self._tasks: Dict[str, _Task] = {}
        self._queue: Deque[str] = deque()
        self._agents: Dict[str, _Agent] = {}
        self._campaigns: Dict[str, _Campaign] = {}
        self._campaign_threads: Dict[str, threading.Thread] = {}
        self._next_agent = 0
        self._next_campaign = 0
        self._executed = 0  # tasks that ran on an agent (≠ dedup hits)
        self._requeued = 0  # leases reclaimed from expired agents
        self.started_at = self._clock()

    # ----------------------------------------------------------- internals

    def _reap(self, now: float) -> None:
        """Expire agents whose lease lapsed; re-queue everything they held."""
        dead = [a for a in self._agents.values() if a.deadline <= now]
        for agent in dead:
            del self._agents[agent.agent_id]
            for task in self._tasks.values():
                if task.state == "leased" and task.agent == agent.agent_id:
                    task.state = "queued"
                    task.agent = None
                    self._queue.append(task.digest)
                    self._requeued += 1
        if dead:
            self._cond.notify_all()

    def _touch(self, agent_id: str, now: float) -> _Agent:
        agent = self._agents.get(agent_id)
        if agent is None:
            raise ReproError("unknown or expired agent %r (re-register)" % (agent_id,))
        agent.deadline = now + self.lease_ttl_s
        return agent

    def _emit(self, campaign: _Campaign, kind: str, **detail: Any) -> None:
        event = {"seq": campaign.next_seq, "kind": kind, "detail": detail}
        campaign.next_seq += 1
        campaign.events.append(event)
        self._cond.notify_all()

    # -------------------------------------------------------------- agents

    def register_agent(self, name: str = "", workers: int = 1) -> Dict[str, Any]:
        with self._cond:
            now = self._clock()
            self._reap(now)
            self._next_agent += 1
            agent_id = "agent-%d" % self._next_agent
            self._agents[agent_id] = _Agent(
                agent_id, name or agent_id, max(1, int(workers)), now + self.lease_ttl_s, now
            )
            return {"agent": agent_id, "lease_ttl_s": self.lease_ttl_s}

    def heartbeat(self, agent_id: str, cache: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        with self._cond:
            now = self._clock()
            self._reap(now)
            agent = self._agents.get(agent_id)
            if agent is None:
                return {"ok": False}
            agent.deadline = now + self.lease_ttl_s
            if cache:
                agent.cache = dict(cache)
            return {"ok": True}

    def lease(self, agent_id: str, max_tasks: int = 1, wait_s: float = 0.0) -> Dict[str, Any]:
        """Lease up to ``max_tasks`` queued tasks; long-polls up to ``wait_s``.

        An expired/unknown agent gets an explicit error so it re-registers
        instead of silently executing work it no longer holds a lease on.
        """
        deadline = self._clock() + max(0.0, wait_s)
        with self._cond:
            while True:
                now = self._clock()
                self._reap(now)
                agent = self._touch(agent_id, now)
                leased: List[Dict[str, Any]] = []
                while self._queue and len(leased) < max(1, int(max_tasks)):
                    task = self._tasks[self._queue.popleft()]
                    if task.state != "queued":
                        continue  # completed by a still-working ex-leaseholder
                    task.state = "leased"
                    task.agent = agent.agent_id
                    task.attempts += 1
                    task.leased_at = now
                    leased.append({"id": task.digest, "task": task.obj})
                if leased or now >= deadline:
                    return {"tasks": leased}
                self._cond.wait(timeout=min(0.5, deadline - now))

    def complete(
        self,
        agent_id: str,
        task_id: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        cache: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Record a task outcome.  First completion wins; results are
        accepted even from agents whose lease lapsed mid-execution (the
        work is deterministic, so a late result equals the re-queued
        re-execution it raced)."""
        with self._cond:
            now = self._clock()
            self._reap(now)
            agent = self._agents.get(agent_id)
            if agent is not None:
                agent.deadline = now + self.lease_ttl_s
                if cache:
                    agent.cache = dict(cache)
            task = self._tasks.get(task_id)
            if task is None:
                raise ReproError("completion for unknown task %r" % (task_id,))
            if task.state in ("done", "failed"):
                return {"ok": True, "duplicate": True}
            wait_s = (task.leased_at or now) - task.enqueued_at
            if error is not None:
                task.state = "failed"
                task.error = error
            else:
                task.state = "done"
                task.result = result
            task.finished_at = now
            self._executed += 1
            if agent is not None:
                agent.completed += 1
            for cid in sorted(task.campaigns):
                campaign = self._campaigns.get(cid)
                if campaign is not None:
                    campaign.tasks_done += 1
                    self._emit(
                        campaign,
                        "task_failed" if error is not None else "task_done",
                        id=task.digest[:12],
                        agent=agent_id,
                        done=campaign.tasks_done,
                        total=campaign.tasks_total,
                        queue_wait_s=round(wait_s, 6),
                    )
            self._cond.notify_all()
            return {"ok": True, "duplicate": False}

    # --------------------------------------------------------------- tasks

    def submit_tasks(
        self, tasks: List[Dict[str, Any]], campaign: Optional[str] = None
    ) -> Dict[str, Any]:
        """Enqueue wire-form tasks; returns their content-digest ids.

        A task whose digest is already known (queued, leased, or done) is
        *not* enqueued again — the existing entry serves every submitter.
        """
        with self._cond:
            now = self._clock()
            self._reap(now)
            ids: List[str] = []
            fresh = 0
            for obj in tasks:
                digest = task_digest(obj)
                ids.append(digest)
                task = self._tasks.get(digest)
                if task is None:
                    task = _Task(digest, obj, now)
                    self._tasks[digest] = task
                    self._queue.append(digest)
                    fresh += 1
                elif task.state == "failed":
                    # A failed task may be retried by a fresh submission.
                    task.state = "queued"
                    task.error = None
                    self._queue.append(digest)
                    fresh += 1
                if campaign is not None:
                    camp = self._campaigns.get(campaign)
                    if camp is not None and campaign not in task.campaigns:
                        task.campaigns.add(campaign)
                        camp.tasks_total += 1
                        if task.state in ("done", "failed"):
                            # Dedup hit against an already-finished task:
                            # it counts as progress the moment it attaches.
                            camp.tasks_done += 1
            if fresh:
                self._cond.notify_all()
            return {"ids": ids}

    def poll_results(self, ids: List[str], wait_s: float = 0.0) -> Dict[str, Any]:
        """Resolved outcomes for ``ids``; long-polls until at least one of
        the *pending* ids resolves or ``wait_s`` elapses."""
        deadline = self._clock() + max(0.0, wait_s)
        with self._cond:
            while True:
                now = self._clock()
                self._reap(now)
                done: Dict[str, Dict[str, Any]] = {}
                pending: List[str] = []
                for task_id in ids:
                    task = self._tasks.get(task_id)
                    if task is None:
                        raise ReproError("poll for unknown task %r" % (task_id,))
                    if task.state == "done":
                        done[task_id] = {"result": task.result}
                    elif task.state == "failed":
                        done[task_id] = {"error": task.error}
                    else:
                        pending.append(task_id)
                if done or not pending or now >= deadline:
                    return {"done": done, "pending": pending}
                self._cond.wait(timeout=min(0.5, deadline - now))

    # ----------------------------------------------------------- campaigns

    def start_campaign(
        self,
        system: str,
        config_obj: Dict[str, Any],
        label: str = "",
    ) -> Dict[str, Any]:
        """Run a full campaign manager-side, fanning experiments out to the
        agent fleet through the shared queue.

        The pipeline runs in a background thread with a
        :class:`~repro.service.remote.RemoteExecutor` over the in-process
        transport; its progress (stage events + per-task completions)
        streams into the campaign's event ring.
        """
        from ..config import CSnakeConfig  # deferred: keep import-time light
        from ..systems import get_system

        spec = get_system(system)  # raises UnknownSystem before thread start
        config = CSnakeConfig.from_dict(config_obj)
        with self._cond:
            self._next_campaign += 1
            campaign_id = "campaign-%d" % self._next_campaign
            campaign = _Campaign(campaign_id, system, label, self._clock())
            self._campaigns[campaign_id] = campaign
            self._emit(campaign, "campaign_submitted", system=system, label=label)
        thread = threading.Thread(
            target=self._run_campaign,
            args=(campaign_id, spec, config),
            name="repro-%s" % campaign_id,
            daemon=True,
        )
        self._campaign_threads[campaign_id] = thread
        thread.start()
        return {"campaign": campaign_id}

    def _run_campaign(self, campaign_id: str, spec: Any, config: Any) -> None:
        from ..pipeline import Pipeline
        from ..pipeline.events import PipelineObserver
        from .remote import LocalTransport, RemoteExecutor

        core = self

        class _Stream(PipelineObserver):
            def on_event(self, event: Any) -> None:
                with core._cond:
                    campaign = core._campaigns[campaign_id]
                    core._emit(
                        campaign,
                        event.kind,
                        stage=event.stage,
                        seconds=round(event.seconds, 6),
                    )

        executor = RemoteExecutor(LocalTransport(self), campaign=campaign_id)
        try:
            pipeline = Pipeline(
                spec, config, executor=executor, observers=[_Stream()]
            )
            ctx = pipeline.run()
            report = ctx.get("report").to_dict()
            digest = campaign_digest(ctx)
            with self._cond:
                campaign = self._campaigns[campaign_id]
                campaign.state = "done"
                campaign.report = report
                campaign.digest = digest
                campaign.summary = dict(report.get("summary", {}))
                campaign.finished_at = self._clock()
                self._emit(
                    campaign, "campaign_done", digest=digest, summary=campaign.summary
                )
        except Exception as exc:  # noqa: BLE001 - campaign threads must not die silently
            with self._cond:
                campaign = self._campaigns[campaign_id]
                campaign.state = "failed"
                campaign.error = "%s: %s" % (type(exc).__name__, exc)
                campaign.finished_at = self._clock()
                self._emit(campaign, "campaign_failed", error=campaign.error)

    def wait_campaign(self, campaign_id: str, timeout_s: Optional[float] = None) -> Dict[str, Any]:
        """Block until the campaign leaves ``running``; returns its status."""
        deadline = None if timeout_s is None else self._clock() + timeout_s
        with self._cond:
            while True:
                campaign = self._campaigns.get(campaign_id)
                if campaign is None:
                    raise ReproError("unknown campaign %r" % (campaign_id,))
                if campaign.state != "running":
                    break
                remaining = None if deadline is None else deadline - self._clock()
                if remaining is not None and remaining <= 0:
                    break
                self._cond.wait(timeout=0.5 if remaining is None else min(0.5, remaining))
        return self.campaign_status(campaign_id)

    def campaign_status(self, campaign_id: str) -> Dict[str, Any]:
        with self._cond:
            campaign = self._campaigns.get(campaign_id)
            if campaign is None:
                raise ReproError("unknown campaign %r" % (campaign_id,))
            return {
                "campaign": campaign.campaign_id,
                "system": campaign.system,
                "label": campaign.label,
                "state": campaign.state,
                "error": campaign.error,
                "digest": campaign.digest,
                "summary": campaign.summary,
                "tasks": {"done": campaign.tasks_done, "total": campaign.tasks_total},
                "events": campaign.next_seq,
            }

    def campaign_report(self, campaign_id: str) -> Optional[Dict[str, Any]]:
        with self._cond:
            campaign = self._campaigns.get(campaign_id)
            if campaign is None:
                raise ReproError("unknown campaign %r" % (campaign_id,))
            return campaign.report

    def campaign_events(
        self, campaign_id: str, after: int = 0, wait_s: float = 0.0
    ) -> Dict[str, Any]:
        """Events with ``seq >= after``; long-polls up to ``wait_s`` when
        none are buffered yet and the campaign is still running."""
        deadline = self._clock() + max(0.0, wait_s)
        with self._cond:
            while True:
                campaign = self._campaigns.get(campaign_id)
                if campaign is None:
                    raise ReproError("unknown campaign %r" % (campaign_id,))
                events = [e for e in campaign.events if e["seq"] >= after]
                now = self._clock()
                if events or campaign.state != "running" or now >= deadline:
                    return {
                        "events": events,
                        "next": campaign.next_seq,
                        "state": campaign.state,
                    }
                self._cond.wait(timeout=min(0.5, deadline - now))

    def list_campaigns(self) -> Dict[str, Any]:
        with self._cond:
            return {
                "campaigns": [
                    {
                        "campaign": c.campaign_id,
                        "system": c.system,
                        "state": c.state,
                        "tasks": {"done": c.tasks_done, "total": c.tasks_total},
                    }
                    for _, c in sorted(self._campaigns.items())
                ]
            }

    # ------------------------------------------------------------- metrics

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            now = self._clock()
            self._reap(now)
            tasks = list(self._tasks.values())
            done = [t for t in tasks if t.state == "done"]
            waits = [
                (t.leased_at or t.enqueued_at) - t.enqueued_at for t in done
            ]
            return {
                "protocol": 1,
                "uptime_s": round(now - self.started_at, 3),
                "lease_ttl_s": self.lease_ttl_s,
                "agents": [
                    {
                        "agent": a.agent_id,
                        "name": a.name,
                        "workers": a.workers,
                        "completed": a.completed,
                        "cache": a.cache,
                    }
                    for _, a in sorted(self._agents.items())
                ],
                "tasks": {
                    "total": len(tasks),
                    "queued": sum(1 for t in tasks if t.state == "queued"),
                    "leased": sum(1 for t in tasks if t.state == "leased"),
                    "done": len(done),
                    "failed": sum(1 for t in tasks if t.state == "failed"),
                    "executed": self._executed,
                    "deduped": sum(1 for t in tasks if len(t.campaigns) > 1),
                    "requeued": self._requeued,
                },
                "queue_wait_s": {
                    "mean": round(sum(waits) / len(waits), 6) if waits else 0.0,
                    "max": round(max(waits), 6) if waits else 0.0,
                },
                "campaigns": self.list_campaigns()["campaigns"],
            }


def campaign_digest(ctx: Any) -> str:
    """The campaign identity digest: report JSON + full edge DB.

    Matches the convention of the benchmark suite and the parity
    integration tests, so "remote ≡ serial" means the same bytes
    everywhere it is asserted.
    """
    from ..serialize import edge_to_obj

    report = ctx.get("report").to_dict()
    edges = [edge_to_obj(e) for e in ctx.driver.edges.all_edges()]
    return hashlib.sha256(
        json.dumps({"report": report, "edges": edges}, sort_keys=True).encode()
    ).hexdigest()
