"""``--backend remote``: the Executor that ships tasks to the manager.

:class:`RemoteExecutor` is the fourth
:class:`~repro.pipeline.executor.Executor` backend.  It advertises
``requires_pickling`` exactly like the process backend, so the driver
already hands it picklable :class:`~repro.core.driver.ExperimentTask`
descriptors and a module-level entry point — the executor serializes each
descriptor to its wire form, submits the batch to the manager queue, and
blocks until every result (possibly computed out of order, by several
agents, with mid-batch agent deaths and re-queues) is resolved.  Results
return **in input order**, and the driver keeps committing in submission
order, so a remote campaign's digest is bit-identical to a serial one by
the same argument that covers the thread and process backends.

The transport is a seam: :class:`LocalTransport` calls a
:class:`~repro.service.manager.ManagerCore` in-process (used by tests and
by manager-side campaigns, where HTTP to ``self`` would be silly);
:class:`~repro.service.http.HttpTransport` speaks the JSON API.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional

from ..errors import ReproError
from ..pipeline.executor import Executor
from ..serialize import task_result_from_obj, task_to_obj

if TYPE_CHECKING:  # pragma: no cover
    from ..core.driver import ExperimentTask
    from .manager import ManagerCore

#: How long one result poll blocks manager-side before the executor
#: re-checks for shutdown; purely an execution knob.
POLL_WAIT_S = 2.0


class Transport:
    """Minimal manager client surface the executor needs."""

    def submit_tasks(
        self, tasks: List[Dict[str, Any]], campaign: Optional[str] = None
    ) -> Dict[str, Any]:
        raise NotImplementedError

    def poll_results(self, ids: List[str], wait_s: float = 0.0) -> Dict[str, Any]:
        raise NotImplementedError


class LocalTransport(Transport):
    """In-process transport: direct calls into a :class:`ManagerCore`."""

    def __init__(self, core: "ManagerCore") -> None:
        self.core = core

    def submit_tasks(
        self, tasks: List[Dict[str, Any]], campaign: Optional[str] = None
    ) -> Dict[str, Any]:
        return self.core.submit_tasks(tasks, campaign=campaign)

    def poll_results(self, ids: List[str], wait_s: float = 0.0) -> Dict[str, Any]:
        return self.core.poll_results(ids, wait_s=wait_s)


class RemoteExecutor(Executor):
    """Ordered map over the manager's distributed task queue.

    ``timeout_s`` bounds how long one batch may sit with **no** task
    resolving (a fleet that never picks work up); any progress resets the
    clock, so slow-but-alive fleets are never killed mid-batch.
    """

    requires_pickling = True

    def __init__(
        self,
        transport: Transport,
        max_workers: int = 8,
        campaign: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        if max_workers < 2:
            # The driver skips fan-out entirely at max_workers <= 1; a
            # remote backend that silently runs serially would be a
            # misconfiguration, not an optimization.
            raise ReproError("RemoteExecutor needs max_workers >= 2")
        self.transport = transport
        self.max_workers = max_workers
        self.campaign = campaign
        self.timeout_s = timeout_s

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        from ..core.driver import execute_experiment_task

        if fn is not execute_experiment_task:
            raise ReproError(
                "the remote backend executes ExperimentTask descriptors only "
                "(got %r); use the thread or serial backend for ad-hoc callables"
                % (getattr(fn, "__name__", fn),)
            )
        tasks: List["ExperimentTask"] = list(items)
        if not tasks:
            return []
        objs = [task_to_obj(t) for t in tasks]
        ids = self.transport.submit_tasks(objs, campaign=self.campaign)["ids"]
        resolved: Dict[str, Dict[str, Any]] = {}
        stalled_s = 0.0
        while len(resolved) < len(set(ids)):
            pending = sorted({i for i in ids if i not in resolved})
            reply = self.transport.poll_results(pending, wait_s=POLL_WAIT_S)
            if reply["done"]:
                resolved.update(reply["done"])
                stalled_s = 0.0
            else:
                stalled_s += POLL_WAIT_S
                if self.timeout_s is not None and stalled_s >= self.timeout_s:
                    raise ReproError(
                        "remote batch stalled: %d/%d tasks unresolved after %.0fs "
                        "with no progress (are any agents connected?)"
                        % (len(pending), len(ids), stalled_s)
                    )
        out: List[Any] = []
        for task_id in ids:
            outcome = resolved[task_id]
            if "error" in outcome:
                raise ReproError("remote task failed: %s" % (outcome["error"],))
            out.append(task_result_from_obj(outcome["result"]))
        return out
