"""Virtual-time discrete-event substrate for the simulated mini-systems.

The model (documented in DESIGN.md): every node is a single-threaded
executor with a ``busy_until`` horizon.  Handlers fire from a global event
heap; a handler scheduled at ``t`` on a node busy until ``b > t`` starts at
``b``.  While a handler runs it accrues virtual processing cost via
:meth:`SimEnv.spin` — which is exactly where injected per-iteration delay
lands — pushing ``busy_until`` forward and thereby postponing the node's
subsequent heartbeats, reports, and RPC service.  RPCs execute the callee
synchronously with time accounting and raise :class:`~repro.errors.RpcTimeout`
when the accounted round-trip exceeds the timeout.  This is what turns an
injected delay into the timeouts and error-handler activations that
self-sustaining cascades feed on.
"""

from .events import Event, SimEnv
from .node import Node
from .rand import jittered

__all__ = ["Event", "SimEnv", "Node", "jittered"]
