"""Event loop and activity model of the virtual-time substrate."""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, List, Optional

from ..config import SimConfig
from ..errors import NodeCrashed, RpcTimeout, SimFault


class Event:
    """A scheduled handler invocation; cancellable."""

    __slots__ = ("time", "seq", "node", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, node: "Any", fn: Callable, args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.node = node
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class _Activity:
    """One handler execution: a time cursor charged to a node."""

    __slots__ = ("node", "cursor")

    def __init__(self, node: "Any", cursor: float) -> None:
        self.node = node
        self.cursor = cursor


class SimEnv:
    """The simulated world: clock, event heap, network parameters, RNG.

    One ``SimEnv`` corresponds to one run of one workload.  Nodes register
    themselves on construction; the workload schedules client operations and
    calls :meth:`run`.
    """

    #: Safety valve: a saturated cascade can schedule unbounded work.  Runs
    #: stop (with ``saturated = True``) after this many events.
    MAX_EVENTS = 250_000

    def __init__(self, sim_config: Optional[SimConfig] = None, seed: int = 0) -> None:
        self.cfg = sim_config or SimConfig()
        self.rng = random.Random(seed)
        self._heap: List[Event] = []
        self._seq = 0
        self._loop_time = 0.0
        self._activities: List[_Activity] = []
        self.nodes: List[Any] = []
        self.saturated = False
        self.events_processed = 0
        #: Set of frozensets({a, b}) of node names that cannot communicate.
        self._partitions: set = set()
        #: Per-link probabilistic datagram loss: frozenset({a, b}) ->
        #: (drop probability, dedicated seeded RNG).  Installed by the
        #: msg_drop fault model; empty in fault-free runs, so ``send``
        #: never draws from it (profile runs stay untouched).
        self._drop_rules: dict = {}
        #: Hook the instrumentation runtime installs to observe spins.
        self.runtime: Any = None

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current virtual time: the active handler's cursor, else loop time."""
        if self._activities:
            return self._activities[-1].cursor
        return self._loop_time

    @property
    def current_node(self) -> Optional[Any]:
        return self._activities[-1].node if self._activities else None

    def spin(self, ms: float) -> None:
        """Charge ``ms`` of processing cost to the current activity's node."""
        if ms < 0:
            raise ValueError("cannot spin a negative duration")
        if self._activities:
            self._activities[-1].cursor += ms
        else:  # outside any handler: advance the world clock
            self._loop_time += ms

    # ------------------------------------------------------------- scheduling

    def schedule_at(self, at: float, node: Any, fn: Callable, *args: Any) -> Event:
        ev = Event(max(at, 0.0), self._seq, node, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def after(self, node: Any, delay_ms: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn`` on ``node`` at ``now + delay_ms``."""
        return self.schedule_at(self.now + delay_ms, node, fn, *args)

    def cancel_events_for(self, node: Any) -> None:
        """Cancel every pending event targeting ``node`` (crash semantics:
        a crashed node's scheduled work is dropped, even work whose fire
        time falls beyond a later restart)."""
        for ev in self._heap:
            if ev.node is node:
                ev.cancel()

    def every(self, node: Any, interval_ms: float, fn: Callable, jitter_ms: float = 0.0) -> Event:
        """Fixed-delay periodic handler: the next firing is scheduled
        ``interval`` after the previous one *finishes*, so a busy node's
        period genuinely stretches (heartbeats fall behind under load)."""

        def tick() -> None:
            fn()
            delay = interval_ms
            if jitter_ms:
                delay += self.rng.uniform(0.0, jitter_ms)
            if not getattr(node, "crashed", False):
                self.after(node, delay, tick)

        return self.after(node, interval_ms, tick)

    # -------------------------------------------------------------- execution

    def run(self, until_ms: Optional[float] = None) -> None:
        """Process events in time order until the heap drains or ``until_ms``."""
        horizon = until_ms if until_ms is not None else self.cfg.run_duration_ms
        while self._heap:
            if self.events_processed >= self.MAX_EVENTS:
                self.saturated = True
                break
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if ev.time > horizon:
                # Leave it for a later run() call with a larger horizon.
                heapq.heappush(self._heap, ev)
                break
            self._loop_time = max(self._loop_time, ev.time)
            if getattr(ev.node, "crashed", False):
                continue
            busy = getattr(ev.node, "busy_until", 0.0)
            if busy > ev.time + 1e-9:
                # The node is still busy: defer the handler in the heap so
                # world time stays consistent (running it "late" from here
                # would reserve other nodes' idle time out of order).
                ev.time = busy
                heapq.heappush(self._heap, ev)
                continue
            self.events_processed += 1
            self._execute(ev.node, ev.fn, ev.args, start_at=ev.time)
        self._loop_time = max(self._loop_time, horizon if not self._heap else self._loop_time)

    def _execute(self, node: Any, fn: Callable, args: tuple, start_at: float) -> None:
        start = start_at
        busy = getattr(node, "busy_until", 0.0)
        if busy > start:
            start = busy
        act = _Activity(node, start)
        self._activities.append(act)
        try:
            fn(*args)
        except SimFault:
            # An unhandled fault terminates the handler, nothing more: the
            # mini-systems model their own error handling explicitly.
            pass
        finally:
            self._activities.pop()
            if node is not None:
                node.busy_until = max(busy, act.cursor)

    # ---------------------------------------------------------------- network

    def partition(self, a: Any, b: Any) -> None:
        self._partitions.add(frozenset((a.name, b.name)))

    def heal(self, a: Any, b: Any) -> None:
        self._partitions.discard(frozenset((a.name, b.name)))

    def heal_all(self) -> None:
        self._partitions.clear()

    def partition_names(self, a: str, b: str) -> None:
        """Name-based :meth:`partition` (environment fault models hold
        node names, not node objects)."""
        self._partitions.add(frozenset((a, b)))

    def heal_names(self, a: str, b: str) -> None:
        self._partitions.discard(frozenset((a, b)))

    def node_named(self, name: str) -> Optional[Any]:
        """The registered node called ``name``, or ``None``."""
        for node in self.nodes:
            if node.name == name:
                return node
        return None

    def set_drop_rule(self, a: str, b: str, drop_p: float, seed: int) -> None:
        """Install probabilistic datagram loss on the ``{a, b}`` link.

        Draws come from a dedicated RNG seeded with ``seed`` — never from
        ``self.rng`` — so installing a rule does not perturb the latency
        and jitter stream shared with the fault-free counterfactual run.
        """
        self._drop_rules[frozenset((a, b))] = (drop_p, random.Random(seed))

    def clear_drop_rules(self) -> None:
        self._drop_rules.clear()

    def reachable(self, src: Any, dst: Any) -> bool:
        if getattr(dst, "crashed", False) or getattr(src, "crashed", False):
            return False
        return frozenset((src.name, dst.name)) not in self._partitions

    def _latency(self) -> float:
        lat = self.cfg.network_latency_ms
        if self.cfg.network_jitter_ms:
            lat += self.rng.uniform(0.0, self.cfg.network_jitter_ms)
        return lat

    def send(self, dst: Any, fn: Callable, *args: Any) -> None:
        """One-way message: schedule ``fn`` on ``dst`` after network latency."""
        src = self.current_node
        if src is not None and not self.reachable(src, dst):
            return  # silently dropped, like a partitioned datagram
        if self._drop_rules and src is not None:
            rule = self._drop_rules.get(frozenset((src.name, dst.name)))
            if rule is not None and rule[1].random() < rule[0]:
                return  # injected datagram loss (msg_drop fault model)
        self.schedule_at(self.now + self._latency(), dst, fn, *args)

    def rpc(self, dst: Any, fn: Callable, *args: Any, timeout_ms: Optional[float] = None) -> Any:
        """Synchronous RPC with virtual-time accounting.

        The callee runs immediately (same Python stack) but is charged to the
        callee node starting at ``max(arrival, dst.busy_until)``; the caller's
        cursor jumps to the accounted reply time.  If the accounted round
        trip exceeds the timeout the caller sees :class:`RpcTimeout` — the
        callee's work still happened (it was merely too slow), which is the
        overload behaviour cascading failures exploit.
        """
        timeout = timeout_ms if timeout_ms is not None else self.cfg.rpc_timeout_ms
        if not self._activities:
            raise RuntimeError("rpc() must be called from inside a handler")
        caller = self._activities[-1]
        t_call = caller.cursor
        src = caller.node
        if not self.reachable(src, dst):
            caller.cursor = t_call + timeout
            raise RpcTimeout("%s -> %s unreachable" % (src.name, dst.name))
        arrival = t_call + self._latency()
        busy = getattr(dst, "busy_until", 0.0)
        dst_start = max(arrival, busy)
        act = _Activity(dst, dst_start)
        self._activities.append(act)
        error: Optional[SimFault] = None
        result: Any = None
        try:
            result = fn(*args)
        except NodeCrashed:
            error = None  # handled below as a timeout
            act.cursor = dst_start
        except SimFault as exc:
            error = exc
        finally:
            self._activities.pop()
            dst.busy_until = max(busy, act.cursor)
        reply_at = act.cursor + self._latency()
        if reply_at - t_call > timeout:
            caller.cursor = t_call + timeout
            raise RpcTimeout(
                "rpc %s -> %s took %.0fms (> %.0fms)" % (src.name, dst.name, reply_at - t_call, timeout)
            )
        caller.cursor = reply_at
        if error is not None:
            raise error
        return result
