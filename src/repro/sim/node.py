"""Node base class for simulated cluster members."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import NodeCrashed

if TYPE_CHECKING:  # pragma: no cover
    from .events import SimEnv


class Node:
    """A single-threaded cluster member with a ``busy_until`` horizon.

    Subclasses implement protocol handlers as plain methods; the environment
    charges their processing cost (``env.spin``) to this node, delaying its
    subsequently scheduled work.
    """

    def __init__(self, env: "SimEnv", name: str) -> None:
        self.env = env
        self.name = name
        self.busy_until = 0.0
        self.crashed = False
        env.nodes.append(self)

    def crash(self) -> None:
        """Stop executing handlers; pending events for this node are dropped.

        Dropping is eager (the heap entries are cancelled now), not a
        pop-time filter: a periodic chain's next tick may be scheduled
        *beyond* a later restart, and letting it survive the outage would
        leave the old chain running alongside the one ``on_restart``
        re-registers — double-rate ticking after recovery.
        """
        self.crashed = True
        self.env.cancel_events_for(self)

    def restart(self) -> None:
        """Bring a crashed node back.

        The crash dropped the node's pending events — including the tail
        of any ``env.every`` chain — so :meth:`on_restart` runs afterwards
        to rebuild periodic behaviour and reset volatile state.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.busy_until = self.env.now
        self.on_restart()

    def on_restart(self) -> None:
        """Recovery hook invoked by :meth:`restart`; subclasses re-register
        their periodic handlers and reset volatile role state here."""

    def check_alive(self) -> None:
        """Raise if a synchronous call reached a crashed node."""
        if self.crashed:
            raise NodeCrashed(self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<Node %s>" % self.name
