"""Node base class for simulated cluster members."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import NodeCrashed

if TYPE_CHECKING:  # pragma: no cover
    from .events import SimEnv


class Node:
    """A single-threaded cluster member with a ``busy_until`` horizon.

    Subclasses implement protocol handlers as plain methods; the environment
    charges their processing cost (``env.spin``) to this node, delaying its
    subsequently scheduled work.
    """

    def __init__(self, env: "SimEnv", name: str) -> None:
        self.env = env
        self.name = name
        self.busy_until = 0.0
        self.crashed = False
        env.nodes.append(self)

    def crash(self) -> None:
        """Stop executing handlers; pending events for this node are dropped."""
        self.crashed = True

    def restart(self) -> None:
        self.crashed = False
        self.busy_until = self.env.now

    def check_alive(self) -> None:
        """Raise if a synchronous call reached a crashed node."""
        if self.crashed:
            raise NodeCrashed(self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<Node %s>" % self.name
