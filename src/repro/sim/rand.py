"""Small randomness helpers for seeded, repeatable workload variation."""

from __future__ import annotations

import random


def jittered(rng: random.Random, base: float, frac: float = 0.1) -> float:
    """``base`` scaled by a uniform factor in ``[1-frac, 1+frac]``.

    Workloads use this to give loop iteration counts natural run-to-run
    variance, which the one-sided t-test of the fault causality analysis
    needs to be meaningful.
    """
    if frac <= 0.0:
        return base
    return base * rng.uniform(1.0 - frac, 1.0 + frac)


def jittered_int(rng: random.Random, base: int, spread: int = 1) -> int:
    """``base`` plus a uniform integer in ``[-spread, +spread]``, floored at 1."""
    return max(1, base + rng.randint(-spread, spread))
