"""Target-system registry.

Five simulated distributed systems mirror the paper's evaluation targets
(HDFS 2.10.2, HDFS 3.4.1, HBase 2.6.0, Flink 1.20.0, Ozone 1.4.0), plus a
Raft-style consensus target (``miniraft``) and a replicated-DFS churn
target (``minidfs``) extending the evaluation beyond the paper, and a
small ``toy`` system used by the quickstart and the test suite::

    from repro.systems import get_system
    spec = get_system("minihdfs2")
"""

from typing import Callable, Dict, List

from .base import KnownBug, SystemSpec, WorkloadSpec

_BUILDERS: Dict[str, Callable[[], SystemSpec]] = {}


def _register(name: str, builder: Callable[[], SystemSpec]) -> None:
    _BUILDERS[name] = builder


def get_system(name: str) -> SystemSpec:
    """Build the named system spec (fresh instance each call)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            "unknown system %r (available: %s)" % (name, ", ".join(sorted(_BUILDERS)))
        ) from None
    return builder()


def available_systems() -> List[str]:
    return sorted(_BUILDERS)


def evaluation_systems() -> List[str]:
    """The five paper-evaluation targets (excludes the toy system)."""
    return ["minihdfs2", "minihdfs3", "minihbase", "miniflink", "miniozone"]


def _build_registry_table() -> None:
    from .minidfs import build_system as _dfs
    from .minihbase import build_system as _hbase
    from .minihdfs import build_system as _hdfs
    from .miniflink import build_system as _flink
    from .miniozone import build_system as _ozone
    from .miniraft import build_system as _raft
    from .toy import build_system as _toy

    _register("toy", _toy)
    _register("minihdfs2", lambda: _hdfs(2))
    _register("minihdfs3", lambda: _hdfs(3))
    _register("minihbase", _hbase)
    _register("miniflink", _flink)
    _register("miniozone", _ozone)
    _register("miniraft", _raft)
    _register("minidfs", _dfs)


_build_registry_table()

__all__ = [
    "SystemSpec",
    "WorkloadSpec",
    "KnownBug",
    "get_system",
    "available_systems",
    "evaluation_systems",
]
