"""Target-system abstraction: what the CSnake pipeline needs from a system.

A :class:`SystemSpec` bundles a site registry (the static view), a suite of
integration-test workloads (the dynamic view), and the system's known
self-sustaining cascade bugs (the evaluation ground truth for Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional

from ..config import SimConfig
from ..faults import EnvFaultPort
from ..instrument.sites import SiteRegistry
from ..types import FaultKey

if TYPE_CHECKING:  # pragma: no cover
    from ..core.cycles import Cycle
    from ..instrument.runtime import Runtime
    from ..sim import SimEnv

#: A workload body: builds the cluster on ``env`` (instrumented through
#: ``rt``) and schedules the client operations; the driver then calls
#: ``env.run``.
WorkloadFn = Callable[["SimEnv", "Runtime"], None]


@dataclass
class WorkloadSpec:
    """One integration test shipped with the target system."""

    test_id: str
    description: str
    setup: WorkloadFn
    duration_ms: float = 120_000.0
    sim_config: Optional[SimConfig] = None


@dataclass(frozen=True)
class KnownBug:
    """Ground-truth self-sustaining cascading failure (a Table 3 row)."""

    bug_id: str
    description: str
    signature: str  # expected cycle composition, e.g. "1D|2E|0N"
    core_faults: FrozenSet[FaultKey]
    alt_detectable: bool = False  # naive single-fault strategy finds it (§8.2)
    jira: str = ""
    #: Environment faults that must have *revealed* the cycle: detection
    #: additionally requires a discovered causal edge from one of these
    #: faults into the cycle's fault set.  Environment faults never occur
    #: naturally, so they cannot sit inside a cycle — a trigger set is how
    #: ground truth expresses "only environment fault injection exposes
    #: this" (e.g. miniraft's partition-seeded RAFT-5).
    trigger_faults: FrozenSet[FaultKey] = frozenset()

    def matches(self, cycle: "Cycle") -> bool:
        """A reported cycle exposes this bug if it involves every core fault
        (the trigger-fault requirement is checked against the edge DB by
        :func:`repro.core.report.match_bugs`)."""
        return self.core_faults <= cycle.fault_set()


@dataclass
class SystemSpec:
    """A target system: registry + workloads + ground truth."""

    name: str
    registry: SiteRegistry
    workloads: Dict[str, WorkloadSpec] = field(default_factory=dict)
    known_bugs: List[KnownBug] = field(default_factory=list)
    #: Spec version, part of every experiment-cache key.  Bump it whenever
    #: the system's *behaviour* changes (node logic, workload bodies, cost
    #: models) — structural changes to the registry or workload list are
    #: picked up by :meth:`digest` automatically, behavioural ones are not.
    version: str = "0"
    #: The system's injectable environment surface: crashable nodes and
    #: severable links.  Declaring a port registers the corresponding
    #: ``ENV_NODE``/``ENV_LINK`` sites, which environment fault models
    #: (``repro.faults.environment``) target like code sites.
    env_port: Optional[EnvFaultPort] = None

    def __post_init__(self) -> None:
        if self.env_port is not None:
            self.env_port.register_sites(self.registry)

    def digest(self) -> str:
        """Content digest of the declared system structure.

        Covers the name, the declared :attr:`version`, every site
        definition (id, kind, function, metadata), and the workload
        inventory (test ids, durations, and sim configs).  Experiment
        caches key on this, so adding/removing/redefining a site or
        workload — or bumping :attr:`version` — invalidates all cached
        results for the system.
        """
        import hashlib
        import json

        sites = []
        for site in sorted(self.registry, key=lambda s: s.site_id):
            sites.append(
                [
                    site.site_id,
                    site.kind.value,
                    site.function,
                    repr(site.loop),
                    repr(site.detector),
                    repr(site.throw),
                    repr(site.env),
                ]
            )
        payload = {
            "name": self.name,
            "version": self.version,
            "sites": sites,
            "workloads": [
                # sim_config feeds SimEnv directly (timeouts, latencies),
                # so it is declared result-affecting data like duration.
                [t, self.workloads[t].duration_ms, repr(self.workloads[t].sim_config)]
                for t in self.workload_ids()
            ],
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def add_workload(self, spec: WorkloadSpec) -> None:
        if spec.test_id in self.workloads:
            raise ValueError("duplicate workload %s" % spec.test_id)
        self.workloads[spec.test_id] = spec

    def workload_ids(self) -> List[str]:
        return sorted(self.workloads)

    def bug(self, bug_id: str) -> KnownBug:
        for bug in self.known_bugs:
            if bug.bug_id == bug_id:
                return bug
        raise KeyError(bug_id)
