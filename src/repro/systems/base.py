"""Target-system abstraction: what the CSnake pipeline needs from a system.

A :class:`SystemSpec` bundles a site registry (the static view), a suite of
integration-test workloads (the dynamic view), and the system's known
self-sustaining cascade bugs (the evaluation ground truth for Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional, Tuple

from ..config import SimConfig
from ..faults import EnvFaultPort
from ..instrument.sites import SiteRegistry
from ..types import FaultKey

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis import SliceAnalysis
    from ..core.cycles import Cycle
    from ..instrument.runtime import Runtime
    from ..sim import SimEnv

#: A workload body: builds the cluster on ``env`` (instrumented through
#: ``rt``) and schedules the client operations; the driver then calls
#: ``env.run``.
WorkloadFn = Callable[["SimEnv", "Runtime"], None]


@dataclass
class WorkloadSpec:
    """One integration test shipped with the target system."""

    test_id: str
    description: str
    setup: WorkloadFn
    duration_ms: float = 120_000.0
    sim_config: Optional[SimConfig] = None


@dataclass(frozen=True)
class KnownBug:
    """Ground-truth self-sustaining cascading failure (a Table 3 row)."""

    bug_id: str
    description: str
    signature: str  # expected cycle composition, e.g. "1D|2E|0N"
    core_faults: FrozenSet[FaultKey]
    alt_detectable: bool = False  # naive single-fault strategy finds it (§8.2)
    jira: str = ""
    #: Environment faults that must have *revealed* the cycle: detection
    #: additionally requires a discovered causal edge from one of these
    #: faults into the cycle's fault set.  Environment faults never occur
    #: naturally, so they cannot sit inside a cycle — a trigger set is how
    #: ground truth expresses "only environment fault injection exposes
    #: this" (e.g. miniraft's partition-seeded RAFT-5).
    trigger_faults: FrozenSet[FaultKey] = frozenset()

    def matches(self, cycle: "Cycle") -> bool:
        """A reported cycle exposes this bug if it involves every core fault
        (the trigger-fault requirement is checked against the edge DB by
        :func:`repro.core.report.match_bugs`)."""
        return self.core_faults <= cycle.fault_set()


@dataclass
class SystemSpec:
    """A target system: registry + workloads + ground truth."""

    name: str
    registry: SiteRegistry
    workloads: Dict[str, WorkloadSpec] = field(default_factory=dict)
    known_bugs: List[KnownBug] = field(default_factory=list)
    #: Spec version, part of every experiment-cache key.  Bump it whenever
    #: the system's *behaviour* changes (node logic, workload bodies, cost
    #: models) — structural changes to the registry or workload list are
    #: picked up by :meth:`digest` automatically, behavioural ones are not.
    version: str = "0"
    #: The system's injectable environment surface: crashable nodes and
    #: severable links.  Declaring a port registers the corresponding
    #: ``ENV_NODE``/``ENV_LINK`` sites, which environment fault models
    #: (``repro.faults.environment``) target like code sites.
    env_port: Optional[EnvFaultPort] = None
    #: Python modules holding this system's node implementations and
    #: workload bodies — the input of the code-slice analysis
    #: (``repro.analysis``).  Empty means "not sliceable": per-site cache
    #: keys fall back to the whole-spec digest and no reachability
    #: pruning happens.
    source_modules: Tuple[str, ...] = ()
    _slices: Optional["SliceAnalysis"] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.env_port is not None:
            self.env_port.register_sites(self.registry)

    def slice_analysis(self) -> Optional["SliceAnalysis"]:
        """Slice this system's :attr:`source_modules` (memoized per spec).

        The analysis is a pure function of the source files and the
        registry, so worker processes recomputing it from a pickled
        :class:`~repro.core.driver.ExperimentTask` arrive at bit-identical
        slice digests — and therefore identical cache keys.
        """
        if self._slices is None and self.source_modules:
            from ..analysis import analyze_system
            from ..analysis.source import live_sources

            self._slices = analyze_system(self, live_sources(self.source_modules))
            self.registry.attach_slice_digests(self._slices)
        return self._slices

    def attach_slice_analysis(self, slices: "SliceAnalysis") -> None:
        """Inject a pre-computed analysis (tests and ``repro diff-run``
        slice *other* source text — a patched tree, a git ref — against
        this spec's registry and workloads)."""
        self._slices = slices
        self.registry.attach_slice_digests(slices)

    def _sites_payload(self) -> List[List[str]]:
        sites = []
        for site in sorted(self.registry, key=lambda s: s.site_id):
            sites.append(
                [
                    site.site_id,
                    site.kind.value,
                    site.function,
                    repr(site.loop),
                    repr(site.detector),
                    repr(site.throw),
                    repr(site.env),
                ]
            )
        return sites

    def digest(self) -> str:
        """Content digest of the declared system structure.

        Covers the name, the declared :attr:`version`, every site
        definition (id, kind, function, metadata), and the workload
        inventory (test ids, durations, and sim configs).  Since
        ``CACHE_SCHEMA`` 3 this whole-spec digest is only the cache-key
        *fallback* for slice-unresolved sites; resolved entries key on
        :meth:`sites_digest`, the test's :meth:`workload_row`, and the
        site's slice digest instead.
        """
        import hashlib
        import json

        payload = {
            "name": self.name,
            "version": self.version,
            "sites": self._sites_payload(),
            "workloads": [
                # sim_config feeds SimEnv directly (timeouts, latencies),
                # so it is declared result-affecting data like duration.
                self.workload_row(t) for t in self.workload_ids()
            ],
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def sites_digest(self) -> str:
        """Digest of the full site inventory (every site's id, kind, and
        metadata) plus name and version — *without* the workload list.

        Experiment results can structurally depend on every registered
        site (traces record all of them, and loop parent/sibling rows
        feed the FCA edge derivation), but not on what other workloads
        exist; cache keys therefore embed this instead of :meth:`digest`.
        """
        import hashlib
        import json

        payload = {
            "name": self.name,
            "version": self.version,
            "sites": self._sites_payload(),
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def workload_row(self, test_id: str) -> List[object]:
        """The result-affecting declaration of one workload (cache-key
        component of every profile/experiment entry for that test).

        Unknown test ids get a null row: they cannot execute, so their
        keys only need to be stable and distinct per id.
        """
        wl = self.workloads.get(test_id)
        if wl is None:
            return [test_id, None, None]
        return [test_id, wl.duration_ms, repr(wl.sim_config)]

    def add_workload(self, spec: WorkloadSpec) -> None:
        if spec.test_id in self.workloads:
            raise ValueError("duplicate workload %s" % spec.test_id)
        self.workloads[spec.test_id] = spec

    def workload_ids(self) -> List[str]:
        return sorted(self.workloads)

    def bug(self, bug_id: str) -> KnownBug:
        for bug in self.known_bugs:
            if bug.bug_id == bug_id:
                return bug
        raise KeyError(bug_id)
