"""MiniDFS: a replicated-DFS target with churn-triggered recovery loops."""

from .build import ENV_PORT, build_system
from .nodes import DfsClient, DfsConfig, DfsNode
from .sites import build_registry

__all__ = [
    "ENV_PORT",
    "DfsClient",
    "DfsConfig",
    "DfsNode",
    "build_registry",
    "build_system",
]
