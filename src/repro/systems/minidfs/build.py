"""Assemble the MiniDFS system spec."""

from __future__ import annotations

from ...faults import EnvFaultPort
from ...types import FaultKey, InjKind
from ...workloads.dfs import dfs_workloads
from ..base import KnownBug, SystemSpec
from .sites import build_registry

#: The namenode, the three datanodes, and every severable pair — the
#: namenode↔datanode heartbeat/report links plus the datanode↔datanode
#: pipeline links (crash / partition / msg_drop / schedule targets).
ENV_PORT = EnvFaultPort(
    nodes=("nn0", "dn0", "dn1", "dn2"),
    links=(
        ("nn0", "dn0"), ("nn0", "dn1"), ("nn0", "dn2"),
        ("dn0", "dn1"), ("dn0", "dn2"), ("dn1", "dn2"),
    ),
)


def build_system() -> SystemSpec:
    spec = SystemSpec(
        name="minidfs", version="2", registry=build_registry(), env_port=ENV_PORT,
        source_modules=("repro.systems.minidfs.nodes", "repro.workloads.dfs"),
    )
    for workload in dfs_workloads():
        spec.add_workload(workload)
    spec.known_bugs = [
        KnownBug(
            bug_id="DFS-1",
            description=(
                "Heartbeat re-registration storm: slow block-report "
                "processing on the master times out datanode heartbeat "
                "RPCs; with re-register-on-failure configured each lost "
                "ack is answered by a full re-registration whose block "
                "report is precisely the processing work that made the "
                "master slow.  Only a node crash (and the recovery "
                "re-registrations it forces) exposes the triggering "
                "disturbance."
            ),
            signature="1D|1E|0N",
            core_faults=frozenset(
                {
                    FaultKey("nn.report.blocks", InjKind.DELAY),
                    FaultKey("dn.hb.rpc", InjKind.EXCEPTION),
                }
            ),
            trigger_faults=frozenset(
                {
                    FaultKey(ENV_PORT.node_site_id(n), InjKind("node_crash"))
                    for n in ENV_PORT.nodes
                }
            ),
            alt_detectable=False,
        ),
        KnownBug(
            bug_id="DFS-2",
            description=(
                "Failover flap: a standby whose master-liveness detector "
                "trips promotes itself by priority and rebuilds the "
                "namespace from full block reports; the rebuild keeps the "
                "new master too busy to answer heartbeats, so the next "
                "standby's detector trips — another election, another "
                "rebuild.  Only a partition (master-side silence long "
                "enough to trip the detector naturally) exposes the "
                "triggering disturbance."
            ),
            signature="1D|0E|1N",
            core_faults=frozenset(
                {
                    FaultKey("fo.rebuild.entries", InjKind.DELAY),
                    FaultKey("dn.master.is_down", InjKind.NEGATION),
                }
            ),
            trigger_faults=frozenset(
                {
                    FaultKey(ENV_PORT.link_site_id(a, b), InjKind("partition"))
                    for a, b in ENV_PORT.links
                }
            ),
            alt_detectable=False,
        ),
        KnownBug(
            bug_id="DFS-3",
            description=(
                "Re-replication churn: a failed re-replication transfer "
                "makes the master distrust its placement bookkeeping and "
                "grow the pending set (rescan-on-failure), so the next "
                "scan issues even more transfers — transfers that keep "
                "the surviving datanodes too busy to answer in time.  A "
                "transfer only fails naturally when the master's "
                "heartbeat-based liveness view is stale enough to pick a "
                "dead source while new deaths keep arriving: only a "
                "rolling crash/restart wave (the membership_churn "
                "schedule) produces that, never a single crash."
            ),
            signature="1D|1E|0N",
            core_faults=frozenset(
                {
                    FaultKey("dn.pipe.recv", InjKind.DELAY),
                    FaultKey("nn.rerepl.rpc", InjKind.EXCEPTION),
                }
            ),
            trigger_faults=frozenset(
                {
                    FaultKey(ENV_PORT.node_site_id(n), InjKind("membership_churn"))
                    for n in ENV_PORT.nodes
                }
            ),
            alt_detectable=False,
        ),
        KnownBug(
            bug_id="DFS-4",
            description=(
                "Ack-loss retry storm: with explicit transfer acks "
                "configured, the master trusts a re-replication placement "
                "only once the target's one-way ack datagram arrives, and "
                "retries unacked transfers — re-copying blocks the target "
                "already holds when only the ack was lost.  A retry that "
                "itself times out reads as wholesale ack loss, so every "
                "inflight transfer is retried too; the duplicate copies "
                "keep the datanodes too busy to flush acks in time.  Only "
                "datagram loss (msg_drop, which never touches RPCs) "
                "exposes the triggering disturbance — acks are the "
                "system's only load-bearing datagrams."
            ),
            signature="1D|1E|0N",
            core_faults=frozenset(
                {
                    FaultKey("dn.ack.build", InjKind.DELAY),
                    FaultKey("nn.retry.rpc", InjKind.EXCEPTION),
                }
            ),
            trigger_faults=frozenset(
                {
                    FaultKey(ENV_PORT.link_site_id("nn0", d), InjKind("msg_drop"))
                    for d in ("dn0", "dn1", "dn2")
                }
            ),
            alt_detectable=False,
        ),
    ]
    return spec
