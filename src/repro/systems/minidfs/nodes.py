"""MiniDFS nodes: a replicated file system on the virtual-time substrate.

One active namenode (``nn0``) tracks block locations and datanode liveness
from periodic heartbeats; three datanodes (``dn0..dn2``) store replicated
blocks, forward write pipelines, and double as priority-ordered standby
masters (the Erca94 ``get_master_namenode`` pattern: candidates sorted by
priority, the best live one acts as master).  A client writes and reads
blocks through whichever node it currently believes is master.  The
recovery loops are exactly the churn-triggered feedback paths the paper
targets:

DFS-1 (heartbeat storm): a busy master times out datanode heartbeats;
with re-register-on-failure configured, each datanode answers the lost
ack with a fresh registration carrying a *full block report* — which is
precisely the processing work that made the master slow.

DFS-2 (failover flap): a standby whose master-liveness detector trips
promotes itself by priority and rebuilds the namespace from full reports;
the rebuild work keeps the new master too busy to answer heartbeats, so
the next standby's detector trips — another election, another rebuild.

DFS-3 (re-replication churn): when a datanode is declared dead, the
master re-replicates its blocks from surviving replicas.  A failed
transfer makes the master distrust its placement bookkeeping and *grow*
the pending set (re-verifying a window of blocks it already placed), so
the next scan issues even more transfers — transfers that keep the
surviving datanodes too busy to answer in time.  Only a rolling
crash/restart wave (the ``membership_churn`` schedule) makes the master's
heartbeat-based liveness view stale enough to pick dead sources while
new deaths keep arriving; no single crash sustains the loop.

DFS-4 (ack-loss retry storm): with explicit transfer acks configured,
the master trusts a re-replication placement only once the target's
one-way ack *datagram* arrives; unacked transfers past the timeout are
retried.  The ack is a datagram, not an RPC — when the network silently
eats it, the master re-copies a block the target already holds, and a
retry that itself times out reads as wholesale ack loss, so every
inflight transfer is presumed lost and retried too.  The duplicate
transfer work keeps the datanodes too busy to flush acks in time, which
is exactly what makes the next scan read every transfer as lost.  Only
datagram loss (the ``msg_drop`` fault model, which never touches RPCs)
exposes the triggering disturbance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ...errors import IOEx
from ...instrument.runtime import Runtime
from ...sim import Node, SimEnv


class DfsConfig:
    def __init__(self, **kw: object) -> None:
        self.n_datanodes = 3
        self.replication_factor = 2
        self.preload_blocks = 24  # blocks present at cluster build
        self.chunks_per_block = 4
        self.disk_capacity_blocks = 100_000  # dn disk-full guard
        # Heartbeats and registration.
        self.heartbeat_interval_ms = 3_000.0
        self.hb_rpc_timeout_ms = 8_000.0
        self.report_interval_ms = 30_000.0  # periodic full block report
        self.report_entry_cost_ms = 1.0  # master-side per-entry processing
        self.report_build_cost_ms = 0.2  # dn-side per-entry serialization
        # Full re-register (block report attached) on a lost heartbeat ack
        # — the HDFS ``offerService`` recovery reflex, on by default.
        self.reregister_on_failure = True
        self.register_rpc_timeout_ms = 10_000.0
        self.register_backoff_ms = 2_000.0  # first retry delay after a failure
        self.register_backoff_cap_ms = 16_000.0  # exponential backoff ceiling
        # Write/read pipelines.
        self.write_chunk_cost_ms = 2.0  # primary-side per-chunk cost
        self.recv_chunk_cost_ms = 2.0  # replica-side per-chunk cost
        self.read_chunk_cost_ms = 1.0
        self.pipe_rpc_timeout_ms = 10_000.0
        # Datanode liveness and re-replication (master side).
        self.liveness_tick_ms = 5_000.0
        self.dn_timeout_ms = 15_000.0  # heartbeat age that reads as dead
        self.rerepl_enabled = False
        self.rerepl_tick_ms = 5_000.0
        self.rerepl_batch = 4  # transfers issued per scan tick
        self.rerepl_scan_cost_ms = 8.0  # per-entry cost of the pending scan
        self.rerepl_chunk_cost_ms = 150.0  # replica-side per-chunk re-replication cost
        self.rerepl_rpc_timeout_ms = 10_000.0
        self.serve_rpc_timeout_ms = 8_000.0  # target -> source pull timeout
        self.rescan_on_failure = False  # grow the pending set on a failed transfer
        self.rescan_window = 6  # placed blocks re-verified per failure
        # Explicit transfer acks (off by default): the master trusts a
        # re-replication placement only once the target's one-way ack
        # datagram arrives; unacked transfers past the timeout are retried.
        self.rerepl_ack_required = False
        self.ack_flush_interval_ms = 6_000.0  # dn-side batched ack flush cadence
        self.ack_build_cost_ms = 40.0  # dn-side per-ack digest cost
        self.ack_timeout_ms = 2_500.0  # unacked transfer age that reads as lost
        self.ack_scan_tick_ms = 2_000.0  # master-side overdue-ack scan cadence
        self.ack_scan_cost_ms = 2.0  # master-side per-entry scan cost
        self.ack_panic_window_ms = 25_000.0  # distrust window after a retry failure
        self.retry_rpc_timeout_ms = 10_000.0
        # Presume wholesale ack loss when a retry itself times out: every
        # inflight transfer is aged past the timeout and retried too.
        self.retry_panic = True
        # Standby failover (datanode side).
        # Promote the best live standby when the master-liveness detector
        # trips — on by default; a fault-free run never trips the detector,
        # so promotion happens only under disturbance (or a scripted drill).
        self.auto_failover = True
        self.failover_tick_ms = 6_000.0
        self.master_timeout_ms = 18_000.0  # master-contact age that reads as down
        self.rebuild_entry_cost_ms = 5.0  # new-master per-entry rebuild cost
        self.report_rpc_timeout_ms = 8_000.0
        for key, value in kw.items():
            if not hasattr(self, key):
                raise TypeError("unknown DfsConfig option %r" % key)
            setattr(self, key, value)


class DfsNode(Node):
    """One cluster member: the namenode, or a datanode/standby master.

    ``priority`` orders failover candidates (0 = the dedicated namenode,
    datanodes follow by index); ``is_master`` marks whoever currently
    holds the namespace.  Datanode duties (blocks, heartbeats, pipelines)
    belong to datanodes regardless of whether one is acting master.
    """

    def __init__(
        self, env: SimEnv, rt: Runtime, cfg: DfsConfig, name: str, priority: int
    ) -> None:
        super().__init__(env, name)
        self.rt = rt
        self.cfg = cfg
        self.priority = priority
        self.is_datanode = priority > 0
        self.is_master = priority == 0
        self.peers: List["DfsNode"] = []  # every *other* node, set by build
        # Datanode state.
        self.replicas: Set[int] = set()  # block ids stored on this dn
        self.pending_receipts: List[int] = []  # IBR queue for the next heartbeat
        self.pending_acks: List[int] = []  # transfer acks awaiting the next flush
        self.registered = False
        self.register_attempts = 0
        self.register_backoff_ms = cfg.register_backoff_ms
        # Master-view state (every node tracks who it believes leads).
        self.master_name = "nn0"
        self.last_master_contact = 0.0
        self.elections_started = 0
        # Namespace state (meaningful only while acting master).
        self.block_map: Dict[int, Set[str]] = {}  # block id -> replica holders
        self.last_dn_heartbeat: Dict[str, float] = {}
        self.pending_rerepl: List[int] = []  # under-replicated block queue
        self.rescan_backlog = 0  # placed blocks to re-verify after a failed transfer
        self.transfers_failed = 0
        # Ack-mode bookkeeping: block -> (target, source, issue time) for
        # transfers whose ack datagram has not arrived yet.
        self.inflight_acks: Dict[int, Tuple[str, str, float]] = {}
        self.ack_panic_until = 0.0  # ack channel distrusted until this time
        self.retries_issued = 0
        self.acks_received = 0
        # Config-cache probe: depends only on constructor configuration, so
        # the §7 final-only rule excludes it from the fault space.
        rt.detector("dn.conf.is_cached", cfg.replication_factor > 0)
        self._register_ticks()

    def _register_ticks(self) -> None:
        """Periodic behaviour; re-registered after a crash-restart (the
        crash dropped the pending tail of every ``env.every`` chain)."""
        env, cfg = self.env, self.cfg
        if self.is_datanode:
            env.every(self, cfg.heartbeat_interval_ms, self.heartbeat_tick, jitter_ms=40.0)
            env.every(
                self, cfg.report_interval_ms, self.report_tick,
                jitter_ms=120.0 * self.priority,
            )
            env.every(
                self, cfg.failover_tick_ms, self.failover_tick,
                jitter_ms=60.0 * self.priority,
            )
        if self.is_datanode and cfg.rerepl_enabled and cfg.rerepl_ack_required:
            env.every(
                self, cfg.ack_flush_interval_ms, self.ack_flush_tick,
                jitter_ms=80.0 * self.priority,
            )
        env.every(self, cfg.liveness_tick_ms, self.liveness_tick, jitter_ms=50.0)
        if cfg.rerepl_enabled:
            env.every(self, cfg.rerepl_tick_ms, self.rerepl_tick, jitter_ms=30.0)
            if cfg.rerepl_ack_required:
                env.every(self, cfg.ack_scan_tick_ms, self.ack_scan_tick, jitter_ms=40.0)

    def on_restart(self) -> None:
        """Crash recovery: replicas are durable, everything else is volatile.

        A restarted datanode no longer trusts its registration (the master
        may have declared it dead) and re-registers with a full block
        report; a restarted master comes back with an empty namespace and
        waits for datanodes to re-register (heartbeats from unknown
        datanodes are answered with a re-register demand).
        """
        self.last_master_contact = self.env.now
        if self.is_datanode:
            self.registered = False
            self.register_backoff_ms = self.cfg.register_backoff_ms
            self.pending_receipts = []
            self.pending_acks = []
            self.env.after(self, 1_000.0, self.register_with_master)
        if self.is_master:
            self.block_map = {}
            self.last_dn_heartbeat = {}
            self.pending_rerepl = []
            self.rescan_backlog = 0
            self.inflight_acks = {}
            self.ack_panic_until = 0.0
        self._register_ticks()

    # ------------------------------------------------------------- helpers

    def master(self) -> Optional["DfsNode"]:
        if self.is_master:
            return self
        for peer in self.peers:
            if peer.name == self.master_name:
                return peer
        return None

    def live_view(self) -> List[str]:
        """Datanodes the master believes live (heartbeat age within the
        timeout) — a *stale* view by construction: churn outruns it."""
        out = []
        for name, at in sorted(self.last_dn_heartbeat.items()):
            if self.env.now - at <= self.cfg.dn_timeout_ms:
                out.append(name)
        return out

    def best_candidate(self, live: List[str]) -> Optional[str]:
        """Failover order: the live standby with the best (lowest)
        priority — ``take_best_active_nn`` over datanode candidates."""
        ranked = sorted(
            (p.priority, p.name) for p in self.peers
            if p.is_datanode and p.name in live
        )
        if self.is_datanode:
            ranked.append((self.priority, self.name))
            ranked.sort()
        return ranked[0][1] if ranked else None

    def datanodes(self) -> List["DfsNode"]:
        nodes = [p for p in self.peers if p.is_datanode]
        if self.is_datanode:
            nodes.append(self)
        return sorted(nodes, key=lambda n: n.priority)

    # ----------------------------------------------------------- datanode

    def heartbeat_tick(self) -> None:
        """Datanode heartbeat: liveness beacon plus incremental block
        report (receipts queued since the last beat)."""
        master = self.master()
        if master is None or master is self:
            return
        with self.rt.function("DfsNode.heartbeat_tick"):
            receipts: List[int] = []
            for block in self.rt.loop("dn.ibr.build", list(self.pending_receipts)):
                self.env.spin(0.1)
                receipts.append(block)
            try:
                acked, needs_register, master_name = self.rt.rpc_call(
                    "dn.hb.rpc", IOEx, self.env.rpc, master, master.handle_heartbeat,
                    self.name, receipts, timeout_ms=self.cfg.hb_rpc_timeout_ms,
                )
            except IOEx:
                rereg = self.rt.branch(
                    "dn.hb.b_rereg", self.cfg.reregister_on_failure
                )
                if rereg:
                    # THE BUG (DFS-1): the ack was lost, not the heartbeat —
                    # a full re-registration answers a busy master with a
                    # full block report, the very work that made it slow.
                    self.registered = False
                    self.register_with_master()
                return
            if master_name != self.master_name:
                self.master_name = master_name  # redirected by a demoted master
                return
            if acked:
                # Only an ack from the *acting* master counts as master
                # contact — a demoted node's redirect must not keep the
                # liveness detector quiet.
                self.last_master_contact = self.env.now
            self.pending_receipts = self.pending_receipts[len(receipts):]
            if needs_register or not acked:
                self.registered = False
                self.register_with_master()

    def register_with_master(self) -> None:
        """(Re-)register with the current master, full block report
        attached; a failure retries with exponential backoff."""
        master = self.master()
        if master is None or master is self or self.registered:
            return
        with self.rt.function("DfsNode.register_with_master"):
            self.register_attempts += 1
            report: List[int] = []
            for block in self.rt.loop("dn.report.build", sorted(self.replicas)):
                self.env.spin(self.cfg.report_build_cost_ms)
                report.append(block)
            try:
                self.rt.lib_call(
                    "dn.reg.rpc", IOEx, self.env.rpc, master, master.handle_register,
                    self.name, report, timeout_ms=self.cfg.register_rpc_timeout_ms,
                )
            except IOEx:
                retry = self.rt.branch("dn.reg.b_retry", True)
                if retry:
                    self.env.after(self, self.register_backoff_ms, self.register_with_master)
                    self.register_backoff_ms = min(
                        self.register_backoff_ms * 2.0,
                        self.cfg.register_backoff_cap_ms,
                    )
                return
            self.registered = True
            self.register_backoff_ms = self.cfg.register_backoff_ms
            self.last_master_contact = self.env.now

    def report_tick(self) -> None:
        """Periodic full block report (dfs.blockreport analogue)."""
        if not self.registered:
            return
        self.registered = False
        self.register_with_master()

    def failover_tick(self) -> None:
        """Standby-side master liveness check; promotes by priority."""
        if self.is_master:
            return
        with self.rt.function("DfsNode.failover_tick"):
            down = self.rt.detector(
                "dn.master.is_down",
                self.env.now - self.last_master_contact > self.cfg.master_timeout_ms,
            )
            if not down:
                return
            promote = self.rt.branch("fo.b_promote", self.cfg.auto_failover)
            if not promote:
                return
            live = [p.name for p in self.peers if p.is_datanode and not p.crashed]
            if self.best_candidate(live) == self.name:
                self.become_master()

    def become_master(self) -> None:
        """Promotion: rebuild the namespace from full reports.

        A fresh master trusts nothing: it pulls a full block report from
        every datanode it can reach and replays each entry — the DFS-2
        feedback path (each failover creates rebuild work, which delays
        heartbeat replies, which invites the next failover).
        """
        with self.rt.function("DfsNode.become_master"):
            self.elections_started += 1
            self.is_master = True
            self.block_map = {}
            self.last_dn_heartbeat = {}
            self.pending_rerepl = []
            self.rescan_backlog = 0
            self.inflight_acks = {}
            self.ack_panic_until = 0.0
            reports: List[Tuple[str, List[int]]] = []
            for peer in self.datanodes():
                if peer is self:
                    reports.append((self.name, sorted(self.replicas)))
                    continue
                try:
                    report = self.rt.lib_call(
                        "fo.report.rpc", IOEx, self.env.rpc, peer, peer.pull_report,
                        self.name, timeout_ms=self.cfg.report_rpc_timeout_ms,
                    )
                except IOEx:
                    continue
                reports.append((peer.name, report))
            for name, report in reports:
                self.last_dn_heartbeat[name] = self.env.now
                for block in self.rt.loop("fo.rebuild.entries", report):
                    self.env.spin(self.cfg.rebuild_entry_cost_ms)
                    self.block_map.setdefault(block, set()).add(name)
            for peer in self.peers:
                if peer.is_master:
                    peer.is_master = False  # the claim demotes the old master
                self.env.send(peer, peer.adopt_master, self.name)
            self.master_name = self.name
            if self.cfg.rerepl_enabled:
                self._queue_under_replicated()

    def adopt_master(self, name: str) -> None:
        """One-way new-master announcement (admin handover or election)."""
        if name != self.name:
            self.is_master = False
        self.master_name = name
        self.last_master_contact = self.env.now
        if self.is_datanode and name != self.name:
            self.registered = False
            self.register_with_master()

    def pull_report(self, requester: str) -> List[int]:
        self.check_alive()
        return sorted(self.replicas)

    # -------------------------------------------------- datanode pipelines

    def handle_write(self, block: int, pipeline: List[str]) -> bool:
        """Primary of a write pipeline: store chunks, forward the rest."""
        self.check_alive()
        with self.rt.function("DfsNode.handle_write"):
            self.rt.throw_point(
                "dn.disk.full_ioe", IOEx,
                natural=len(self.replicas) >= self.cfg.disk_capacity_blocks,
            )
            for _ in self.rt.loop("dn.pipe.write", range(self.cfg.chunks_per_block)):
                self.env.spin(self.cfg.write_chunk_cost_ms)
            self.replicas.add(block)
            self.pending_receipts.append(block)
            rest = [n for n in pipeline if n != self.name]
            if rest:
                target = next((p for p in self.peers if p.name == rest[0]), None)
                if target is not None:
                    self.rt.lib_call(
                        "dn.pipe.rpc", IOEx, self.env.rpc, target,
                        target.handle_receive, block, rest,
                        timeout_ms=self.cfg.pipe_rpc_timeout_ms,
                    )
            return True

    def handle_receive(
        self, block: int, pipeline: List[str], source: Optional[str] = None
    ) -> bool:
        """Replica receive: a pipeline forward, or a re-replication fetch
        (``source`` set) that pulls the block from a surviving holder."""
        self.check_alive()
        with self.rt.function("DfsNode.handle_receive"):
            chunk_cost = self.cfg.recv_chunk_cost_ms
            if source is not None:
                holder = next((p for p in self.peers if p.name == source), None)
                if holder is None:
                    raise IOEx("unknown replica source %s" % source)
                self.rt.lib_call(
                    "dn.serve.rpc", IOEx, self.env.rpc, holder, holder.handle_read,
                    block, timeout_ms=self.cfg.serve_rpc_timeout_ms,
                )
                chunk_cost = self.cfg.rerepl_chunk_cost_ms
            for _ in self.rt.loop("dn.pipe.recv", range(self.cfg.chunks_per_block)):
                self.env.spin(chunk_cost)
            self.replicas.add(block)
            self.pending_receipts.append(block)
            if source is not None and self.cfg.rerepl_ack_required:
                self.pending_acks.append(block)
            rest = [n for n in pipeline if n != self.name]
            if rest:
                target = next((p for p in self.peers if p.name == rest[0]), None)
                if target is not None:
                    self.rt.lib_call(
                        "dn.pipe.rpc", IOEx, self.env.rpc, target,
                        target.handle_receive, block, rest,
                        timeout_ms=self.cfg.pipe_rpc_timeout_ms,
                    )
            return True

    def ack_flush_tick(self) -> None:
        """Flush queued re-replication acks as one-way datagrams.

        Deliberately datagrams, not RPCs: the transfer itself already ran
        over a connection, the ack is fire-and-forget bookkeeping — which
        is exactly the surface the ``msg_drop`` fault model can eat.
        """
        if not self.pending_acks:
            return
        master = self.master()
        if master is None or master is self:
            return
        with self.rt.function("DfsNode.ack_flush_tick"):
            acks, self.pending_acks = self.pending_acks, []
            for block in self.rt.loop("dn.ack.build", acks):
                self.env.spin(self.cfg.ack_build_cost_ms)
                self.env.send(master, master.handle_rerepl_ack, block, self.name)

    def handle_read(self, block: int) -> int:
        self.check_alive()
        with self.rt.function("DfsNode.handle_read"):
            if block not in self.replicas:
                raise IOEx("%s holds no replica of block %d" % (self.name, block))
            for _ in self.rt.loop("dn.read.chunks", range(self.cfg.chunks_per_block)):
                self.env.spin(self.cfg.read_chunk_cost_ms)
            return block

    # --------------------------------------------------------- master rpcs

    def handle_heartbeat(self, name: str, receipts: List[int]) -> Tuple[bool, bool, str]:
        self.check_alive()
        with self.rt.function("DfsNode.handle_heartbeat"):
            if not self.is_master:
                return (False, False, self.master_name)
            known = name in self.last_dn_heartbeat
            self.last_dn_heartbeat[name] = self.env.now
            for block in receipts:
                self.env.spin(0.1)
                self.block_map.setdefault(block, set()).add(name)
            return (True, not known, self.name)

    def handle_register(self, name: str, report: List[int]) -> bool:
        self.check_alive()
        with self.rt.function("DfsNode.handle_register"):
            self.rt.throw_point(
                "nn.write.not_master", IOEx, natural=not self.is_master
            )
            self.last_dn_heartbeat[name] = self.env.now
            for holders in self.block_map.values():
                holders.discard(name)
            for block in self.rt.loop("nn.report.blocks", report):
                self.env.spin(self.cfg.report_entry_cost_ms)
                self.block_map.setdefault(block, set()).add(name)
            return True

    def handle_allocate(self, block: int) -> List[str]:
        """Client block allocation: choose a write pipeline of
        ``replication_factor`` datanodes the master believes live."""
        self.check_alive()
        with self.rt.function("DfsNode.handle_allocate"):
            self.check_acl("client")
            self.rt.throw_point(
                "nn.write.not_master", IOEx, natural=not self.is_master
            )
            live = self.live_view()
            if not live:
                raise IOEx("no live datanodes")
            start = block % len(live)
            rotated = live[start:] + live[:start]
            return rotated[: self.cfg.replication_factor]

    # ------------------------------------------------- master periodic work

    def liveness_tick(self) -> None:
        """Master-side datanode liveness: queue re-replication for blocks
        on datanodes whose heartbeats went stale."""
        if not self.is_master:
            return
        with self.rt.function("DfsNode.liveness_tick"):
            live = set(self.live_view())
            for name in sorted(self.last_dn_heartbeat):
                dead = self.rt.detector("nn.dn.is_dead", name not in live)
                if dead and self.cfg.rerepl_enabled:
                    self._queue_under_replicated()
            self.update_metrics()

    def _queue_under_replicated(self) -> None:
        live = set(self.live_view())
        for block in sorted(self.block_map):
            holders = self.block_map[block] & live
            under = self.rt.detector(
                "nn.block.is_under", len(holders) < self.cfg.replication_factor
            )
            if under and block not in self.pending_rerepl and block not in self.inflight_acks:
                self.pending_rerepl.append(block)

    def rerepl_tick(self) -> None:
        """Master re-replication scan: restore the replication factor of
        pending blocks from surviving replicas."""
        if not self.is_master:
            return
        with self.rt.function("DfsNode.rerepl_tick"):
            live = self.live_view()
            issued = 0
            scan = list(self.pending_rerepl)
            # A failed transfer grew the backlog: re-verify that many
            # already-placed blocks, oldest first — each verification
            # re-copies the block between two live holders (an integrity
            # re-check is a full transfer, not a metadata lookup).
            verify: Set[int] = set()
            if self.rescan_backlog > 0:
                placed = [b for b in sorted(self.block_map) if b not in scan]
                verify = set(placed[: self.rescan_backlog])
                scan = sorted(verify) + scan  # distrusted placements first
            still_pending: List[int] = []
            verified = 0
            for block in self.rt.loop("nn.rerepl.scan", scan):
                self.env.spin(self.cfg.rerepl_scan_cost_ms)
                if block in self.inflight_acks:
                    continue  # the ack machinery owns it until acked or aged out
                holders = self.block_map.get(block, set())
                live_holders = sorted(h for h in holders if h in live)
                if block in verify:
                    sources = live_holders[:1]
                    targets = live_holders[1:2]
                else:
                    sources = live_holders
                    targets = [n for n in live if n not in holders]
                if not sources or not targets or issued >= self.cfg.rerepl_batch:
                    if block in self.pending_rerepl:
                        still_pending.append(block)
                    continue
                issued += 1
                if block in verify:
                    verified += 1
                target = next(
                    (p for p in self.datanodes() if p.name == targets[0]), None
                )
                if target is None:  # pragma: no cover - live view names peers
                    continue
                try:
                    self.rt.lib_call(
                        "nn.rerepl.rpc", IOEx, self.env.rpc, target,
                        target.handle_receive, block, [target.name], sources[0],
                        timeout_ms=self.cfg.rerepl_rpc_timeout_ms,
                    )
                except IOEx:
                    self.transfers_failed += 1
                    rescan = self.rt.branch(
                        "nn.rerepl.b_rescan", self.cfg.rescan_on_failure
                    )
                    still_pending.append(block)
                    if rescan:
                        # THE BUG (DFS-3): the transfer failed, so the
                        # placement bookkeeping is distrusted and a window
                        # of already-placed blocks is re-verified — more
                        # scan work and more transfers next tick, keeping
                        # the survivors too busy to answer this one.
                        self.rescan_backlog += self.cfg.rescan_window
                    continue
                if self.cfg.rerepl_ack_required and block not in verify:
                    # Placement is provisional until the target's ack
                    # datagram arrives (verify transfers stay immediate:
                    # both ends already hold the block).
                    self.inflight_acks[block] = (target.name, sources[0], self.env.now)
                else:
                    self.block_map.setdefault(block, set()).add(target.name)
            self.pending_rerepl = still_pending
            self.rescan_backlog = max(0, self.rescan_backlog - verified)

    def handle_rerepl_ack(self, block: int, name: str) -> None:
        """One-way transfer ack: the provisional placement is now trusted."""
        if not self.is_master:
            return
        self.acks_received += 1
        self.inflight_acks.pop(block, None)
        self.block_map.setdefault(block, set()).add(name)

    def ack_scan_tick(self) -> None:
        """Master overdue-ack scan: retry transfers whose ack never came.

        The retry re-copies the block to its target — correct when the
        *transfer* was lost, pure duplicate work when only the ack was.
        """
        if not self.is_master:
            return
        with self.rt.function("DfsNode.ack_scan_tick"):
            live = set(self.live_view())
            distrust = self.env.now < self.ack_panic_until
            overdue: List[int] = []
            for block in self.rt.loop("nn.ack.scan", sorted(self.inflight_acks)):
                self.env.spin(self.cfg.ack_scan_cost_ms)
                aged = self.env.now - self.inflight_acks[block][2] > self.cfg.ack_timeout_ms
                if aged or distrust:
                    overdue.append(block)
            for block in overdue:
                target_name, source_name, _ = self.inflight_acks[block]
                if target_name not in live:
                    # The target died: hand the block back to the normal
                    # re-replication planner.
                    self.inflight_acks.pop(block, None)
                    if block not in self.pending_rerepl:
                        self.pending_rerepl.append(block)
                    continue
                target = next(
                    (p for p in self.datanodes() if p.name == target_name), None
                )
                if target is None:  # pragma: no cover - live view names peers
                    self.inflight_acks.pop(block, None)
                    continue
                self.retries_issued += 1
                try:
                    self.rt.lib_call(
                        "nn.retry.rpc", IOEx, self.env.rpc, target,
                        target.handle_receive, block, [target_name], source_name,
                        timeout_ms=self.cfg.retry_rpc_timeout_ms,
                    )
                except IOEx:
                    panic = self.rt.branch("nn.ack.b_panic", self.cfg.retry_panic)
                    if panic:
                        # THE BUG (DFS-4): a retry that itself timed out
                        # reads as wholesale ack-channel loss, so the ack
                        # path is distrusted for a whole window — every
                        # scan inside it retries every inflight transfer,
                        # however fresh.  The duplicate copies keep the
                        # datanodes too busy to flush acks promptly, and
                        # any late retry answer re-opens the window.
                        self.ack_panic_until = (
                            self.env.now + self.cfg.ack_panic_window_ms
                        )
                    continue
                self.inflight_acks[block] = (target_name, source_name, self.env.now)

    def update_metrics(self) -> None:
        """Flush the master's gauge set (constant-bound loop: the §4.1
        scalability rule excludes it from the fault space)."""
        for _ in self.rt.loop("nn.metrics.flush", range(3)):
            self.env.spin(0.05)

    def check_acl(self, principal: str) -> None:
        """Allocation ACL check (security-related throw: excluded by the
        §4.1 exception filter)."""
        self.rt.throw_point("dfs.sec.acl_check", IOEx, natural=principal == "")

    # ------------------------------------------------------------ dead code

    def fsck_scan_legacy(self) -> int:
        """Pre-re-replication namespace audit, superseded by rerepl_tick.

        Dead code: no workload path or peer RPC calls it anymore, but its
        instrumented loop (``nn.fsck.scan``) is still in the site registry
        — the code-slice reachability analysis proves it unreachable from
        every workload entry point and prunes its faults from the space.
        """
        checked = 0
        for _ in self.rt.loop("nn.fsck.scan", sorted(self.block_map)):
            self.env.spin(1.0)
            checked += 1
        return checked


class DfsClient(Node):
    """Client writing and reading blocks through its master view."""

    def __init__(
        self,
        env: SimEnv,
        rt: Runtime,
        nodes: List[DfsNode],
        index: int,
        writes_per_tick: int = 2,
        reads_per_tick: int = 1,
        interval_ms: float = 4_000.0,
    ) -> None:
        super().__init__(env, "dfscli%d" % index)
        self.rt = rt
        self.nodes = nodes
        self.writes_per_tick = writes_per_tick
        self.reads_per_tick = reads_per_tick
        self.written: List[int] = []
        self._next_block = 1_000 + 10_000 * index
        env.every(self, interval_ms, self.submit_tick, jitter_ms=100.0)

    def _master(self) -> Optional[DfsNode]:
        acting = [n for n in self.nodes if n.is_master and not n.crashed]
        return acting[0] if acting else None

    def submit_tick(self) -> None:
        with self.rt.function("DfsClient.submit_tick"):
            master = self._master()
            ops = ["w"] * self.writes_per_tick + ["r"] * self.reads_per_tick
            for op in self.rt.loop("cli.ops.submit", ops):
                if master is None:
                    continue
                if op == "w":
                    self._write(master)
                else:
                    self._read(master)

    def _write(self, master: DfsNode) -> None:
        block = self._next_block
        try:
            pipeline = self.rt.lib_call(
                "cli.alloc.rpc", IOEx, self.env.rpc, master,
                master.handle_allocate, block,
            )
        except IOEx:
            return
        primary = next((n for n in self.nodes if n.name == pipeline[0]), None)
        if primary is None:
            return
        try:
            self.rt.lib_call(
                "cli.data.rpc", IOEx, self.env.rpc, primary,
                primary.handle_write, block, list(pipeline),
            )
        except IOEx:
            return
        self._next_block += 1
        self.written.append(block)

    def _read(self, master: DfsNode) -> None:
        if not self.written:
            return
        block = self.written[len(self.written) // 2]
        holders = sorted(master.block_map.get(block, set()))
        holder = next(
            (n for n in self.nodes if holders and n.name == holders[block % len(holders)]),
            None,
        )
        if holder is None:
            return
        try:
            self.rt.lib_call(
                "cli.read.rpc", IOEx, self.env.rpc, holder, holder.handle_read, block,
            )
        except IOEx:
            return
