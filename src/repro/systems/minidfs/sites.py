"""Fault-site registry for MiniDFS."""

from __future__ import annotations

from ...instrument.sites import SiteRegistry


def build_registry() -> SiteRegistry:
    reg = SiteRegistry("minidfs")

    # Master (namenode role): report processing, liveness, re-replication.
    reg.loop("nn.report.blocks", "DfsNode.handle_register", does_io=True, body_size=42)
    reg.detector("nn.dn.is_dead", "DfsNode.liveness_tick", error_value=True)
    reg.detector("nn.block.is_under", "DfsNode._queue_under_replicated", error_value=True)
    reg.loop("nn.rerepl.scan", "DfsNode.rerepl_tick", does_io=True, body_size=40)
    reg.lib_call("nn.rerepl.rpc", "DfsNode.rerepl_tick", exception="SocketTimeoutException")
    reg.branch("nn.rerepl.b_rescan", "DfsNode.rerepl_tick")
    reg.loop("nn.ack.scan", "DfsNode.ack_scan_tick", does_io=True, body_size=34)
    reg.lib_call("nn.retry.rpc", "DfsNode.ack_scan_tick", exception="SocketTimeoutException")
    reg.branch("nn.ack.b_panic", "DfsNode.ack_scan_tick")
    reg.throw("nn.write.not_master", "DfsNode.handle_allocate", exception="NotMasterException")

    # Datanodes: heartbeats, (re-)registration, block pipelines.
    reg.loop("dn.ibr.build", "DfsNode.heartbeat_tick", body_size=6)
    reg.lib_call("dn.hb.rpc", "DfsNode.heartbeat_tick", exception="SocketTimeoutException")
    reg.branch("dn.hb.b_rereg", "DfsNode.heartbeat_tick")
    reg.loop("dn.report.build", "DfsNode.register_with_master", body_size=18)
    reg.lib_call("dn.reg.rpc", "DfsNode.register_with_master", exception="SocketTimeoutException")
    reg.branch("dn.reg.b_retry", "DfsNode.register_with_master")
    reg.loop("dn.pipe.write", "DfsNode.handle_write", does_io=True, body_size=30)
    reg.lib_call("dn.pipe.rpc", "DfsNode.handle_write", exception="SocketTimeoutException")
    reg.loop("dn.pipe.recv", "DfsNode.handle_receive", does_io=True, body_size=38)
    reg.lib_call("dn.serve.rpc", "DfsNode.handle_receive", exception="SocketTimeoutException")
    reg.loop("dn.read.chunks", "DfsNode.handle_read", does_io=True, body_size=22)
    reg.throw("dn.disk.full_ioe", "DfsNode.handle_write", exception="DiskFullException")
    reg.loop("dn.ack.build", "DfsNode.ack_flush_tick", does_io=True, body_size=16)

    # Standby failover: master-liveness detection, priority promotion,
    # namespace rebuild from full reports.
    reg.detector("dn.master.is_down", "DfsNode.failover_tick", error_value=True)
    reg.branch("fo.b_promote", "DfsNode.failover_tick")
    reg.lib_call("fo.report.rpc", "DfsNode.become_master", exception="SocketTimeoutException")
    reg.loop("fo.rebuild.entries", "DfsNode.become_master", body_size=44)

    # Client.
    reg.loop("cli.ops.submit", "DfsClient.submit_tick", does_io=True, body_size=24)
    reg.lib_call("cli.alloc.rpc", "DfsClient._write", exception="SocketTimeoutException")
    reg.lib_call("cli.data.rpc", "DfsClient._write", exception="SocketTimeoutException")
    reg.lib_call("cli.read.rpc", "DfsClient._read", exception="SocketTimeoutException")

    # Dead code: fsck_scan_legacy has no callers, so the code-slice
    # reachability analysis excludes this site from the fault space.
    reg.loop("nn.fsck.scan", "DfsNode.fsck_scan_legacy", does_io=True, body_size=12)

    # Filtered examples (excluded by the static analyzer's §4.1/§7 rules).
    reg.loop("nn.metrics.flush", "DfsNode.update_metrics", constant_bound=True, body_size=3)
    reg.detector("dn.conf.is_cached", "DfsNode.__init__", final_only=True)
    reg.throw("dfs.sec.acl_check", "DfsNode.check_acl", security_related=True)

    return reg
