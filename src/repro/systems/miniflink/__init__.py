"""MiniFlink: JobManager + TaskManagers running a head→agg→sink pipeline."""

from .build import build_system
from .sites import build_registry

__all__ = ["build_system", "build_registry"]
