"""Assemble the MiniFlink system spec."""

from __future__ import annotations

from ...types import FaultKey, InjKind
from ...workloads.flink import flink_workloads
from ..base import KnownBug, SystemSpec
from .sites import build_registry


def build_system() -> SystemSpec:
    spec = SystemSpec(
        name="miniflink",
        registry=build_registry(),
        source_modules=("repro.systems.miniflink.nodes", "repro.workloads.flink"),
    )
    for workload in flink_workloads():
        spec.add_workload(workload)
    spec.known_bugs = [
        KnownBug(
            bug_id="FL-1",
            description=(
                "A slow sink worker backs the pipeline up until the head "
                "task fails; the restart strategy cancels all tasks, the "
                "sink cancellation fails on in-flight data, and the dirty "
                "restart replays records into the slow sink."
            ),
            signature="1D|2E|0N",
            core_faults=frozenset(
                {
                    FaultKey("tm.sink.process", InjKind.DELAY),
                    FaultKey("tm.head.fail", InjKind.EXCEPTION),
                    FaultKey("jm.sink.cancel", InjKind.EXCEPTION),
                }
            ),
            # Paper: Alt ✗; our restart-strategy test self-sustains once the
            # single fault lands (see EXPERIMENTS.md).
            alt_detectable=True,
            jira="FLINK-38367",
        ),
        KnownBug(
            bug_id="FL-2",
            description=(
                "A slow aggregator breaks barrier alignment; the checkpoint "
                "failure policy cancels the task mid-restore "
                "(IllegalStateException), and the dirty restart replays "
                "records into the aggregator."
            ),
            signature="1D|2E|0N",
            core_faults=frozenset(
                {
                    FaultKey("tm.agg.process", InjKind.DELAY),
                    FaultKey("tm.barrier.fail", InjKind.EXCEPTION),
                    FaultKey("tm.state.transition", InjKind.EXCEPTION),
                }
            ),
            alt_detectable=True,
            jira="FLINK-38368",
        ),
    ]
    return spec
