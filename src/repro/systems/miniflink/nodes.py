"""MiniFlink nodes: a JobManager and TaskManagers running head→agg→sink.

FL-1: a slow sink backs up the pipeline until the head task fails; the
restart strategy cancels all tasks — cancelling a sink with in-flight data
fails — and the dirty restart replays records into the very worker loops
that were already too slow.

FL-2: a slow aggregator misses barrier alignment (CheckpointException);
the checkpoint-failure policy cancels the task, which may be mid-restore
(IllegalStateException), and the ensuing dirty restart replays records
into the aggregator.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...errors import IOEx
from ...instrument.runtime import Runtime
from ...sim import Node, SimEnv


class TaskException(IOEx):
    """A task failed permanently (head input stall, etc.)."""


class CheckpointException(IOEx):
    """A barrier could not be aligned in time."""


class CancelTaskException(IOEx):
    """Cancelling a task with in-flight data failed."""


class IllegalState(IOEx):
    """A lifecycle transition hit a task in an incompatible state."""


class FlinkConfig:
    def __init__(self, **kw: object) -> None:
        self.source_interval_ms = 2_000.0
        self.records_per_tick = 10
        self.record_cost_ms = 0.5
        self.forward_timeout_ms = 10_000.0
        self.head_fail_after = 3  # consecutive forward failures
        self.restart_strategy = "none"  # or "full"
        self.rescale_interval_ms = 0.0  # periodic clean restarts (0 = off)
        self.cancel_drain_cap = 20  # in-flight records a cancel can drain
        self.sink_flush_interval_ms = 4_000.0
        self.replay_batch = 40  # records replayed on a dirty restart
        self.checkpoints = False
        self.cp_interval_ms = 5_000.0
        self.cp_align_cap = 30  # backlog that breaks barrier alignment
        self.cp_failure_action = "ignore"  # or "fail_task"
        self.deploy_grace_ms = 1.0  # DEPLOYING lingers this long after restore
        for key, value in kw.items():
            if not hasattr(self, key):
                raise TypeError("unknown FlinkConfig option %r" % key)
            setattr(self, key, value)


class TaskManager(Node):
    def __init__(self, env: SimEnv, rt: Runtime, cfg: FlinkConfig, role: str, index: int) -> None:
        super().__init__(env, "tm-%s%d" % (role, index))
        self.rt = rt
        self.cfg = cfg
        self.role = role
        self.state = "RUNNING"
        self.backlog: List[int] = []
        self.downstream: Optional["TaskManager"] = None
        self.jm: Optional["JobManager"] = None
        self.processed = 0
        self._forward_failures = 0
        self._deploy_epoch = 0
        self.out_buffer = 0  # sink: emitted but not yet flushed downstream
        if role == "sink":
            env.every(self, cfg.sink_flush_interval_ms, self.flush_outputs)
        if role == "head":
            env.every(self, cfg.source_interval_ms, self.process_head, jitter_ms=80.0)
        else:
            env.every(self, cfg.source_interval_ms, self.process_tick, jitter_ms=80.0)

    # ------------------------------------------------------------ processing

    def process_head(self) -> None:
        """Source + head task: consume fresh records and forward downstream.

        The stall guard runs at the top of every tick: a head that failed to
        forward ``head_fail_after`` consecutive times declares itself failed
        (the throw point is therefore reached — and injectable — on every
        tick, not only after natural failures)."""
        if self.state != "RUNNING":
            return
        with self.rt.function("TaskManager.process_head"):
            # (the stall state is the head-failure guard; not a monitor point)
            stalled = self._forward_failures >= self.cfg.head_fail_after
            try:
                self.rt.throw_point("tm.head.fail", TaskException, natural=stalled)
            except TaskException:
                self.state = "FAILED"
                self._forward_failures = 0
                if self.jm is not None:
                    self.env.send(self.jm, self.jm.report_failure, self.name)
                return
            self.backlog.extend([1] * self.cfg.records_per_tick)
            batch, self.backlog = self.backlog, []
            done = 0
            for _rec in self.rt.loop("tm.head.process", batch):
                self.env.spin(self.cfg.record_cost_ms)
                done += 1
            try:
                if self.downstream is not None:
                    self.rt.lib_call(
                        "tm.forward.rpc", IOEx, self.env.rpc, self.downstream,
                        self.downstream.receive, done,
                        timeout_ms=self.cfg.forward_timeout_ms,
                    )
                self._forward_failures = max(0, self._forward_failures - 1)
                self.processed += done
            except IOEx:
                self._forward_failures += 1
                self.backlog.extend([1] * done)  # keep the batch for retry

    def process_tick(self) -> None:
        """Aggregator / sink worker loop (DEPLOYING tasks already process —
        the restore grace only gates lifecycle transitions)."""
        if self.state not in ("RUNNING", "DEPLOYING"):
            return
        site = "tm.%s.process" % self.role
        with self.rt.function("TaskManager.process_%s" % self.role):
            batch, self.backlog = self.backlog, []
            done = 0
            for _rec in self.rt.loop(site, batch):
                self.env.spin(self.cfg.record_cost_ms)
                done += 1
            if self.downstream is not None and done:
                try:
                    self.env.rpc(
                        self.downstream, self.downstream.receive, done,
                        timeout_ms=self.cfg.forward_timeout_ms,
                    )
                except IOEx:
                    self.backlog.extend([1] * done)
                    return
            if self.role == "sink":
                self.out_buffer += done
            self.processed += done

    def receive(self, n: int) -> None:
        self.check_alive()
        if self.state not in ("RUNNING", "DEPLOYING"):
            raise IOEx("%s not running" % self.name)
        self.backlog.extend([1] * n)
        self.env.spin(0.1 * n)

    # ------------------------------------------------------------- lifecycle

    def deploy_task(self, replay: int) -> None:
        self.check_alive()
        with self.rt.function("TaskManager.deploy_task"):
            self.state = "DEPLOYING"
            for _item in self.rt.loop("tm.state.restore", range(replay)):
                self.env.spin(1.0)
            self.backlog.extend([1] * replay)
            # State restore finishes asynchronously: the task stays in
            # DEPLOYING for the restore-grace window (large state takes a
            # while to register), so a cancel landing in the window hits an
            # illegal lifecycle transition.
            epoch = self._deploy_epoch = self._deploy_epoch + 1

            def finish() -> None:
                if self.state == "DEPLOYING" and self._deploy_epoch == epoch:
                    self.state = "RUNNING"

            self.env.after(self, self.cfg.deploy_grace_ms, finish)

    def flush_outputs(self) -> None:
        """Sink output flush: emitted records are acknowledged in batches."""
        self.env.spin(0.1 * self.out_buffer)
        self.out_buffer = 0

    def cancel_task(self) -> int:
        self.check_alive()
        with self.rt.function("TaskManager.cancel_task"):
            mid_transition = self.state == "DEPLOYING"
            self.rt.throw_point("tm.state.transition", IllegalState, natural=mid_transition)
            inflight = len(self.backlog) + self.out_buffer
            self.state = "CANCELLED"
            self.env.spin(0.5)
            return inflight

    def on_barrier(self, cp_id: int) -> bool:
        self.check_alive()
        with self.rt.function("TaskManager.on_barrier"):
            aligned = len(self.backlog) <= self.cfg.cp_align_cap
            self.rt.throw_point("tm.barrier.fail", CheckpointException, natural=not aligned)
            self.env.spin(0.5)
            return True


class JobManager(Node):
    def __init__(self, env: SimEnv, rt: Runtime, cfg: FlinkConfig) -> None:
        super().__init__(env, "jobmanager")
        self.rt = rt
        self.cfg = cfg
        self.tasks: Dict[str, TaskManager] = {}
        self.restarts = 0
        self.checkpoints_ok = 0
        self._cp_seq = 0
        if cfg.rescale_interval_ms > 0:
            env.every(self, cfg.rescale_interval_ms, self.rescale)
        if cfg.checkpoints:
            env.every(self, cfg.cp_interval_ms, self.checkpoint_tick)

    def attach(self, head: TaskManager, agg: TaskManager, sink: TaskManager) -> None:
        self.tasks = {"head": head, "agg": agg, "sink": sink}
        head.downstream = agg
        agg.downstream = sink
        for tm in self.tasks.values():
            tm.jm = self

    # --------------------------------------------------------------- restart

    def report_failure(self, task_name: str) -> None:
        if self.rt.branch("jm.restart.b_strategy", self.cfg.restart_strategy == "full"):
            self._schedule_restart(dirty=True)

    def rescale(self) -> None:
        self._schedule_restart(dirty=False)

    def _schedule_restart(self, dirty: bool) -> None:
        """All restarts run as their own scheduler action, whatever
        triggered them (failure report, rescale, checkpoint failure)."""
        self.env.after(self, 1.0, self.restart_job, dirty)

    def restart_job(self, dirty: bool) -> None:
        """Cancel every task, then redeploy (with replay if dirty)."""
        with self.rt.function("JobManager.restart_job"):
            self.restarts += 1
            for role in self.rt.loop("jm.cancel.tasks", sorted(self.tasks)):
                tm = self.tasks[role]
                try:
                    inflight = self.env.rpc(tm, tm.cancel_task)
                except IOEx:
                    dirty = True
                    continue
                try:
                    self.rt.throw_point(
                        "jm.sink.cancel",
                        CancelTaskException,
                        natural=(role == "sink" and inflight > self.cfg.cancel_drain_cap),
                    )
                except CancelTaskException:
                    # In-flight data lost: the restart must replay.
                    dirty = True
            self.redeploy(dirty)

    def redeploy(self, dirty: bool) -> None:
        with self.rt.function("JobManager.redeploy"):
            replay = self.cfg.replay_batch if dirty else 0
            live = [tm for tm in self.tasks.values() if not tm.crashed]
            self.rt.throw_point("jm.no_slots", IOEx, natural=not live)
            for role in self.rt.loop("jm.deploy.tasks", sorted(self.tasks)):
                tm = self.tasks[role]
                try:
                    self.rt.lib_call(
                        "jm.deploy.rpc", IOEx, self.env.rpc, tm, tm.deploy_task,
                        replay if role != "head" else 0,
                    )
                except IOEx:
                    continue

    # ------------------------------------------------------------ checkpoint

    def checkpoint_tick(self) -> None:
        with self.rt.function("JobManager.checkpoint_tick"):
            self._cp_seq += 1
            self.rt.branch("jm.cp.b_pending", False)
            stalled_task: Optional[TaskManager] = None
            for role in sorted(self.tasks):
                tm = self.tasks[role]
                try:
                    self.env.rpc(tm, tm.on_barrier, self._cp_seq, timeout_ms=10_000.0)
                except CheckpointException:
                    stalled_task = tm
                except IOEx:
                    stalled_task = tm
            stalled = self.rt.detector("jm.cp.is_stalled", stalled_task is not None)
            if stalled:
                if self.cfg.cp_failure_action == "fail_task":
                    self._schedule_restart(dirty=True)
            else:
                self.checkpoints_ok += 1
