"""Fault-site registry for MiniFlink."""

from __future__ import annotations

from ...instrument.sites import SiteRegistry


def build_registry() -> SiteRegistry:
    reg = SiteRegistry("miniflink")

    # JobManager: scheduler, restart strategy, checkpoint coordinator.
    reg.loop("jm.deploy.tasks", "JobManager.redeploy", does_io=True, body_size=45)
    reg.loop("jm.cancel.tasks", "JobManager.restart_job", body_size=25)
    reg.lib_call("jm.deploy.rpc", "JobManager.redeploy", exception="IOException")
    reg.throw("jm.sink.cancel", "JobManager.restart_job", exception="CancelTaskException")
    reg.throw("jm.no_slots", "JobManager.redeploy", exception="NoResourceAvailableException")
    reg.detector("jm.cp.is_stalled", "JobManager.checkpoint_tick", error_value=True)
    reg.branch("jm.restart.b_strategy", "JobManager.restart_job")
    reg.branch("jm.cp.b_pending", "JobManager.checkpoint_tick")

    # TaskManagers: worker loops per task role, barriers, state machine.
    reg.loop("tm.head.process", "TaskManager.process_head", does_io=True, body_size=50)
    reg.loop("tm.agg.process", "TaskManager.process_agg", does_io=True, body_size=45)
    reg.loop("tm.sink.process", "TaskManager.process_sink", does_io=True, body_size=40)
    reg.loop("tm.state.restore", "TaskManager.deploy_task", does_io=True, body_size=30)
    reg.throw("tm.head.fail", "TaskManager.process_head", exception="TaskException")
    reg.throw("tm.barrier.fail", "TaskManager.on_barrier", exception="CheckpointException")
    reg.throw("tm.state.transition", "TaskManager.cancel_task", exception="IllegalStateException")
    reg.lib_call("tm.forward.rpc", "TaskManager.process_head", exception="IOException")
    # Filtered examples.
    reg.loop("tm.metrics.report", "TaskManager.update_metrics", constant_bound=True, body_size=3)
    reg.detector("tm.conf.is_local", "TaskManager.__init__", final_only=True)

    return reg
