"""MiniHBase: HMaster + RegionServers with the §8.3.1 case-study bugs."""

from .build import build_system
from .sites import build_registry

__all__ = ["build_system", "build_registry"]
