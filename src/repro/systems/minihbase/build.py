"""Assemble the MiniHBase system spec."""

from __future__ import annotations

from ...types import FaultKey, InjKind
from ...workloads.hbase import hbase_workloads
from ..base import KnownBug, SystemSpec
from .sites import build_registry


def build_system() -> SystemSpec:
    spec = SystemSpec(
        name="minihbase",
        registry=build_registry(),
        source_modules=("repro.systems.minihbase.nodes", "repro.workloads.hbase"),
    )
    for workload in hbase_workloads():
        spec.add_workload(workload)
    spec.known_bugs = [
        KnownBug(
            bug_id="HB-1",
            description=(
                "A slow WAL roll tears the segment tail; the next roll's "
                "validator hits PrematureEndOfFile and repairs by "
                "re-appending the tail, growing the roll that was already "
                "too slow."
            ),
            signature="1D|0E|1N",
            core_faults=frozenset(
                {
                    FaultKey("rs.wal.roll", InjKind.DELAY),
                    FaultKey("rs.wal.premature_eof", InjKind.NEGATION),
                }
            ),
            alt_detectable=True,
            jira="HBASE-29600",
        ),
        KnownBug(
            bug_id="HB-2",
            description=(
                "§8.3.1: region deployment overload times out assignment "
                "RPCs; the IOE excludes the server from the favored set, "
                "canPlaceFavoredNodes fails below three servers, and the "
                "blind assignment retry reloads the deployment loop."
            ),
            signature="1D|1E|1N",
            core_faults=frozenset(
                {
                    FaultKey("rs.deploy.regions", InjKind.DELAY),
                    FaultKey("hm.assign.rpc", InjKind.EXCEPTION),
                    FaultKey("hm.balancer.can_place", InjKind.NEGATION),
                }
            ),
            alt_detectable=False,
            jira="HBASE-29006",
        ),
    ]
    return spec
