"""MiniHBase nodes: HMaster, RegionServers, and an admin/write client.

The §8.3.1 self-sustaining cascade (HB-2) lives in the interplay of three
config-gated behaviours:

* region deployment is a queue drained by a periodic RegionServer loop —
  overload shows up as assignment RPC timeouts at the master;
* with the ``favored`` balancer, an assignment IOE *excludes* the server
  from the favored set, and ``canPlaceFavoredNodes`` fails when fewer than
  three favored servers remain;
* a balancer failure is handled by blindly re-queueing the assignment.

HB-1 (WAL roll) is self-contained: a slow roll leaves a torn tail that the
next roll's validator flags (PrematureEndOfFile), and the repair re-appends
the tail — growing the next roll.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from ...errors import IOEx
from ...instrument.runtime import Runtime
from ...sim import Node, SimEnv


class HbaseConfig:
    """Per-workload knobs (kept as a plain attribute bag)."""

    def __init__(self, **kw: object) -> None:
        self.n_regionservers = 4
        self.balancer = "simple"  # or "favored"
        self.favored_min = 3
        self.assign_rpc_timeout_ms = 10_000.0
        self.assign_tick_ms = 2_000.0
        self.deploy_tick_ms = 2_000.0
        self.deploy_cost_ms = 3.0
        self.rs_overload_cap = 60  # queued regions before open_region rejects
        self.wal_roll_interval_ms = 4_000.0
        self.wal_entry_cost_ms = 0.2
        self.wal_torn_gap_ms = 10_000.0  # roll gap that tears the tail
        self.wal_repair_entries = 12
        self.report_interval_ms = 3_000.0
        for key, value in kw.items():
            if not hasattr(self, key):
                raise TypeError("unknown HbaseConfig option %r" % key)
            setattr(self, key, value)


class HMaster(Node):
    def __init__(self, env: SimEnv, rt: Runtime, cfg: HbaseConfig) -> None:
        super().__init__(env, "hmaster")
        self.rt = rt
        self.cfg = cfg
        self.regionservers: List["RegionServer"] = []
        self.excluded: set = set()  # RSes excluded from the favored set
        self.assign_queue: deque = deque()
        self.assigned: Dict[str, str] = {}
        self.retries = 0
        env.every(self, cfg.assign_tick_ms, self.assign_tick)

    # ------------------------------------------------------------- balancer

    def _favored_live(self) -> List["RegionServer"]:
        return [rs for rs in self.regionservers if rs.name not in self.excluded and not rs.crashed]

    def can_place_favored(self) -> bool:
        """FavoredStochasticBalancer.canPlaceFavoredNodes (§8.3.1): needs at
        least ``favored_min`` live, non-excluded servers."""
        healthy = len(self._favored_live()) >= self.cfg.favored_min
        return self.rt.detector("hm.balancer.can_place", healthy)

    def _pick_server(self, seq: int) -> Optional["RegionServer"]:
        if self.cfg.balancer == "favored":
            if not self.can_place_favored():
                return None  # balancer failure
            live = self._favored_live()
        else:
            live = [rs for rs in self.regionservers if not rs.crashed]
        if not live:
            return None
        return live[seq % len(live)]

    # ----------------------------------------------------------- assignment

    def request_assign(self, region: str) -> None:
        self.check_alive()
        self.assign_queue.append(region)

    def assign_tick(self) -> None:
        with self.rt.function("HMaster.assign_tick"):
            batch, self.assign_queue = list(self.assign_queue), deque()
            for i, region in enumerate(self.rt.loop("hm.assign.queue", batch)):
                self.env.spin(0.5)
                favored = self.rt.branch(
                    "hm.assign.b_favored", self.cfg.balancer == "favored"
                )
                target = self._pick_server(i)
                if target is None:
                    # THE BUG (HB-2): the balancer failed; the handler
                    # blindly re-queues the assignment AND rebuilds the
                    # placement plan, re-assigning already-placed regions.
                    self.rt.branch("hm.assign.b_retry", True)
                    self.retries += 1
                    self.assign_queue.append(region)
                    for moved in sorted(self.assigned)[:25]:
                        self.assign_queue.append(moved)
                        del self.assigned[moved]
                    continue
                try:
                    self.rt.lib_call(
                        "hm.assign.rpc", IOEx, self.env.rpc, target, target.open_region,
                        region, timeout_ms=self.cfg.assign_rpc_timeout_ms,
                    )
                    self.assigned[region] = target.name
                except IOEx:
                    self.rt.branch("hm.assign.b_retry", True)
                    self.retries += 1
                    if favored:
                        # An IOE excludes the server from the favored set.
                        self.excluded.add(target.name)
                    self.assign_queue.append(region)  # blind retry


class RegionServer(Node):
    def __init__(self, env: SimEnv, rt: Runtime, master: HMaster, cfg: HbaseConfig, index: int) -> None:
        super().__init__(env, "rs%d" % index)
        self.rt = rt
        self.master = master
        self.cfg = cfg
        self.open_queue: deque = deque()
        self.hosted: set = set()
        self.wal_buffer: List[int] = []
        self.wal_torn = False
        self.last_roll_end = 0.0
        self.rolls = 0
        master.regionservers.append(self)
        env.every(self, cfg.deploy_tick_ms, self.deploy_tick, jitter_ms=50.0)
        env.every(self, cfg.wal_roll_interval_ms, self.wal_roll)
        env.every(self, cfg.report_interval_ms, self.report_tick, jitter_ms=40.0)

    # ------------------------------------------------------------ rpc target

    def open_region(self, region: str) -> str:
        self.check_alive()
        with self.rt.function("RegionServer.open_region"):
            overloaded = len(self.open_queue) >= self.cfg.rs_overload_cap
            self.rt.throw_point("rs.open.ioe", IOEx, natural=overloaded)
            self.open_queue.append(region)
            self.env.spin(0.5)
            return "queued"

    # -------------------------------------------------------------- periodic

    def deploy_tick(self) -> None:
        """The region deployment loop of the §8.3.1 case study."""
        with self.rt.function("RegionServer.deploy_tick"):
            batch, self.open_queue = list(self.open_queue), deque()
            self.rt.branch("rs.deploy.b_overloaded", len(batch) > 20)
            for region in self.rt.loop("rs.deploy.regions", batch):
                self.env.spin(self.cfg.deploy_cost_ms)
                self.hosted.add(region)
                self.wal_buffer.append(1)  # region-open marker edit

    def append(self, n: int) -> None:
        """WAL appends from writes routed to this server."""
        self.check_alive()
        with self.rt.function("RegionServer.append"):
            self.rt.throw_point("rs.wal.sync_fail", IOEx, natural=len(self.wal_buffer) > 5_000)
            self.wal_buffer.extend([1] * n)
            self.env.spin(0.05 * n)

    def wal_roll(self) -> None:
        """Roll the WAL: validate the previous segment's tail, then write
        out the buffered entries."""
        with self.rt.function("RegionServer.wal_roll"):
            gap = self.env.now - self.last_roll_end
            # NOTE: ``torn`` is the premature-EOF detector's own guard and
            # must not be recorded as a monitor point (§6.2: injected and
            # natural occurrences would look incompatible).
            torn = self.wal_torn or (
                self.last_roll_end > 0.0 and gap > self.cfg.wal_torn_gap_ms
            )
            self.wal_torn = False
            hit_eof = self.rt.detector("rs.wal.premature_eof", torn)
            if hit_eof:
                # Repair: re-append the torn tail to the new segment.
                self.wal_buffer.extend([1] * self.cfg.wal_repair_entries)
            batch, self.wal_buffer = self.wal_buffer, []
            self.rolls += 1
            for _entry in self.rt.loop("rs.wal.roll", batch):
                self.env.spin(self.cfg.wal_entry_cost_ms)
            self.last_roll_end = self.env.now

    def report_tick(self) -> None:
        with self.rt.function("RegionServer.report_tick"):
            try:
                self.rt.rpc_call(
                    "rs.report.rpc", IOEx, self.env.rpc, self.master,
                    self._deliver_report, self.name, len(self.hosted),
                )
            except IOEx:
                pass

    def _deliver_report(self, name: str, hosted: int) -> None:
        self.master.check_alive()
        self.env.spin(0.1)


class HBaseClient(Node):
    """Admin + write client: creates/clones tables (region assignments) and
    issues write batches (WAL appends)."""

    def __init__(
        self,
        env: SimEnv,
        rt: Runtime,
        master: HMaster,
        index: int,
        creates_per_tick: int = 0,
        regions_per_table: int = 4,
        writes_per_tick: int = 0,
        interval_ms: float = 4_000.0,
    ) -> None:
        super().__init__(env, "hclient%d" % index)
        self.rt = rt
        self.master = master
        self.creates_per_tick = creates_per_tick
        self.regions_per_table = regions_per_table
        self.writes_per_tick = writes_per_tick
        self._seq = 0
        env.every(self, interval_ms, self.run_batch, jitter_ms=120.0)

    def run_batch(self) -> None:
        with self.rt.function("HBaseClient.run_batch"):
            ops: List[tuple] = []
            for _ in range(self.creates_per_tick):
                self._seq += 1
                ops.append(("create", "t%d/%s" % (self._seq, self.name)))
            for _ in range(self.writes_per_tick):
                ops.append(("write", ""))
            for op, arg in self.rt.loop("cli.batch.ops", ops):
                if op == "create":
                    try:
                        self.rt.lib_call(
                            "cli.admin.rpc", IOEx, self.env.rpc, self.master,
                            self._create_table, arg,
                        )
                    except IOEx:
                        pass
                else:
                    servers = [rs for rs in self.master.regionservers if not rs.crashed]
                    if servers:
                        target = servers[self._seq % len(servers)]
                        self._seq += 1
                        try:
                            self.env.rpc(target, target.append, 4)
                        except IOEx:
                            pass

    def _create_table(self, table: str) -> None:
        self.master.check_alive()
        for i in range(self.regions_per_table):
            self.master.request_assign("%s/r%d" % (table, i))
        self.env.spin(0.3)
