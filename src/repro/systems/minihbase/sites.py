"""Fault-site registry for MiniHBase."""

from __future__ import annotations

from ...instrument.sites import SiteRegistry


def build_registry() -> SiteRegistry:
    reg = SiteRegistry("minihbase")

    # HMaster: assignment manager + balancer.
    reg.loop("hm.assign.queue", "HMaster.assign_tick", does_io=True, body_size=50)
    reg.loop("hm.plan.build", "HMaster.assign_tick", parent="hm.assign.queue", order=0, body_size=20)
    reg.lib_call("hm.assign.rpc", "HMaster.assign_tick", exception="IOException")
    reg.detector("hm.balancer.can_place", "FavoredStochasticBalancer.canPlaceFavoredNodes",
                 error_value=False)
    reg.detector("hm.rs.is_online", "HMaster.check_servers", error_value=False)
    reg.throw("hm.assign.no_plan", "HMaster.assign_tick", exception="HBaseIOException")
    reg.branch("hm.assign.b_favored", "HMaster.assign_tick")
    reg.branch("hm.assign.b_retry", "HMaster.assign_tick")

    # RegionServer: deployment + WAL.
    reg.loop("rs.deploy.regions", "RegionServer.deploy_tick", does_io=True, body_size=45)
    reg.loop("rs.wal.roll", "RegionServer.wal_roll", does_io=True, body_size=40)
    reg.loop("rs.flush.memstore", "RegionServer.flush_tick", does_io=True, body_size=30)
    reg.throw("rs.open.ioe", "RegionServer.open_region", exception="RegionOpeningException")
    reg.throw("rs.wal.sync_fail", "RegionServer.append", exception="WALSyncTimeoutIOException")
    reg.detector("rs.wal.premature_eof", "RegionServer.wal_roll", error_value=True)
    reg.lib_call("rs.report.rpc", "RegionServer.report_tick", exception="IOException")
    reg.branch("rs.deploy.b_overloaded", "RegionServer.deploy_tick")
    # Filtered examples.
    reg.loop("rs.metrics.update", "RegionServer.update_metrics", constant_bound=True, body_size=3)
    reg.detector("rs.conf.is_secure", "RegionServer.__init__", final_only=True)
    reg.throw("rs.refl.coproc", "RegionServer.load_coprocessor", reflection_related=True)

    # Client.
    reg.loop("cli.batch.ops", "HBaseClient.run_batch", does_io=True, body_size=30)
    reg.lib_call("cli.admin.rpc", "HBaseClient.run_batch", exception="IOException")

    return reg
