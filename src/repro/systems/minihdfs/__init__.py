"""MiniHDFS: a simulated HDFS (NameNode + DataNodes + DFS clients).

Two variants share this package, mirroring the paper's HDFS 2.10.2 and
HDFS 3.4.1 targets:

* ``version=2`` — synchronous report processing on the NameNode;
* ``version=3`` — adds the asynchronous NameNode event queue (reports are
  dispatched by a queue worker with separate error handlers), the block
  deletion service, and erasure-coding-style block reconstruction, which is
  why HDFS 3 exhibits more error handlers, cycles, and fault clusters
  (§8.4.1).

The seeded self-sustaining cascade bugs are documented in ``bugs.py``.
"""

from .build import build_system
from .sites import build_registry

__all__ = ["build_system", "build_registry"]
