"""Ground-truth self-sustaining cascade bugs seeded in MiniHDFS.

Each entry mirrors a Table 3 row (JIRA ids from the paper).  ``core_faults``
is the set of faults a reported cycle must involve to count as exposing the
bug; ``alt_detectable`` marks bugs the naive single-fault self-causation
strategy of §8.2 can trigger.
"""

from __future__ import annotations

from typing import List

from ...types import FaultKey, InjKind
from ..base import KnownBug


def _d(site: str) -> FaultKey:
    return FaultKey(site, InjKind.DELAY)


def _e(site: str) -> FaultKey:
    return FaultKey(site, InjKind.EXCEPTION)


def _n(site: str) -> FaultKey:
    return FaultKey(site, InjKind.NEGATION)


def hdfs2_bugs() -> List[KnownBug]:
    return [
        KnownBug(
            bug_id="H2-1",
            description=(
                "Lease recovery delay stalls the NameNode; writers' complete() "
                "calls time out and their block retries hit "
                "ReplicaAlreadyExists; the resulting report storms overflow "
                "the IBR backlog, abandoned files pile up in the lease table, "
                "and lease recovery gets slower still."
            ),
            signature="1D|2E|0N",
            core_faults=frozenset(
                {_d("nn.lease.scan"), _e("dn.pipe.replica_exists"), _e("nn.ibr.overflow")}
            ),
            alt_detectable=False,
            jira="HDFS-17661",
        ),
        KnownBug(
            bug_id="H2-2",
            description=(
                "Edit-log flush delay grows the journal backlog past the cap, "
                "fencing the active NameNode; IBRs to the fenced node fail "
                "with StandbyException, and the throttling-bypass resend "
                "duplicates report entries — which are all logged as edits."
            ),
            signature="1D|1E|0N",
            core_faults=frozenset({_d("nn.edit.flush"), _e("dn.ibr.rpc")}),
            alt_detectable=False,
            jira="HDFS-17836",
        ),
        KnownBug(
            bug_id="H2-3",
            description=(
                "A slow block-recovery session outlives the recovery "
                "monitor's re-issue interval; the re-issued recovery hits "
                "RecoveryInProgressException, is rescheduled, and keeps the "
                "session window open — recovery attempts grow unboundedly."
            ),
            signature="1D|1E|0N",
            core_faults=frozenset({_d("dn.rec.attempts"), _e("dn.rec.ioe")}),
            alt_detectable=True,
            jira="HDFS-17662",
        ),
        KnownBug(
            bug_id="H2-4",
            description=(
                "Write-pipeline packet delay times out the downstream "
                "forward; the rebuild leaves stale genstamps that fail block "
                "recovery; failed recoveries mark replicas corrupt, and the "
                "re-replication transfers stream packets through the same "
                "slow pipeline path."
            ),
            signature="1D|2E|0N",
            core_faults=frozenset(
                {_d("dn.pipe.packets"), _e("dn.pipe.ioe"), _e("dn.rec.ioe")}
            ),
            alt_detectable=False,
            jira="HDFS-17837",
        ),
        KnownBug(
            bug_id="H2-5",
            description=(
                "Replica-cache eviction delay makes the DataNode miss "
                "pipeline deadlines and heartbeats; clients report it bad, "
                "the staleness detector trips, and the re-replication storm "
                "floods the cache with new entries to evict."
            ),
            signature="1D|1E|1N",
            core_faults=frozenset(
                {_d("dn.cache.evict"), _e("dn.pipe.ioe"), _n("nn.dn.is_stale")}
            ),
            alt_detectable=False,
            jira="HDFS-17660",
        ),
        KnownBug(
            bug_id="H2-6",
            description=(
                "§8.3.2: a failed IBR is retried at the next heartbeat, "
                "bypassing the configured report interval; under NameNode "
                "overload the timed-out report was actually processed, so "
                "the retry duplicates entries and adds processing load."
            ),
            signature="1D|1E|0N",
            core_faults=frozenset({_d("nn.ibr.entries"), _e("dn.ibr.rpc")}),
            # Paper: Alt ✗.  In our realization the throttled-IBR test also
            # self-sustains once the single fault lands (see EXPERIMENTS.md).
            alt_detectable=True,
            jira="HDFS-17780",
        ),
    ]


def hdfs3_bugs() -> List[KnownBug]:
    return [
        KnownBug(
            bug_id="H3-1",
            description=(
                "Async block-deletion delay makes the DataNode miss pipeline "
                "deadlines and heartbeats; the staleness detector trips, "
                "re-replication over-replicates when the node returns, and "
                "the invalidation commands refill the deletion queue."
            ),
            signature="1D|1E|1N",
            core_faults=frozenset(
                {_d("dn3.del.work"), _e("dn.pipe.ioe"), _n("nn.dn.is_stale")}
            ),
            alt_detectable=False,
            jira="HDFS-17838",
        ),
        KnownBug(
            bug_id="H3-2",
            description=(
                "Reconstruction-worker delay stalls heartbeats until nodes "
                "look dead; the resulting report traffic grows the IBR "
                "conversion work, replica transfers into busy nodes fail, "
                "and the failures queue more reconstruction."
            ),
            signature="1D|1E|0N",
            core_faults=frozenset(
                {
                    _d("dn3.recon.work"),
                    _e("dn3.recon.fetch"),
                }
            ),
            alt_detectable=False,
            jira="HDFS-17782",
        ),
    ]
