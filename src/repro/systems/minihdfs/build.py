"""Assemble the MiniHDFS system specs."""

from __future__ import annotations

from ...workloads.hdfs import hdfs_workloads
from ..base import SystemSpec
from .bugs import hdfs2_bugs, hdfs3_bugs
from .sites import build_registry


def build_system(version: int = 2) -> SystemSpec:
    if version not in (2, 3):
        raise ValueError("MiniHDFS supports versions 2 and 3")
    spec = SystemSpec(
        name="minihdfs%d" % version,
        registry=build_registry(version),
        source_modules=(
            "repro.systems.minihdfs.client",
            "repro.systems.minihdfs.datanode",
            "repro.systems.minihdfs.hconfig",
            "repro.systems.minihdfs.namenode",
            "repro.workloads.hdfs",
        ),
    )
    for workload in hdfs_workloads(version):
        spec.add_workload(workload)
    if version == 2:
        spec.known_bugs = list(hdfs2_bugs())
    else:
        # The recovery-retry and IBR-throttling cascades exist in both HDFS
        # versions; the paper reports them once (under HDFS 2) and notes the
        # HDFS 3 duplicates (§8.1, Table 4 footnote).
        duplicates = [b for b in hdfs2_bugs() if b.bug_id in ("H2-3", "H2-6")]
        spec.known_bugs = list(hdfs3_bugs()) + duplicates
    return spec
