"""MiniHDFS DFS client: file writes through the pipeline, lease renewal."""

from __future__ import annotations

from typing import List

from ...errors import IOEx, ReplicaAlreadyExists, RpcTimeout
from ...instrument.runtime import Runtime
from ...sim import Node, SimEnv
from .datanode import DataNode
from .hconfig import HdfsConfig
from .namenode import NameNode


class DFSClient(Node):
    """A writer issuing periodic file creations.

    ``write_interval_ms`` paces file creations; each file is one block
    streamed through a DataNode pipeline and then completed at the NameNode.
    """

    def __init__(
        self,
        env: SimEnv,
        rt: Runtime,
        nn: NameNode,
        cfg: HdfsConfig,
        index: int,
        write_interval_ms: float = 8_000.0,
        files_per_tick: int = 1,
        max_rebuilds: int = 2,
        nn_rpc_timeout_ms: float = 10_000.0,
    ) -> None:
        super().__init__(env, "client%d" % index)
        self.rt = rt
        self.nn = nn
        self.cfg = cfg
        self.files_per_tick = files_per_tick
        self.max_rebuilds = max_rebuilds
        self.nn_rpc_timeout_ms = nn_rpc_timeout_ms
        self._file_seq = 0
        self.completed = 0
        self.abandoned = 0
        env.every(self, write_interval_ms, self.write_tick, jitter_ms=150.0)
        if cfg.writers_renew_lease:
            env.every(self, cfg.lease_soft_ms / 2.0, self.renew_leases)
        self._open_files: List[str] = []

    # ---------------------------------------------------------------- writes

    def write_tick(self) -> None:
        for _ in range(self.files_per_tick):
            self._file_seq += 1
            self.write_file("%s/f%d" % (self.name, self._file_seq))

    def write_file(self, file_id: str) -> None:
        """Allocate a block, stream it, and complete the file.

        A ``ReplicaAlreadyExists`` conflict abandons the block and allocates
        a fresh one (HDFS's ``abandonBlock`` + ``addBlock`` path); the
        ``complete()`` call is retried with backoff because reports arrive
        with heartbeats.
        """
        with self.rt.function("DFSClient.write_file"):
            allocations = 0
            while allocations < 2:
                allocations += 1
                try:
                    bid, pipeline = self.env.rpc(
                        self.nn, self.nn.add_block, file_id, self.name,
                        timeout_ms=self.nn_rpc_timeout_ms * 3,
                    )
                except IOEx:
                    return
                if file_id not in self._open_files:
                    self._open_files.append(file_id)
                outcome = self.write_block(bid, list(pipeline))
                if outcome == "conflict":
                    continue  # abandon the block, allocate a new one
                if outcome != "ok":
                    self.abandoned += 1
                    return  # abandon: the lease lingers until the soft limit
                # Completion runs asynchronously (the real client's lease
                # thread): reports arrive with heartbeats, so complete() is
                # retried with backoff without blocking the write loop.
                self._try_complete(file_id, bid, list(pipeline), attempt=0)
                return
            self.abandoned += 1

    def _try_complete(self, file_id: str, bid: str, pipeline: List[DataNode], attempt: int) -> None:
        def retry() -> None:
            self._try_complete(file_id, bid, pipeline, attempt + 1)

        try:
            done = self.env.rpc(
                self.nn, self.nn.complete_file, file_id, bid,
                timeout_ms=self.nn_rpc_timeout_ms,
            )
        except RpcTimeout:
            # NameNode too slow: re-stream the block once — the old tmp
            # replica is still on the DataNodes (the Figure 6 pattern).
            with self.rt.function("DFSClient.complete_retry"):
                self.write_block(bid, pipeline)
            done = False
        except IOEx:
            self.abandoned += 1
            return
        if done:
            self.completed += 1
            if file_id in self._open_files:
                self._open_files.remove(file_id)
        elif attempt < 5:
            self.env.after(self, 2_000.0, retry)
        else:
            self.abandoned += 1

    def write_block(self, bid: str, pipeline: List[DataNode]) -> str:
        """Stream the block; on pipeline failure, rebuild without the bad
        DataNode.  Returns ``"ok"``, ``"conflict"`` or ``"fail"``."""
        with self.rt.function("DFSClient.write_block"):
            attempts = 0
            nodes = list(pipeline)
            while self.rt.loop_guard("cli.write.retries", attempts <= self.max_rebuilds):
                attempts += 1
                if not nodes:
                    break
                head, rest = nodes[0], nodes[1:]
                try:
                    self.rt.lib_call(
                        "cli.pipe.rpc", IOEx, self.env.rpc, head, head.receive_block,
                        bid, rest, self.cfg.packets_per_block, False,
                        timeout_ms=self.cfg.pipe_rpc_timeout_ms * 3,
                    )
                    return "ok"
                except ReplicaAlreadyExists:
                    self.rt.branch("cli.write.b_abandon", True)
                    for dn in nodes:  # abandonBlock: invalidate the attempt
                        try:
                            self.env.rpc(dn, dn.abort_block, bid)
                        except IOEx:
                            pass
                    return "conflict"
                except IOEx:
                    self.rt.branch("cli.write.b_abandon", False)
                    # The attempt's replicas are unusable: tell the DNs.
                    for dn in nodes:
                        try:
                            self.env.rpc(dn, dn.abort_block, bid)
                        except IOEx:
                            pass
                    if self.cfg.client_report_bad_dn:
                        try:
                            self.env.rpc(self.nn, self.nn.report_bad_datanode, nodes[0].name)
                        except IOEx:
                            pass
                    if not self.cfg.client_rebuild_pipeline:
                        break
                    nodes = nodes[1:]  # exclude the failed head and rebuild
            return "fail"

    # ---------------------------------------------------------------- leases

    def renew_leases(self) -> None:
        for file_id in list(self._open_files):
            try:
                self.env.rpc(self.nn, self.nn.renew_lease, file_id, self.name)
            except IOEx:
                pass
