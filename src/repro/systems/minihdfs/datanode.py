"""MiniHDFS DataNode: BPServiceActor (heartbeats, IBRs, commands), the
write pipeline, block recovery, the replica cache, and (v3) the deletion
service and EC-style block reconstruction."""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Dict, List, Set

from ...errors import IOEx, NotPrimary, ReplicaAlreadyExists, RpcTimeout
from ...instrument.runtime import Runtime
from ...sim import Node, SimEnv
from .hconfig import HdfsConfig
from .namenode import NameNode


class RecoveryInProgress(IOEx):
    """A second recovery reached a block whose recovery is still running."""


class DataNode(Node):
    def __init__(self, env: SimEnv, rt: Runtime, nn: NameNode, cfg: HdfsConfig, index: int) -> None:
        super().__init__(env, "dn%d" % index)
        self.rt = rt
        self.nn = nn
        self.cfg = cfg
        self.finalized: Set[str] = set()
        self.tmp_replicas: Set[str] = set()
        self.rebuilt_genstamp: Set[str] = set()  # replicas left by pipeline rebuilds
        self.recovering_until: Dict[str, float] = {}
        self.pending_ibr: List[tuple] = []
        self.force_ibr = False
        self.last_ibr_sent = 0.0
        self.last_fbr_sent = 0.0
        self.must_register = True
        # Replica metadata cache (H2-5): ordered for LRU eviction.
        self.cache: "OrderedDict[str, float]" = OrderedDict()
        # v3 work queues.
        self.deletion_queue: deque = deque()
        self.recon_queue: deque = deque()

        env.every(self, cfg.heartbeat_interval_ms, self.offer_service, jitter_ms=60.0)
        env.every(self, cfg.cache_tick_ms, self.cache_tick)
        if cfg.scanner_interval_ms > 0:
            env.every(self, cfg.scanner_interval_ms, self.scanner_tick)
        if cfg.version >= 3:
            env.every(self, cfg.deletion_tick_ms, self.deletion_tick)
            if cfg.reconstruction:
                env.every(self, cfg.recon_tick_ms, self.reconstruction_tick)

    # -------------------------------------------------------- BPServiceActor

    def offer_service(self) -> None:
        """One heartbeat round: the Figure 5 loop structure — a wrapper
        iteration with the command loop and the IBR conversion loop nested
        inside it."""
        with self.rt.function("DataNode.offer_service"):
            for _ in self.rt.loop("dn.bpsa.offer", (0,)):
                if self.must_register:
                    self._register()
                    if self.must_register:
                        continue  # registration failed; retry next round
                try:
                    commands = self.rt.rpc_call(
                        "dn.hb.rpc", IOEx, self.env.rpc, self.nn, self.nn.heartbeat,
                        self.name, timeout_ms=self.cfg.hb_rpc_timeout_ms,
                    )
                except NotPrimary:
                    self.must_register = True
                    continue
                except IOEx:
                    continue
                for cmd in self.rt.loop("dn.bpsa.cmds", commands):
                    self.env.spin(0.5)
                    self._process_command(cmd)
                self._send_ibr_if_due()
                self._send_fbr_if_due()

    def _register(self) -> None:
        try:
            self.env.rpc(
                self.nn, self.nn.register, self.name, self, sorted(self.finalized)
            )
            self.must_register = False
        except IOEx:
            pass

    def _process_command(self, cmd: tuple) -> None:
        if cmd[0] == "replicate":
            _, bid, target_name = cmd
            target = self.nn.datanodes.get(target_name)
            if target is not None:
                self.replicate_block(bid, target)
        elif cmd[0] == "recover":
            self.recover_block(cmd[1])
        elif cmd[0] == "delete":
            if self.cfg.version >= 3:
                self.deletion_queue.append(cmd[1])
            else:
                self._delete_block(cmd[1])
        elif cmd[0] == "reconstruct":
            self.recon_queue.append(cmd[1])

    def _send_ibr_if_due(self) -> None:
        cfg = self.cfg
        force = self.rt.branch("dn.bpsa.b_force_ibr", self.force_ibr)
        due = (
            not cfg.ibr_throttling
            or force
            or self.env.now - self.last_ibr_sent >= cfg.ibr_interval_ms
        )
        if not self.pending_ibr or not due:
            return
        entries = []
        for entry in self.rt.loop("dn.ibr.convert", list(self.pending_ibr)):
            self.env.spin(0.05)
            entries.append(entry)
        try:
            if self.cfg.version >= 3:
                self.rt.rpc_call(
                    "dn.ibr.rpc", IOEx, self.env.rpc, self.nn, self.nn.enqueue_event,
                    self.name, "ibr", entries, timeout_ms=cfg.ibr_rpc_timeout_ms,
                )
            else:
                self.rt.rpc_call(
                    "dn.ibr.rpc", IOEx, self.env.rpc, self.nn, self.nn.process_ibr,
                    self.name, entries, timeout_ms=cfg.ibr_rpc_timeout_ms,
                )
            self.pending_ibr = self.pending_ibr[len(entries):]
            self.force_ibr = False
            self.last_ibr_sent = self.env.now
        except NotPrimary:
            self.must_register = True
            if cfg.ibr_throttling:
                self.force_ibr = True
            else:
                self.pending_ibr = self.pending_ibr[len(entries):]
        except IOEx:
            if cfg.ibr_throttling:
                # THE BUG (H2-6 / HDFS-17780): a failed IBR is retried at
                # the very next heartbeat, ignoring the configured interval.
                self.force_ibr = True
            else:
                # Fire-and-forget: the next full report will reconcile.
                self.pending_ibr = self.pending_ibr[len(entries):]

    def _send_fbr_if_due(self) -> None:
        if self.env.now - self.last_fbr_sent < self.cfg.fbr_interval_ms:
            return
        self.last_fbr_sent = self.env.now
        blocks = sorted(self.finalized)
        try:
            if self.cfg.version >= 3:
                self.rt.rpc_call(
                    "dn.fbr.rpc", IOEx, self.env.rpc, self.nn, self.nn.enqueue_event,
                    self.name, "fbr", [("added", b) for b in blocks],
                    timeout_ms=self.cfg.fbr_rpc_timeout_ms,
                )
            else:
                self.rt.rpc_call(
                    "dn.fbr.rpc", IOEx, self.env.rpc, self.nn, self.nn.process_full_report,
                    self.name, blocks, timeout_ms=self.cfg.fbr_rpc_timeout_ms,
                )
        except IOEx:
            pass  # the next full-report round retries

    # --------------------------------------------------------- write pipeline

    def receive_block(
        self, bid: str, pipeline: List["DataNode"], packets: int, is_transfer: bool = False
    ) -> None:
        """Receive a block and forward it down the pipeline."""
        self.check_alive()
        with self.rt.function("DataNode.receive_block"):
            self.create_tmp(bid, is_transfer)
            blocked = self.env.now < self.recovering_until.get(bid, -1.0)
            self.rt.branch("dn.pipe.b_downstream", bool(pipeline))
            self.rt.throw_point("dn.pipe.ioe", IOEx, natural=blocked)
            for p in self.rt.loop("dn.pipe.packets", range(packets)):
                self.env.spin(0.4)
                self.rt.branch("dn.pipe.b_last_packet", p == packets - 1)
            if pipeline:
                downstream, rest = pipeline[0], pipeline[1:]
                try:
                    self.env.rpc(
                        downstream, downstream.receive_block, bid, rest, packets,
                        is_transfer, timeout_ms=self.cfg.pipe_rpc_timeout_ms,
                    )
                except (RpcTimeout, IOEx):
                    self.rt.throw_point("dn.pipe.ioe", IOEx, natural=True)
            self._finalize(bid)

    def create_tmp(self, bid: str, is_transfer: bool) -> None:
        with self.rt.function("DataNode.create_tmp"):
            exists = (bid in self.tmp_replicas or bid in self.finalized) and not is_transfer
            self.rt.throw_point("dn.pipe.replica_exists", ReplicaAlreadyExists, natural=exists)
            self.tmp_replicas.add(bid)

    def _finalize(self, bid: str) -> None:
        self.tmp_replicas.discard(bid)
        if bid not in self.finalized:
            self.finalized.add(bid)
            self.pending_ibr.append(("added", bid))
        self.cache[bid] = self.env.now
        self.cache.move_to_end(bid)

    def abort_block(self, bid: str) -> None:
        """Client gave up on a pipeline attempt through this DN; the tmp
        replica lingers (with a stale genstamp if rebuilds conflict) and the
        NameNode must learn it is unusable."""
        self.check_alive()
        # The NameNode must learn the abandoned replica is unusable and
        # schedule its removal.
        self.pending_ibr.append(("corrupt", bid))
        self.pending_ibr.append(("deleted", bid))
        if self.cfg.genstamp_conflicts:
            self.rebuilt_genstamp.add(bid)

    # ---------------------------------------------------------- replication

    def replicate_block(self, bid: str, target: "DataNode") -> None:
        with self.rt.function("DataNode.replicate_block"):
            if bid not in self.finalized:
                return
            try:
                self.rt.lib_call(
                    "dn.repl.transfer", IOEx, self.env.rpc, target, target.receive_block,
                    bid, [], self.cfg.packets_per_block, True,
                    timeout_ms=self.cfg.pipe_rpc_timeout_ms,
                )
            except IOEx:
                self.pending_ibr.append(("corrupt", bid))

    # -------------------------------------------------------- block recovery

    def recover_block(self, bid: str) -> None:
        """Coordinate a recovery session for ``bid``.

        A session spans wall-clock time (the primary DN syncs the other
        replicas), so a recovery command arriving while a previous session
        is still open hits ``RecoveryInProgressException`` — which the
        NameNode handles by rescheduling, the retry loop H2-3 feeds on.
        """
        with self.rt.function("DataNode.recover_block"):
            in_progress = self.env.now < self.recovering_until.get(bid, -1.0)
            try:
                self.rt.throw_point("dn.rec.ioe", RecoveryInProgress, natural=in_progress)
            except RecoveryInProgress:
                self.pending_ibr.append(("corrupt", bid))
                self._reschedule_recovery(bid)
                return
            t_start = self.env.now
            attempts = 0
            ok = False
            while self.rt.loop_guard(
                "dn.rec.attempts", attempts < self.cfg.recovery_max_attempts
            ):
                attempts += 1
                self.env.spin(2.0)
                mismatch = self.rt.branch("dn.rec.b_genstamp", bid in self.rebuilt_genstamp)
                if mismatch:
                    if not self.cfg.genstamp_conflicts:
                        self.rebuilt_genstamp.discard(bid)
                    continue  # retry with a new genstamp
                ok = True
                break
            if self.env.now - t_start > self.cfg.recovery_session_lease_ms:
                # The recovery coordinator's lease expired mid-session: the
                # NameNode cannot accept the result.
                ok = False
            # The session covers the coordination work just performed plus a
            # grace period for the replica sync acknowledgements; failed
            # sessions hold the block longer (the sync is unresolved).
            grace = 4_000.0 if ok else 30_000.0
            self.recovering_until[bid] = self.env.now + grace
            try:
                self.env.rpc(self.nn, self.nn.finish_recovery, bid, ok)
            except IOEx:
                pass
            if ok and self.cfg.client_restream_on_ibr_loss:
                # Recovery truncated the replica: the writer re-streams the
                # tail (the H2-4 closing path).
                self.pending_ibr.append(("added", bid))

    def _reschedule_recovery(self, bid: str) -> None:
        def retry() -> None:
            self.recover_block(bid)

        self.env.after(self, 4_000.0, retry)

    def _delete_block(self, bid: str) -> None:
        self.finalized.discard(bid)
        self.cache.pop(bid, None)
        self.pending_ibr.append(("deleted", bid))

    # ---------------------------------------------------------- replica cache

    def cache_tick(self) -> None:
        with self.rt.function("DataNode.cache_tick"):
            full = self.rt.detector("dn.cache.is_full", len(self.cache) > self.cfg.cache_capacity)
            self.rt.branch("dn.cache.b_pressure", len(self.cache) > self.cfg.cache_capacity // 2)
            if not full:
                return
            target = max(1, int(self.cfg.cache_capacity * 0.9))
            evict = len(self.cache) - target
            victims = list(self.cache)[:evict]
            for bid in self.rt.loop("dn.cache.evict", victims):
                self.env.spin(self.cfg.cache_entry_cost_ms)
                self.cache.pop(bid, None)

    def scanner_tick(self) -> None:
        """DirectoryScanner analogue: refresh metadata cache entries for a
        quarter of the finalized replicas (cheap per entry, but it keeps the
        cache churning on replica-heavy nodes)."""
        for bid in sorted(self.finalized)[: len(self.finalized) // 4]:
            self.cache[bid] = self.env.now
            self.cache.move_to_end(bid)
            self.env.spin(0.02)

    # ------------------------------------------------------------- v3 only

    def deletion_tick(self) -> None:
        with self.rt.function("DataNode.deletion_tick"):
            batch = []
            while self.deletion_queue:
                batch.append(self.deletion_queue.popleft())
            self.rt.branch("dn3.del.b_batch", len(batch) > 8)
            for bid in self.rt.loop("dn3.del.work", batch):
                self.env.spin(0.8)
                self._delete_block(bid)

    def reconstruction_tick(self) -> None:
        with self.rt.function("DataNode.reconstruction_tick"):
            batch = []
            while self.recon_queue:
                batch.append(self.recon_queue.popleft())
            for bid in self.rt.loop("dn3.recon.work", batch):
                self.env.spin(1.5)
                sources = [
                    d
                    for n, d in sorted(self.nn.datanodes.items())
                    if n != self.name and isinstance(d, DataNode) and bid in d.finalized
                ]
                if not sources:
                    continue
                try:
                    self.rt.lib_call(
                        "dn3.recon.fetch", IOEx, self.env.rpc, sources[0],
                        sources[0].read_block, bid,
                        timeout_ms=self.cfg.recon_fetch_timeout_ms,
                    )
                except IOEx:
                    # A failed fetch invalidates the stripe group: retry the
                    # block and re-verify its neighbours.
                    self.recon_queue.append(bid)
                    group = sorted(self.nn.blocks)
                    if group:
                        start = hash(bid) % len(group)
                        for i in range(8):
                            self.recon_queue.append(group[(start + i) % len(group)])
                    continue
                self._finalize(bid)

    def read_block(self, bid: str) -> int:
        self.check_alive()
        self.env.spin(1.0)
        if bid not in self.finalized:
            raise IOEx("%s missing %s" % (self.name, bid))
        return self.cfg.packets_per_block
