"""Per-workload configuration of a MiniHDFS cluster.

Each integration test instantiates the cluster with different knobs —
exactly the config-gated conditions (IBR throttling, HA, staleness
handling, recovery, cache sizing) whose *combinations* never co-occur in a
single test, which is why the seeded cascades require causal stitching
across tests to detect (§8.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class HdfsConfig:
    version: int = 2
    n_datanodes: int = 4
    replication: int = 2

    # RPC / heartbeat / staleness (reduced timeouts per §4.2).
    rpc_timeout_ms: float = 10_000.0
    hb_rpc_timeout_ms: float = 30_000.0
    heartbeat_interval_ms: float = 3_000.0
    stale_timeout_ms: float = 15_000.0
    #: Staleness handling: re-replicate a stale DataNode's blocks.
    rereplication: bool = True
    rereplication_cap: int = 24

    # Incremental block reports.
    ibr_throttling: bool = False  # send at ibr_interval instead of every HB
    ibr_interval_ms: float = 20_000.0
    ibr_rpc_timeout_ms: float = 10_000.0
    nn_ibr_entry_cost_ms: float = 0.2
    nn_ibr_backlog_cap: int = 100_000  # small values trigger nn.ibr.overflow
    ibr_backlog_drain: int = 100_000  # backlog drained per edit-flush tick

    # Full block reports.
    fbr_interval_ms: float = 90_000.0
    fbr_rpc_timeout_ms: float = 60_000.0

    # Write pipeline.
    packets_per_block: int = 8
    pipe_rpc_timeout_ms: float = 10_000.0
    client_rebuild_pipeline: bool = True
    client_restream_on_ibr_loss: bool = False  # re-stream block if unreported
    client_report_bad_dn: bool = False  # report failed pipeline DNs to the NN

    # Block recovery.
    recovery_enabled: bool = True
    recovery_max_attempts: int = 4
    recovery_reissue_ms: float = 8_000.0  # monitor re-issues stalled recoveries
    recovery_session_lease_ms: float = 8_000.0  # coordinator lease per session
    genstamp_conflicts: bool = False  # rebuilds leave mismatched genstamps

    # Leases.
    lease_soft_ms: float = 20_000.0
    writers_renew_lease: bool = True  # False: writers abandon files

    # Edit log / HA.
    ha: bool = False
    edit_flush_interval_ms: float = 2_000.0
    edit_backlog_cap: int = 200  # exceeded backlog triggers failover
    edit_lag_cap_ms: float = 1e12  # journal lag that triggers failover (HA)
    edit_cost_ms: float = 0.3

    # Replica metadata cache.
    cache_capacity: int = 10_000
    cache_seed_entries: int = 0
    cache_tick_ms: float = 4_000.0
    cache_entry_cost_ms: float = 0.1
    #: DirectoryScanner analogue: every interval, re-insert a quarter of the
    #: finalized replicas into the metadata cache (0 disables).
    scanner_interval_ms: float = 0.0

    # HDFS 3: async event queue, deletion service, reconstruction.
    eventq_cap: int = 10_000
    deletion_tick_ms: float = 4_000.0
    reconstruction: bool = False
    recon_tick_ms: float = 5_000.0
    recon_fetch_timeout_ms: float = 10_000.0
