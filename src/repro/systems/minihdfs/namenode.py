"""MiniHDFS NameNode: block manager, report processing, leases, edit log,
replication monitor, HA failover, and (v3) the async report event queue."""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from ...errors import IOEx, NotPrimary, SafeModeException
from ...instrument.runtime import Runtime
from ...sim import Node, SimEnv
from .hconfig import HdfsConfig


class NameNode(Node):
    """The (active) NameNode.  HA failover is modelled as a short window in
    which the node rejects RPCs with ``StandbyException`` until DataNodes
    reconnect — the state is shared via the journal, so the same object
    serves as the new active afterwards."""

    def __init__(self, env: SimEnv, rt: Runtime, cfg: HdfsConfig) -> None:
        super().__init__(env, "namenode")
        self.rt = rt
        self.cfg = cfg
        self.active = True
        self.safemode = False
        self.failovers = 0
        # Block state: block id -> set of DN names holding it.
        self.blocks: Dict[str, Set[str]] = {}
        # Blocks allocated to files (expected replication).
        self.expected: Dict[str, int] = {}
        self.under_replicated: deque = deque()
        self.recovering: Set[str] = set()
        # DataNode liveness.
        self.datanodes: Dict[str, object] = {}
        self.last_heartbeat: Dict[str, float] = {}
        self.reported_bad: Set[str] = set()
        self.dead: Set[str] = set()
        # Per-DN command queues delivered on heartbeats.
        self.commands: Dict[str, List[tuple]] = {}
        # Leases: file -> (client name, expiry, last block id).
        self.leases: Dict[str, Tuple[str, float, Optional[str]]] = {}
        # Edit log.
        self.edit_buffer: List[tuple] = []
        self.edits_flushed = 0
        self.ibr_backlog = 0
        # HDFS 3: async report event queue.
        self.event_queue: deque = deque()
        self._placement_seq = 0
        self._last_flush_done = 0.0
        self.recovery_started: Dict[str, float] = {}

        env.every(self, cfg.edit_flush_interval_ms, self.flush_edits)
        env.every(self, 4_000.0, self.replication_monitor)
        env.every(self, 5_000.0, self.lease_monitor)
        if cfg.version >= 3:
            env.every(self, 1_000.0, self.dispatch_events)

    # ----------------------------------------------------------------- util

    def _log_edit(self, op: str, arg: str) -> None:
        self.edit_buffer.append((op, arg))

    def check_active(self) -> None:
        self.rt.throw_point("nn.rpc.not_primary", NotPrimary, natural=not self.active)

    def check_safemode(self) -> None:
        self.rt.throw_point("nn.safemode.ioe", SafeModeException, natural=self.safemode)

    def _failover(self) -> None:
        """Edit backlog exceeded the journal cap: the active NN is fenced.
        The standby (same shared state) takes over after a short window."""
        if not self.active:
            return
        self.active = False
        self.failovers += 1
        self.edit_buffer.clear()  # journal handed to the standby

        def take_over() -> None:
            self.active = True

        # Fencing plus standby catch-up window.
        self.env.after(self, 4_000.0, take_over)

    # ------------------------------------------------------------ rpc: dn

    def register(self, dn_name: str, node: object, block_ids: List[str]) -> None:
        self.check_alive()
        self.datanodes[dn_name] = node
        self.commands.setdefault(dn_name, [])
        self.last_heartbeat[dn_name] = self.env.now
        self.dead.discard(dn_name)
        for bid in block_ids:
            self.blocks.setdefault(bid, set()).add(dn_name)
        self.env.spin(0.5)

    def heartbeat(self, dn_name: str) -> List[tuple]:
        # Heartbeats are served by active and standby alike (HA liveness).
        self.check_alive()
        self.last_heartbeat[dn_name] = self.env.now
        queued = self.commands.get(dn_name, [])
        batch, self.commands[dn_name] = queued[:8], queued[8:]
        self.env.spin(0.1)
        return batch

    def process_ibr(self, dn_name: str, entries: List[tuple]) -> None:
        """Incremental block report (synchronous path; v3 enqueues)."""
        self.check_alive()
        self.check_active()  # a fenced NN rejects reports with StandbyException
        with self.rt.function("NameNode.process_ibr"):
            self.rt.branch("nn.ibr.b_standby", not self.active)
            # NOTE: the overflow condition is the throw point's own guard —
            # recording it as a monitor point would make natural (guard
            # true) and injected (guard false) occurrences of the throw
            # look incompatible to the §6.2 check.
            overflow = self.ibr_backlog + len(entries) > self.cfg.nn_ibr_backlog_cap
            self.rt.throw_point("nn.ibr.overflow", IOEx, natural=overflow)
            # The backlog drains at a fixed rate per edit-flush tick, so IBR
            # storms (rebuilds, corrupt-replica floods) push it over the cap.
            self.ibr_backlog += len(entries)
            for kind, bid in self.rt.loop("nn.ibr.entries", entries):
                self.env.spin(self.cfg.nn_ibr_entry_cost_ms)
                self._apply_block_event(dn_name, kind, bid)
                self._log_edit("ibr", bid)

    def _apply_block_event(self, dn_name: str, kind: str, bid: str) -> None:
        if kind == "added":
            holders = self.blocks.setdefault(bid, set())
            if dn_name in holders and bid in self.recovering:
                # Duplicate receipt of a recovering block: restart recovery
                # to be safe (the H2-4 re-recovery path).
                self._issue_recovery(bid)
            holders.add(dn_name)
        elif kind == "deleted":
            self.blocks.get(bid, set()).discard(dn_name)
        elif kind == "corrupt":
            self.blocks.get(bid, set()).discard(dn_name)
            self.under_replicated.append(bid)
            if bid in self.recovering:
                # THE BUG (H2-3): a corrupt replica during recovery blindly
                # restarts the recovery, no matter how often it failed.
                self.recovery_started[bid] = 0.0  # force immediate re-issue
                self._issue_recovery(bid)

    def process_full_report(self, dn_name: str, block_ids: List[str]) -> None:
        self.check_alive()
        with self.rt.function("NameNode.process_full_report"):
            for bid in self.rt.loop("nn.fbr.entries", block_ids):
                self.env.spin(0.05)
                self.blocks.setdefault(bid, set()).add(dn_name)

    # -------------------------------------------------------- rpc: client

    def add_block(self, file_id: str, client: str) -> Tuple[str, List[object]]:
        self.check_alive()
        self.check_active()
        self.check_safemode()
        bid = "%s#b%d" % (file_id, len(self.expected))
        self.expected[bid] = self.cfg.replication
        live = [d for n, d in sorted(self.datanodes.items()) if n not in self.dead]
        # Rotate pipeline placement across the live set (block placement
        # policy balancing).
        if live:
            start = self._placement_seq % len(live)
            live = live[start:] + live[:start]
            self._placement_seq += 1
        pipeline = live[: max(1, self.cfg.replication)]
        if not pipeline:
            raise IOEx("no datanodes available")
        self.leases[file_id] = (client, self.env.now + self.cfg.lease_soft_ms, bid)
        self._log_edit("add_block", bid)
        self.env.spin(0.3)
        return bid, pipeline

    def renew_lease(self, file_id: str, client: str) -> None:
        self.check_alive()
        lease = self.leases.get(file_id)
        if lease is not None:
            self.leases[file_id] = (client, self.env.now + self.cfg.lease_soft_ms, lease[2])

    def complete_file(self, file_id: str, bid: str) -> bool:
        """True if the last block has been reported by at least one DN."""
        self.check_alive()
        self.check_active()
        reported = bool(self.blocks.get(bid))
        if reported:
            self.leases.pop(file_id, None)
            self._log_edit("complete", file_id)
        self.env.spin(0.2)
        return reported

    def report_bad_datanode(self, dn_name: str) -> None:
        self.check_alive()
        if self.cfg.client_report_bad_dn:
            self.reported_bad.add(dn_name)

    # -------------------------------------------------------------- periodic

    def flush_edits(self) -> None:
        with self.rt.function("NameNode.flush_edits"):
            lagged = self.env.now - self._last_flush_done > self.cfg.edit_lag_cap_ms
            over = len(self.edit_buffer) > self.cfg.edit_backlog_cap
            self.rt.branch("nn.edit.b_backlog", over or lagged)
            if (over or lagged) and self.cfg.ha:
                self._failover()
                self._last_flush_done = self.env.now
                return
            flush_started = self.env.now
            batch, self.edit_buffer = self.edit_buffer, []
            for _edit in self.rt.loop("nn.edit.flush", batch):
                self.env.spin(self.cfg.edit_cost_ms)
                self.edits_flushed += 1
            self._last_flush_done = self.env.now
            self.ibr_backlog = max(0, self.ibr_backlog - self.cfg.ibr_backlog_drain)
            if self.env.now - flush_started > self.cfg.edit_lag_cap_ms and self.cfg.ha:
                # The journal fell behind by more than the failover
                # controller tolerates: the active NN gets fenced.
                self._failover()

    def replication_monitor(self) -> None:
        with self.rt.function("NameNode.replication_monitor"):
            for dn_name in sorted(self.datanodes):
                gap = self.env.now - self.last_heartbeat.get(dn_name, 0.0)
                stale = self.rt.detector(
                    "nn.dn.is_stale",
                    gap > self.cfg.stale_timeout_ms or dn_name in self.reported_bad,
                )
                if stale and self.cfg.rereplication and dn_name not in self.dead:
                    self.dead.add(dn_name)
                    hosted = [b for b, holders in self.blocks.items() if dn_name in holders]
                    for bid in hosted[: self.cfg.rereplication_cap]:
                        self.blocks[bid].discard(dn_name)
                        self.under_replicated.append(bid)
                elif not stale:
                    self.dead.discard(dn_name)
                self.reported_bad.discard(dn_name)
            # Allocated-but-unreported blocks also count as under-replicated.
            for bid, expect in self.expected.items():
                holders = self.blocks.get(bid, set())
                if 0 < len(holders) < expect:
                    self.under_replicated.append(bid)
            self.expected = {
                b: e for b, e in self.expected.items() if len(self.blocks.get(b, set())) < e
            }
            work, self.under_replicated = list(self.under_replicated), deque()
            seen: Set[str] = set()
            for bid in self.rt.loop("nn.repl.scan", work):
                self.env.spin(0.1)
                if bid in seen:
                    continue
                seen.add(bid)
                holders = self.blocks.get(bid, set())
                under = self.rt.detector(
                    "nn.block.is_under_replicated", 0 < len(holders) < self.cfg.replication
                )
                urgent = self.rt.branch("nn.repl.b_urgent", len(holders) <= 1)
                if under or urgent:
                    src = sorted(h for h in holders if h not in self.dead)
                    dst = [
                        n
                        for n in sorted(self.datanodes)
                        if n not in holders and n not in self.dead
                    ]
                    if self.cfg.reconstruction and dst:
                        self.commands[dst[0]].append(("reconstruct", bid))
                        self._log_edit("reconstruct", bid)
                    elif src and dst:
                        self.commands[src[0]].append(("replicate", bid, dst[0]))
                        self._log_edit("replicate", bid)
            # Invalidate extra replicas of over-replicated blocks.
            for bid in sorted(self.blocks):
                holders = self.blocks[bid]
                if len(holders) > self.cfg.replication:
                    extra = sorted(holders)[self.cfg.replication:]
                    for dn_name in extra:
                        holders.discard(dn_name)
                        self.commands.setdefault(dn_name, []).append(("delete", bid))
                        self._log_edit("invalidate", bid)
            # Recovery monitor: recoveries that have not concluded within
            # the re-issue timeout are issued again (the retry logic H2-3
            # and H2-4 feed on).
            for bid in sorted(self.recovering):
                started = self.recovery_started.get(bid, 0.0)
                if self.env.now - started > self.cfg.recovery_reissue_ms:
                    self._issue_recovery(bid)
                    self.recovery_started[bid] = self.env.now

    def lease_monitor(self) -> None:
        with self.rt.function("NameNode.lease_monitor"):
            for file_id in self.rt.loop("nn.lease.scan", sorted(self.leases)):
                self.env.spin(0.2)
                client, expiry, bid = self.leases[file_id]
                expired = self.rt.branch("nn.lease.b_expired", self.env.now > expiry)
                if expired:
                    del self.leases[file_id]
                    if bid is not None and self.cfg.recovery_enabled:
                        self._issue_recovery(bid)

    def _issue_recovery(self, bid: str) -> None:
        if bid not in self.recovering:
            self.recovery_started[bid] = self.env.now
        self.recovering.add(bid)
        holders = sorted(self.blocks.get(bid, set()) - self.dead)
        targets = holders or sorted(set(self.datanodes) - self.dead)
        if targets:
            queue = self.commands.setdefault(targets[0], [])
            if ("recover", bid) not in queue:
                queue.append(("recover", bid))
                self._log_edit("recover", bid)

    def finish_recovery(self, bid: str, ok: bool) -> None:
        self.check_alive()
        if ok:
            self.recovering.discard(bid)
            self.recovery_started.pop(bid, None)

    # ---------------------------------------------------------- v3: events

    def enqueue_event(self, dn_name: str, kind: str, payload: List[tuple]) -> None:
        """HDFS 3: reports are queued and handled asynchronously."""
        self.check_alive()
        saturated = self.rt.detector(
            "nn3.eventq.is_saturated", len(self.event_queue) >= self.cfg.eventq_cap
        )
        self.rt.throw_point("nn3.eventq.overflow", IOEx, natural=saturated)
        self.event_queue.append((dn_name, kind, payload))
        self.env.spin(0.05)

    def dispatch_events(self) -> None:
        with self.rt.function("NameNode.dispatch_events"):
            batch = []
            while self.event_queue:
                batch.append(self.event_queue.popleft())
            for dn_name, kind, payload in self.rt.loop("nn3.eventq.dispatch", batch):
                self.env.spin(0.2)
                self.rt.branch("nn3.eventq.b_kind", kind == "ibr")
                try:
                    if kind == "ibr":
                        self.process_ibr(dn_name, payload)
                    else:
                        self.process_full_report(dn_name, [b for _, b in payload])
                except IOEx:
                    # Async handler errors surface at a dedicated site — the
                    # extra error-handler layer HDFS 3 adds (§8.4.1).
                    try:
                        self.rt.throw_point("nn3.eventq.handler_ioe", IOEx, natural=True)
                    except IOEx:
                        pass
