"""Fault-site registries for MiniHDFS 2 and MiniHDFS 3."""

from __future__ import annotations

from ...instrument.sites import SiteRegistry


def build_registry(version: int = 2) -> SiteRegistry:
    """Declare every instrumented site of MiniHDFS ``version``."""
    system = "minihdfs%d" % version
    reg = SiteRegistry(system)

    # ------------------------------------------------------------- NameNode
    reg.loop("nn.ibr.entries", "NameNode.process_ibr", does_io=True, body_size=50)
    reg.loop("nn.fbr.entries", "NameNode.process_full_report", does_io=True, body_size=45)
    reg.loop("nn.repl.scan", "NameNode.replication_monitor", does_io=True, body_size=40)
    reg.loop("nn.lease.scan", "NameNode.lease_monitor", body_size=35)
    reg.loop("nn.edit.flush", "NameNode.flush_edits", does_io=True, body_size=30)
    # Constant-bound bookkeeping loop: excluded by the scalability analysis.
    reg.loop("nn.metrics.update", "NameNode.update_metrics", constant_bound=True, body_size=4)

    reg.throw("nn.ibr.overflow", "NameNode.process_ibr", exception="RetriableException")
    reg.throw("nn.rpc.not_primary", "NameNode.check_active", exception="StandbyException")
    reg.throw("nn.safemode.ioe", "NameNode.check_safemode", exception="SafeModeException")
    # Test-only throw: excluded by the static analyzer (§4.1).
    reg.throw("nn.test.inject_only", "NameNode.test_hook", test_only=True)

    reg.detector("nn.dn.is_stale", "NameNode.replication_monitor", error_value=True)
    reg.detector("nn.block.is_under_replicated", "NameNode.replication_monitor", error_value=True)
    # Filtered detectors (§7 rules).
    reg.detector("nn.conf.is_ha_enabled", "NameNode.__init__", final_only=True)
    reg.detector("nn.util.is_sorted", "NameNode.util", primitive_only=True)

    reg.branch("nn.ibr.b_standby", "NameNode.process_ibr")
    reg.branch("nn.repl.b_urgent", "NameNode.replication_monitor")
    reg.branch("nn.lease.b_expired", "NameNode.lease_monitor")
    reg.branch("nn.edit.b_backlog", "NameNode.flush_edits")

    # ------------------------------------------------------------- DataNode
    # BPServiceActor: one wrapper iteration per heartbeat with the command
    # and IBR-conversion loops nested inside (the Figure 5 structure).
    reg.loop("dn.bpsa.offer", "DataNode.offer_service", does_io=True, body_size=60)
    reg.loop("dn.bpsa.cmds", "DataNode.offer_service", parent="dn.bpsa.offer", order=0, body_size=30)
    reg.loop(
        "dn.ibr.convert", "DataNode.offer_service", parent="dn.bpsa.offer", order=1, body_size=25
    )
    reg.loop("dn.pipe.packets", "DataNode.receive_block", does_io=True, body_size=50)
    reg.loop("dn.rec.attempts", "DataNode.recover_block", body_size=30)
    reg.loop("dn.cache.evict", "DataNode.cache_tick", body_size=20)

    reg.lib_call("dn.hb.rpc", "DataNode.offer_service", exception="IOException")
    reg.lib_call("dn.ibr.rpc", "DataNode.offer_service", exception="IOException")
    reg.lib_call("dn.fbr.rpc", "DataNode.offer_service", exception="IOException")
    reg.lib_call("dn.repl.transfer", "DataNode.replicate_block", exception="IOException")

    reg.throw("dn.pipe.ioe", "DataNode.receive_block", exception="IOException")
    reg.throw(
        "dn.pipe.replica_exists",
        "DataNode.create_tmp",
        exception="ReplicaAlreadyExistsException",
    )
    reg.throw("dn.rec.ioe", "DataNode.recover_block", exception="RecoveryInProgressException")
    # Reflection-related: excluded by the static analyzer.
    reg.throw("dn.refl.load_class", "DataNode.load_plugin", reflection_related=True)

    reg.detector("dn.cache.is_full", "DataNode.cache_tick", error_value=True)

    reg.branch("dn.pipe.b_last_packet", "DataNode.receive_block")
    reg.branch("dn.pipe.b_downstream", "DataNode.receive_block")
    reg.branch("dn.rec.b_genstamp", "DataNode.recover_block")
    reg.branch("dn.bpsa.b_force_ibr", "DataNode.offer_service")
    reg.branch("dn.cache.b_pressure", "DataNode.cache_tick")

    # --------------------------------------------------------------- Client
    reg.loop("cli.write.retries", "DFSClient.write_block", does_io=True, body_size=35)
    reg.lib_call("cli.pipe.rpc", "DFSClient.write_block", exception="IOException")
    reg.branch("cli.write.b_abandon", "DFSClient.write_block")

    if version >= 3:
        # Async event queue on the NameNode: reports are processed by a
        # dispatcher with separate error handlers.
        reg.loop("nn3.eventq.dispatch", "NameNode.dispatch_events", does_io=True, body_size=55)
        reg.throw("nn3.eventq.handler_ioe", "NameNode.dispatch_events", exception="IOException")
        reg.throw("nn3.eventq.overflow", "NameNode.enqueue_event", exception="RetriableException")
        reg.detector("nn3.eventq.is_saturated", "NameNode.enqueue_event", error_value=True)
        reg.branch("nn3.eventq.b_kind", "NameNode.dispatch_events")
        # Block deletion service and EC-style reconstruction on DataNodes.
        reg.loop("dn3.del.work", "DataNode.deletion_tick", does_io=True, body_size=30)
        reg.loop("dn3.recon.work", "DataNode.reconstruction_tick", does_io=True, body_size=45)
        reg.lib_call("dn3.recon.fetch", "DataNode.reconstruction_tick", exception="IOException")
        reg.branch("dn3.del.b_batch", "DataNode.deletion_tick")

    return reg
