"""MiniOzone: SCM + DataNodes with container reports, pipelines, replication."""

from .build import build_system
from .sites import build_registry

__all__ = ["build_system", "build_registry"]
