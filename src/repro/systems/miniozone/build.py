"""Assemble the MiniOzone system spec."""

from __future__ import annotations

from ...types import FaultKey, InjKind
from ...workloads.ozone import ozone_workloads
from ..base import KnownBug, SystemSpec
from .sites import build_registry


def build_system() -> SystemSpec:
    spec = SystemSpec(
        name="miniozone",
        registry=build_registry(),
        source_modules=("repro.systems.miniozone.nodes", "repro.workloads.ozone"),
    )
    for workload in ozone_workloads():
        spec.add_workload(workload)
    spec.known_bugs = [
        KnownBug(
            bug_id="OZ-1",
            description=(
                "A slow container-report dispatcher saturates the SCM event "
                "queue; with requeue configured, failed dispatches (plus a "
                "resync batch) go back onto the queue the dispatcher cannot "
                "drain."
            ),
            signature="1D|0E|1N",
            core_faults=frozenset(
                {
                    FaultKey("scm.eventq.dispatch", InjKind.DELAY),
                    FaultKey("scm.eventq.dispatch_ok", InjKind.NEGATION),
                }
            ),
            alt_detectable=False,
            jira="HDDS-13020",
        ),
        KnownBug(
            bug_id="OZ-2",
            description=(
                "Slow heartbeat handling makes DataNodes look dead; their "
                "pipelines are closed, re-creation fails with too few "
                "healthy nodes, and the creation retries add yet more SCM "
                "work."
            ),
            signature="1D|0E|1N",
            core_faults=frozenset(
                {
                    FaultKey("scm.hb.updates", InjKind.DELAY),
                    FaultKey("scm.pipeline.is_healthy", InjKind.NEGATION),
                }
            ),
            alt_detectable=True,
            jira="HDDS-11856(1)",
        ),
        KnownBug(
            bug_id="OZ-3",
            description=(
                "A slow replication handler times out container pushes; the "
                "failure closes the pipeline, creation fails on the minimal "
                "cluster, and the fallback re-replication floods the "
                "replication handler."
            ),
            signature="1D|2E|0N",
            core_faults=frozenset(
                {
                    FaultKey("dn.repl.handle", InjKind.DELAY),
                    FaultKey("dn.repl.push", InjKind.EXCEPTION),
                    FaultKey("scm.pipeline.create_ioe", InjKind.EXCEPTION),
                }
            ),
            alt_detectable=False,
            jira="HDDS-11856(2)",
        ),
    ]
    return spec
