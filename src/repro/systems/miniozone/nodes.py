"""MiniOzone nodes: SCM + DataNodes + an object-store client.

OZ-1: a slow container-report dispatcher saturates the SCM event queue;
with re-queueing configured, failed dispatches go back onto the very queue
the dispatcher cannot drain.

OZ-2: slow heartbeat processing makes DataNodes look dead; pipelines over
"dead" nodes are closed and recreated, but creation fails with too few
healthy nodes, and the retries add heartbeat-handling work (self-contained
in one test — the naive single-fault strategy can trigger it, matching
Table 3's Alt ✓ for this row).

OZ-3: a slow replication handler times out container pushes; the failure
closes the pipeline, pipeline creation fails on the small cluster, and the
fallback re-replication issues yet more replication commands.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from ...errors import IOEx
from ...instrument.runtime import Runtime
from ...sim import Node, SimEnv


class OzoneConfig:
    def __init__(self, **kw: object) -> None:
        self.n_datanodes = 4
        self.hb_interval_ms = 3_000.0
        self.hb_rpc_timeout_ms = 30_000.0
        self.dead_timeout_ms = 15_000.0
        self.dispatch_tick_ms = 1_500.0
        self.event_cost_ms = 0.4
        self.eventq_saturation = 60  # queue length that fails dispatch
        self.eventq_requeue = False  # re-queue failed dispatches
        self.requeue_resync = 15  # resync events re-queued per failure
        self.pipeline_tick_ms = 4_000.0
        self.pipeline_size = 3
        self.repl_tick_ms = 3_000.0
        self.repl_push_timeout_ms = 10_000.0
        self.repl_cost_ms = 2.0
        self.fallback_replication = False  # re-replicate when pipelines fail
        self.fallback_batch = 20
        self.repl_trickle = 0  # synthetic under-replicated containers per tick
        self.pipeline_rotation_ms = 0.0  # rotate (close+recreate) pipelines
        self.rereport_batch = 25  # container re-reports after pipeline create
        self.report_batch = 12  # containers reported per heartbeat
        for key, value in kw.items():
            if not hasattr(self, key):
                raise TypeError("unknown OzoneConfig option %r" % key)
            setattr(self, key, value)


class SCM(Node):
    """Storage Container Manager."""

    def __init__(self, env: SimEnv, rt: Runtime, cfg: OzoneConfig) -> None:
        super().__init__(env, "scm")
        self.rt = rt
        self.cfg = cfg
        self.datanodes: List["OzoneDN"] = []
        self.last_heartbeat: Dict[str, float] = {}
        self.event_queue: deque = deque()
        self.pipelines: List[List[str]] = []
        self.commands: Dict[str, List[tuple]] = {}
        self.under_replicated: deque = deque()
        self.dispatched = 0
        self.pipeline_failures = 0
        self._last_rotation = 0.0
        self._trickle_seq = 0
        self.suspects: Dict[str, float] = {}
        # The SCM is multi-threaded: the report dispatcher and the monitors
        # run on their own executors, so a backlogged heartbeat handler
        # does not starve them (each thread is its own busy-until node).
        self.dispatch_thread = Node(env, "scm#dispatch")
        self.monitor_thread = Node(env, "scm#monitor")
        env.every(self.dispatch_thread, cfg.dispatch_tick_ms, self.dispatch_tick)
        env.every(self.monitor_thread, cfg.pipeline_tick_ms, self.pipeline_tick)
        env.every(self.monitor_thread, cfg.repl_tick_ms, self.replication_tick)

    # ------------------------------------------------------------ rpc: dn

    def process_heartbeat(
        self, dn_name: str, reports: List[tuple], sent_at: float
    ) -> List[tuple]:
        self.check_alive()
        with self.rt.function("SCM.process_heartbeat"):
            # The liveness map only reflects this heartbeat once its
            # processing *completes* — a backlogged handler thread updates
            # it late, which is exactly what the monitors then see.
            def mark_seen() -> None:
                self.last_heartbeat[dn_name] = max(
                    self.last_heartbeat.get(dn_name, 0.0), sent_at
                )

            self.env.schedule_at(self.env.now + 0.1, self.monitor_thread, mark_seen)
            for report in self.rt.loop("scm.hb.updates", reports):
                self.env.spin(0.3)
                self.enqueue_report(report)
            queued = self.commands.get(dn_name, [])
            batch, self.commands[dn_name] = queued[:6], queued[6:]
            return batch

    def enqueue_report(self, report: tuple) -> None:
        self.rt.throw_point(
            "scm.eventq.overflow", IOEx, natural=len(self.event_queue) > 100_000
        )
        self.event_queue.append(report)

    def report_replication_failure(self, container: str) -> None:
        """A container push failed: close its pipeline, mark the pushing
        node suspect, and let the pipeline monitor re-create (so every
        creation goes through the same code path)."""
        self.check_alive()
        self.pipeline_failures += 1
        if self.pipelines:
            members = self.pipelines.pop(0)
            if members:
                self.suspects[members[0]] = self.env.now + 20_000.0

    # -------------------------------------------------------------- periodic

    def dispatch_tick(self) -> None:
        """Drain the container-report event queue (OZ-1's delayed task)."""
        with self.rt.function("SCM.dispatch_tick"):
            batch = []
            while self.event_queue and len(batch) < 20:
                batch.append(self.event_queue.popleft())
            for report in self.rt.loop("scm.eventq.dispatch", batch):
                self.env.spin(self.cfg.event_cost_ms)
                ok = self.rt.detector(
                    "scm.eventq.dispatch_ok",
                    len(self.event_queue) <= self.cfg.eventq_saturation,
                )
                if not ok:
                    requeue = self.rt.branch(
                        "scm.eventq.b_requeue", self.cfg.eventq_requeue
                    )
                    if requeue:
                        # THE BUG (OZ-1): the failed event goes back onto
                        # the queue, plus a resync batch to be safe.
                        self.event_queue.append(report)
                        for i in range(self.cfg.requeue_resync):
                            self.event_queue.append(("resync", "%s#%d" % (report[1], i)))
                    continue
                self.dispatched += 1

    def _healthy(self) -> List[str]:
        return [
            dn.name
            for dn in self.datanodes
            if not dn.crashed
            and self.env.now - self.last_heartbeat.get(dn.name, 0.0)
            <= self.cfg.dead_timeout_ms
            and self.env.now >= self.suspects.get(dn.name, 0.0)
        ]

    def create_pipeline(self, exclude: int = 0) -> None:
        """Open a new Ratis pipeline over healthy DataNodes."""
        healthy = self._healthy()[exclude:]
        self.rt.throw_point(
            "scm.pipeline.create_ioe", IOEx, natural=len(healthy) < self.cfg.pipeline_size
        )
        members = healthy[: self.cfg.pipeline_size]
        self.pipelines.append(members)
        for name in members:
            # Ratis members re-report their containers on pipeline changes.
            self.commands.setdefault(name, []).append(("rereport",))
        self.env.spin(1.0)

    def pipeline_tick(self) -> None:
        with self.rt.function("SCM.pipeline_tick"):
            healthy = set(self._healthy())
            for dn in self.datanodes:
                self.rt.detector("scm.dn.is_dead", dn.name not in healthy)
            keep: List[List[str]] = []
            for pipe in self.rt.loop("scm.pipeline.scan", list(self.pipelines)):
                self.env.spin(0.5)
                is_healthy = self.rt.detector(
                    "scm.pipeline.is_healthy", all(n in healthy for n in pipe)
                )
                if is_healthy:
                    keep.append(pipe)
            self.pipelines = keep
            if (
                self.cfg.pipeline_rotation_ms > 0
                and self.env.now - self._last_rotation > self.cfg.pipeline_rotation_ms
                and self.pipelines
            ):
                self._last_rotation = self.env.now
                self.pipelines.pop(0)  # retire the oldest pipeline
            self.rt.branch("scm.pipeline.b_open", len(self.pipelines) >= 2)
            while len(self.pipelines) < 2:
                try:
                    self.create_pipeline()
                except IOEx:
                    if self.cfg.fallback_replication:
                        # Cannot open a pipeline: spread the data through
                        # existing ones instead, and resync members.
                        for i in range(self.cfg.fallback_batch):
                            self.under_replicated.append("pipe-fb%d" % i)
                        for dn in self.datanodes:
                            self.commands.setdefault(dn.name, []).append(("rereport",))
                    break

    def replication_tick(self) -> None:
        with self.rt.function("SCM.replication_tick"):
            for _ in range(self.cfg.repl_trickle):
                self._trickle_seq += 1
                self.under_replicated.append("maint-c%d" % self._trickle_seq)
            work, self.under_replicated = list(self.under_replicated), deque()
            for i, container in enumerate(self.rt.loop("scm.repl.scan", work)):
                self.env.spin(0.3)
                self.rt.branch("scm.repl.b_urgent", len(work) > 20)
                live = [dn for dn in self.datanodes if not dn.crashed]
                if len(live) >= 2:
                    # Container placement pivots on the first node (it holds
                    # the most replicas), alternating push direction.
                    other = live[1 + i % (len(live) - 1)]
                    src, dst = (live[0], other) if i % 2 == 0 else (other, live[0])
                    self.commands.setdefault(src.name, []).append(
                        ("replicate", container, dst.name)
                    )


class OzoneDN(Node):
    def __init__(self, env: SimEnv, rt: Runtime, scm: SCM, cfg: OzoneConfig, index: int) -> None:
        super().__init__(env, "ozdn%d" % index)
        self.rt = rt
        self.scm = scm
        self.cfg = cfg
        self.containers: Dict[str, int] = {}
        self.repl_queue: deque = deque()
        self._rereport = 0
        scm.datanodes.append(self)
        scm.commands[self.name] = []
        scm.last_heartbeat[self.name] = 0.0
        env.every(self, cfg.hb_interval_ms, self.heartbeat_tick, jitter_ms=60.0)
        env.every(self, cfg.repl_tick_ms, self.replication_tick, jitter_ms=50.0)

    # -------------------------------------------------------------- periodic

    def heartbeat_tick(self) -> None:
        with self.rt.function("OzoneDN.heartbeat_tick"):
            extra = min(self._rereport, len(self.containers))
            self._rereport -= extra
            todo = sorted(self.containers)[-(self.cfg.report_batch + extra):]
            reports = []
            for cid in self.rt.loop("dn.report.build", todo):
                self.env.spin(0.05)
                reports.append(("container", cid))
            try:
                commands = self.rt.rpc_call(
                    "dn.hb.rpc", IOEx, self.env.rpc, self.scm,
                    self.scm.process_heartbeat, self.name, reports, self.env.now,
                    timeout_ms=self.cfg.hb_rpc_timeout_ms,
                )
            except IOEx:
                return
            for cmd in self.rt.loop("dn.hb.cmds", commands):
                self.env.spin(0.3)
                if cmd[0] == "replicate":
                    self.repl_queue.append((cmd[1], cmd[2]))
                elif cmd[0] == "rereport":
                    self._rereport = self.cfg.rereport_batch

    def replication_tick(self) -> None:
        """Handle queued replication commands (OZ-3's delayed task)."""
        with self.rt.function("OzoneDN.replication_tick"):
            batch = []
            while self.repl_queue:
                batch.append(self.repl_queue.popleft())
            for container, dst_name in self.rt.loop("dn.repl.handle", batch):
                self.env.spin(self.cfg.repl_cost_ms)
                dst = next((d for d in self.scm.datanodes if d.name == dst_name), None)
                if dst is None:
                    continue
                try:
                    self.rt.lib_call(
                        "dn.repl.push", IOEx, self.env.rpc, dst, dst.receive_container,
                        container, timeout_ms=self.cfg.repl_push_timeout_ms,
                    )
                except IOEx:
                    retry = self.rt.branch("dn.repl.b_retry", True)
                    if retry:
                        self.env.send(
                            self.scm, self.scm.report_replication_failure, container
                        )

    # ------------------------------------------------------------ rpc target

    def receive_container(self, container: str) -> None:
        self.check_alive()
        self.containers[container] = self.containers.get(container, 0) + 1
        self.env.spin(1.5)

    def write_chunk(self, container: str, n: int) -> None:
        self.check_alive()
        with self.rt.function("OzoneDN.write_chunk"):
            full = len(self.containers) > 50_000
            self.rt.throw_point("dn.container.ioe", IOEx, natural=full)
            self.containers[container] = self.containers.get(container, 0) + n
            self.env.spin(0.2 * n)


class OzoneClient(Node):
    def __init__(
        self,
        env: SimEnv,
        rt: Runtime,
        scm: SCM,
        index: int,
        keys_per_tick: int = 4,
        interval_ms: float = 3_000.0,
    ) -> None:
        super().__init__(env, "ozclient%d" % index)
        self.rt = rt
        self.scm = scm
        self.keys_per_tick = keys_per_tick
        self._seq = 0
        env.every(self, interval_ms, self.write_tick, jitter_ms=100.0)

    def write_tick(self) -> None:
        with self.rt.function("OzoneClient.write_tick"):
            for _ in self.rt.loop("cli.keys.write", range(self.keys_per_tick)):
                self._seq += 1
                pipes = self.scm.pipelines
                if not pipes:
                    continue
                pipe = pipes[self._seq % len(pipes)]
                if not pipe:
                    continue
                target = next(
                    (d for d in self.scm.datanodes if d.name == pipe[0]), None
                )
                if target is None:
                    continue
                container = "c%d" % (self._seq % 40)
                try:
                    self.rt.lib_call(
                        "cli.scm.rpc", IOEx, self.env.rpc, target,
                        target.write_chunk, container, 2,
                    )
                except IOEx:
                    pass
