"""Fault-site registry for MiniOzone."""

from __future__ import annotations

from ...instrument.sites import SiteRegistry


def build_registry() -> SiteRegistry:
    reg = SiteRegistry("miniozone")

    # SCM: event queue, heartbeat processing, pipelines, replication.
    reg.loop("scm.eventq.dispatch", "SCM.dispatch_tick", does_io=True, body_size=50)
    reg.loop("scm.hb.updates", "SCM.process_heartbeat", body_size=35)
    reg.loop("scm.pipeline.scan", "SCM.pipeline_tick", body_size=40)
    reg.loop("scm.repl.scan", "SCM.replication_tick", does_io=True, body_size=45)
    reg.detector("scm.eventq.dispatch_ok", "SCM.dispatch_tick", error_value=False)
    reg.detector("scm.pipeline.is_healthy", "SCM.pipeline_tick", error_value=False)
    reg.detector("scm.dn.is_dead", "SCM.pipeline_tick", error_value=True)
    reg.throw("scm.pipeline.create_ioe", "SCM.create_pipeline", exception="SCMException")
    reg.throw("scm.eventq.overflow", "SCM.enqueue_report", exception="EventQueueFullException")
    reg.branch("scm.eventq.b_requeue", "SCM.dispatch_tick")
    reg.branch("scm.pipeline.b_open", "SCM.pipeline_tick")
    reg.branch("scm.repl.b_urgent", "SCM.replication_tick")

    # DataNodes.
    reg.loop("dn.hb.cmds", "OzoneDN.heartbeat_tick", body_size=30)
    reg.loop("dn.repl.handle", "OzoneDN.replication_tick", does_io=True, body_size=45)
    reg.loop("dn.report.build", "OzoneDN.heartbeat_tick", body_size=25)
    reg.lib_call("dn.hb.rpc", "OzoneDN.heartbeat_tick", exception="IOException")
    reg.lib_call("dn.repl.push", "OzoneDN.replication_tick", exception="IOException")
    reg.throw("dn.container.ioe", "OzoneDN.write_chunk", exception="StorageContainerException")
    reg.branch("dn.repl.b_retry", "OzoneDN.replication_tick")
    # Filtered examples.
    reg.loop("dn.metrics.flush", "OzoneDN.update_metrics", constant_bound=True, body_size=3)
    reg.detector("dn.conf.is_ratis", "OzoneDN.__init__", final_only=True)
    reg.throw("scm.sec.cert_check", "SCM.check_cert", security_related=True)

    # Client.
    reg.loop("cli.keys.write", "OzoneClient.write_tick", does_io=True, body_size=30)
    reg.lib_call("cli.scm.rpc", "OzoneClient.write_tick", exception="IOException")

    return reg
