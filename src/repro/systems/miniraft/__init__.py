"""MiniRaft: a Raft-style consensus target for the detection pipeline."""

from .build import build_system

__all__ = ["build_system"]
