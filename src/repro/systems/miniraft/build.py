"""Assemble the MiniRaft system spec."""

from __future__ import annotations

from ...faults import EnvFaultPort
from ...types import FaultKey, InjKind
from ...workloads.raft import raft_workloads
from ..base import KnownBug, SystemSpec
from .sites import build_registry

#: The three Raft peers and their pairwise links — the system's injectable
#: environment surface (crash / partition / msg_drop fault targets).
ENV_PORT = EnvFaultPort(
    nodes=("raft0", "raft1", "raft2"),
    links=(("raft0", "raft1"), ("raft0", "raft2"), ("raft1", "raft2")),
)


def build_system() -> SystemSpec:
    spec = SystemSpec(
        name="miniraft", version="3", registry=build_registry(), env_port=ENV_PORT,
        source_modules=("repro.systems.miniraft.nodes", "repro.workloads.raft"),
    )
    for workload in raft_workloads():
        spec.add_workload(workload)
    spec.known_bugs = [
        KnownBug(
            bug_id="RAFT-1",
            description=(
                "A slow follower apply loop times out the leader's "
                "AppendEntries RPC; with resend-on-timeout configured the "
                "leader rolls next_index back a whole window, so the "
                "follower re-applies entries it already has."
            ),
            signature="1D|1E|0N",
            core_faults=frozenset(
                {
                    FaultKey("flw.append.apply", InjKind.DELAY),
                    FaultKey("ldr.append.rpc", InjKind.EXCEPTION),
                }
            ),
            alt_detectable=True,
        ),
        KnownBug(
            bug_id="RAFT-2",
            description=(
                "Slow AppendEntries application defers follower heartbeats "
                "until the election-timeout detector trips; the election "
                "makes the new leader re-send a conservative catch-up "
                "window to every peer — more apply work, later heartbeats, "
                "further elections."
            ),
            signature="1D|0E|1N",
            core_faults=frozenset(
                {
                    FaultKey("flw.append.apply", InjKind.DELAY),
                    FaultKey("flw.election.timed_out", InjKind.NEGATION),
                }
            ),
            alt_detectable=True,
        ),
        KnownBug(
            bug_id="RAFT-3",
            description=(
                "When the quorum detector reports lost quorum, the resync "
                "fallback distrusts every match_index and re-sends a resync "
                "window to all followers; the duplicated apply work delays "
                "the very acks the detector is waiting for."
            ),
            signature="1D|0E|1N",
            core_faults=frozenset(
                {
                    FaultKey("flw.append.apply", InjKind.DELAY),
                    FaultKey("ldr.quorum.has", InjKind.NEGATION),
                }
            ),
            alt_detectable=True,
        ),
        KnownBug(
            bug_id="RAFT-4",
            description=(
                "A slow snapshot install times out the leader's "
                "InstallSnapshot RPC; with snapshot retry configured the "
                "next tick restarts the transfer from chunk zero and the "
                "follower installs the same chunks again."
            ),
            signature="1D|1E|0N",
            core_faults=frozenset(
                {
                    FaultKey("flw.snap.chunks", InjKind.DELAY),
                    FaultKey("ldr.snap.rpc", InjKind.EXCEPTION),
                }
            ),
            alt_detectable=True,
        ),
        KnownBug(
            bug_id="RAFT-5",
            description=(
                "Election livelock under a healed partition: with "
                "reconnect catch-up configured, a leader that hears from "
                "a peer after a silence window re-queues a whole catch-up "
                "window; the catch-up work delays heartbeats until the "
                "election-timeout detector trips, and every fresh leader "
                "treats all peers as reconnecting — more catch-up work, "
                "later heartbeats, further elections.  Only environment "
                "fault injection (a partition cut-and-heal) exposes the "
                "triggering disturbance."
            ),
            signature="1D|0E|1N",
            core_faults=frozenset(
                {
                    FaultKey("ldr.reconnect.catchup", InjKind.DELAY),
                    FaultKey("flw.election.timed_out", InjKind.NEGATION),
                }
            ),
            trigger_faults=frozenset(
                {
                    FaultKey(ENV_PORT.link_site_id(a, b), InjKind("partition"))
                    for a, b in ENV_PORT.links
                }
            ),
            alt_detectable=False,
        ),
        KnownBug(
            bug_id="RAFT-6",
            description=(
                "Restart catch-up probe livelock: with restart probes "
                "configured, a restarted follower verifies a digest window "
                "against the leader; a lost probe reply makes it distrust "
                "the digest and grow the window, so the next probe asks "
                "the leader to scan even more — scan work that pushes the "
                "probe round trip past its own timeout.  Only a partition "
                "overlapping a crash-restart (a composed fault schedule) "
                "creates the triggering reply loss; no single fault covers "
                "both the restart and the silence."
            ),
            signature="1D|1E|0N",
            core_faults=frozenset(
                {
                    FaultKey("ldr.probe.scan", InjKind.DELAY),
                    FaultKey("flw.probe.rpc", InjKind.EXCEPTION),
                }
            ),
            trigger_faults=frozenset(
                {
                    FaultKey(ENV_PORT.node_site_id(n), InjKind("partition_during_restart"))
                    for n in ENV_PORT.nodes
                }
            ),
            alt_detectable=False,
        ),
    ]
    return spec
