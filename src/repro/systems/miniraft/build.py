"""Assemble the MiniRaft system spec."""

from __future__ import annotations

from ...types import FaultKey, InjKind
from ...workloads.raft import raft_workloads
from ..base import KnownBug, SystemSpec
from .sites import build_registry


def build_system() -> SystemSpec:
    spec = SystemSpec(name="miniraft", version="1", registry=build_registry())
    for workload in raft_workloads():
        spec.add_workload(workload)
    spec.known_bugs = [
        KnownBug(
            bug_id="RAFT-1",
            description=(
                "A slow follower apply loop times out the leader's "
                "AppendEntries RPC; with resend-on-timeout configured the "
                "leader rolls next_index back a whole window, so the "
                "follower re-applies entries it already has."
            ),
            signature="1D|1E|0N",
            core_faults=frozenset(
                {
                    FaultKey("flw.append.apply", InjKind.DELAY),
                    FaultKey("ldr.append.rpc", InjKind.EXCEPTION),
                }
            ),
            alt_detectable=True,
        ),
        KnownBug(
            bug_id="RAFT-2",
            description=(
                "Slow AppendEntries application defers follower heartbeats "
                "until the election-timeout detector trips; the election "
                "makes the new leader re-send a conservative catch-up "
                "window to every peer — more apply work, later heartbeats, "
                "further elections."
            ),
            signature="1D|0E|1N",
            core_faults=frozenset(
                {
                    FaultKey("flw.append.apply", InjKind.DELAY),
                    FaultKey("flw.election.timed_out", InjKind.NEGATION),
                }
            ),
            alt_detectable=True,
        ),
        KnownBug(
            bug_id="RAFT-3",
            description=(
                "When the quorum detector reports lost quorum, the resync "
                "fallback distrusts every match_index and re-sends a resync "
                "window to all followers; the duplicated apply work delays "
                "the very acks the detector is waiting for."
            ),
            signature="1D|0E|1N",
            core_faults=frozenset(
                {
                    FaultKey("flw.append.apply", InjKind.DELAY),
                    FaultKey("ldr.quorum.has", InjKind.NEGATION),
                }
            ),
            alt_detectable=True,
        ),
        KnownBug(
            bug_id="RAFT-4",
            description=(
                "A slow snapshot install times out the leader's "
                "InstallSnapshot RPC; with snapshot retry configured the "
                "next tick restarts the transfer from chunk zero and the "
                "follower installs the same chunks again."
            ),
            signature="1D|1E|0N",
            core_faults=frozenset(
                {
                    FaultKey("flw.snap.chunks", InjKind.DELAY),
                    FaultKey("ldr.snap.rpc", InjKind.EXCEPTION),
                }
            ),
            alt_detectable=True,
        ),
    ]
    return spec
