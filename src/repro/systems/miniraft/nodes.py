"""MiniRaft nodes: a Raft-style replicated log on the virtual-time substrate.

Three peers run leader election, log replication (AppendEntries with
per-follower ``next_index`` bookkeeping), and snapshot install for lagging
followers.  A client appends commands to whichever node currently leads.
The consensus loops are exactly the retry/election feedback paths the
paper targets:

RAFT-1 (append retry storm): a slow follower apply loop times out the
leader's AppendEntries RPC; with resend-on-timeout configured, the leader
rolls ``next_index`` back a whole resend window, so the follower re-applies
entries it already has — which is what made it slow.

RAFT-2 (election-timeout livelock): slow AppendEntries application defers
the follower's next heartbeat until its node drains, the election-timeout
detector trips, and the ensuing election makes the new leader re-send a
conservative catch-up window to every peer — more apply work, later
heartbeats, further elections.

RAFT-3 (quorum resync storm): when the leader's quorum detector reports
lost quorum, the resync fallback distrusts every ``match_index`` and
re-sends a resync window to all followers; the duplicated apply work
delays the very acks the quorum detector is waiting for.

RAFT-4 (snapshot install churn): a slow snapshot install times out the
leader's InstallSnapshot RPC; with snapshot retry configured the next tick
restarts the transfer from chunk zero, and the follower installs the same
chunks again.

RAFT-5 (post-partition catch-up livelock): with reconnect catch-up
configured, a leader that hears from a peer again after a silence window
distrusts its replication bookkeeping and re-queues a catch-up window
(the ``ldr.reconnect.catchup`` loop).  A healed partition is the natural
trigger: the catch-up work makes the leader late with heartbeats, the
election-timeout detector trips, and the fresh leader — which treats
*every* peer as reconnecting — queues even more catch-up work.

RAFT-6 (restart catch-up probe livelock): with restart probes configured,
a freshly restarted follower asks the leader to verify a digest window of
its log before trusting it (``flw.probe.rpc`` against the leader's
``ldr.probe.scan``).  When the probe reply is lost, the follower
distrusts the digest and *grows* the window, so the next probe asks the
leader to scan even more — scan work that pushes the probe round trip
past its own timeout.  Only a partition overlapping a crash-restart (a
composed fault schedule) makes the reply loss last long enough to
compound; no single fault covers both the restart and the silence.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...errors import IOEx
from ...instrument.runtime import Runtime
from ...sim import Node, SimEnv


class RaftConfig:
    def __init__(self, **kw: object) -> None:
        self.n_nodes = 3
        self.heartbeat_interval_ms = 2_000.0  # leader replicate tick
        self.election_tick_ms = 4_000.0  # follower timeout check period
        self.election_timeout_ms = 600_000.0  # elections off unless tightened
        self.append_rpc_timeout_ms = 10_000.0
        self.vote_rpc_timeout_ms = 8_000.0
        self.snap_rpc_timeout_ms = 10_000.0
        self.apply_cost_ms = 0.8  # per-entry cost in the follower apply loop
        self.commit_cost_ms = 0.2  # per-entry state-machine apply cost
        self.max_batch = 12  # entries per AppendEntries
        self.preload_entries = 40  # log entries present at cluster build
        self.resend_on_timeout = False  # roll next_index back on append timeout
        self.resend_window = 30  # entries re-sent per timeout when enabled
        self.quorum_window_ms = 600_000.0  # ack recency the quorum detector wants
        self.quorum_resync = False  # re-send a window to all peers on lost quorum
        self.resync_batch = 25  # entries re-sent per follower per resync
        self.reconnect_catchup = False  # re-send a window to peers seen after silence
        self.reconnect_silence_ms = 6_000.0  # ack gap that counts as a reconnect
        self.reconnect_window = 25  # entries re-queued per reconnecting peer
        self.catchup_cost_ms = 0.4  # per-entry cost of building the catch-up resend
        self.leader_catchup = 30  # window a fresh leader re-sends to every peer
        self.snapshot_threshold = 10_000  # follower lag that triggers a snapshot
        self.snapshot_chunks = 10
        self.chunk_cost_ms = 1.5  # per-chunk install cost on the follower
        self.snapshot_retry = False  # restart failed snapshot transfers
        self.flaky_follower = -1  # index of a follower that wipes its disk
        self.flaky_restart_ms = 0.0  # wipe period (0 = never)
        self.restart_probe = False  # verify a digest window after restart
        self.probe_interval_ms = 5_000.0  # probe tick period while backlogged
        self.probe_window = 8  # digest entries verified per probe
        self.probe_window_growth = 6  # window growth on a lost probe reply
        self.probe_max_window = 64  # backlog cap
        self.probe_cost_ms = 30.0  # per-entry digest cost on the follower
        self.probe_scan_cost_ms = 120.0  # per-entry scan cost on the leader
        self.probe_rpc_timeout_ms = 8_000.0
        for key, value in kw.items():
            if not hasattr(self, key):
                raise TypeError("unknown RaftConfig option %r" % key)
            setattr(self, key, value)


class RaftNode(Node):
    """One Raft peer: follower, candidate, or leader."""

    def __init__(self, env: SimEnv, rt: Runtime, cfg: RaftConfig, index: int) -> None:
        super().__init__(env, "raft%d" % index)
        self.rt = rt
        self.cfg = cfg
        self.index = index
        self.peers: List["RaftNode"] = []  # every *other* node, set by build
        self.role = "follower"
        self.term = 1
        self.voted_for: Dict[int, str] = {}  # term -> candidate name
        self.log: List[Tuple[int, str]] = []
        self.commit_index = 0
        self.last_applied = 0
        self.snap_index = 0  # log prefix replaced by a snapshot
        self.last_leader_contact = 0.0
        # Leader-side bookkeeping (meaningful only while leading).
        self.next_index: Dict[str, int] = {}
        self.match_index: Dict[str, int] = {}
        self.last_ack: Dict[str, float] = {}
        self.elections_started = 0
        self.append_timeouts = 0
        self.snapshots_sent = 0
        self.probe_backlog = 0  # digest entries still to verify post-restart
        self._register_ticks()

    def _register_ticks(self) -> None:
        """Periodic behaviour; re-registered after a crash-restart (the
        crash dropped the pending tail of every ``env.every`` chain)."""
        env, cfg = self.env, self.cfg
        env.every(self, cfg.heartbeat_interval_ms, self.replicate_tick, jitter_ms=40.0)
        env.every(self, cfg.election_tick_ms, self.election_tick, jitter_ms=80.0 * (self.index + 1))
        if cfg.flaky_follower == self.index and cfg.flaky_restart_ms > 0:
            env.every(self, cfg.flaky_restart_ms, self.wipe_disk)
        if cfg.restart_probe:
            env.every(self, cfg.probe_interval_ms, self.restart_probe_tick, jitter_ms=60.0)

    def on_restart(self) -> None:
        """Crash recovery: come back as a follower with fresh liveness
        bookkeeping (the log itself is durable in this model)."""
        self.role = "follower"
        self.last_leader_contact = self.env.now
        if self.cfg.restart_probe:
            self.probe_backlog = self.cfg.probe_window
        self._register_ticks()

    # ------------------------------------------------------------- helpers

    def quorum(self) -> int:
        return (len(self.peers) + 1) // 2 + 1

    def become_follower(self, term: int) -> None:
        self.term = term
        self.role = "follower"

    def become_leader(self) -> None:
        """Won an election: reconcile followers conservatively.

        A fresh leader does not trust the old leader's ``match_index``
        bookkeeping, so it re-sends a catch-up window to every peer — the
        RAFT-2 feedback path (each election creates apply work, which
        delays heartbeats, which invites the next election).
        """
        self.role = "leader"
        for peer in self.peers:
            self.next_index[peer.name] = max(
                self.snap_index, len(self.log) - self.cfg.leader_catchup
            )
            self.match_index[peer.name] = 0
            # With reconnect catch-up configured, a fresh leader has no ack
            # history to trust, so every peer's first ack reads as a
            # reconnect — the RAFT-5 feedback path (each election queues a
            # catch-up window per peer).
            self.last_ack[peer.name] = (
                -1.0e12 if self.cfg.reconnect_catchup else self.env.now
            )

    # -------------------------------------------------------------- client

    def client_append(self, cmd: str) -> int:
        self.check_alive()
        with self.rt.function("RaftNode.client_append"):
            self.rt.throw_point(
                "ldr.append.not_leader", IOEx, natural=self.role != "leader"
            )
            self.rt.throw_point(
                "flw.log.full_ioe", IOEx, natural=len(self.log) > 100_000
            )
            self.log.append((self.term, cmd))
            self.env.spin(0.2)
            return len(self.log)

    # ------------------------------------------------------------- leading

    def replicate_tick(self) -> None:
        """Leader heartbeat: AppendEntries (or InstallSnapshot) per peer."""
        if self.role != "leader":
            return
        with self.rt.function("RaftNode.replicate_tick"):
            for peer in self.rt.loop("ldr.append.peers", list(self.peers)):
                lagging = self.rt.detector(
                    "ldr.peer.is_lagging",
                    len(self.log) - self.next_index.get(peer.name, 0)
                    > self.cfg.snapshot_threshold,
                )
                if lagging:
                    self._send_snapshot(peer)
                    continue
                self._send_entries(peer)
            self._advance_commit()
            ok = self.rt.detector("ldr.quorum.has", self._quorum_fresh())
            if not ok:
                resync = self.rt.branch("ldr.quorum.b_resync", self.cfg.quorum_resync)
                if resync:
                    # THE BUG (RAFT-3): distrust every match_index and
                    # re-send a resync window to all followers.
                    for peer in self.peers:
                        self.next_index[peer.name] = max(
                            self.snap_index,
                            self.next_index.get(peer.name, 0) - self.cfg.resync_batch,
                        )

    def _send_entries(self, peer: "RaftNode") -> None:
        start = self.next_index.get(peer.name, len(self.log))
        batch: List[Tuple[int, str]] = []
        for entry in self.rt.loop("ldr.batch.build", self.log[start : start + self.cfg.max_batch]):
            self.env.spin(0.05)
            batch.append(entry)
        try:
            term, ok, match = self.rt.rpc_call(
                "ldr.append.rpc", IOEx, self.env.rpc, peer, peer.handle_append,
                self.term, self.name, start, batch, self.commit_index,
                timeout_ms=self.cfg.append_rpc_timeout_ms,
            )
        except IOEx:
            self.append_timeouts += 1
            retry = self.rt.branch("ldr.append.b_retry", self.cfg.resend_on_timeout)
            if retry:
                # THE BUG (RAFT-1): the ack was lost, not the work — rolling
                # next_index back a whole window re-sends entries the
                # follower has already applied.
                self.next_index[peer.name] = max(
                    self.snap_index, start - self.cfg.resend_window
                )
            return
        if term > self.term:
            self.become_follower(term)
            return
        gap = self.env.now - self.last_ack.get(peer.name, self.env.now)
        self.last_ack[peer.name] = self.env.now
        if ok:
            self.match_index[peer.name] = match
            self.next_index[peer.name] = match
            reconnect = self.rt.branch(
                "ldr.reconnect.b_catchup",
                self.cfg.reconnect_catchup and gap > self.cfg.reconnect_silence_ms,
            )
            if reconnect:
                # THE BUG (RAFT-5): the peer answered after a silence
                # window (healed partition, drained backlog, restart), so
                # its match bookkeeping is distrusted and a whole catch-up
                # window is re-queued — work the peer already applied.
                start_over = max(self.snap_index, match - self.cfg.reconnect_window)
                for _ in self.rt.loop(
                    "ldr.reconnect.catchup", self.log[start_over:match]
                ):
                    self.env.spin(self.cfg.catchup_cost_ms)
                self.next_index[peer.name] = start_over
        else:
            self.next_index[peer.name] = match  # follower told us where it is

    def _send_snapshot(self, peer: "RaftNode") -> None:
        self.snapshots_sent += 1
        try:
            self.rt.rpc_call(
                "ldr.snap.rpc", IOEx, self.env.rpc, peer, peer.install_snapshot,
                self.term, self.name, self.commit_index,
                timeout_ms=self.cfg.snap_rpc_timeout_ms,
            )
        except IOEx:
            retry = self.rt.branch("ldr.snap.b_retry", self.cfg.snapshot_retry)
            if retry:
                return  # THE BUG (RAFT-4): next tick restarts from chunk 0
            # Without retry, probe with entries from the snapshot point on.
            self.next_index[peer.name] = self.commit_index
            return
        self.next_index[peer.name] = self.commit_index
        self.last_ack[peer.name] = self.env.now

    def _advance_commit(self) -> None:
        matches = sorted(
            [self.match_index.get(p.name, 0) for p in self.peers] + [len(self.log)]
        )
        majority = matches[len(matches) // 2]
        if majority > self.commit_index:
            self.commit_index = majority

    def _quorum_fresh(self) -> bool:
        fresh = 1  # the leader counts itself
        for peer in self.peers:
            if self.env.now - self.last_ack.get(peer.name, 0.0) <= self.cfg.quorum_window_ms:
                fresh += 1
        return fresh >= self.quorum()

    # ----------------------------------------------------------- rpc target

    def handle_append(
        self, term: int, leader: str, start: int, entries: List[Tuple[int, str]], commit: int
    ) -> Tuple[int, bool, int]:
        self.check_alive()
        with self.rt.function("RaftNode.handle_append"):
            if term < self.term:
                return (self.term, False, len(self.log))
            if term > self.term or self.role != "follower":
                self.become_follower(term)
            # Receipt-time stamping: a backlogged apply loop leaves the
            # *next* heartbeat deferred behind busy_until, which is what the
            # election-timeout detector eventually sees.
            self.last_leader_contact = max(self.last_leader_contact, self.env.now)
            if start > len(self.log):
                return (self.term, False, len(self.log))  # gap: leader backs up
            for i, entry in enumerate(self.rt.loop("flw.append.apply", entries)):
                self.env.spin(self.cfg.apply_cost_ms)
                pos = start + i
                if pos < len(self.log):
                    self.log[pos] = entry  # duplicate delivery: overwrite
                else:
                    self.log.append(entry)
            newly_committed = min(commit, len(self.log)) - self.last_applied
            if newly_committed > 0:
                for _ in self.rt.loop("flw.commit.apply", range(newly_committed)):
                    self.env.spin(self.cfg.commit_cost_ms)
                self.last_applied += newly_committed
            self.commit_index = max(self.commit_index, min(commit, len(self.log)))
            return (self.term, True, len(self.log))

    def handle_vote(self, term: int, candidate: str, cand_log: int) -> Tuple[int, bool]:
        self.check_alive()
        with self.rt.function("RaftNode.handle_vote"):
            if term > self.term:
                self.become_follower(term)
            up_to_date = cand_log >= len(self.log)
            grant = self.rt.branch(
                "flw.vote.b_grant",
                term >= self.term and up_to_date and self.voted_for.get(term) is None,
            )
            if grant:
                self.voted_for[term] = candidate
                self.last_leader_contact = self.env.now  # reset the timer
            self.env.spin(0.2)
            return (self.term, grant)

    def install_snapshot(self, term: int, leader: str, snap_index: int) -> Tuple[int, bool]:
        self.check_alive()
        with self.rt.function("RaftNode.install_snapshot"):
            if term < self.term:
                return (self.term, False)
            self.last_leader_contact = max(self.last_leader_contact, self.env.now)
            for _ in self.rt.loop("flw.snap.chunks", range(self.cfg.snapshot_chunks)):
                self.env.spin(self.cfg.chunk_cost_ms)
            if snap_index > len(self.log):
                self.log = [(term, "snap")] * snap_index
            self.snap_index = snap_index
            self.commit_index = max(self.commit_index, snap_index)
            self.last_applied = max(self.last_applied, snap_index)
            return (self.term, True)

    def handle_probe(self, term: int, window: int) -> Tuple[int, bool]:
        """Leader side of the restart catch-up probe: verify ``window``
        digest entries against the authoritative log."""
        self.check_alive()
        with self.rt.function("RaftNode.handle_probe"):
            for _ in self.rt.loop("ldr.probe.scan", range(window)):
                self.env.spin(self.cfg.probe_scan_cost_ms)
            return (self.term, True)

    def compact_log_legacy(self) -> int:
        """Pre-snapshot log compaction, superseded by install_snapshot.

        Dead code: no workload path or peer RPC calls it anymore, but its
        instrumented loop (``ldr.compact.scan``) is still in the site
        registry — exactly the situation the code-slice reachability
        analysis exists for.  The analyzer proves the site unreachable
        from every workload entry point and prunes its faults from the
        space instead of spending injection budget on experiments that
        cannot perturb any run.
        """
        removed = 0
        for _ in self.rt.loop("ldr.compact.scan", range(max(0, self.snap_index))):
            self.env.spin(self.cfg.chunk_cost_ms)
            removed += 1
        return removed

    # ------------------------------------------------------------ elections

    def election_tick(self) -> None:
        """Follower-side liveness check; trips an election when stale."""
        if self.role == "leader":
            return
        with self.rt.function("RaftNode.election_tick"):
            timed_out = self.rt.detector(
                "flw.election.timed_out",
                self.env.now - self.last_leader_contact > self.cfg.election_timeout_ms,
            )
            if timed_out:
                self.start_election()

    def start_election(self) -> None:
        with self.rt.function("RaftNode.start_election"):
            self.elections_started += 1
            self.term += 1
            self.role = "candidate"
            self.voted_for[self.term] = self.name
            votes = 1
            for peer in self.rt.loop("cand.vote.requests", list(self.peers)):
                self.env.spin(0.3)
                try:
                    term, granted = self.rt.lib_call(
                        "cand.vote.rpc", IOEx, self.env.rpc, peer, peer.handle_vote,
                        self.term, self.name, len(self.log),
                        timeout_ms=self.cfg.vote_rpc_timeout_ms,
                    )
                except IOEx:
                    continue
                if term > self.term:
                    self.become_follower(term)
                    return
                if granted:
                    votes += 1
            won = self.rt.branch("cand.b_won", votes >= self.quorum())
            if won:
                self.become_leader()
            else:
                self.role = "follower"
                self.last_leader_contact = self.env.now  # back off before retrying

    # -------------------------------------------------------- restart probe

    def restart_probe_tick(self) -> None:
        """Post-restart digest verification against the current leader.

        A restarted follower does not trust its durable log until the
        leader has confirmed a digest window of it.  A confirmed probe
        clears the backlog; a lost reply (or a leaderless cluster) makes
        the follower distrust the digest and *grow* the window.
        """
        if self.probe_backlog <= 0 or self.role == "leader":
            return
        with self.rt.function("RaftNode.restart_probe_tick"):
            window = min(self.probe_backlog, self.cfg.probe_max_window)
            for _ in self.rt.loop("flw.restart.probe", range(window)):
                self.env.spin(self.cfg.probe_cost_ms)
            leader = next((p for p in self.peers if p.role == "leader"), None)
            if leader is None:
                self.probe_backlog = min(
                    self.cfg.probe_max_window,
                    self.probe_backlog + self.cfg.probe_window_growth,
                )
                return
            try:
                self.rt.lib_call(
                    "flw.probe.rpc", IOEx, self.env.rpc, leader, leader.handle_probe,
                    self.term, window, timeout_ms=self.cfg.probe_rpc_timeout_ms,
                )
            except IOEx:
                # THE BUG (RAFT-6): the reply was lost, not the log — but
                # the digest is distrusted and the window *grows*, so the
                # next probe asks the leader to scan even more.
                self.probe_backlog = min(
                    self.cfg.probe_max_window,
                    self.probe_backlog + self.cfg.probe_window_growth,
                )
                return
            self.probe_backlog = 0

    # ---------------------------------------------------------- flaky disk

    def wipe_disk(self) -> None:
        """Crash-recover cycle of a follower with a bad disk: the log is
        lost, so the leader must ship a snapshot to catch it back up."""
        if self.role != "follower":
            return
        with self.rt.function("RaftNode.wipe_disk"):
            self.log = []
            self.snap_index = 0
            self.commit_index = 0
            self.last_applied = 0


class RaftClient(Node):
    """Client appending command batches to whichever node leads."""

    def __init__(
        self,
        env: SimEnv,
        rt: Runtime,
        nodes: List[RaftNode],
        index: int,
        cmds_per_tick: int = 3,
        interval_ms: float = 3_000.0,
    ) -> None:
        super().__init__(env, "raftcli%d" % index)
        self.rt = rt
        self.nodes = nodes
        self.cmds_per_tick = cmds_per_tick
        self._seq = 0
        env.every(self, interval_ms, self.submit_tick, jitter_ms=100.0)

    def submit_tick(self) -> None:
        with self.rt.function("RaftClient.submit_tick"):
            leader = next((n for n in self.nodes if n.role == "leader"), None)
            for _ in self.rt.loop("cli.cmd.submit", range(self.cmds_per_tick)):
                self._seq += 1
                if leader is None:
                    continue
                try:
                    self.rt.lib_call(
                        "cli.submit.rpc", IOEx, self.env.rpc, leader,
                        leader.client_append, "c%d" % self._seq,
                    )
                except IOEx:
                    leader = None  # stop hammering a dead/demoted leader
