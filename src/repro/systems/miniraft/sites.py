"""Fault-site registry for MiniRaft."""

from __future__ import annotations

from ...instrument.sites import SiteRegistry


def build_registry() -> SiteRegistry:
    reg = SiteRegistry("miniraft")

    # Leader: replication fan-out, quorum tracking, snapshot shipping.
    reg.loop("ldr.append.peers", "RaftNode.replicate_tick", does_io=True, body_size=45)
    reg.loop(
        "ldr.batch.build", "RaftNode.replicate_tick",
        parent="ldr.append.peers", order=0, body_size=20,
    )
    reg.lib_call("ldr.append.rpc", "RaftNode.replicate_tick", exception="SocketTimeoutException")
    reg.lib_call("ldr.snap.rpc", "RaftNode.replicate_tick", exception="SocketTimeoutException")
    reg.detector("ldr.quorum.has", "RaftNode.replicate_tick", error_value=False)
    reg.detector("ldr.peer.is_lagging", "RaftNode.replicate_tick", error_value=True)
    reg.throw("ldr.append.not_leader", "RaftNode.client_append", exception="NotLeaderException")
    reg.branch("ldr.append.b_retry", "RaftNode.replicate_tick")
    reg.branch("ldr.quorum.b_resync", "RaftNode.replicate_tick")
    reg.branch("ldr.snap.b_retry", "RaftNode.replicate_tick")
    reg.loop(
        "ldr.reconnect.catchup", "RaftNode.replicate_tick",
        parent="ldr.append.peers", order=1, body_size=25,
    )
    reg.branch("ldr.reconnect.b_catchup", "RaftNode.replicate_tick")

    # Followers: log application, snapshot install, election liveness.
    reg.loop("flw.append.apply", "RaftNode.handle_append", body_size=40)
    reg.loop("flw.commit.apply", "RaftNode.handle_append", body_size=15)
    reg.loop("flw.snap.chunks", "RaftNode.install_snapshot", body_size=35)
    reg.detector("flw.election.timed_out", "RaftNode.election_tick", error_value=True)
    reg.throw("flw.log.full_ioe", "RaftNode.client_append", exception="LogFullException")
    reg.branch("flw.vote.b_grant", "RaftNode.handle_vote")

    # Restart catch-up probes (follower digest loop, probe RPC, leader scan).
    reg.loop("flw.restart.probe", "RaftNode.restart_probe_tick", does_io=True, body_size=30)
    reg.lib_call("flw.probe.rpc", "RaftNode.restart_probe_tick", exception="SocketTimeoutException")
    reg.loop("ldr.probe.scan", "RaftNode.handle_probe", does_io=True, body_size=28)

    # Candidates.
    reg.loop("cand.vote.requests", "RaftNode.start_election", does_io=True, body_size=30)
    reg.lib_call("cand.vote.rpc", "RaftNode.start_election", exception="SocketTimeoutException")
    reg.branch("cand.b_won", "RaftNode.start_election")

    # Client.
    reg.loop("cli.cmd.submit", "RaftClient.submit_tick", does_io=True, body_size=25)
    reg.lib_call("cli.submit.rpc", "RaftClient.submit_tick", exception="SocketTimeoutException")

    # Dead code: compact_log_legacy has no callers, so the code-slice
    # reachability analysis excludes this site from the fault space.
    reg.loop("ldr.compact.scan", "RaftNode.compact_log_legacy", does_io=True, body_size=12)

    # Filtered examples (excluded by the static analyzer's §4.1/§7 rules).
    reg.loop("ldr.metrics.flush", "RaftNode.update_metrics", constant_bound=True, body_size=3)
    reg.detector("flw.conf.is_voter", "RaftNode.__init__", final_only=True)
    reg.throw("raft.sec.cert_check", "RaftNode.check_cert", security_related=True)

    return reg
