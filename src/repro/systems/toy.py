"""A small instrumented client/server system used by the quickstart example,
the integration tests, and the overhead microbenchmark.

The "pingpong" system has one server, a few workers heartbeating to it, and
clients sending write batches.  It contains two genuine self-sustaining
cascade bugs:

* **TOY-1** (1D|1E|0N): a slow server request-processing loop times out
  client RPCs; clients with retry enabled re-send, growing the server's
  batch — which is what slowed it down in the first place.  The two halves
  of the cycle need *different* workload conditions (big batches to trigger
  timeouts; retry-enabled clients to trigger re-sends), split across the
  ``toy.big_batches`` and ``toy.retry_clients`` tests.
* **TOY-2** (1D|0E|1N): the same slow processing loop delays worker
  heartbeats until the server's staleness detector trips; the server then
  enqueues re-replication requests for the "lost" worker, growing the
  processing loop again.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import IOEx, RpcTimeout
from ..faults import EnvFaultPort
from ..instrument.runtime import Runtime
from ..instrument.sites import SiteRegistry
from ..sim import Node, SimEnv
from ..types import FaultKey, InjKind
from .base import KnownBug, SystemSpec, WorkloadSpec

SYSTEM = "toy"


def build_registry() -> SiteRegistry:
    reg = SiteRegistry(SYSTEM)
    reg.loop("toy.server.process_batch", "ToyServer.process_tick", does_io=True, body_size=40)
    reg.loop("toy.client.send_loop", "ToyClient.send_batch", does_io=True, body_size=30)
    reg.loop("toy.worker.cmd_loop", "ToyWorker.heartbeat", body_size=20)
    reg.lib_call("toy.client.rpc_call", "ToyClient.send_one", exception="SocketTimeoutException")
    reg.throw("toy.server.queue_full", "ToyServer.handle_request", exception="RetriableException")
    reg.detector("toy.server.is_stale", "ToyServer.check_workers", error_value=True)
    reg.branch("toy.server.b_is_write", "ToyServer.process_tick")
    reg.branch("toy.client.b_retryable", "ToyClient.send_batch")
    reg.branch("toy.server.b_over_cap", "ToyServer.handle_request")
    return reg


REGISTRY = build_registry()


class ToyServer(Node):
    """Server with a request queue, periodic batch processing, and a
    worker-staleness monitor that re-replicates lost workers' data."""

    def __init__(
        self,
        env: SimEnv,
        rt: Runtime,
        queue_cap: int = 400,
        process_interval_ms: float = 2_000.0,
        per_request_cost_ms: float = 2.0,
        stale_timeout_ms: float = 15_000.0,
        rereplication_batch: int = 12,
    ) -> None:
        super().__init__(env, "server")
        self.rt = rt
        self.queue: List[tuple] = []
        self.queue_cap = queue_cap
        self.per_request_cost_ms = per_request_cost_ms
        self.stale_timeout_ms = stale_timeout_ms
        self.rereplication_batch = rereplication_batch
        self.last_heartbeat: dict = {}
        self.processed = 0
        env.every(self, process_interval_ms, self.process_tick)
        # The worker monitor runs on its own thread (separate executor), so
        # a busy request processor cannot starve it.
        self.monitor_thread = Node(env, "server#monitor")
        env.every(self.monitor_thread, 5_000.0, self.check_workers)

    # ----------------------------------------------------------- rpc targets

    def handle_request(self, kind: str, payload: int) -> str:
        with self.rt.function("ToyServer.handle_request"):
            self.check_alive()
            over = len(self.queue) >= self.queue_cap
            self.rt.branch("toy.server.b_over_cap", over)
            self.rt.throw_point("toy.server.queue_full", IOEx, natural=over)
            self.queue.append((kind, payload))
            self.env.spin(0.2)
            return "ack"

    def heartbeat(self, worker: str) -> List[str]:
        self.check_alive()
        # The liveness map reflects the heartbeat only once its processing
        # completes (a backlogged handler thread updates it late).
        seen_at = self.env.now

        def mark() -> None:
            self.last_heartbeat[worker] = max(
                self.last_heartbeat.get(worker, 0.0), seen_at
            )

        self.env.schedule_at(seen_at + 0.1, self.monitor_thread, mark)
        return []

    # -------------------------------------------------------------- periodic

    def process_tick(self) -> None:
        with self.rt.function("ToyServer.process_tick"):
            batch, self.queue = self.queue, []
            for kind, _payload in self.rt.loop("toy.server.process_batch", batch):
                self.rt.branch("toy.server.b_is_write", kind == "write")
                self.env.spin(self.per_request_cost_ms)
                self.processed += 1

    def check_workers(self) -> None:
        with self.rt.function("ToyServer.check_workers"):
            for worker, seen in sorted(self.last_heartbeat.items()):
                stale = self.rt.detector(
                    "toy.server.is_stale", self.env.now - seen > self.stale_timeout_ms
                )
                if stale:
                    # Re-replicate the lost worker's data: feeds the
                    # processing loop (the TOY-2 feedback path).
                    for i in range(self.rereplication_batch):
                        self.queue.append(("write", i))
                    self.last_heartbeat[worker] = self.env.now  # reset until next miss
            # Ensure the monitor sees registered workers from the start.
            for worker in [n.name for n in self.env.nodes if n.name.startswith("worker")]:
                self.last_heartbeat.setdefault(worker, 0.0)


class ToyWorker(Node):
    """Worker heartbeating to the server and executing returned commands."""

    def __init__(self, env: SimEnv, rt: Runtime, server: ToyServer, index: int,
                 heartbeat_interval_ms: float = 3_000.0) -> None:
        super().__init__(env, "worker-%d" % index)
        self.rt = rt
        self.server = server
        env.every(self, heartbeat_interval_ms, self.heartbeat, jitter_ms=50.0)

    def heartbeat(self) -> None:
        with self.rt.function("ToyWorker.heartbeat"):
            try:
                commands = self.env.rpc(self.server, self.server.heartbeat, self.name)
            except (RpcTimeout, IOEx):
                return  # missed heartbeat; the server's detector notices
            for _cmd in self.rt.loop("toy.worker.cmd_loop", commands):
                self.env.spin(1.0)


class ToyClient(Node):
    """Client sending periodic write batches, optionally retrying failures."""

    def __init__(
        self,
        env: SimEnv,
        rt: Runtime,
        server: ToyServer,
        index: int,
        batch_size: int = 5,
        interval_ms: float = 4_000.0,
        retry: bool = False,
        rpc_timeout_ms: Optional[float] = None,
    ) -> None:
        super().__init__(env, "client-%d" % index)
        self.rt = rt
        self.server = server
        self.batch_size = batch_size
        self.retry = retry
        self.rpc_timeout_ms = rpc_timeout_ms
        self.pending: List[tuple] = []
        self.sent = 0
        self.failed = 0
        env.every(self, interval_ms, self.send_batch, jitter_ms=100.0)

    def _next_batch(self) -> List[tuple]:
        batch = self.pending
        self.pending = []
        batch.extend(("write", i) for i in range(self.batch_size))
        return batch

    def send_batch(self) -> None:
        with self.rt.function("ToyClient.send_batch"):
            for req in self.rt.loop("toy.client.send_loop", self._next_batch()):
                try:
                    self.send_one(req)
                    self.sent += 1
                except IOEx:
                    self.failed += 1
                    if self.rt.branch("toy.client.b_retryable", self.retry):
                        self.pending.append(req)

    def send_one(self, req: tuple) -> None:
        with self.rt.function("ToyClient.send_one"):
            self.rt.lib_call(
                "toy.client.rpc_call",
                RpcTimeout,
                self.env.rpc,
                self.server,
                self.server.handle_request,
                req[0],
                req[1],
                timeout_ms=self.rpc_timeout_ms,
            )


# --------------------------------------------------------------------- tests


def _wl_big_batches(env: SimEnv, rt: Runtime) -> None:
    """Heavy write workload: big batches, impatient clients, no retry.

    Server-processing delay makes client RPCs time out here (first half of
    TOY-1) and delays worker heartbeats into staleness (first half of
    TOY-2); with retry disabled, timeouts do not feed back.
    """
    server = ToyServer(env, rt, per_request_cost_ms=3.0)
    for i in range(2):
        ToyWorker(env, rt, server, i)
    for i in range(2):
        ToyClient(env, rt, server, i, batch_size=25, interval_ms=3_000.0, retry=False)


def _wl_retry_clients(env: SimEnv, rt: Runtime) -> None:
    """Durability test: tiny batches, patient clients with retry enabled.

    An injected send failure is retried, growing the server batch (second
    half of TOY-1); batches are too small for delay to cause timeouts.
    """
    server = ToyServer(
        env, rt, process_interval_ms=5_000.0, stale_timeout_ms=600_000.0,
        rereplication_batch=0,
    )
    for i in range(2):
        ToyWorker(env, rt, server, i)
    for i in range(2):
        ToyClient(
            env, rt, server, i, batch_size=1, interval_ms=20_000.0, retry=True,
            rpc_timeout_ms=120_000.0,
        )


def _wl_balancer(env: SimEnv, rt: Runtime) -> None:
    """Worker-failure drill: staleness handling under a light write load.

    An injected staleness negation triggers re-replication, growing the
    processing loop (second half of TOY-2).
    """
    server = ToyServer(env, rt, stale_timeout_ms=600_000.0, rereplication_batch=20)
    for i in range(3):
        ToyWorker(env, rt, server, i)
    ToyClient(env, rt, server, 0, batch_size=2, interval_ms=5_000.0, retry=False,
              rpc_timeout_ms=60_000.0)


def _wl_idle(env: SimEnv, rt: Runtime) -> None:
    """Smoke test: one client, one worker, little load (low coverage)."""
    server = ToyServer(env, rt, stale_timeout_ms=600_000.0, rereplication_batch=0)
    ToyWorker(env, rt, server, 0)
    ToyClient(env, rt, server, 0, batch_size=1, interval_ms=10_000.0, retry=False,
              rpc_timeout_ms=60_000.0)


TOY1_FAULTS = frozenset(
    {
        FaultKey("toy.client.send_loop", InjKind.DELAY),
        FaultKey("toy.client.rpc_call", InjKind.EXCEPTION),
    }
)
TOY2_FAULTS = frozenset(
    {
        FaultKey("toy.server.process_batch", InjKind.DELAY),
        FaultKey("toy.server.is_stale", InjKind.NEGATION),
    }
)


#: Injectable environment surface: a crashable worker plus the links a
#: partition or datagram loss can disturb (worker heartbeats and client
#: traffic both cross the server links).
ENV_PORT = EnvFaultPort(
    nodes=("worker-0", "worker-1"),
    links=(("server", "worker-0"), ("server", "client-0")),
)


def build_system() -> SystemSpec:
    spec = SystemSpec(
        name=SYSTEM, registry=REGISTRY, env_port=ENV_PORT,
        source_modules=("repro.systems.toy",),
    )
    spec.add_workload(WorkloadSpec("toy.big_batches", _wl_big_batches.__doc__ or "", _wl_big_batches))
    spec.add_workload(
        WorkloadSpec("toy.retry_clients", _wl_retry_clients.__doc__ or "", _wl_retry_clients)
    )
    spec.add_workload(WorkloadSpec("toy.balancer", _wl_balancer.__doc__ or "", _wl_balancer))
    spec.add_workload(WorkloadSpec("toy.idle", _wl_idle.__doc__ or "", _wl_idle))
    spec.known_bugs = [
        KnownBug(
            bug_id="TOY-1",
            description="send-loop delay -> client timeout -> retry storm -> bigger send loop",
            signature="1D|1E|0N",
            core_faults=TOY1_FAULTS,
        ),
        KnownBug(
            bug_id="TOY-2",
            description="processing delay -> worker marked stale -> re-replication -> more processing",
            signature="1D|0E|1N",
            core_faults=TOY2_FAULTS,
        ),
    ]
    return spec
