"""Shared value types for the CSnake reproduction.

Everything downstream (instrumentation, fault causality analysis, budget
allocation, beam search) speaks in terms of the small frozen types defined
here: fault sites, fault keys, local program states, and causal edge types.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple


class SiteKind(enum.Enum):
    """Static classification of an instrumented program location."""

    THROW = "throw"  # explicit ``throw`` guarded by an if-statement
    LIB_CALL = "lib_call"  # invocation of a library function that may throw
    LOOP = "loop"  # workload-related loop (contention injection target)
    DETECTOR = "detector"  # boolean-returning system-specific error detector
    BRANCH = "branch"  # monitor point only (never injected)
    ENV_NODE = "env_node"  # environment site: one crashable cluster node
    ENV_LINK = "env_link"  # environment site: one severable node-pair link


class _InjKindMeta(type):
    """Iteration/len over the registered kinds, mirroring the old enum."""

    def __iter__(cls):
        return iter(cls._interned.values())

    def __len__(cls) -> int:
        return len(cls._interned)


class InjKind(metaclass=_InjKindMeta):
    """A fault kind: the manifestation a :class:`FaultKey` injects/observes.

    Formerly a closed three-member enum; now an *open*, interned handle so
    new fault models (``repro.faults``) can register kinds without editing
    this module.  Interning preserves the enum ergonomics the rest of the
    framework relies on: ``InjKind("delay") is InjKind.DELAY``, identity
    comparisons, hashing, pickling across process boundaries, and
    ``list(InjKind)`` iteration all behave as before.  ``InjKind(value)``
    raises ``ValueError`` for unregistered kinds, exactly like the enum
    did — deserializing a fault kind no registered model understands fails
    loudly instead of fabricating a handle.
    """

    __slots__ = ("value",)

    _interned: Dict[str, "InjKind"] = {}

    def __new__(cls, value: "str | InjKind") -> "InjKind":
        if isinstance(value, InjKind):
            return value
        try:
            return cls._interned[value]
        except KeyError:
            raise ValueError(
                "%r is not a registered fault kind (known: %s)"
                % (value, ", ".join(cls._interned) or "-")
            ) from None

    @classmethod
    def _intern(cls, value: str) -> "InjKind":
        """Register (or fetch) the kind handle for ``value``.

        Only :mod:`repro.faults` (and this module, for the three paper
        kinds) should call this — a kind without a fault model behind it
        cannot be planned, armed, or serialized.
        """
        inst = cls._interned.get(value)
        if inst is None:
            inst = object.__new__(cls)
            inst.value = value
            cls._interned[value] = inst
        return inst

    @property
    def name(self) -> str:  # enum-compatible spelling
        return self.value.upper()

    def __reduce__(self):
        # Unpickle to the interned instance so `is` comparisons survive
        # process boundaries and deepcopies.
        return (InjKind, (self.value,))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<InjKind.%s: %r>" % (self.name, self.value)


#: The three paper kinds, interned eagerly so ``InjKind.EXCEPTION`` works
#: without importing the fault-model registry.
InjKind.EXCEPTION = InjKind._intern("exception")  # one-time throw at a THROW/LIB_CALL site
InjKind.DELAY = InjKind._intern("delay")  # per-iteration spinning delay at a LOOP site
InjKind.NEGATION = InjKind._intern("negation")  # negated return value at a DETECTOR site


class EdgeType(enum.Enum):
    """Causal relationship types between faults (Table 1 of the paper)."""

    E_D = "E(D)"  # delay injection -> additional exception/negation
    SP_D = "S+(D)"  # delay injection -> additional delay (loop count up)
    E_I = "E(I)"  # exception/negation injection -> exception/negation
    SP_I = "S+(I)"  # exception/negation injection -> additional delay
    ICFG = "ICFG"  # delay propagates from a nested loop to its parent
    CFG = "CFG"  # parent-loop delay propagates to a following sibling


#: Edge types whose *destination* fault is a delay (loop) fault.
DELAY_EDGE_TYPES = frozenset({EdgeType.SP_D, EdgeType.SP_I, EdgeType.ICFG, EdgeType.CFG})


#: Primary fault kind injected at each site kind.  Seeded with the paper's
#: three kinds; fault models registered through :mod:`repro.faults` extend
#: it (a site kind may host several models — e.g. partition *and*
#: message-drop faults on one link site — but exactly one is primary).
_PRIMARY_KIND_FOR_SITE: Dict[SiteKind, InjKind] = {
    SiteKind.THROW: InjKind.EXCEPTION,
    SiteKind.LIB_CALL: InjKind.EXCEPTION,
    SiteKind.LOOP: InjKind.DELAY,
    SiteKind.DETECTOR: InjKind.NEGATION,
}


def register_primary_kind(site_kind: SiteKind, kind: InjKind) -> None:
    """Declare ``kind`` the primary fault kind of ``site_kind`` (first
    registration wins; called by the fault-model registry)."""
    _PRIMARY_KIND_FOR_SITE.setdefault(site_kind, kind)


def inj_kind_for_site(kind: SiteKind) -> InjKind:
    """Map a site kind to the primary fault kind injected there."""
    try:
        return _PRIMARY_KIND_FOR_SITE[kind]
    except KeyError:
        raise ValueError(
            "site kind %s is monitor-only and cannot be injected" % kind
        ) from None


@dataclass(frozen=True)
class FaultKey:
    """Identity of a fault: an injectable site plus its manifestation kind.

    A loop site manifests as a :data:`InjKind.DELAY` fault, a throw site as
    an :data:`InjKind.EXCEPTION`, a detector site as a
    :data:`InjKind.NEGATION`.  The same key is used whether the fault is
    injected or observed as an interference, which is what lets the beam
    search stitch an observation in one test to an injection in another.
    """

    site_id: str
    kind: InjKind

    def __lt__(self, other: "FaultKey") -> bool:
        return (self.site_id, self.kind.value) < (other.site_id, other.kind.value)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        try:  # the model's signature letter (C/P/X for environment kinds)
            from .faults import model_for

            char = model_for(self.kind).char
        except Exception:
            char = self.kind.value[0].upper()
        return "%s@%s" % (char, self.site_id)


@dataclass(frozen=True)
class LocalState:
    """Approximate path constraint attached to a fault occurrence (§6.2).

    ``call_stack`` holds the closest two call-stack levels above the fault's
    enclosing function (2-call-site sensitivity).  ``branch_trace`` holds the
    branch sites and outcomes evaluated *locally* — within the enclosing loop
    iteration if the fault sits in a loop, otherwise within the enclosing
    function invocation.
    """

    call_stack: Tuple[str, ...]
    branch_trace: Tuple[Tuple[str, bool], ...]

    def matches(self, other: "LocalState") -> bool:
        """Exact-match comparison used by the local compatibility check."""
        return self.call_stack == other.call_stack and self.branch_trace == other.branch_trace


#: A fault occurrence may be seen under several local states in one test
#: (e.g. a loop executes under different call stacks); compatibility holds
#: if *any* pair of states matches (the paper's "any loop iteration" rule).
StateSet = FrozenSet[LocalState]


def states_compatible(a: StateSet, b: StateSet) -> bool:
    """True if some state in ``a`` matches some state in ``b``.

    Empty state sets (possible for derived ICFG/CFG edges whose parent loop
    never recorded a state) are treated as wildcard-compatible, matching the
    paper's conservative stance for delay faults.
    """
    if not a or not b:
        return True
    if len(b) < len(a):
        a, b = b, a
    return any(state in b for state in a)


@dataclass(frozen=True)
class CausalEdge:
    """A counterfactual causal relationship ``src -> dst`` found in one test.

    ``src_states`` is the local state recorded when the *injection* fired;
    ``dst_states`` is the local state recorded at the additional fault.  Both
    are needed: stitching ``e1`` to ``e2`` compares ``e1.dst_states`` against
    ``e2.src_states``.
    """

    src: FaultKey
    dst: FaultKey
    etype: EdgeType
    test_id: str
    src_states: StateSet = field(default=frozenset())
    dst_states: StateSet = field(default=frozenset())

    def key(self) -> Tuple[FaultKey, FaultKey, str, str]:
        """Deduplication key, totally orderable (states are derived from
        the same run, so they are not part of the identity)."""
        return (self.src, self.dst, self.etype.value, self.test_id)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "%s -%s-> %s [%s]" % (self.src, self.etype.value, self.dst, self.test_id)


@dataclass(frozen=True)
class LoopMeta:
    """Static metadata for a loop site, used by the scalability analysis
    (§4.1) and the nested/consecutive-loop causality expansion (§4.3)."""

    parent: Optional[str] = None  # site id of the enclosing loop, if nested
    order: int = 0  # position among siblings under the same parent
    constant_bound: bool = False  # iteration count provably constant
    does_io: bool = False  # loop body performs I/O
    body_size: int = 10  # code reachable from the loop body (rank proxy)


@dataclass(frozen=True)
class DetectorMeta:
    """Static metadata for a boolean error-detector site (§7 filters)."""

    error_value: bool = True  # which return value indicates an error
    final_only: bool = False  # return computed only from final/config vars
    constant_return: bool = False  # provably constant return value
    unused_return: bool = False  # return value never used by callers
    primitive_only: bool = False  # pure utility predicate over primitives


@dataclass(frozen=True)
class EnvMeta:
    """Static metadata for an environment fault site.

    Environment sites are not program locations: they name a piece of the
    simulated world — one crashable node or one severable link — that an
    environment-level fault model (``repro.faults.environment``) can
    disturb.  Exactly one of ``node`` / ``link`` is set.
    """

    node: Optional[str] = None  # node name, for ENV_NODE sites
    link: Optional[Tuple[str, str]] = None  # sorted node-name pair, for ENV_LINK sites


@dataclass(frozen=True)
class ThrowMeta:
    """Static metadata for a throw / library-call site (§4.1 filters)."""

    exception: str = "IOException"
    reflection_related: bool = False
    security_related: bool = False
    test_only: bool = False  # only reachable from test code
