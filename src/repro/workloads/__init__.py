"""Per-system integration-test workload suites.

Each module defines the workloads of one target system; the condition
combinations (configs, cluster sizes, traffic mixes) are deliberately
split across tests so that the seeded cascades require causal stitching.
"""
