"""Integration-test workloads for MiniDFS."""

from __future__ import annotations

from typing import List

from ..instrument.runtime import Runtime
from ..sim import SimEnv
from ..systems.base import WorkloadSpec
from ..systems.minidfs.nodes import DfsClient, DfsConfig, DfsNode


def build_cluster(env: SimEnv, rt: Runtime, cfg: DfsConfig) -> List[DfsNode]:
    """Deterministic bootstrap: ``nn0`` is master, datanodes ``dn0..dnN``
    are registered standbys; the preload blocks are placed round-robin at
    the configured replication factor and the namespace already knows
    every placement (no registration storm at t=0)."""
    nn0 = DfsNode(env, rt, cfg, "nn0", 0)
    dns = [DfsNode(env, rt, cfg, "dn%d" % i, i + 1) for i in range(cfg.n_datanodes)]
    nodes = [nn0] + dns
    for node in nodes:
        node.peers = [p for p in nodes if p is not node]
    for block in range(cfg.preload_blocks):
        for r in range(cfg.replication_factor):
            dn = dns[(block + r) % len(dns)]
            dn.replicas.add(block)
            nn0.block_map.setdefault(block, set()).add(dn.name)
    for dn in dns:
        dn.registered = True
        nn0.last_dn_heartbeat[dn.name] = 0.0
    return nodes


def wl_write(env: SimEnv, rt: Runtime) -> None:
    """Steady ingest: two clients allocating and writing blocks through a
    healthy master (baseline coverage of the allocate + pipeline path)."""
    cfg = DfsConfig()
    nodes = build_cluster(env, rt, cfg)
    for i in range(2):
        DfsClient(env, rt, nodes, i, writes_per_tick=3, reads_per_tick=0,
                  interval_ms=3_000.0)


def wl_read(env: SimEnv, rt: Runtime) -> None:
    """Read-mostly serving: one light writer, two read-heavy clients
    (baseline coverage of the replica read path)."""
    cfg = DfsConfig()
    nodes = build_cluster(env, rt, cfg)
    DfsClient(env, rt, nodes, 0, writes_per_tick=1, reads_per_tick=1,
              interval_ms=4_000.0)
    for i in range(1, 3):
        DfsClient(env, rt, nodes, i, writes_per_tick=1, reads_per_tick=4,
                  interval_ms=3_000.0)


def wl_hb_storm(env: SimEnv, rt: Runtime) -> None:
    """Re-register-on-failure configuration test: a tight heartbeat RPC
    timeout against a master with expensive report processing, and a lost
    heartbeat ack answered by a full re-registration (block report
    included) — the HDFS ``offerService`` recovery reflex."""
    cfg = DfsConfig(reregister_on_failure=True, hb_rpc_timeout_ms=6_000.0,
                    preload_blocks=42, report_entry_cost_ms=2.0)
    nodes = build_cluster(env, rt, cfg)
    DfsClient(env, rt, nodes, 0, writes_per_tick=2, reads_per_tick=1,
              interval_ms=3_000.0)


def wl_replicate(env: SimEnv, rt: Runtime) -> None:
    """Re-replication drill: datanode loss recovery enabled, with a
    scripted crash of ``dn2`` (never restarted) — every profile run
    exercises the liveness-timeout and re-replication transfer path
    end-to-end, with every transfer succeeding."""
    cfg = DfsConfig(rerepl_enabled=True)
    nodes = build_cluster(env, rt, cfg)
    env.schedule_at(30_000.0, None, nodes[3].crash)
    DfsClient(env, rt, nodes, 0, writes_per_tick=1, reads_per_tick=0,
              interval_ms=5_000.0)


def wl_failover(env: SimEnv, rt: Runtime) -> None:
    """Standby-failover drill: automatic priority promotion enabled, with
    a scripted admin handover to ``dn0`` at t=30s — every profile run
    exercises the report-pull and namespace-rebuild path without tripping
    the master-liveness detector."""
    cfg = DfsConfig(auto_failover=True, pipe_rpc_timeout_ms=4_000.0)
    nodes = build_cluster(env, rt, cfg)
    env.schedule_at(30_000.0, nodes[1], nodes[1].become_master)
    DfsClient(env, rt, nodes, 0, writes_per_tick=1, reads_per_tick=1,
              interval_ms=4_000.0)


def wl_churn(env: SimEnv, rt: Runtime) -> None:
    """Membership-churn drill: re-replication with rescan-on-failure and
    explicit transfer acks enabled, plus a scripted crash/restart of
    ``dn1`` timed so the drill's transfers all complete before the
    restart — profile runs exercise the scan, transfer, ack-flush, and
    post-restart re-registration paths with no transfer ever failing.
    The batched ack flush cadence naturally outlives the tight ack
    timeout for a fraction of the transfers, so a few overdue-ack
    retries fire (and succeed) in every fault-free run."""
    cfg = DfsConfig(rerepl_enabled=True, rescan_on_failure=True,
                    rerepl_ack_required=True)
    nodes = build_cluster(env, rt, cfg)
    env.schedule_at(30_000.0, None, nodes[2].crash)
    env.schedule_at(80_000.0, None, nodes[2].restart)
    # One reader alongside the writer: the churn drill is the suite's
    # highest-coverage test, so phase-one allocation anchors every
    # environment disturbance here — where the re-replication machinery
    # can actually respond to it.
    DfsClient(env, rt, nodes, 0, writes_per_tick=1, reads_per_tick=1,
              interval_ms=6_000.0)


def wl_idle(env: SimEnv, rt: Runtime) -> None:
    """Smoke test: light mixed traffic through a healthy cluster."""
    cfg = DfsConfig()
    nodes = build_cluster(env, rt, cfg)
    DfsClient(env, rt, nodes, 0, writes_per_tick=1, reads_per_tick=1,
              interval_ms=8_000.0)


def dfs_workloads() -> List[WorkloadSpec]:
    return [
        WorkloadSpec("dfs.write", wl_write.__doc__ or "", wl_write),
        WorkloadSpec("dfs.read", wl_read.__doc__ or "", wl_read),
        WorkloadSpec("dfs.hb_storm", wl_hb_storm.__doc__ or "", wl_hb_storm),
        WorkloadSpec("dfs.replicate", wl_replicate.__doc__ or "", wl_replicate),
        WorkloadSpec("dfs.failover", wl_failover.__doc__ or "", wl_failover),
        WorkloadSpec("dfs.churn", wl_churn.__doc__ or "", wl_churn),
        WorkloadSpec("dfs.idle", wl_idle.__doc__ or "", wl_idle, duration_ms=60_000.0),
    ]
