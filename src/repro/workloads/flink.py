"""Integration-test workloads for MiniFlink.

Condition splits: backpressure lives in the streaming soak (no restart
strategy there), the restart strategy only exists in the fault-tolerance
tests, dirty-restart replay only in the rescale test, and checkpoint
failure handling only in the checkpoint tests.
"""

from __future__ import annotations

from typing import List

from ..instrument.runtime import Runtime
from ..sim import SimEnv
from ..systems.base import WorkloadSpec
from ..systems.miniflink.nodes import FlinkConfig, JobManager, TaskManager


def build_job(env: SimEnv, rt: Runtime, cfg: FlinkConfig) -> JobManager:
    jm = JobManager(env, rt, cfg)
    head = TaskManager(env, rt, cfg, "head", 0)
    agg = TaskManager(env, rt, cfg, "agg", 1)
    sink = TaskManager(env, rt, cfg, "sink", 2)
    jm.attach(head, agg, sink)
    return jm


def wl_stream_heavy(env: SimEnv, rt: Runtime) -> None:
    """Streaming soak: large record batches with tight forward timeouts and
    no restart strategy — pure backpressure behaviour."""
    cfg = FlinkConfig(records_per_tick=25, forward_timeout_ms=10_000.0,
                      restart_strategy="none", head_fail_after=1)
    build_job(env, rt, cfg)


def wl_restart_strategy(env: SimEnv, rt: Runtime) -> None:
    """Fault-tolerance test: the full restart strategy with a buffering
    sink (cancellation must drain in-flight records)."""
    cfg = FlinkConfig(records_per_tick=12, forward_timeout_ms=30_000.0,
                      restart_strategy="full", cancel_drain_cap=0,
                      sink_flush_interval_ms=10_000.0, replay_batch=30)
    build_job(env, rt, cfg)


def wl_rescale(env: SimEnv, rt: Runtime) -> None:
    """Rescaling test: periodic clean restarts; a failed cancellation turns
    them into dirty restarts that replay records."""
    cfg = FlinkConfig(records_per_tick=8, forward_timeout_ms=30_000.0,
                      rescale_interval_ms=15_000.0, replay_batch=50,
                      cancel_drain_cap=100)
    build_job(env, rt, cfg)


def wl_checkpoint_barrier(env: SimEnv, rt: Runtime) -> None:
    """Checkpoint soak: barriers every five seconds over a loaded
    aggregator; alignment fails if the backlog is deep."""
    cfg = FlinkConfig(records_per_tick=18, forward_timeout_ms=30_000.0,
                      checkpoints=True, cp_interval_ms=5_000.0, cp_align_cap=40,
                      head_fail_after=1_000)
    build_job(env, rt, cfg)


def wl_checkpoint_failover(env: SimEnv, rt: Runtime) -> None:
    """Checkpoint failure handling: a failed barrier cancels the task and
    dirty-restarts the job (cancel can land mid-restore)."""
    cfg = FlinkConfig(records_per_tick=10, forward_timeout_ms=30_000.0,
                      checkpoints=True, cp_interval_ms=6_000.0, cp_align_cap=40,
                      cp_failure_action="fail_task", restart_strategy="full",
                      replay_batch=150, rescale_interval_ms=20_000.0,
                      deploy_grace_ms=8_000.0, head_fail_after=1_000,
                      cancel_drain_cap=1_000)
    build_job(env, rt, cfg)


def wl_batch_small(env: SimEnv, rt: Runtime) -> None:
    """Baseline small-batch job."""
    cfg = FlinkConfig(records_per_tick=5, forward_timeout_ms=30_000.0)
    build_job(env, rt, cfg)


def wl_idle(env: SimEnv, rt: Runtime) -> None:
    """Smoke test: a trickle of records."""
    cfg = FlinkConfig(records_per_tick=2, source_interval_ms=6_000.0,
                      forward_timeout_ms=30_000.0)
    build_job(env, rt, cfg)


def flink_workloads() -> List[WorkloadSpec]:
    return [
        WorkloadSpec("flink.stream_heavy", wl_stream_heavy.__doc__ or "", wl_stream_heavy),
        WorkloadSpec("flink.restart_strategy", wl_restart_strategy.__doc__ or "", wl_restart_strategy),
        WorkloadSpec("flink.rescale", wl_rescale.__doc__ or "", wl_rescale),
        WorkloadSpec("flink.checkpoint_barrier", wl_checkpoint_barrier.__doc__ or "", wl_checkpoint_barrier),
        WorkloadSpec("flink.checkpoint_failover", wl_checkpoint_failover.__doc__ or "", wl_checkpoint_failover),
        WorkloadSpec("flink.batch_small", wl_batch_small.__doc__ or "", wl_batch_small),
        WorkloadSpec("flink.idle", wl_idle.__doc__ or "", wl_idle, duration_ms=60_000.0),
    ]
