"""Integration-test workloads for MiniHBase.

The HB-2 (§8.3.1) condition split:

* ``hbase.create_heavy`` — many table creations/clones, any balancer: the
  only test where deployment overload can time out assignment RPCs;
* ``hbase.rs_fault_tolerance`` — FavoredStochasticBalancer with exactly
  three RegionServers: the only test where one excluded server breaks
  ``canPlaceFavoredNodes`` (the five-server variant is the decoy);
* ``hbase.balancer_long`` — the favored balancer under a long, steady
  assignment workload: the only test long enough to observe the blind
  retries growing the deployment loop (the short tests exit first).
"""

from __future__ import annotations

from typing import List

from ..instrument.runtime import Runtime
from ..sim import SimEnv
from ..systems.base import WorkloadSpec
from ..systems.minihbase.nodes import HBaseClient, HbaseConfig, HMaster, RegionServer


def build_cluster(
    env: SimEnv, rt: Runtime, cfg: HbaseConfig, preload_regions: int = 0
) -> HMaster:
    """Stand up master + RegionServers, optionally with standing tables
    already assigned (so rebalancing has regions to move)."""
    master = HMaster(env, rt, cfg)
    servers = []
    for i in range(cfg.n_regionservers):
        servers.append(RegionServer(env, rt, master, cfg, i))
    for r in range(preload_regions):
        region = "pre/t%d/r%d" % (r // 4, r % 4)
        rs = servers[r % len(servers)]
        rs.hosted.add(region)
        master.assigned[region] = rs.name
    return master


def wl_create_heavy(env: SimEnv, rt: Runtime) -> None:
    """Schema churn test: clients create and clone tables continuously,
    stacking region assignments onto four servers."""
    cfg = HbaseConfig(n_regionservers=4, balancer="favored", favored_min=3,
                      assign_rpc_timeout_ms=10_000.0, deploy_cost_ms=4.0)
    master = build_cluster(env, rt, cfg)
    for i in range(2):
        HBaseClient(env, rt, master, i, creates_per_tick=3, regions_per_table=6,
                    interval_ms=3_000.0)


def wl_rs_fault_tolerance(env: SimEnv, rt: Runtime) -> None:
    """RegionServer fault-tolerance test: the favored balancer on a minimal
    three-server cluster, with a short assignment workload."""
    cfg = HbaseConfig(n_regionservers=3, balancer="favored", favored_min=3,
                      assign_rpc_timeout_ms=30_000.0)
    master = build_cluster(env, rt, cfg)
    HBaseClient(env, rt, master, 0, creates_per_tick=1, regions_per_table=3,
                interval_ms=5_000.0)


def wl_balancer_5rs(env: SimEnv, rt: Runtime) -> None:
    """Favored-balancer test on five servers (the §8.3.1 decoy: one
    exclusion cannot break the three-server minimum here)."""
    cfg = HbaseConfig(n_regionservers=5, balancer="favored", favored_min=3,
                      assign_rpc_timeout_ms=30_000.0)
    master = build_cluster(env, rt, cfg)
    HBaseClient(env, rt, master, 0, creates_per_tick=1, regions_per_table=3,
                interval_ms=5_000.0)


def wl_balancer_long(env: SimEnv, rt: Runtime) -> None:
    """Long balancer soak: the favored balancer with a steady stream of
    assignments, long enough to observe retry-driven load growth."""
    cfg = HbaseConfig(n_regionservers=3, balancer="favored", favored_min=3,
                      assign_rpc_timeout_ms=30_000.0)
    master = build_cluster(env, rt, cfg, preload_regions=60)
    for i in range(2):
        HBaseClient(env, rt, master, i, creates_per_tick=2, regions_per_table=4,
                    interval_ms=3_000.0)


def wl_write_heavy(env: SimEnv, rt: Runtime) -> None:
    """Write soak: heavy WAL append traffic with frequent rolls."""
    cfg = HbaseConfig(n_regionservers=3, wal_roll_interval_ms=4_000.0,
                      wal_torn_gap_ms=10_000.0)
    master = build_cluster(env, rt, cfg)
    for i in range(3):
        HBaseClient(env, rt, master, i, writes_per_tick=8, interval_ms=2_000.0)


def wl_wal_replay(env: SimEnv, rt: Runtime) -> None:
    """WAL validation test: moderate writes with aggressive roll cadence."""
    cfg = HbaseConfig(n_regionservers=3, wal_roll_interval_ms=3_000.0,
                      wal_torn_gap_ms=8_000.0, wal_repair_entries=16)
    master = build_cluster(env, rt, cfg)
    HBaseClient(env, rt, master, 0, writes_per_tick=5, interval_ms=2_500.0)


def wl_mixed(env: SimEnv, rt: Runtime) -> None:
    """Mixed admin + write workload on the default balancer."""
    cfg = HbaseConfig(n_regionservers=4)
    master = build_cluster(env, rt, cfg)
    HBaseClient(env, rt, master, 0, creates_per_tick=1, regions_per_table=2,
                writes_per_tick=3, interval_ms=4_000.0)


def wl_idle(env: SimEnv, rt: Runtime) -> None:
    """Smoke test: one client, light traffic."""
    cfg = HbaseConfig(n_regionservers=3)
    master = build_cluster(env, rt, cfg)
    HBaseClient(env, rt, master, 0, creates_per_tick=1, regions_per_table=1,
                writes_per_tick=1, interval_ms=10_000.0)


def hbase_workloads() -> List[WorkloadSpec]:
    specs = [
        WorkloadSpec("hbase.create_heavy", wl_create_heavy.__doc__ or "", wl_create_heavy),
        WorkloadSpec(
            "hbase.rs_fault_tolerance", wl_rs_fault_tolerance.__doc__ or "",
            wl_rs_fault_tolerance, duration_ms=45_000.0,
        ),
        WorkloadSpec(
            "hbase.balancer_5rs", wl_balancer_5rs.__doc__ or "", wl_balancer_5rs,
            duration_ms=45_000.0,
        ),
        WorkloadSpec("hbase.balancer_long", wl_balancer_long.__doc__ or "", wl_balancer_long),
        WorkloadSpec("hbase.write_heavy", wl_write_heavy.__doc__ or "", wl_write_heavy),
        WorkloadSpec("hbase.wal_replay", wl_wal_replay.__doc__ or "", wl_wal_replay),
        WorkloadSpec("hbase.mixed", wl_mixed.__doc__ or "", wl_mixed),
        WorkloadSpec("hbase.idle", wl_idle.__doc__ or "", wl_idle, duration_ms=60_000.0),
    ]
    return specs
