"""Integration-test workloads for MiniHDFS 2 and MiniHDFS 3.

Each workload instantiates the cluster with a distinct configuration —
the condition combinations of §8.3.2 split across tests (IBR throttling
vs load-balancer scale, HA vs single NN, staleness handling vs patient
clusters, genstamp conflicts vs clean recovery).
"""

from __future__ import annotations

from typing import List

from ..instrument.runtime import Runtime
from ..sim import Node, SimEnv
from ..systems.base import WorkloadSpec
from ..systems.minihdfs.client import DFSClient
from ..systems.minihdfs.datanode import DataNode
from ..systems.minihdfs.hconfig import HdfsConfig
from ..systems.minihdfs.namenode import NameNode


def build_cluster(
    env: SimEnv,
    rt: Runtime,
    cfg: HdfsConfig,
    preload_blocks: int = 0,
    preload_skew: bool = False,
) -> NameNode:
    """Stand up a NameNode + DataNodes cluster, pre-registered, with an
    optional preloaded block population (each block on two DataNodes).

    ``preload_skew`` concentrates the preload on the first DataNode, for
    workloads that study hot-node behaviour.
    """
    nn = NameNode(env, rt, cfg)
    dns: List[DataNode] = []
    for i in range(cfg.n_datanodes):
        dn = DataNode(env, rt, nn, cfg, i)
        dns.append(dn)
        nn.datanodes[dn.name] = dn
        nn.commands[dn.name] = []
        nn.last_heartbeat[dn.name] = 0.0
        dn.must_register = False
    n = len(dns)
    for b in range(preload_blocks):
        if preload_skew:
            # Hot node: every preloaded block is primary on dn0; the second
            # replica rotates over the other nodes.
            primary = 0
            secondary = 1 + b % (n - 1) if n > 1 else 0
        else:
            primary = b % n
            secondary = (primary + 1) % n
        bid = "pre#b%d" % b
        for dn in (dns[primary], dns[secondary]):
            dn.finalized.add(bid)
            dn.cache[bid] = 0.0
            nn.blocks.setdefault(bid, set()).add(dn.name)
    return nn


def seed_recovery_work(nn: NameNode, count: int, start_ms: float = 5_000.0,
                       step_ms: float = 6_000.0) -> None:
    """Seed leases over preloaded blocks that expire on a staggered schedule,
    giving the lease monitor standing recovery work throughout the run."""
    bids = sorted(nn.blocks)
    for i in range(min(count, len(bids))):
        nn.leases["recwork/f%d" % i] = ("ext", start_ms + i * step_ms, bids[i])


def _clients(
    env: SimEnv,
    rt: Runtime,
    nn: NameNode,
    cfg: HdfsConfig,
    n: int,
    interval_ms: float,
    files_per_tick: int = 1,
    nn_rpc_timeout_ms: float = 10_000.0,
) -> None:
    for i in range(n):
        DFSClient(
            env, rt, nn, cfg, i,
            write_interval_ms=interval_ms,
            files_per_tick=files_per_tick,
            nn_rpc_timeout_ms=nn_rpc_timeout_ms,
        )


# --------------------------------------------------------------- workloads


def wl_write_small(version: int):
    def setup(env: SimEnv, rt: Runtime) -> None:
        """Baseline write path: a couple of writers against defaults."""
        cfg = HdfsConfig(version=version)
        nn = build_cluster(env, rt, cfg)
        _clients(env, rt, nn, cfg, n=2, interval_ms=10_000.0)

    return setup


def wl_load_balancer(version: int):
    def setup(env: SimEnv, rt: Runtime) -> None:
        """Load-balancer scale test: thousands of preloaded blocks and
        heavy writers produce large incremental block reports (the paper's
        5,000-block workload of §8.3.2).  No IBR throttling; 10 s report
        timeouts."""
        cfg = HdfsConfig(
            version=version,
            n_datanodes=4,
            ibr_throttling=False,
            ibr_rpc_timeout_ms=10_000.0,
            stale_timeout_ms=45_000.0,  # patient: staleness is not under test
            rereplication=False,
        )
        nn = build_cluster(env, rt, cfg, preload_blocks=800)
        _clients(env, rt, nn, cfg, n=3, interval_ms=2_500.0, files_per_tick=4)

    return setup


def wl_ibr_interval(version: int):
    def setup(env: SimEnv, rt: Runtime) -> None:
        """IBR report-interval configuration test: throttling enabled with a
        20 s interval, a trickle of writes, patient 60 s report timeouts
        (the paper's t2 of §8.3.2)."""
        cfg = HdfsConfig(
            version=version,
            n_datanodes=3,
            ibr_throttling=True,
            ibr_interval_ms=20_000.0,
            ibr_rpc_timeout_ms=60_000.0,
            stale_timeout_ms=90_000.0,
            rereplication=False,
        )
        nn = build_cluster(env, rt, cfg)
        _clients(env, rt, nn, cfg, n=1, interval_ms=6_000.0, nn_rpc_timeout_ms=60_000.0)

    return setup


def wl_ha_editlog(version: int):
    def setup(env: SimEnv, rt: Runtime) -> None:
        """HA failover drill: edit-log journal with a small backlog cap;
        exceeding it fences the active NameNode."""
        cfg = HdfsConfig(
            version=version,
            ha=True,
            edit_backlog_cap=60,
            edit_lag_cap_ms=12_000.0,
            stale_timeout_ms=90_000.0,
            rereplication=False,
            hb_rpc_timeout_ms=120_000.0,  # patient heartbeats: IBRs still flow
            ibr_rpc_timeout_ms=30_000.0,
        )
        nn = build_cluster(env, rt, cfg)
        _clients(env, rt, nn, cfg, n=2, interval_ms=4_000.0, files_per_tick=2,
                 nn_rpc_timeout_ms=30_000.0)

    return setup


def wl_lease_writers(version: int):
    def setup(env: SimEnv, rt: Runtime) -> None:
        """Lease stress: many renewing writers keep a large lease table that
        the lease monitor must scan while writes are in flight."""
        cfg = HdfsConfig(
            version=version,
            writers_renew_lease=True,
            lease_soft_ms=30_000.0,
            stale_timeout_ms=90_000.0,
            rereplication=False,
        )
        nn = build_cluster(env, rt, cfg)
        # Seed a standing lease table (long-lived writers elsewhere).
        for i in range(80):
            nn.leases["standing/f%d" % i] = ("ext", 1e12, None)
        _clients(env, rt, nn, cfg, n=3, interval_ms=4_000.0, nn_rpc_timeout_ms=10_000.0)

    return setup


def wl_lease_abandon(version: int):
    def setup(env: SimEnv, rt: Runtime) -> None:
        """Lease expiry handling: single-replica writers that never renew;
        abandoned files linger in the lease table until the soft limit."""
        cfg = HdfsConfig(
            version=version,
            replication=1,
            writers_renew_lease=False,
            lease_soft_ms=40_000.0,
            recovery_enabled=True,
            stale_timeout_ms=90_000.0,
            rereplication=False,
            ibr_rpc_timeout_ms=60_000.0,
        )
        nn = build_cluster(env, rt, cfg)
        _clients(env, rt, nn, cfg, n=1, interval_ms=12_000.0, nn_rpc_timeout_ms=60_000.0)

    return setup


def wl_ibr_cap(version: int):
    def setup(env: SimEnv, rt: Runtime) -> None:
        """Report back-pressure test: small NameNode IBR backlog cap with a
        slow drain, so report storms overflow it."""
        cfg = HdfsConfig(
            version=version,
            nn_ibr_backlog_cap=10,
            ibr_backlog_drain=9,
            stale_timeout_ms=90_000.0,
            rereplication=False,
            client_rebuild_pipeline=True,
        )
        nn = build_cluster(env, rt, cfg)
        _clients(env, rt, nn, cfg, n=2, interval_ms=5_000.0, files_per_tick=2,
                 nn_rpc_timeout_ms=60_000.0)

    return setup


def wl_pipe_heavy(version: int):
    def setup(env: SimEnv, rt: Runtime) -> None:
        """Large-block streaming: many packets per block with tight pipeline
        timeouts."""
        cfg = HdfsConfig(
            version=version,
            packets_per_block=24,
            pipe_rpc_timeout_ms=10_000.0,
            stale_timeout_ms=90_000.0,
            rereplication=False,
        )
        nn = build_cluster(env, rt, cfg)
        _clients(env, rt, nn, cfg, n=3, interval_ms=4_000.0, nn_rpc_timeout_ms=60_000.0)

    return setup


def wl_genstamp_recovery(version: int):
    def setup(env: SimEnv, rt: Runtime) -> None:
        """Append/recovery conflict test: pipeline rebuilds leave stale
        generation stamps, writers do not renew leases, and the recovery
        monitor re-issues unfinished recoveries."""
        cfg = HdfsConfig(
            version=version,
            genstamp_conflicts=True,
            recovery_enabled=True,
            writers_renew_lease=False,
            lease_soft_ms=15_000.0,
            client_rebuild_pipeline=False,
            client_restream_on_ibr_loss=True,
            stale_timeout_ms=90_000.0,
            rereplication=False,
            pipe_rpc_timeout_ms=60_000.0,
            ibr_rpc_timeout_ms=60_000.0,
        )
        nn = build_cluster(env, rt, cfg, preload_blocks=80)
        seed_recovery_work(nn, 12, step_ms=8_000.0)
        _clients(env, rt, nn, cfg, n=2, interval_ms=8_000.0, nn_rpc_timeout_ms=60_000.0)

    return setup


def wl_cache_small(version: int):
    def setup(env: SimEnv, rt: Runtime) -> None:
        """Replica-cache pressure: a small metadata cache over a preloaded
        block population, with writes keeping the eviction loop busy."""
        cfg = HdfsConfig(
            version=version,
            cache_capacity=100,
            cache_tick_ms=3_000.0,
            scanner_interval_ms=10_000.0,
            pipe_rpc_timeout_ms=10_000.0,
            stale_timeout_ms=15_000.0,
            rereplication=False,
        )
        nn = build_cluster(env, rt, cfg, preload_blocks=240, preload_skew=True)
        _clients(env, rt, nn, cfg, n=1, interval_ms=2_500.0, nn_rpc_timeout_ms=60_000.0)

    return setup


def wl_bad_dn_report(version: int):
    def setup(env: SimEnv, rt: Runtime) -> None:
        """DataNode fault-tolerance test: clients report bad pipeline nodes
        to the NameNode, whose staleness detector honours the reports."""
        cfg = HdfsConfig(
            version=version,
            client_report_bad_dn=True,
            client_rebuild_pipeline=True,
            stale_timeout_ms=15_000.0,
            rereplication=False,  # reporting only; no re-replication here
        )
        nn = build_cluster(env, rt, cfg)
        _clients(env, rt, nn, cfg, n=2, interval_ms=6_000.0, nn_rpc_timeout_ms=60_000.0)

    return setup


def wl_replication_storm(version: int):
    def setup(env: SimEnv, rt: Runtime) -> None:
        """Staleness re-replication drill: a small replica cache and an
        active replication monitor; a lost DataNode triggers transfer storms
        that flow through the receive path and the cache."""
        cfg = HdfsConfig(
            version=version,
            rereplication=True,
            rereplication_cap=30,
            stale_timeout_ms=15_000.0,
            cache_capacity=50,
            cache_tick_ms=3_000.0,
            pipe_rpc_timeout_ms=60_000.0,
            ibr_rpc_timeout_ms=60_000.0,
        )
        nn = build_cluster(env, rt, cfg, preload_blocks=160)
        _clients(env, rt, nn, cfg, n=1, interval_ms=8_000.0, nn_rpc_timeout_ms=60_000.0)

    return setup


def wl_recovery_retry(version: int):
    def setup(env: SimEnv, rt: Runtime) -> None:
        """Block recovery retry test: genstamp conflicts plus the recovery
        monitor's periodic re-issue, so overlapping recovery sessions are
        possible (H2-3)."""
        cfg = HdfsConfig(
            version=version,
            genstamp_conflicts=True,
            recovery_enabled=True,
            writers_renew_lease=False,
            lease_soft_ms=12_000.0,
            client_rebuild_pipeline=False,
            stale_timeout_ms=90_000.0,
            rereplication=False,
            pipe_rpc_timeout_ms=60_000.0,
            ibr_rpc_timeout_ms=60_000.0,
        )
        nn = build_cluster(env, rt, cfg, preload_blocks=80)
        seed_recovery_work(nn, 16, step_ms=6_000.0)
        _clients(env, rt, nn, cfg, n=1, interval_ms=12_000.0, nn_rpc_timeout_ms=60_000.0)

    return setup


# ------------------------------------------------------------- v3-specific


def wl_deletion_heavy(version: int):
    def setup(env: SimEnv, rt: Runtime) -> None:
        """HDFS 3 deletion-service test: a replica scanner keeps finding
        extra replicas to invalidate, so the async deletion queue always
        has standing work."""
        cfg = HdfsConfig(
            version=version,
            rereplication=True,
            rereplication_cap=30,
            stale_timeout_ms=15_000.0,
            deletion_tick_ms=3_000.0,
            pipe_rpc_timeout_ms=10_000.0,
            ibr_rpc_timeout_ms=60_000.0,
        )
        nn = build_cluster(env, rt, cfg, preload_blocks=200)
        scanner = Node(env, "replica-scanner")
        state = {"seq": 0}

        def find_extras() -> None:
            # The volume scanner reports stray extra replicas (block-pool
            # churn): the NameNode will invalidate them via delete commands.
            bids = sorted(nn.blocks)
            names = sorted(nn.datanodes)
            for _ in range(6):
                state["seq"] += 1
                bid = bids[state["seq"] % len(bids)]
                extra = names[state["seq"] % len(names)]
                nn.blocks[bid].add(extra)
                dn = nn.datanodes[extra]
                dn.finalized.add(bid)

        env.every(scanner, 2_000.0, find_extras)
        _clients(env, rt, nn, cfg, n=2, interval_ms=5_000.0, nn_rpc_timeout_ms=60_000.0)

    return setup


def wl_reconstruction(version: int):
    def setup(env: SimEnv, rt: Runtime) -> None:
        """HDFS 3 erasure-coding reconstruction test: under-replicated
        blocks are rebuilt by reconstruction workers fetching from peers."""
        cfg = HdfsConfig(
            version=version,
            reconstruction=True,
            rereplication=True,
            rereplication_cap=20,
            stale_timeout_ms=15_000.0,
            recon_tick_ms=4_000.0,
            recon_fetch_timeout_ms=10_000.0,
            ibr_rpc_timeout_ms=60_000.0,
            pipe_rpc_timeout_ms=60_000.0,
        )
        nn = build_cluster(env, rt, cfg, preload_blocks=160)
        # A corruption scanner keeps knocking replicas out, giving the
        # reconstruction workers standing work throughout the run.
        scanner = Node(env, "corruption-scanner")
        state = {"seq": 0}

        def corrupt_one() -> None:
            bids = sorted(nn.blocks)
            for _ in range(3):
                state["seq"] += 1
                bid = bids[state["seq"] % len(bids)]
                holders = nn.blocks[bid]
                if len(holders) > 1:
                    holders.discard(sorted(holders)[0])
                    nn.under_replicated.append(bid)

        env.every(scanner, 2_500.0, corrupt_one)
        _clients(env, rt, nn, cfg, n=1, interval_ms=9_000.0, nn_rpc_timeout_ms=60_000.0)

    return setup


def wl_eventq(version: int):
    def setup(env: SimEnv, rt: Runtime) -> None:
        """HDFS 3 async event-queue test: report bursts against a bounded
        dispatcher queue."""
        cfg = HdfsConfig(
            version=version,
            eventq_cap=40,
            ibr_rpc_timeout_ms=10_000.0,
            stale_timeout_ms=45_000.0,
            rereplication=False,
        )
        nn = build_cluster(env, rt, cfg, preload_blocks=400)
        _clients(env, rt, nn, cfg, n=3, interval_ms=3_000.0, files_per_tick=3,
                 nn_rpc_timeout_ms=60_000.0)

    return setup


def hdfs_workloads(version: int) -> List[WorkloadSpec]:
    """The integration-test suite of MiniHDFS ``version``."""
    prefix = "hdfs%d" % version
    base = [
        ("write_small", wl_write_small),
        ("load_balancer", wl_load_balancer),
        ("ibr_interval", wl_ibr_interval),
        ("ha_editlog", wl_ha_editlog),
        ("lease_writers", wl_lease_writers),
        ("lease_abandon", wl_lease_abandon),
        ("ibr_cap", wl_ibr_cap),
        ("pipe_heavy", wl_pipe_heavy),
        ("genstamp_recovery", wl_genstamp_recovery),
        ("cache_small", wl_cache_small),
        ("bad_dn_report", wl_bad_dn_report),
        ("replication_storm", wl_replication_storm),
        ("recovery_retry", wl_recovery_retry),
    ]
    if version >= 3:
        base += [
            ("deletion_heavy", wl_deletion_heavy),
            ("reconstruction", wl_reconstruction),
            ("eventq", wl_eventq),
        ]
    specs = []
    for name, factory in base:
        setup = factory(version)
        specs.append(
            WorkloadSpec(
                test_id="%s.%s" % (prefix, name),
                description=(setup.__doc__ or name).strip(),
                setup=setup,
            )
        )
    return specs
