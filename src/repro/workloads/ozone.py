"""Integration-test workloads for MiniOzone."""

from __future__ import annotations

from typing import List

from ..instrument.runtime import Runtime
from ..sim import SimEnv
from ..systems.base import WorkloadSpec
from ..systems.miniozone.nodes import SCM, OzoneClient, OzoneConfig, OzoneDN


def build_cluster(env: SimEnv, rt: Runtime, cfg: OzoneConfig,
                  preload_containers: int = 0) -> SCM:
    scm = SCM(env, rt, cfg)
    dns = [OzoneDN(env, rt, scm, cfg, i) for i in range(cfg.n_datanodes)]
    for c in range(preload_containers):
        dns[c % len(dns)].containers["pre-c%d" % c] = 1
    scm.pipelines.append([dn.name for dn in dns[: cfg.pipeline_size]])
    return scm


def wl_reports_heavy(env: SimEnv, rt: Runtime) -> None:
    """Container-report storm: many containers per node with a low queue
    saturation threshold; failed dispatches are dropped (no requeue)."""
    cfg = OzoneConfig(eventq_saturation=160, eventq_requeue=False,
                      dispatch_tick_ms=1_500.0, report_batch=8)
    scm = build_cluster(env, rt, cfg, preload_containers=120)
    for i in range(2):
        OzoneClient(env, rt, scm, i, keys_per_tick=6, interval_ms=2_000.0)


def wl_requeue(env: SimEnv, rt: Runtime) -> None:
    """Event-queue requeue configuration test: failed dispatches are
    re-queued (with a resync batch), light report traffic."""
    cfg = OzoneConfig(eventq_saturation=40, eventq_requeue=True,
                      requeue_resync=15, report_batch=6)
    scm = build_cluster(env, rt, cfg, preload_containers=40)
    OzoneClient(env, rt, scm, 0, keys_per_tick=2, interval_ms=4_000.0)


def wl_hb_pipeline(env: SimEnv, rt: Runtime) -> None:
    """Heartbeat/pipeline drill: tight dead-node timeout over a minimal
    cluster — pipeline health follows heartbeat freshness closely."""
    cfg = OzoneConfig(n_datanodes=3, dead_timeout_ms=15_000.0,
                      pipeline_tick_ms=4_000.0)
    scm = build_cluster(env, rt, cfg, preload_containers=60)
    OzoneClient(env, rt, scm, 0, keys_per_tick=3, interval_ms=3_000.0)


def wl_repl_heavy(env: SimEnv, rt: Runtime) -> None:
    """Replication soak: a steady stream of replication commands with
    tight push timeouts."""
    cfg = OzoneConfig(repl_push_timeout_ms=10_000.0, repl_cost_ms=2.0,
                      dead_timeout_ms=60_000.0, repl_trickle=2)
    scm = build_cluster(env, rt, cfg, preload_containers=80)
    for i in range(40):
        scm.under_replicated.append("seed-c%d" % i)
    OzoneClient(env, rt, scm, 0, keys_per_tick=3, interval_ms=3_000.0)


def wl_pipeline_small(env: SimEnv, rt: Runtime) -> None:
    """Pipeline creation on a minimal cluster: any excluded node makes
    creation fail."""
    cfg = OzoneConfig(n_datanodes=3, dead_timeout_ms=60_000.0,
                      repl_push_timeout_ms=30_000.0, repl_trickle=1,
                      pipeline_rotation_ms=12_000.0)
    scm = build_cluster(env, rt, cfg, preload_containers=40)
    for i in range(10):
        scm.under_replicated.append("seed-c%d" % i)
    OzoneClient(env, rt, scm, 0, keys_per_tick=2, interval_ms=4_000.0)


def wl_fallback_repl(env: SimEnv, rt: Runtime) -> None:
    """Pipeline-failure fallback: when creation fails, the SCM re-replicates
    through existing pipelines instead."""
    cfg = OzoneConfig(n_datanodes=3, dead_timeout_ms=60_000.0,
                      fallback_replication=True, fallback_batch=20,
                      repl_push_timeout_ms=30_000.0, repl_trickle=1,
                      pipeline_rotation_ms=12_000.0)
    scm = build_cluster(env, rt, cfg, preload_containers=40)
    for i in range(10):
        scm.under_replicated.append("seed-c%d" % i)
    OzoneClient(env, rt, scm, 0, keys_per_tick=2, interval_ms=4_000.0)


def wl_idle(env: SimEnv, rt: Runtime) -> None:
    """Smoke test: light object-store traffic."""
    cfg = OzoneConfig()
    scm = build_cluster(env, rt, cfg, preload_containers=10)
    OzoneClient(env, rt, scm, 0, keys_per_tick=1, interval_ms=8_000.0)


def ozone_workloads() -> List[WorkloadSpec]:
    return [
        WorkloadSpec("ozone.reports_heavy", wl_reports_heavy.__doc__ or "", wl_reports_heavy),
        WorkloadSpec("ozone.requeue", wl_requeue.__doc__ or "", wl_requeue),
        WorkloadSpec("ozone.hb_pipeline", wl_hb_pipeline.__doc__ or "", wl_hb_pipeline),
        WorkloadSpec("ozone.repl_heavy", wl_repl_heavy.__doc__ or "", wl_repl_heavy),
        WorkloadSpec("ozone.pipeline_small", wl_pipeline_small.__doc__ or "", wl_pipeline_small),
        WorkloadSpec("ozone.fallback_repl", wl_fallback_repl.__doc__ or "", wl_fallback_repl),
        WorkloadSpec("ozone.idle", wl_idle.__doc__ or "", wl_idle, duration_ms=60_000.0),
    ]
