"""Integration-test workloads for MiniRaft."""

from __future__ import annotations

from typing import List

from ..instrument.runtime import Runtime
from ..sim import SimEnv
from ..systems.base import WorkloadSpec
from ..systems.miniraft.nodes import RaftClient, RaftConfig, RaftNode


def build_cluster(env: SimEnv, rt: Runtime, cfg: RaftConfig) -> List[RaftNode]:
    """Deterministic bootstrap: node 0 leads term 1, the rest follow."""
    nodes = [RaftNode(env, rt, cfg, i) for i in range(cfg.n_nodes)]
    for node in nodes:
        node.peers = [p for p in nodes if p is not node]
        node.log = [(1, "pre%d" % i) for i in range(cfg.preload_entries)]
        node.commit_index = cfg.preload_entries
        node.last_applied = cfg.preload_entries
    nodes[0].become_leader()
    for peer in nodes[1:]:
        nodes[0].next_index[peer.name] = cfg.preload_entries
        nodes[0].match_index[peer.name] = cfg.preload_entries
    return nodes


def wl_steady(env: SimEnv, rt: Runtime) -> None:
    """Steady replication: one client appending moderate batches through a
    healthy leader (baseline coverage of the append path)."""
    cfg = RaftConfig()
    nodes = build_cluster(env, rt, cfg)
    RaftClient(env, rt, nodes, 0, cmds_per_tick=3, interval_ms=3_000.0)


def wl_heavy_appends(env: SimEnv, rt: Runtime) -> None:
    """Append saturation: two clients with big batches against a tight
    AppendEntries timeout — apply-loop delay turns directly into leader-side
    RPC timeouts (no resend, so the failure does not feed back)."""
    cfg = RaftConfig(apply_cost_ms=2.0, append_rpc_timeout_ms=8_000.0,
                     max_batch=20, resend_on_timeout=False)
    nodes = build_cluster(env, rt, cfg)
    for i in range(2):
        RaftClient(env, rt, nodes, i, cmds_per_tick=6, interval_ms=2_000.0)


def wl_resend(env: SimEnv, rt: Runtime) -> None:
    """Resend-on-timeout configuration test: patient RPC timeouts, but a
    lost AppendEntries ack rolls next_index back a whole resend window."""
    cfg = RaftConfig(resend_on_timeout=True, resend_window=30,
                     append_rpc_timeout_ms=30_000.0)
    nodes = build_cluster(env, rt, cfg)
    RaftClient(env, rt, nodes, 0, cmds_per_tick=3, interval_ms=3_000.0)


def wl_elections(env: SimEnv, rt: Runtime) -> None:
    """Leader-failover drill: tight election timeout with every production
    fallback enabled (resend-on-timeout, quorum resync, fresh-leader and
    reconnect catch-up).  A scripted hand-over at t=5s exercises the vote
    and reconnect paths in every profile run without touching the
    election-timeout detector."""
    cfg = RaftConfig(election_timeout_ms=12_000.0, election_tick_ms=4_000.0,
                     resend_on_timeout=True, resend_window=30,
                     quorum_resync=True, resync_batch=25,
                     quorum_window_ms=30_000.0, leader_catchup=30,
                     reconnect_catchup=True, reconnect_window=25)
    nodes = build_cluster(env, rt, cfg)
    env.schedule_at(5_000.0, nodes[1], nodes[1].start_election)
    RaftClient(env, rt, nodes, 0, cmds_per_tick=2, interval_ms=3_000.0)


def wl_quorum(env: SimEnv, rt: Runtime) -> None:
    """Quorum-resync configuration test: a tight ack-freshness window with
    the resync fallback enabled; losing quorum re-sends a window to every
    follower."""
    cfg = RaftConfig(quorum_resync=True, resync_batch=25,
                     quorum_window_ms=25_000.0, append_rpc_timeout_ms=30_000.0)
    nodes = build_cluster(env, rt, cfg)
    RaftClient(env, rt, nodes, 0, cmds_per_tick=3, interval_ms=3_000.0)


def wl_partition(env: SimEnv, rt: Runtime) -> None:
    """Partition drill: reconnect catch-up enabled under a tight election
    timeout, with a scripted sub-timeout partition of the leader-raft1
    link healed 10 s later — every profile run exercises the reconnect
    catch-up path without tripping the election-timeout detector."""
    cfg = RaftConfig(reconnect_catchup=True, reconnect_window=25,
                     reconnect_silence_ms=6_000.0,
                     election_timeout_ms=20_000.0, election_tick_ms=4_000.0,
                     leader_catchup=30, append_rpc_timeout_ms=8_000.0)
    nodes = build_cluster(env, rt, cfg)
    env.schedule_at(30_000.0, None, env.partition, nodes[0], nodes[1])
    env.schedule_at(40_000.0, None, env.heal, nodes[0], nodes[1])
    RaftClient(env, rt, nodes, 0, cmds_per_tick=3, interval_ms=3_000.0)


def wl_churn(env: SimEnv, rt: Runtime) -> None:
    """Membership-churn drill: restart catch-up probes enabled, with a
    scripted crash/restart of one follower — every profile run exercises
    the probe path end-to-end (the probe reaches the leader and clears)
    without any reply loss."""
    cfg = RaftConfig(restart_probe=True, probe_window=8,
                     probe_window_growth=6, probe_max_window=64,
                     probe_interval_ms=5_000.0, probe_rpc_timeout_ms=8_000.0)
    nodes = build_cluster(env, rt, cfg)
    env.schedule_at(30_000.0, None, nodes[1].crash)
    env.schedule_at(50_000.0, None, nodes[1].restart)
    RaftClient(env, rt, nodes, 0, cmds_per_tick=2, interval_ms=4_000.0)


def wl_snapshot(env: SimEnv, rt: Runtime) -> None:
    """Snapshot churn: one follower periodically loses its disk, so the
    leader repeatedly ships snapshots (with transfer retry enabled)."""
    cfg = RaftConfig(preload_entries=60, snapshot_threshold=25,
                     snapshot_chunks=10, snapshot_retry=True, max_batch=8,
                     flaky_follower=2, flaky_restart_ms=35_000.0)
    nodes = build_cluster(env, rt, cfg)
    RaftClient(env, rt, nodes, 0, cmds_per_tick=2, interval_ms=4_000.0)


def wl_idle(env: SimEnv, rt: Runtime) -> None:
    """Smoke test: light append traffic through a healthy cluster."""
    cfg = RaftConfig()
    nodes = build_cluster(env, rt, cfg)
    RaftClient(env, rt, nodes, 0, cmds_per_tick=1, interval_ms=8_000.0)


def raft_workloads() -> List[WorkloadSpec]:
    return [
        WorkloadSpec("raft.steady", wl_steady.__doc__ or "", wl_steady),
        WorkloadSpec("raft.heavy_appends", wl_heavy_appends.__doc__ or "", wl_heavy_appends),
        WorkloadSpec("raft.resend", wl_resend.__doc__ or "", wl_resend),
        WorkloadSpec("raft.elections", wl_elections.__doc__ or "", wl_elections),
        WorkloadSpec("raft.partition", wl_partition.__doc__ or "", wl_partition),
        WorkloadSpec("raft.quorum", wl_quorum.__doc__ or "", wl_quorum),
        WorkloadSpec("raft.churn", wl_churn.__doc__ or "", wl_churn),
        WorkloadSpec("raft.snapshot", wl_snapshot.__doc__ or "", wl_snapshot),
        WorkloadSpec("raft.idle", wl_idle.__doc__ or "", wl_idle, duration_ms=60_000.0),
    ]
