"""Shared factories for synthetic traces, edges, and states in tests."""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.instrument.plan import InjectionPlan
from repro.instrument.trace import FaultEvent, RunGroup, RunTrace
from repro.types import CausalEdge, EdgeType, FaultKey, InjKind, LocalState


def state(stack: Tuple[str, str] = ("f1", "f0"), branches: Tuple = ()) -> LocalState:
    return LocalState(call_stack=stack, branch_trace=branches)


def exc(name: str) -> FaultKey:
    return FaultKey(name, InjKind.EXCEPTION)


def neg(name: str) -> FaultKey:
    return FaultKey(name, InjKind.NEGATION)


def dly(name: str) -> FaultKey:
    return FaultKey(name, InjKind.DELAY)


def edge(
    src: FaultKey,
    dst: FaultKey,
    etype: EdgeType = EdgeType.E_I,
    test_id: str = "t1",
    src_states: Iterable[LocalState] = (),
    dst_states: Iterable[LocalState] = (),
) -> CausalEdge:
    return CausalEdge(
        src=src,
        dst=dst,
        etype=etype,
        test_id=test_id,
        src_states=frozenset(src_states),
        dst_states=frozenset(dst_states),
    )


def run_trace(
    test_id: str = "t1",
    injection: Optional[InjectionPlan] = None,
    events: Iterable[FaultEvent] = (),
    loop_counts: Optional[dict] = None,
    loop_states: Optional[dict] = None,
) -> RunTrace:
    trace = RunTrace(test_id=test_id, injection=injection)
    for ev in events:
        trace.record_event(ev)
    for site, count in (loop_counts or {}).items():
        trace.loop_counts[site] = count
        trace.reached.add(site)
    for site, states in (loop_states or {}).items():
        trace.loop_states[site] = set(states)
    return trace


def group(
    test_id: str,
    injection: Optional[InjectionPlan],
    runs: Iterable[RunTrace],
) -> RunGroup:
    g = RunGroup(test_id=test_id, injection=injection)
    for run in runs:
        g.add(run)
    return g


def event(fault: FaultKey, at: float = 1.0, st: Optional[LocalState] = None, injected: bool = False) -> FaultEvent:
    return FaultEvent(fault, at, st if st is not None else state(), injected=injected)
