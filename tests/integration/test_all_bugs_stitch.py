"""Every Table 3 bug is stitchable from its designated experiments.

For each of the 15 seeded bugs this runs only the (fault, test) injections
its propagation chain needs and asserts the beam search closes a cycle
containing the bug's core faults — validating FCA, the compatibility check,
and the stitching end to end (the 3PA benchmark then measures how reliably
the budget allocation *finds* these experiments).
"""

import pytest

from repro.config import CSnakeConfig
from repro.core.beam import BeamSearch
from repro.core.driver import ExperimentDriver
from repro.systems import get_system
from repro.types import FaultKey, InjKind

D, E, N = InjKind.DELAY, InjKind.EXCEPTION, InjKind.NEGATION
CFG = dict(repeats=3, delay_values_ms=(250.0, 1000.0, 8000.0), seed=1234)

#: bug id -> (system, [(site, kind, test), ...]) — the designated chain.
CHAINS = {
    "H2-1": ("minihdfs2", [
        ("nn.lease.scan", D, "hdfs2.lease_writers"),
        ("dn.pipe.replica_exists", E, "hdfs2.ibr_cap"),
        ("nn.ibr.overflow", E, "hdfs2.lease_abandon"),
    ]),
    "H2-2": ("minihdfs2", [
        ("nn.edit.flush", D, "hdfs2.ha_editlog"),
        ("dn.ibr.rpc", E, "hdfs2.ibr_interval"),
    ]),
    "H2-3": ("minihdfs2", [
        ("dn.rec.attempts", D, "hdfs2.recovery_retry"),
        ("dn.rec.ioe", E, "hdfs2.recovery_retry"),
    ]),
    "H2-4": ("minihdfs2", [
        ("dn.pipe.packets", D, "hdfs2.pipe_heavy"),
        ("dn.pipe.ioe", E, "hdfs2.genstamp_recovery"),
        ("dn.rec.ioe", E, "hdfs2.genstamp_recovery"),
    ]),
    "H2-5": ("minihdfs2", [
        ("dn.cache.evict", D, "hdfs2.cache_small"),
        ("dn.pipe.ioe", E, "hdfs2.bad_dn_report"),
        ("nn.dn.is_stale", N, "hdfs2.replication_storm"),
    ]),
    "H2-6": ("minihdfs2", [
        ("nn.ibr.entries", D, "hdfs2.load_balancer"),
        ("dn.ibr.rpc", E, "hdfs2.ibr_interval"),
    ]),
    "H3-1": ("minihdfs3", [
        ("dn3.del.work", D, "hdfs3.deletion_heavy"),
        ("dn.pipe.ioe", E, "hdfs3.bad_dn_report"),
        ("nn.dn.is_stale", N, "hdfs3.deletion_heavy"),
    ]),
    "H3-2": ("minihdfs3", [
        ("dn3.recon.work", D, "hdfs3.reconstruction"),
        ("dn3.recon.fetch", E, "hdfs3.reconstruction"),
    ]),
    "HB-1": ("minihbase", [
        ("rs.wal.roll", D, "hbase.write_heavy"),
        ("rs.wal.premature_eof", N, "hbase.write_heavy"),
    ]),
    "HB-2": ("minihbase", [
        ("rs.deploy.regions", D, "hbase.create_heavy"),
        ("hm.assign.rpc", E, "hbase.rs_fault_tolerance"),
        ("hm.balancer.can_place", N, "hbase.balancer_long"),
    ]),
    "FL-1": ("miniflink", [
        ("tm.sink.process", D, "flink.stream_heavy"),
        ("tm.head.fail", E, "flink.restart_strategy"),
        ("jm.sink.cancel", E, "flink.rescale"),
    ]),
    "FL-2": ("miniflink", [
        ("tm.agg.process", D, "flink.checkpoint_barrier"),
        ("tm.barrier.fail", E, "flink.checkpoint_failover"),
        ("tm.state.transition", E, "flink.checkpoint_failover"),
    ]),
    "OZ-1": ("miniozone", [
        ("scm.eventq.dispatch", D, "ozone.reports_heavy"),
        ("scm.eventq.dispatch_ok", N, "ozone.requeue"),
    ]),
    "OZ-2": ("miniozone", [
        ("scm.hb.updates", D, "ozone.hb_pipeline"),
        ("scm.pipeline.is_healthy", N, "ozone.hb_pipeline"),
    ]),
    "OZ-3": ("miniozone", [
        ("dn.repl.handle", D, "ozone.repl_heavy"),
        ("dn.repl.push", E, "ozone.pipeline_small"),
        ("scm.pipeline.create_ioe", E, "ozone.fallback_repl"),
    ]),
}

_DRIVERS = {}


def _driver(system):
    if system not in _DRIVERS:
        _DRIVERS[system] = ExperimentDriver(get_system(system), CSnakeConfig(**CFG))
    return _DRIVERS[system]


@pytest.mark.parametrize("bug_id", sorted(CHAINS))
def test_bug_cycle_stitches_from_designated_experiments(bug_id):
    system, chain = CHAINS[bug_id]
    driver = _driver(system)
    for site, kind, test in chain:
        driver.run_experiment(FaultKey(site, kind), test)
    beam = BeamSearch(CSnakeConfig(beam_width=50_000, **CFG))
    cycles = beam.search(driver.edges.all_edges()).cycles
    bug = driver.spec.bug(bug_id)
    matching = [c for c in cycles if bug.matches(c)]
    assert matching, "%s: no cycle contains core faults %s" % (
        bug_id,
        sorted(str(f) for f in bug.core_faults),
    )
