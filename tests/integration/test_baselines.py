"""Integration tests for the three comparison baselines."""

import pytest

from repro.baselines import BlackboxFuzzer, NaiveSelfCausation, RandomAllocator
from repro.config import CSnakeConfig
from repro.core.driver import ExperimentDriver
from repro.instrument.analyzer import analyze
from repro.systems import get_system

FAST = dict(repeats=2, delay_values_ms=(2000.0,), seed=11)


class TestRandomAllocator:
    def test_uses_same_budget_and_runs_experiments(self):
        spec = get_system("toy")
        cfg = CSnakeConfig(**FAST)
        driver = ExperimentDriver(spec, cfg)
        faults = analyze(spec.registry).faults
        outcome = RandomAllocator(driver, faults, cfg).run()
        assert outcome.budget_total == cfg.budget_per_fault * len(faults)
        assert outcome.budget_used == outcome.budget_total
        # With replacement: unique experiments <= budget.
        assert len(outcome.records) <= outcome.budget_used
        assert driver.experiments_run == len(outcome.records)

    def test_deterministic_given_seed(self):
        spec = get_system("toy")
        cfg = CSnakeConfig(**FAST)

        def run_once():
            driver = ExperimentDriver(spec, cfg)
            faults = analyze(spec.registry).faults
            outcome = RandomAllocator(driver, faults, cfg).run()
            return [(r.fault, r.test_id) for r in outcome.records]

        assert run_once() == run_once()


class TestNaiveSelfCausation:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = CSnakeConfig(repeats=3, delay_values_ms=(500.0, 8000.0), seed=7)
        return NaiveSelfCausation(get_system("toy"), cfg).run()

    def test_misses_stitching_dependent_bugs(self, result):
        # Both toy cascades need either multiple injections or conditions
        # split across tests; single-fault self-causation finds neither.
        assert result.detected_bugs["TOY-1"] is False
        assert result.detected_bugs["TOY-2"] is False

    def test_records_self_causing_pairs(self, result):
        assert all(fault is not None and test for fault, test in result.self_causing)
        assert result.experiments > 0


class TestBlackboxFuzzer:
    def test_finds_none_of_the_seeded_cascades(self):
        cfg = CSnakeConfig(repeats=2, delay_values_ms=(2000.0,), seed=3)
        fuzzer = BlackboxFuzzer(get_system("toy"), cfg, runs_per_workload=2)
        result = fuzzer.run()
        assert result.runs == 2 * len(get_system("toy").workloads)
        assert result.crashes_injected + result.partitions_injected > 0
        assert not any(result.detected_bugs.values())
