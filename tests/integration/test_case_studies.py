"""Integration tests reproducing the paper's two case studies (§8.3).

Each test runs the exact (fault, test) injections the case study describes
and asserts the causal edges CSnake needs to stitch the cycle — including
the *negative* conditions (the edge must NOT appear in the incompatible
workloads, which is the whole point of conditional causality).
"""

import pytest

from repro.config import CSnakeConfig
from repro.core.beam import BeamSearch
from repro.core.driver import ExperimentDriver
from repro.systems import get_system
from repro.types import FaultKey, InjKind

D, E, N = InjKind.DELAY, InjKind.EXCEPTION, InjKind.NEGATION
CFG = dict(repeats=3, delay_values_ms=(250.0, 1000.0, 8000.0), seed=1234)


class TestHBaseRegionRetry:
    """§8.3.1: the HBase region-deployment retry cascade (HB-2)."""

    @pytest.fixture(scope="class")
    def driver(self):
        return ExperimentDriver(get_system("minihbase"), CSnakeConfig(**CFG))

    def test_t1_deploy_delay_times_out_assignment_rpc(self, driver):
        res = driver.run_experiment(
            FaultKey("rs.deploy.regions", D), "hbase.create_heavy"
        )
        assert FaultKey("hm.assign.rpc", E) in res.interference

    def test_t2_assignment_ioe_breaks_favored_balancer(self, driver):
        res = driver.run_experiment(
            FaultKey("hm.assign.rpc", E), "hbase.rs_fault_tolerance"
        )
        assert FaultKey("hm.balancer.can_place", N) in res.interference

    def test_five_server_decoy_shows_no_balancer_failure(self, driver):
        """The paper's t3-with-5-nodes: one exclusion cannot break the
        three-server minimum, so the causal relationship is conditional."""
        res = driver.run_experiment(FaultKey("hm.assign.rpc", E), "hbase.balancer_5rs")
        assert FaultKey("hm.balancer.can_place", N) not in res.interference

    def test_t3_negation_grows_deployment_loop(self, driver):
        res = driver.run_experiment(
            FaultKey("hm.balancer.can_place", N), "hbase.balancer_long"
        )
        assert FaultKey("rs.deploy.regions", D) in res.interference

    def test_three_test_cycle_stitches(self, driver):
        driver.run_experiment(FaultKey("rs.deploy.regions", D), "hbase.create_heavy")
        driver.run_experiment(FaultKey("hm.assign.rpc", E), "hbase.rs_fault_tolerance")
        driver.run_experiment(FaultKey("hm.balancer.can_place", N), "hbase.balancer_long")
        beam = BeamSearch(CSnakeConfig(**CFG))
        cycles = beam.search(driver.edges.all_edges()).cycles
        bug = driver.spec.bug("HB-2")
        matching = [c for c in cycles if bug.matches(c)]
        assert matching, "HB-2 cycle not stitched"
        best = min(matching, key=len)
        assert best.signature() == "1D|1E|1N"
        assert len(best.tests()) == 3  # three separate tests, as in §8.3.1


class TestHdfsIbrThrottling:
    """§8.3.2: the HDFS bypassed-IBR-throttling cascade (H2-6)."""

    @pytest.fixture(scope="class")
    def driver(self):
        return ExperimentDriver(get_system("minihdfs2"), CSnakeConfig(**CFG))

    def test_t1_processing_delay_times_out_report_rpc(self, driver):
        res = driver.run_experiment(
            FaultKey("nn.ibr.entries", D), "hdfs2.load_balancer"
        )
        assert FaultKey("dn.ibr.rpc", E) in res.interference

    def test_t1_shows_no_ibr_increase_without_throttling(self, driver):
        """In the load-balancer test IBRs already go with every heartbeat,
        so the injected RPC failure cannot increase report processing."""
        res = driver.run_experiment(FaultKey("dn.ibr.rpc", E), "hdfs2.load_balancer")
        assert FaultKey("nn.ibr.entries", D) not in res.interference

    def test_t2_rpc_failure_bypasses_interval(self, driver):
        res = driver.run_experiment(FaultKey("dn.ibr.rpc", E), "hdfs2.ibr_interval")
        assert FaultKey("nn.ibr.entries", D) in res.interference

    def test_two_test_cycle_stitches(self, driver):
        driver.run_experiment(FaultKey("nn.ibr.entries", D), "hdfs2.load_balancer")
        driver.run_experiment(FaultKey("dn.ibr.rpc", E), "hdfs2.ibr_interval")
        beam = BeamSearch(CSnakeConfig(**CFG))
        cycles = beam.search(driver.edges.all_edges()).cycles
        bug = driver.spec.bug("H2-6")
        matching = [c for c in cycles if bug.matches(c)]
        assert matching, "H2-6 cycle not stitched"
        best = min(matching, key=len)
        assert best.signature() == "1D|1E|0N"
        assert set(best.tests()) == {"hdfs2.load_balancer", "hdfs2.ibr_interval"}
