"""End-to-end detection coverage of the four seeded MiniDFS bugs.

Each bug's cycle is stitched from classic (code-level) experiments, but
detection is gated on a discovered edge from a *different* disturbance
class per bug: DFS-1 needs a node crash, DFS-2 a link partition, DFS-4
datagram loss (``msg_drop``), and DFS-3 the composed
``membership_churn`` schedule — a rolling crash/restart wave no
single-fault campaign can produce.  The campaign matrix therefore
separates the fault models sharply: classic-only detects nothing,
``--fault-kinds all`` detects DFS-1, DFS-2, and DFS-4, and only a
``--schedules`` campaign detects all four.
"""

import hashlib
import json

import pytest

from repro.config import CSnakeConfig
from repro.core.beam import BeamSearch
from repro.core.driver import ExperimentDriver
from repro.core.report import match_bugs
from repro.faults import expand_kinds, registered_schedules
from repro.pipeline import Pipeline
from repro.serialize import edge_to_obj
from repro.systems import get_system
from repro.types import FaultKey, InjKind

SMOKE = dict(repeats=2, delay_values_ms=(500.0, 8000.0), seed=7, budget_per_fault=2)

#: Designated experiments of each bug's propagation chain, plus the
#: trigger experiment whose discovered edge gates detection.
CHAINS = {
    "DFS-1": (
        [
            (FaultKey("nn.report.blocks", InjKind.DELAY), "dfs.hb_storm"),
            (FaultKey("dn.hb.rpc", InjKind.EXCEPTION), "dfs.hb_storm"),
        ],
        (FaultKey("env.node.nn0", InjKind("node_crash")), "dfs.hb_storm"),
    ),
    "DFS-2": (
        [
            (FaultKey("fo.rebuild.entries", InjKind.DELAY), "dfs.failover"),
            (FaultKey("dn.master.is_down", InjKind.NEGATION), "dfs.failover"),
        ],
        (FaultKey("env.link.dn1~nn0", InjKind("partition")), "dfs.failover"),
    ),
    "DFS-3": (
        [
            (FaultKey("dn.pipe.recv", InjKind.DELAY), "dfs.churn"),
            (FaultKey("nn.rerepl.rpc", InjKind.EXCEPTION), "dfs.churn"),
        ],
        (FaultKey("env.node.dn0", InjKind("membership_churn")), "dfs.churn"),
    ),
    "DFS-4": (
        [
            (FaultKey("dn.ack.build", InjKind.DELAY), "dfs.churn"),
            (FaultKey("nn.retry.rpc", InjKind.EXCEPTION), "dfs.churn"),
        ],
        (FaultKey("env.link.dn0~nn0", InjKind("msg_drop")), "dfs.churn"),
    ),
}


def _smoke_driver():
    return ExperimentDriver(
        get_system("minidfs"),
        CSnakeConfig(
            fault_kinds=expand_kinds("all"),
            schedules=tuple(registered_schedules()),
            **SMOKE,
        ),
    )


def _matching_cycles(driver, bug_id):
    beam = BeamSearch(CSnakeConfig(beam_width=50_000, **SMOKE))
    cycles = beam.search(driver.edges.all_edges()).cycles
    bug = driver.spec.bug(bug_id)
    return [c for c in cycles if bug.matches(c)]


@pytest.mark.parametrize("bug_id", sorted(CHAINS))
def test_designated_chain_stitches_cycle_and_trigger_gates_detection(bug_id):
    chain, trigger = CHAINS[bug_id]
    driver = _smoke_driver()
    for fault, test in chain:
        driver.run_experiment(fault, test)
    cycles = _matching_cycles(driver, bug_id)
    assert cycles, "no cycle contains %s's core faults" % bug_id
    bug = driver.spec.bug(bug_id)
    assert any(c.signature() == bug.signature for c in cycles)
    # Classic experiments alone: the cycle exists but no environment edge
    # was discovered, so the trigger-gated bug stays undetected.
    without = match_bugs(driver.spec, cycles, driver.edges.all_edges())
    assert bug_id not in [m.bug.bug_id for m in without if m.detected]
    # The designated disturbance reveals the trigger edge into the cycle.
    driver.run_experiment(*trigger)
    with_trigger = match_bugs(driver.spec, cycles, driver.edges.all_edges())
    assert bug_id in [m.bug.bug_id for m in with_trigger if m.detected]


def test_full_campaign_with_schedules_detects_all_four():
    """The acceptance campaign: default budget and sweeps, all fault
    kinds plus composed schedules, adaptive reallocation on."""
    cfg = CSnakeConfig(
        fault_kinds=expand_kinds("all"),
        schedules=tuple(registered_schedules()),
        adaptive_budget=True,
        seed=7,
    )
    report = Pipeline.default(get_system("minidfs"), cfg).run().get("report")
    assert report.detected_bugs == ["DFS-1", "DFS-2", "DFS-3", "DFS-4"]


def test_classic_campaign_detects_none():
    """Every seeded bug is environment-gated: the paper's classic
    three-kind campaign must come back clean on minidfs."""
    report = (
        Pipeline.default(get_system("minidfs"), CSnakeConfig(seed=7))
        .run()
        .get("report")
    )
    assert report.detected_bugs == []


def test_env_campaign_without_schedules_misses_dfs3():
    """Single environment faults detect the crash-, partition-, and
    drop-gated bugs but never the churn-gated one: DFS-3's trigger edge
    needs the rolling crash/restart wave only the composed schedule
    produces."""
    cfg = CSnakeConfig(
        fault_kinds=expand_kinds("all"), adaptive_budget=True, seed=7
    )
    report = Pipeline.default(get_system("minidfs"), cfg).run().get("report")
    assert "DFS-3" not in report.detected_bugs
    assert "DFS-1" in report.detected_bugs
    assert "DFS-2" in report.detected_bugs
    assert "DFS-4" in report.detected_bugs


def _digest(ctx):
    payload = {
        "report": ctx.get("report").to_dict(),
        "edges": [edge_to_obj(e) for e in ctx.driver.edges.all_edges()],
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def _scheduled_config(**overrides):
    base = dict(
        fault_kinds=expand_kinds("all"),
        schedules=tuple(registered_schedules()),
        adaptive_budget=True,
        **SMOKE,
    )
    base.update(overrides)
    return CSnakeConfig(**base)


def test_campaign_parity_across_backends_and_cache_temperature(tmp_path):
    """Serial cold ≡ thread warm ≡ process warm on the minidfs campaign
    with schedules and adaptive budget on — determinism-under-adaptivity
    must hold for the new system exactly as for the existing targets."""
    cache_dir = str(tmp_path / "cache")
    serial = Pipeline.default(
        get_system("minidfs"),
        _scheduled_config(experiment_backend="serial", cache_dir=cache_dir),
    ).run()
    warm = Pipeline.default(
        get_system("minidfs"),
        _scheduled_config(
            experiment_backend="thread", experiment_workers=3, cache_dir=cache_dir
        ),
    ).run()
    assert serial.driver.cache.misses > 0 and serial.driver.cache.hits == 0
    assert warm.driver.cache.hits > 0 and warm.driver.cache.misses == 0
    assert _digest(serial) == _digest(warm)
    try:
        proc = Pipeline.default(
            get_system("minidfs"),
            _scheduled_config(
                experiment_backend="process", experiment_workers=2, cache_dir=cache_dir
            ),
        ).run()
    except (ImportError, OSError, PermissionError) as exc:
        pytest.skip("process backend unavailable: %s" % exc)
    assert _digest(serial) == _digest(proc)
