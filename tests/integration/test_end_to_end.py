"""Integration tests: the full CSnake pipeline on the toy system."""

import pytest

from repro.config import CSnakeConfig
from repro.core import CSnake
from repro.systems import get_system

FAST = dict(repeats=3, delay_values_ms=(500.0, 2000.0, 8000.0), seed=7)


@pytest.fixture(scope="module")
def toy_run():
    detector = CSnake(get_system("toy"), CSnakeConfig(**FAST))
    report = detector.run()
    return detector, report


def test_detects_both_toy_bugs(toy_run):
    _, report = toy_run
    assert sorted(report.detected_bugs) == ["TOY-1", "TOY-2"]


def test_toy1_requires_multi_test_stitching(toy_run):
    _, report = toy_run
    match = next(m for m in report.bug_matches if m.bug.bug_id == "TOY-1")
    assert all(len(c.tests()) > 1 for c in match.cycles), (
        "TOY-1 should only be detectable by stitching across tests"
    )


def test_budget_respected(toy_run):
    detector, report = toy_run
    faults = len(detector.analysis.faults)
    assert report.budget_used <= detector.config.budget_per_fault * faults


def test_report_summary_consistent(toy_run):
    _, report = toy_run
    summary = report.summary()
    assert summary["cycles"] == len(report.cycles)
    assert summary["clusters"] == len(report.cycle_clusters)
    assert summary["tp_clusters"] <= summary["clusters"]
    assert sum(len(c) for c in report.cycle_clusters) == len(report.cycles)


def test_cycle_signatures_match_ground_truth(toy_run):
    _, report = toy_run
    for match in report.bug_matches:
        assert match.detected
        sigs = {c.signature() for c in match.cycles}
        assert match.bug.signature in sigs


def test_compat_check_reduces_cycles(toy_run):
    detector, report = toy_run
    from repro.core.beam import BeamSearch

    cfg = CSnakeConfig(compat_check=False, **FAST)
    unchecked = BeamSearch(cfg, detector.allocation.fault_scores).search(
        detector.driver.edges.all_edges()
    )
    assert len(unchecked.cycles) >= len(report.cycles)


def test_pipeline_stages_guarded():
    detector = CSnake(get_system("toy"), CSnakeConfig(**FAST))
    with pytest.raises(RuntimeError):
        detector.detect_cycles()
    with pytest.raises(RuntimeError):
        detector.report()
