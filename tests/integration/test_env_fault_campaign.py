"""End-to-end coverage of the environment fault kinds.

RAFT-5 is the ground-truth target seeded for the new kinds: an election
livelock whose *cycle* is stitched from classic experiments but whose
detection is gated on a discovered edge from an injected partition — the
environment disturbance that actually triggers the cascade.  A classic
campaign must therefore keep missing it, and a ``--fault-kinds all``
campaign must detect it alongside RAFT-1..4.
"""

import hashlib
import json

import pytest

from repro.config import CSnakeConfig
from repro.core.beam import BeamSearch
from repro.core.driver import ExperimentDriver
from repro.core.report import match_bugs
from repro.faults import expand_kinds
from repro.pipeline import Pipeline
from repro.serialize import edge_to_obj
from repro.systems import get_system
from repro.types import FaultKey, InjKind

CFG = dict(repeats=3, delay_values_ms=(250.0, 1000.0, 8000.0), seed=1234)

#: The designated experiments of RAFT-5's propagation chain.
RAFT5_CHAIN = [
    (FaultKey("ldr.reconnect.catchup", InjKind.DELAY), "raft.partition"),
    (FaultKey("flw.election.timed_out", InjKind.NEGATION), "raft.partition"),
]
RAFT5_TRIGGER = (FaultKey("env.link.raft0~raft1", InjKind("partition")), "raft.partition")


@pytest.fixture(scope="module")
def raft5_driver():
    driver = ExperimentDriver(
        get_system("miniraft"), CSnakeConfig(fault_kinds=expand_kinds("all"), **CFG)
    )
    for fault, test in RAFT5_CHAIN:
        driver.run_experiment(fault, test)
    return driver


def _raft5_cycles(driver):
    beam = BeamSearch(CSnakeConfig(beam_width=50_000, **CFG))
    cycles = beam.search(driver.edges.all_edges()).cycles
    bug = driver.spec.bug("RAFT-5")
    return bug, [c for c in cycles if bug.matches(c)]


def test_raft5_cycle_stitches_from_designated_experiments(raft5_driver):
    bug, matching = _raft5_cycles(raft5_driver)
    assert matching, "no cycle contains RAFT-5's core faults"


def test_raft5_detection_requires_the_partition_trigger_edge(raft5_driver):
    spec = raft5_driver.spec
    bug, cycles = _raft5_cycles(raft5_driver)
    # Classic experiments alone: the cycle exists but no partition edge
    # was discovered, so the trigger-gated bug stays undetected.
    without = match_bugs(spec, cycles, raft5_driver.edges.all_edges())
    assert "RAFT-5" not in [m.bug.bug_id for m in without if m.detected]
    # One injected partition reveals the trigger edge into the cycle.
    raft5_driver.run_experiment(*RAFT5_TRIGGER)
    with_trigger = match_bugs(spec, cycles, raft5_driver.edges.all_edges())
    assert "RAFT-5" in [m.bug.bug_id for m in with_trigger if m.detected]


def _digest(ctx):
    payload = {
        "report": ctx.get("report").to_dict(),
        "edges": [edge_to_obj(e) for e in ctx.driver.edges.all_edges()],
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def test_env_kind_campaign_parity_and_warm_cache(tmp_path):
    """Serial cold ≡ thread warm under the environment fault kinds."""
    smoke = dict(
        repeats=2,
        delay_values_ms=(500.0, 8000.0),
        seed=7,
        budget_per_fault=2,
        fault_kinds=expand_kinds("all"),
        cache_dir=str(tmp_path / "cache"),
    )
    serial = Pipeline.default(
        get_system("miniraft"),
        CSnakeConfig(experiment_backend="serial", **smoke),
    ).run()
    warm = Pipeline.default(
        get_system("miniraft"),
        CSnakeConfig(experiment_backend="thread", experiment_workers=3, **smoke),
    ).run()
    assert serial.driver.cache.misses > 0 and serial.driver.cache.hits == 0
    assert warm.driver.cache.hits > 0 and warm.driver.cache.misses == 0
    assert _digest(serial) == _digest(warm)


def test_env_kind_campaign_process_backend_parity():
    """Env-fault plans (params payloads) cross the process boundary intact."""
    smoke = dict(
        repeats=2,
        delay_values_ms=(500.0, 8000.0),
        seed=7,
        budget_per_fault=2,
        fault_kinds=expand_kinds("all"),
    )
    serial = Pipeline.default(
        get_system("miniraft"), CSnakeConfig(experiment_backend="serial", **smoke)
    ).run()
    try:
        proc = Pipeline.default(
            get_system("miniraft"),
            CSnakeConfig(experiment_backend="process", experiment_workers=2, **smoke),
        ).run()
    except (ImportError, OSError, PermissionError) as exc:
        pytest.skip("process backend unavailable: %s" % exc)
    assert _digest(serial) == _digest(proc)


def test_full_campaign_with_all_kinds_detects_raft_1_through_5():
    """The acceptance campaign: default budget and sweeps, all fault kinds."""
    cfg = CSnakeConfig(fault_kinds=expand_kinds("all"))
    report = Pipeline.default(get_system("miniraft"), cfg).run().get("report")
    assert report.detected_bugs == ["RAFT-1", "RAFT-2", "RAFT-3", "RAFT-4", "RAFT-5"]
