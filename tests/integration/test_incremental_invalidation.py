"""Incremental cache invalidation under a one-handler source edit.

The CACHE_SCHEMA 3 contract: experiment entries are keyed on the
injection site's *slice digest*, so editing one handler re-runs only the
experiments whose reachable slice contains the edit — everything else is
a warm hit.  The edit used here is the shared ``examples/diffrun``
behaviour-neutral one-liner in ``RaftNode.install_snapshot`` (the same
edit CI's bench-smoke job drives through the CLI).

The warm campaign runs in-process against the *edited tree's* analysis
(``SystemSpec.attach_slice_analysis``): cache keys see the edited
source, execution uses the live code.  Because the edit is
behaviour-neutral these coincide, and the subprocess-based CI job covers
the actually-executes-the-edit path.
"""

import json
from pathlib import Path

from examples.diffrun.edit_miniraft import make_edited_tree
from repro.analysis import TreeSource, analyze_system, diff_slices
from repro.config import CSnakeConfig
from repro.pipeline import Pipeline
from repro.systems import get_system

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Budget 6 (not the smoke default 2): under tighter budgets the 3PA
#: allocator can spend every phase at unchanged sites, leaving the
#: invalidation path unexercised.
CFG = dict(repeats=2, delay_values_ms=(2000.0,), seed=7, budget_per_fault=6)


def _cache_files(cache_dir):
    return {str(p) for p in Path(cache_dir).glob("*/*.json")}


def test_single_handler_edit_invalidates_only_changed_slices(tmp_path):
    cache_dir = tmp_path / "cache"
    cold_spec = get_system("miniraft")
    cold = Pipeline.default(
        cold_spec, CSnakeConfig(cache_dir=str(cache_dir), **CFG)
    ).run()
    assert cold.driver.cache.hits == 0 and cold.driver.cache.stores > 0
    cold_files = _cache_files(cache_dir)

    edited_root = make_edited_tree(tmp_path / "edited", REPO_ROOT)
    warm_spec = get_system("miniraft")
    edited = analyze_system(
        warm_spec, TreeSource(edited_root).sources(warm_spec.source_modules)
    )
    sdiff = diff_slices(cold_spec.slice_analysis(), edited)
    assert sdiff.changed_sites and sdiff.unchanged_sites
    # every miniraft workload entry point transitively reaches the edited
    # handler, so all profile entries (but not all experiments) re-run
    assert sdiff.changed_entries

    warm_spec.attach_slice_analysis(edited)
    warm = Pipeline.default(
        warm_spec, CSnakeConfig(cache_dir=str(cache_dir), **CFG)
    ).run()
    assert warm.driver.cache.hits > 0, "nothing reused across the edit"
    assert warm.driver.cache.misses > 0, "the edit invalidated nothing"

    changed_sites = set(sdiff.changed_sites)
    changed_entries = set(sdiff.changed_entries)
    fresh = sorted(_cache_files(cache_dir) - cold_files)
    assert fresh, "warm campaign stored no new entries"
    exp_misses = 0
    for path in fresh:
        entry = json.loads(Path(path).read_text())
        if entry["kind"] == "experiment":
            site = entry["key"]["fault"].rsplit(":", 1)[0]
            assert site in changed_sites, (
                "unchanged-slice experiment re-ran: %s" % site
            )
            exp_misses += 1
        else:
            assert entry["kind"] == "profile"
            assert entry["key"]["test_id"] in changed_entries, (
                "unchanged-entry profile re-ran: %s" % entry["key"]["test_id"]
            )
    assert exp_misses > 0, "budget never reached a changed-slice experiment"
    assert len(fresh) == warm.driver.cache.misses == warm.driver.cache.stores

    # Behaviour-neutral edit: the detection reports agree exactly.
    assert cold.get("report").to_dict() == warm.get("report").to_dict()


def test_edit_script_is_behaviour_neutral_and_anchored(tmp_path):
    """The shared edit script must keep producing a tree that differs from
    the live source in exactly one module."""
    root = make_edited_tree(tmp_path / "edited", REPO_ROOT)
    spec = get_system("miniraft")
    live = spec.slice_analysis()
    edited = analyze_system(spec, TreeSource(root).sources(spec.source_modules))
    sdiff = diff_slices(live, edited)
    assert sdiff.source_changed
    assert sdiff.changed_functions == (
        "repro.systems.miniraft.nodes:RaftNode.install_snapshot",
    )
    assert sdiff.added_functions == () and sdiff.removed_functions == ()


def test_minihdfs_datanode_edit_invalidates_only_changed_slices(tmp_path):
    """The same CACHE_SCHEMA 3 contract on a paper-evaluation system: a
    one-statement edit to the shared datanode write-pipeline handler
    (``DataNode.receive_block``) re-runs only experiments whose slice
    reaches the edit; namenode- and client-only paths stay warm."""
    from examples.diffrun.edit_minihdfs import make_edited_tree as edit_hdfs

    cache_dir = tmp_path / "cache"
    cold_spec = get_system("minihdfs2")
    cold = Pipeline.default(
        cold_spec, CSnakeConfig(cache_dir=str(cache_dir), **CFG)
    ).run()
    assert cold.driver.cache.hits == 0 and cold.driver.cache.stores > 0
    cold_files = _cache_files(cache_dir)

    edited_root = edit_hdfs(tmp_path / "edited", REPO_ROOT)
    warm_spec = get_system("minihdfs2")
    edited = analyze_system(
        warm_spec, TreeSource(edited_root).sources(warm_spec.source_modules)
    )
    sdiff = diff_slices(cold_spec.slice_analysis(), edited)
    assert sdiff.changed_functions == (
        "repro.systems.minihdfs.datanode:DataNode.receive_block",
    )
    assert sdiff.changed_sites and sdiff.unchanged_sites

    warm_spec.attach_slice_analysis(edited)
    warm = Pipeline.default(
        warm_spec, CSnakeConfig(cache_dir=str(cache_dir), **CFG)
    ).run()
    assert warm.driver.cache.hits > 0, "nothing reused across the edit"
    assert warm.driver.cache.misses > 0, "the edit invalidated nothing"

    changed_sites = set(sdiff.changed_sites)
    changed_entries = set(sdiff.changed_entries)
    for path in sorted(_cache_files(cache_dir) - cold_files):
        entry = json.loads(Path(path).read_text())
        if entry["kind"] == "experiment":
            site = entry["key"]["fault"].rsplit(":", 1)[0]
            assert site in changed_sites, (
                "unchanged-slice experiment re-ran: %s" % site
            )
        else:
            assert entry["kind"] == "profile"
            assert entry["key"]["test_id"] in changed_entries, (
                "unchanged-entry profile re-ran: %s" % entry["key"]["test_id"]
            )

    # Behaviour-neutral edit: the detection reports agree exactly.
    assert cold.get("report").to_dict() == warm.get("report").to_dict()
