"""Integration: an interrupted session resumes to a bit-identical report.

Simulates the acceptance scenario: a campaign killed right after the
allocation stage (its artifacts already persisted) is resumed and must
produce a report identical to an uninterrupted straight-through run —
experiment seeds are deterministic per (test, repetition), so nothing may
drift across the interruption.
"""

import pytest

from repro.config import CSnakeConfig
from repro.errors import SessionError
from repro.pipeline import EventRecorder, Pipeline, Session, default_stages
from repro.pipeline.events import STAGE_FINISHED, STAGE_RESUMED, STAGE_STARTED
from repro.systems import get_system

FAST = dict(repeats=3, delay_values_ms=(500.0, 2000.0, 8000.0), seed=7)


@pytest.fixture(scope="module")
def straight_report():
    ctx = Pipeline.default(get_system("toy"), CSnakeConfig(**FAST)).run()
    return ctx.get("report")


def test_interrupt_after_allocation_then_resume(tmp_path, straight_report):
    cfg = CSnakeConfig(**FAST)
    session = Session.attach(tmp_path, "toy", cfg)
    # "Crash" after the allocation stage: run only the first three stages.
    prefix = [s for s in default_stages() if s.name in ("analyze", "profile", "allocate")]
    Pipeline(get_system("toy"), cfg, stages=prefix, session=session).run()
    assert sorted(Session.open(tmp_path).completed) == [
        "allocation",
        "analysis",
        "profiles",
    ]

    recorder = EventRecorder()
    reopened = Session.open(tmp_path)
    ctx = Pipeline(
        get_system("toy"), reopened.config, session=reopened, observers=[recorder]
    ).run()

    # The completed prefix is loaded, not re-run; the tail runs live.
    for name in ("analyze", "profile", "allocate"):
        assert recorder.kinds(name) == [STAGE_RESUMED]
    assert recorder.kinds("search") == [STAGE_STARTED, STAGE_FINISHED]
    assert recorder.kinds("report") == [STAGE_STARTED, STAGE_FINISHED]

    assert ctx.get("report").to_dict() == straight_report.to_dict()


def test_interrupt_after_profile_reruns_allocation_identically(tmp_path, straight_report):
    cfg = CSnakeConfig(**FAST)
    session = Session.attach(tmp_path, "toy", cfg)
    prefix = [s for s in default_stages() if s.name in ("analyze", "profile")]
    Pipeline(get_system("toy"), cfg, stages=prefix, session=session).run()

    reopened = Session.open(tmp_path)
    ctx = Pipeline(get_system("toy"), reopened.config, session=reopened).run()
    assert ctx.get("report").to_dict() == straight_report.to_dict()


def test_resume_with_parallel_workers_is_identical(tmp_path, straight_report):
    cfg = CSnakeConfig(**FAST)
    session = Session.attach(tmp_path, "toy", cfg)
    prefix = [s for s in default_stages() if s.name in ("analyze", "profile")]
    Pipeline(get_system("toy"), cfg, stages=prefix, session=session).run()

    import dataclasses

    reopened = Session.open(tmp_path)
    parallel_cfg = dataclasses.replace(reopened.config, experiment_workers=4)
    ctx = Pipeline(get_system("toy"), parallel_cfg, session=reopened).run()
    assert ctx.get("report").to_dict() == straight_report.to_dict()


def test_completed_session_resumes_without_rerunning(tmp_path, straight_report):
    cfg = CSnakeConfig(**FAST)
    session = Session.attach(tmp_path, "toy", cfg)
    Pipeline(get_system("toy"), cfg, session=session).run()

    recorder = EventRecorder()
    reopened = Session.open(tmp_path)
    ctx = Pipeline(
        get_system("toy"), reopened.config, session=reopened, observers=[recorder]
    ).run()
    assert all(e.kind == STAGE_RESUMED for e in recorder.events if e.stage is not None)
    assert ctx.get("report").to_dict() == straight_report.to_dict()


def test_open_missing_session_raises(tmp_path):
    with pytest.raises(SessionError, match="manifest"):
        Session.open(tmp_path / "nope")
