"""End-to-end coverage of compositional fault schedules.

RAFT-6 is the ground-truth target seeded for k-fault compositions: a
restart catch-up probe livelock whose *cycle* is stitched from classic
experiments on the churn workload, but whose detection is gated on a
discovered edge from an injected ``partition_during_restart`` schedule —
the only disturbance that both restarts the follower (arming probes) and
silences its probe reply (growing the window).  A single-fault campaign,
even with every environment kind enabled, must therefore keep missing
it; a ``--schedules`` campaign must detect it while RAFT-1..5 results
stay bit-identical.
"""

import hashlib
import json

import pytest

from repro.config import CSnakeConfig
from repro.core.beam import BeamSearch
from repro.core.driver import ExperimentDriver
from repro.core.report import match_bugs
from repro.faults import expand_kinds, registered_schedules
from repro.pipeline import Pipeline
from repro.serialize import edge_to_obj
from repro.systems import get_system
from repro.types import FaultKey, InjKind

CFG = dict(repeats=3, delay_values_ms=(250.0, 1000.0, 8000.0), seed=1234)

#: The designated experiments of RAFT-6's propagation chain.
RAFT6_CHAIN = [
    (FaultKey("ldr.probe.scan", InjKind.DELAY), "raft.churn"),
    (FaultKey("flw.probe.rpc", InjKind.EXCEPTION), "raft.churn"),
]
RAFT6_TRIGGER = (
    FaultKey("env.node.raft1", InjKind("partition_during_restart")),
    "raft.churn",
)

SMOKE = dict(repeats=2, delay_values_ms=(500.0, 8000.0), seed=7, budget_per_fault=2)


@pytest.fixture(scope="module")
def raft6_driver():
    driver = ExperimentDriver(
        get_system("miniraft"),
        CSnakeConfig(
            fault_kinds=expand_kinds("all"),
            schedules=tuple(registered_schedules()),
            **CFG,
        ),
    )
    for fault, test in RAFT6_CHAIN:
        driver.run_experiment(fault, test)
    return driver


def _raft6_cycles(driver):
    beam = BeamSearch(CSnakeConfig(beam_width=50_000, **CFG))
    cycles = beam.search(driver.edges.all_edges()).cycles
    bug = driver.spec.bug("RAFT-6")
    return bug, [c for c in cycles if bug.matches(c)]


def test_raft6_cycle_stitches_from_designated_experiments(raft6_driver):
    bug, matching = _raft6_cycles(raft6_driver)
    assert matching, "no cycle contains RAFT-6's core faults"
    assert bug.signature == "1D|1E|0N"
    assert any(c.signature() == bug.signature for c in matching)


def test_raft6_detection_requires_the_schedule_trigger_edge(raft6_driver):
    spec = raft6_driver.spec
    bug, cycles = _raft6_cycles(raft6_driver)
    # Classic + single-environment experiments alone: the cycle exists
    # but no composed-schedule edge was discovered, so the trigger-gated
    # bug stays undetected — a single crash does not silence the probe
    # reply, and a single partition does not arm restart probes.
    without = match_bugs(spec, cycles, raft6_driver.edges.all_edges())
    assert "RAFT-6" not in [m.bug.bug_id for m in without if m.detected]
    # One injected partition-during-restart schedule reveals the trigger
    # edge into the cycle.
    raft6_driver.run_experiment(*RAFT6_TRIGGER)
    with_trigger = match_bugs(spec, cycles, raft6_driver.edges.all_edges())
    assert "RAFT-6" in [m.bug.bug_id for m in with_trigger if m.detected]


def test_single_env_faults_do_not_form_the_trigger_edge():
    """No single-fault injection — crash, partition, or drop — reaches
    RAFT-6's cycle: the trigger needs the composition."""
    driver = ExperimentDriver(
        get_system("miniraft"), CSnakeConfig(fault_kinds=expand_kinds("all"), **CFG)
    )
    for fault, test in RAFT6_CHAIN:
        driver.run_experiment(fault, test)
    for site in ("env.node.raft1", "env.link.raft0~raft1"):
        kind = "node_crash" if "node" in site else "partition"
        driver.run_experiment(FaultKey(site, InjKind(kind)), "raft.churn")
    bug, cycles = _raft6_cycles(driver)
    matches = match_bugs(driver.spec, cycles, driver.edges.all_edges())
    assert "RAFT-6" not in [m.bug.bug_id for m in matches if m.detected]


def _digest(ctx):
    payload = {
        "report": ctx.get("report").to_dict(),
        "edges": [edge_to_obj(e) for e in ctx.driver.edges.all_edges()],
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def _scheduled_config(**overrides):
    base = dict(
        fault_kinds=expand_kinds("all"),
        schedules=tuple(registered_schedules()),
        adaptive_budget=True,
        **SMOKE,
    )
    base.update(overrides)
    return CSnakeConfig(**base)


def test_scheduled_adaptive_campaign_parity_and_warm_cache(tmp_path):
    """Serial cold ≡ thread warm ≡ process warm with schedules enabled
    *and* adaptive budget on — the determinism-under-adaptivity rule,
    end to end, across cache temperature."""
    cache_dir = str(tmp_path / "cache")
    serial = Pipeline.default(
        get_system("miniraft"),
        _scheduled_config(experiment_backend="serial", cache_dir=cache_dir),
    ).run()
    warm = Pipeline.default(
        get_system("miniraft"),
        _scheduled_config(
            experiment_backend="thread", experiment_workers=3, cache_dir=cache_dir
        ),
    ).run()
    assert serial.driver.cache.misses > 0 and serial.driver.cache.hits == 0
    assert warm.driver.cache.hits > 0 and warm.driver.cache.misses == 0
    assert _digest(serial) == _digest(warm)
    try:
        proc = Pipeline.default(
            get_system("miniraft"),
            _scheduled_config(
                experiment_backend="process", experiment_workers=2, cache_dir=cache_dir
            ),
        ).run()
    except (ImportError, OSError, PermissionError) as exc:
        pytest.skip("process backend unavailable: %s" % exc)
    assert _digest(serial) == _digest(proc)


def test_schedules_leave_single_fault_results_bit_identical():
    """Enabling --schedules must not change what any *single-fault*
    experiment produces: the same (fault, test) pair yields byte-identical
    edges with and without schedules in the config.  (Campaign-level
    allocations differ, since schedules add faults to the space — the
    invariant lives at the experiment level.)"""
    pairs = [
        (FaultKey("ldr.reconnect.catchup", InjKind.DELAY), "raft.partition"),
        (FaultKey("flw.election.timed_out", InjKind.NEGATION), "raft.partition"),
        (FaultKey("env.link.raft0~raft1", InjKind("partition")), "raft.partition"),
        (FaultKey("env.node.raft1", InjKind("node_crash")), "raft.churn"),
    ] + RAFT6_CHAIN

    def edges_with(config):
        driver = ExperimentDriver(get_system("miniraft"), config)
        for fault, test in pairs:
            driver.run_experiment(fault, test)
        return [
            json.dumps(edge_to_obj(e), sort_keys=True)
            for e in driver.edges.all_edges()
        ]

    plain = edges_with(
        CSnakeConfig(fault_kinds=expand_kinds("all"), **CFG)
    )
    scheduled = edges_with(
        CSnakeConfig(
            fault_kinds=expand_kinds("all"),
            schedules=tuple(registered_schedules()),
            adaptive_budget=True,
            **CFG,
        )
    )
    assert plain == scheduled and plain


def test_full_campaign_with_schedules_detects_raft_6():
    """The acceptance campaign: default budget and sweeps, all fault
    kinds plus the composed schedules, adaptive reallocation on — detects
    schedule-gated RAFT-6 on top of RAFT-1..5.

    Adaptivity is what makes the k=2 space affordable: the composed
    anchors surface as promising after phase 1 and earn repeats on fresh
    workloads (the churn test among them).  Without reallocation the
    fixed per-fault budget never draws (partition_during_restart,
    raft.churn) and the campaign keeps missing RAFT-6 — the contrast is
    asserted, not assumed."""

    def detected(adaptive):
        cfg = CSnakeConfig(
            fault_kinds=expand_kinds("all"),
            schedules=tuple(registered_schedules()),
            adaptive_budget=adaptive,
        )
        report = Pipeline.default(get_system("miniraft"), cfg).run().get("report")
        return report.detected_bugs

    assert detected(adaptive=True) == [
        "RAFT-1", "RAFT-2", "RAFT-3", "RAFT-4", "RAFT-5", "RAFT-6",
    ]
    assert detected(adaptive=False) == [
        "RAFT-1", "RAFT-2", "RAFT-3", "RAFT-4", "RAFT-5",
    ]
