"""Integration tests for campaign-as-a-service (manager + agents).

Everything here uses the **stdlib** HTTP server and transport (or the
in-process :class:`LocalTransport`): FastAPI must not be required for
any of it, because the acceptance contract is that the service works on
a bare Python install.  The invariant under test throughout is the one
the executor contract promises: a remote campaign's digest is
bit-identical to a serial one — cold, warm, and across an agent death
mid-run.
"""

import threading

import pytest

from repro.config import CSnakeConfig
from repro.pipeline import Pipeline
from repro.pipeline.executor import make_executor
from repro.service.agent import Agent
from repro.service.http import HttpTransport, ManagerServer
from repro.service.manager import ManagerCore, campaign_digest
from repro.systems import get_system

#: Small but non-trivial toy campaign: a few dozen tasks, seconds to run.
CFG = dict(repeats=2, delay_values_ms=(500.0,), seed=3, budget_per_fault=2)


def _serial(config=None):
    return Pipeline.default(get_system("toy"), config or CSnakeConfig(**CFG)).run()


def _agent_thread(transport, **kwargs):
    agent = Agent(transport, **kwargs)
    thread = threading.Thread(
        target=agent.run, kwargs={"idle_exit_s": 20.0}, daemon=True
    )
    thread.start()
    return agent, thread


@pytest.fixture(scope="module")
def serial_digest():
    return campaign_digest(_serial())


def test_remote_backend_over_stdlib_http_matches_serial(serial_digest, tmp_path):
    """Cold and warm remote runs over real HTTP ≡ serial, and the shared
    experiment cache short-circuits the warm run's agent-side work."""
    cache_dir = str(tmp_path / "cache")
    with ManagerServer(port=0) as server:
        agent, thread = _agent_thread(
            HttpTransport(server.url), workers=2, name="it-a"
        )
        try:
            config = CSnakeConfig(
                experiment_backend="remote",
                manager_url=server.url,
                cache_dir=cache_dir,
                **CFG,
            )
            cold = Pipeline.default(get_system("toy"), config).run()
            assert campaign_digest(cold) == serial_digest
            warm = Pipeline.default(get_system("toy"), config).run()
            assert campaign_digest(warm) == serial_digest
        finally:
            agent.stop()
            thread.join(timeout=10.0)
        # The agent executed the cold run and reported warm-cache hits on
        # the second: its counters travel back with every completion.
        stats = server.core.stats()
        fleet = {a["name"]: a["cache"] for a in stats["agents"]}
        assert fleet["it-a"]["stores"] > 0
        assert fleet["it-a"]["hits"] > 0
    assert stats["tasks"]["executed"] == stats["tasks"]["total"]
    assert stats["tasks"]["queued"] == stats["tasks"]["leased"] == 0


def test_agent_death_mid_run_is_absorbed(serial_digest):
    """An agent that leases a batch and vanishes without completing or
    heartbeating (``fail_after_tasks``) must not change the outcome: the
    reaper re-queues its held tasks for the survivor and the campaign
    digest stays identical to serial."""
    core = ManagerCore(lease_ttl_s=1.5)
    with ManagerServer(core=core, port=0) as server:
        doomed, doomed_thread = _agent_thread(
            HttpTransport(server.url), workers=2, name="doomed",
            fail_after_tasks=3,
        )
        survivor, survivor_thread = _agent_thread(
            HttpTransport(server.url), workers=2, name="survivor"
        )
        try:
            config = CSnakeConfig(
                experiment_backend="remote", manager_url=server.url, **CFG
            )
            ctx = Pipeline.default(get_system("toy"), config).run()
            assert campaign_digest(ctx) == serial_digest
        finally:
            doomed.stop()
            survivor.stop()
            doomed_thread.join(timeout=10.0)
            survivor_thread.join(timeout=10.0)
        assert doomed.died, "the fail_after_tasks hook never fired"
        stats = core.stats()
        assert stats["tasks"]["requeued"] > 0, "the reaper never reclaimed a lease"
        assert stats["tasks"]["queued"] == stats["tasks"]["leased"] == 0


def test_concurrent_campaigns_share_the_queue_without_double_execution():
    """Two identical campaigns submitted to one manager dedup at the task
    queue: every (fault, test) pair executes exactly once, the second
    campaign rides the first one's results, and both reports agree.

    The second campaign differs in an execution-only knob
    (``experiment_workers``) — result-affecting identity, not submitted
    config bytes, is what dedups."""
    core = ManagerCore(lease_ttl_s=10.0)
    agent, thread = _agent_thread(core, workers=2, name="shared")
    config_obj = dict(CFG)
    try:
        first = core.start_campaign("toy", config_obj, label="first")["campaign"]
        second = core.start_campaign(
            "toy", dict(config_obj, experiment_workers=5), label="second"
        )["campaign"]
        a = core.wait_campaign(first, timeout_s=120.0)
        b = core.wait_campaign(second, timeout_s=120.0)
    finally:
        agent.stop()
        thread.join(timeout=10.0)
    assert a["state"] == "done", a
    assert b["state"] == "done", b
    assert a["digest"] == b["digest"]
    assert a["summary"] == b["summary"]

    stats = core.stats()["tasks"]
    # Exact counters: every unique task executed exactly once, every task
    # was shared by both campaigns, and no lease was ever lost.
    assert stats["executed"] == stats["total"]
    assert stats["deduped"] == stats["total"]
    assert stats["failed"] == 0 and stats["requeued"] == 0
    # Both campaigns observed the full task set as their own progress.
    assert a["tasks"] == {"done": stats["total"], "total": stats["total"]}
    assert b["tasks"] == {"done": stats["total"], "total": stats["total"]}


def test_manager_side_campaign_matches_serial(serial_digest):
    """`repro submit` path: a campaign run manager-side over the in-process
    transport produces the serial digest and streams progress events."""
    core = ManagerCore(lease_ttl_s=10.0)
    agent, thread = _agent_thread(core, workers=2, name="evt")
    try:
        campaign = core.start_campaign("toy", dict(CFG), label="evt")["campaign"]
        status = core.wait_campaign(campaign, timeout_s=120.0)
    finally:
        agent.stop()
        thread.join(timeout=10.0)
    assert status["state"] == "done"
    assert status["digest"] == serial_digest
    events = core.campaign_events(campaign, after=0)["events"]
    kinds = [e["kind"] for e in events]
    assert kinds[0] == "campaign_submitted"
    assert kinds[-1] == "campaign_done"
    assert "task_done" in kinds
    # Progress counters in task events are monotonic and end complete.
    dones = [e["detail"]["done"] for e in events if e["kind"] == "task_done"]
    assert dones == sorted(dones)
    assert status["tasks"]["done"] == status["tasks"]["total"] > 0


def test_http_error_surfaces_as_repro_error():
    from repro.errors import ReproError

    with ManagerServer(port=0) as server:
        transport = HttpTransport(server.url)
        assert transport.health()["protocol"] == 1
        with pytest.raises(ReproError):
            transport.campaign_status("campaign-404")
