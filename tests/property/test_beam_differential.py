"""Differential tests: the vectorized beam kernel vs the reference oracle.

The vectorized :class:`BeamSearch` must be *bit-identical* to
:class:`ReferenceBeamSearch` — same cycles in the same order (down to
which interior-test representative survives chain dedup, which decides
the ``tests`` column of the final report), same ``chains_explored`` and
``levels``, and same :class:`CompatChecker` counters.  Edge sets are
drawn with unique ``key()``s (the kernel's precondition, guaranteed by
``EdgeDB`` in production); duplicate-key inputs exercise the fallback.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CSnakeConfig
from repro.core.beam import BeamSearch, ReferenceBeamSearch
from repro.types import CausalEdge, EdgeType, FaultKey, InjKind, LocalState

sites = st.sampled_from(["a", "b", "c", "d"])
kinds = st.sampled_from([InjKind.DELAY, InjKind.EXCEPTION, InjKind.NEGATION])
faults = st.builds(FaultKey, site_id=sites, kind=kinds)
states = st.frozensets(
    st.builds(
        LocalState,
        call_stack=st.tuples(st.sampled_from(["f", "g"]), st.just("h")),
        branch_trace=st.just(()),
    ),
    min_size=0,
    max_size=2,
)
edges = st.builds(
    CausalEdge,
    src=faults,
    dst=faults,  # src == dst draws produce self-edge (length-1) cycles
    etype=st.sampled_from(list(EdgeType)),
    test_id=st.sampled_from(["t1", "t2", "t3"]),
    src_states=states,
    dst_states=states,
)
# A small score palette on purpose: repeated values force score ties, so the
# lexicographic edge-key tie-break (the subtlest part of the interning
# argument) actually decides beam survival.
sim_scores = st.dictionaries(faults, st.sampled_from([0.0, 0.25, 0.5, 1.0]), max_size=6)
configs = st.builds(
    CSnakeConfig,
    beam_width=st.sampled_from([1, 2, 3, 500]),
    max_chain_len=st.sampled_from([3, 5]),
    max_delay_faults=st.sampled_from([None, 0, 1]),
    compat_check=st.booleans(),
)


def _unique_by_key(edge_list):
    """First occurrence per ``key()``, preserving input order (EdgeDB-like)."""
    seen = {}
    for e in edge_list:
        seen.setdefault(e.key(), e)
    return list(seen.values())


def assert_identical(edge_list, config, scores=None):
    ref = ReferenceBeamSearch(config, scores)
    vec = BeamSearch(config, scores)
    expected = ref.search(edge_list)
    got = vec.search(edge_list)
    # Cycles: same edge tuples, same canonical order — dataclass equality
    # covers edges, states, and test ids (the report's ``tests`` column).
    assert got.cycles == expected.cycles
    assert [c.key() for c in got.cycles] == [c.key() for c in expected.cycles]
    assert got.chains_explored == expected.chains_explored
    assert got.levels == expected.levels
    assert vec.compat.checks == ref.compat.checks
    assert vec.compat.rejected_fault == ref.compat.rejected_fault
    assert vec.compat.rejected_state == ref.compat.rejected_state


@given(st.lists(edges, max_size=14), configs, sim_scores)
@settings(max_examples=120, deadline=None)
def test_kernel_matches_reference(edge_list, config, scores):
    assert_identical(_unique_by_key(edge_list), config, scores)


@given(st.lists(edges, max_size=14), configs)
@settings(max_examples=60, deadline=None)
def test_kernel_matches_reference_on_duplicate_keys(edge_list, config):
    # No key dedup: duplicate keys route BeamSearch through the fallback,
    # which must (trivially but verifiably) agree with the oracle too.
    assert_identical(edge_list, config)


@given(st.lists(edges, max_size=12), sim_scores)
@settings(max_examples=40, deadline=None)
def test_narrow_beam_tie_breaks(edge_list, scores):
    # beam_width=1 makes every level a pure tie-break decision: any
    # divergence between integer-id ordering and key-list ordering would
    # change which single chain survives.
    config = CSnakeConfig(beam_width=1, max_chain_len=5)
    assert_identical(_unique_by_key(edge_list), config, scores)


@given(st.lists(edges, min_size=65, max_size=90), configs)
@settings(max_examples=20, deadline=None)
def test_parallel_reference_counters_are_deterministic(edge_list, config):
    # The per-chunk checker fix: a threaded reference search must produce
    # exactly the serial reference's counters (the queue is partitioned, so
    # each candidate match is counted once, and absorb() folds in order).
    # >64 queued chains is the threshold above which levels actually fan out.
    edge_list = _unique_by_key(edge_list)
    import dataclasses

    serial = ReferenceBeamSearch(config)
    serial.search(edge_list)
    threaded = ReferenceBeamSearch(dataclasses.replace(config, beam_workers=3))
    threaded.search(edge_list)
    assert threaded.compat.checks == serial.compat.checks
    assert threaded.compat.rejected_fault == serial.compat.rejected_fault
    assert threaded.compat.rejected_state == serial.compat.rejected_state
