"""Property-based tests: beam-search results are always *valid* cycles."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CSnakeConfig
from repro.core.beam import BeamSearch
from repro.core.cycles import INJECTION_EDGE_TYPES
from repro.types import CausalEdge, EdgeType, FaultKey, InjKind, LocalState

sites = st.sampled_from(["a", "b", "c", "d"])
kinds = st.sampled_from([InjKind.DELAY, InjKind.EXCEPTION, InjKind.NEGATION])
faults = st.builds(FaultKey, site_id=sites, kind=kinds)
states = st.frozensets(
    st.builds(
        LocalState,
        call_stack=st.tuples(st.sampled_from(["f", "g"]), st.just("h")),
        branch_trace=st.just(()),
    ),
    min_size=0,
    max_size=2,
)
edges = st.builds(
    CausalEdge,
    src=faults,
    dst=faults,
    etype=st.sampled_from([EdgeType.E_I, EdgeType.SP_I, EdgeType.E_D, EdgeType.SP_D]),
    test_id=st.sampled_from(["t1", "t2"]),
    src_states=states,
    dst_states=states,
)


@given(st.lists(edges, max_size=12), st.booleans())
@settings(max_examples=60, deadline=None)
def test_reported_cycles_are_sound(edge_list, compat):
    config = CSnakeConfig(
        beam_width=500, max_chain_len=4, compat_check=compat
    )
    result = BeamSearch(config).search(edge_list)
    from repro.core.compat import CompatChecker

    checker = CompatChecker(enabled=compat)
    for cycle in result.cycles:
        ring = list(cycle.edges)
        for e1, e2 in zip(ring, ring[1:] + ring[:1]):
            assert checker.match(e1, e2), (cycle, e1, e2)
        # No edge is used twice within one cycle.
        assert len({id(e) for e in ring}) == len(ring)


@given(st.lists(edges, max_size=12))
@settings(max_examples=40, deadline=None)
def test_delay_cap_is_respected(edge_list):
    config = CSnakeConfig(beam_width=500, max_chain_len=4, max_delay_faults=1)
    result = BeamSearch(config).search(edge_list)
    for cycle in result.cycles:
        delays = sum(
            1
            for e in cycle.edges
            if e.etype in INJECTION_EDGE_TYPES and e.src.kind is InjKind.DELAY
        )
        assert delays <= 1


@given(st.lists(edges, max_size=10))
@settings(max_examples=40, deadline=None)
def test_wider_beam_never_finds_fewer_cycles(edge_list):
    narrow = BeamSearch(CSnakeConfig(beam_width=2, max_chain_len=4)).search(edge_list)
    wide = BeamSearch(CSnakeConfig(beam_width=5_000, max_chain_len=4)).search(edge_list)
    assert len(wide.cycles) >= len(narrow.cycles)
