"""Property-based invariants of the MiniDFS target.

Three safety properties the seeded bugs must *not* break in the
fault-free (environment-churn-only) regime:

1. the replication factor of every preloaded block is restored after a
   single datanode crash — by re-replication if the node stays dead, by
   replica durability if it restarts;
2. the master's placement bookkeeping never invents a replica: every
   holder it records actually stores the block (replicas are a set and
   never shrink, so a recorded placement stays true forever);
3. master-side liveness is monotone under message drop: once a
   datanode's heartbeat link is severed, the datanode leaves the live
   view within the timeout and never re-enters while the link stays cut.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrument.runtime import Runtime
from repro.instrument.trace import RunTrace
from repro.sim import SimEnv
from repro.systems import get_system
from repro.systems.minidfs.nodes import DfsClient, DfsConfig
from repro.workloads.dfs import build_cluster


def make_cluster(cfg, seed):
    spec = get_system("minidfs")
    rt = Runtime(spec.registry, trace=RunTrace(test_id="dfs.prop"))
    env = SimEnv(seed=seed)
    env.runtime = rt
    rt.bind_env(env)
    return env, build_cluster(env, rt, cfg)


@given(
    dn_idx=st.integers(0, 2),
    crash_at=st.floats(5_000.0, 60_000.0),
    restart=st.booleans(),
    dead_ms=st.floats(1_000.0, 90_000.0),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=15, deadline=None)
def test_replication_factor_restored_after_single_crash(
    dn_idx, crash_at, restart, dead_ms, seed
):
    """Whatever the crash/restart timing, every preloaded block ends with
    at least ``replication_factor`` replicas on non-crashed datanodes:
    re-replication covers a permanent death, durability covers a restart,
    and a death shorter than the liveness timeout never loses anything."""
    cfg = DfsConfig(rerepl_enabled=True, auto_failover=False)
    env, nodes = make_cluster(cfg, seed)
    victim = nodes[1 + dn_idx]
    env.schedule_at(crash_at, None, victim.crash)
    if restart:
        env.schedule_at(crash_at + dead_ms, None, victim.restart)
    env.run(crash_at + dead_ms + 150_000.0)
    dns = [n for n in nodes[1:] if not n.crashed]
    for block in range(cfg.preload_blocks):
        holders = [d.name for d in dns if block in d.replicas]
        assert len(holders) >= cfg.replication_factor, (block, holders)


@given(
    dn_idx=st.integers(0, 2),
    crash_at=st.floats(10_000.0, 50_000.0),
    dead_ms=st.floats(1_000.0, 60_000.0),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=15, deadline=None)
def test_master_never_records_a_phantom_replica(dn_idx, crash_at, dead_ms, seed):
    """Every holder in the master's block map actually stores the block —
    through pipeline writes, incremental reports, re-replication
    transfers, and a crash/restart's re-registration alike.  And a block
    is never placed twice on one node (replica sets, not lists)."""
    cfg = DfsConfig(rerepl_enabled=True, auto_failover=False)
    env, nodes = make_cluster(cfg, seed)
    rt = env.runtime
    client = DfsClient(env, rt, nodes, 0, writes_per_tick=2, reads_per_tick=1,
                       interval_ms=4_000.0)
    victim = nodes[1 + dn_idx]
    env.schedule_at(crash_at, None, victim.crash)
    env.schedule_at(crash_at + dead_ms, None, victim.restart)
    env.run(180_000.0)
    nn0 = nodes[0]
    by_name = {n.name: n for n in nodes}
    for block, holders in nn0.block_map.items():
        assert len(holders) <= cfg.n_datanodes
        for name in holders:
            assert block in by_name[name].replicas, (block, name)
    # An acknowledged client write implies a stored primary replica.
    for block in client.written:
        assert any(block in d.replicas for d in nodes[1:]), block


@given(
    dn_idx=st.integers(0, 2),
    cut_at=st.floats(10_000.0, 60_000.0),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=15, deadline=None)
def test_liveness_monotone_under_message_drop(dn_idx, cut_at, seed):
    """Sever one datanode's link to the master: the datanode drops out of
    the master's live view within the heartbeat timeout and never
    re-enters while the link stays cut — and the drop never bleeds into
    the other datanodes' liveness."""
    cfg = DfsConfig(auto_failover=False)
    env, nodes = make_cluster(cfg, seed)
    nn0, victim = nodes[0], nodes[1 + dn_idx]
    others = [n.name for n in nodes[1:] if n is not victim]
    env.schedule_at(cut_at, None, env.partition_names, victim.name, nn0.name)
    horizon = cut_at + cfg.dn_timeout_ms + 60_000.0
    probes = []

    def probe():
        live = set(nn0.live_view())
        probes.append((env.now, victim.name in live, all(o in live for o in others)))

    t = 0.0
    while t < horizon:
        env.schedule_at(t, None, probe)
        t += 2_500.0
    env.run(horizon)
    dead_by = cut_at + cfg.dn_timeout_ms + 4_000.0
    seen_dead = False
    for at, victim_live, others_live in probes:
        assert others_live, at  # the cut never affects the other links
        if at < cut_at:
            assert victim_live, at  # heartbeats keep it live before the cut
        if at >= dead_by:
            assert not victim_live, at
        if seen_dead:
            assert not victim_live, at  # monotone: no re-entry while cut
        seen_dead = seen_dead or (at >= cut_at and not victim_live)
