"""Property-style round-trip tests for the fault-model codecs.

For **every registered fault model** — including the environment kinds —
``plan_to_obj``/``plan_from_obj`` and the experiment-cache entry
encode/decode must be exact inverses, through a real JSON round-trip
(the session and cache files are JSON on disk).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import ExperimentCache
from repro.config import CSnakeConfig
from repro.core.fca import FcaResult
from repro.faults import all_models, model_for
from repro.instrument.plan import InjectionPlan, make_params
from repro.instrument.trace import FaultEvent, RunGroup, RunTrace
from repro.serialize import (
    fault_from_obj,
    fault_to_obj,
    group_from_obj,
    group_to_obj,
    plan_from_obj,
    plan_to_obj,
    trace_from_obj,
    trace_to_obj,
)
from repro.systems import get_system
from repro.types import FaultKey, InjKind, LocalState

CONFIG = CSnakeConfig()

#: A representative injectable site per site kind each model targets.
SITE_FOR_KIND = {
    "throw": "sys.a.throw",
    "lib_call": "sys.a.rpc",
    "loop": "sys.a.loop",
    "detector": "sys.a.is_ok",
    "env_node": "env.node.n1",
    "env_link": "env.link.a~b",
}


def _via_json(obj):
    return json.loads(json.dumps(obj, sort_keys=True))


def _representative_faults(model):
    return [
        FaultKey(SITE_FOR_KIND[site_kind.value], model.kind)
        for site_kind in model.site_kinds
    ]


def _all_plans():
    plans = []
    for model in all_models():
        for fault in _representative_faults(model):
            plans.extend(model.plans_for(fault, CONFIG))
    return plans


def test_every_registered_model_contributes_plans():
    plans = _all_plans()
    kinds = {p.fault.kind.value for p in plans}
    assert kinds == set(m.kind_id for m in all_models())


@pytest.mark.parametrize("plan", _all_plans(), ids=str)
def test_plan_roundtrip_exact_inverse(plan):
    assert plan_from_obj(_via_json(plan_to_obj(plan))) == plan


@pytest.mark.parametrize("model", all_models(), ids=lambda m: m.kind_id)
def test_fault_key_roundtrip_per_model(model):
    for fault in _representative_faults(model):
        assert fault_from_obj(_via_json(fault_to_obj(fault))) == fault


@pytest.mark.parametrize("model", all_models(), ids=lambda m: m.kind_id)
def test_trace_with_injection_roundtrips(model):
    fault = _representative_faults(model)[0]
    plan = model.plans_for(fault, CONFIG)[0]
    trace = RunTrace(test_id="t1", injection=plan, seed=99)
    trace.record_event(
        FaultEvent(fault, 21_000.0, LocalState(("<env>", "<env>"), ()), injected=True)
    )
    trace.loop_counts["sys.a.loop"] = 7
    trace.reached.add("sys.a.loop")
    clone = trace_from_obj(_via_json(trace_to_obj(trace)))
    assert clone == trace
    assert clone.injection == plan


# ------------------------------------------------------- hypothesis sweeps


@given(
    warmup=st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
    restart=st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
    duration=st.floats(1.0, 1e6, allow_nan=False, allow_infinity=False),
    drop_p=st.floats(0.01, 1.0, allow_nan=False, allow_infinity=False),
    delay=st.floats(0.5, 1e5, allow_nan=False, allow_infinity=False),
)
@settings(max_examples=60)
def test_arbitrary_plan_parameters_roundtrip(warmup, restart, duration, drop_p, delay):
    plans = [
        InjectionPlan(FaultKey("l", InjKind.DELAY), delay_ms=delay, warmup_ms=warmup),
        InjectionPlan(
            FaultKey("env.node.n", InjKind("node_crash")),
            warmup_ms=warmup,
            params=make_params(restart_ms=restart),
        ),
        InjectionPlan(
            FaultKey("env.link.a~b", InjKind("partition")),
            warmup_ms=warmup,
            params=make_params(duration_ms=duration),
        ),
        InjectionPlan(
            FaultKey("env.link.a~b", InjKind("msg_drop")),
            warmup_ms=warmup,
            params=make_params(drop_p=drop_p),
        ),
    ]
    for plan in plans:
        assert plan_from_obj(_via_json(plan_to_obj(plan))) == plan


# ------------------------------------------------------------- cache entries


@pytest.fixture(scope="module")
def raft_cache(tmp_path_factory):
    spec = get_system("miniraft")
    return spec, ExperimentCache(tmp_path_factory.mktemp("cache"), spec, CONFIG)


def _env_fault_for(spec, model):
    site = next(
        s for s in spec.registry.env_sites() if s.kind in model.site_kinds
    )
    return FaultKey(site.site_id, model.kind)


@pytest.mark.parametrize(
    "model", [m for m in all_models()], ids=lambda m: m.kind_id
)
def test_cache_experiment_entry_roundtrip(model, raft_cache):
    spec, cache = raft_cache
    if model.environment:
        fault = _env_fault_for(spec, model)
    else:
        site = next(s for s in spec.registry if s.kind in model.site_kinds)
        fault = FaultKey(site.site_id, model.kind)
    plans = model.plans_for(fault, CONFIG)
    result = FcaResult(fault=fault, test_id="raft.steady")
    result.interference = [FaultKey("flw.append.apply", InjKind.DELAY)]
    key = cache.experiment_key("raft.steady", fault, plans)
    cache.store_experiment(key, "raft.steady", fault, result, runs=4)
    replayed = cache.lookup_experiment(key)
    assert replayed is not None
    got, runs = replayed
    assert runs == 4
    assert got.fault == fault and got.test_id == "raft.steady"
    assert got.interference == result.interference


def test_cache_profile_entry_roundtrip_with_env_injected_group(raft_cache):
    spec, cache = raft_cache
    fault = _env_fault_for(spec, model_for("partition"))
    plan = model_for("partition").plans_for(fault, CONFIG)[0]
    group = RunGroup(test_id="raft.steady", injection=plan)
    trace = RunTrace(test_id="raft.steady", injection=plan, seed=3)
    trace.loop_counts["flw.append.apply"] = 11
    trace.reached.add("flw.append.apply")
    group.add(trace)
    clone = group_from_obj(_via_json(group_to_obj(group)))
    assert clone.injection == plan
    assert clone.runs == group.runs


def test_plan_sweep_distinguishes_cache_keys(raft_cache):
    spec, cache = raft_cache
    fault = _env_fault_for(spec, model_for("partition"))
    short = [
        InjectionPlan(fault, warmup_ms=1.0, params=make_params(duration_ms=5_000.0))
    ]
    long = [
        InjectionPlan(fault, warmup_ms=1.0, params=make_params(duration_ms=50_000.0))
    ]
    assert cache.experiment_key("t", fault, short) != cache.experiment_key("t", fault, long)
