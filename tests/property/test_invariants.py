"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cycles import Cycle
from repro.core.idf import IdfVectorizer, cosine_distance, mean_pairwise_distance
from repro.core.stats import one_sided_t_pvalue
from repro.types import (
    CausalEdge,
    EdgeType,
    FaultKey,
    InjKind,
    LocalState,
    states_compatible,
)

fault_names = st.sampled_from(["a", "b", "c", "d", "e", "f"])
kinds = st.sampled_from(list(InjKind))
faults = st.builds(FaultKey, site_id=fault_names, kind=kinds)
docs = st.lists(st.lists(faults, max_size=5), min_size=1, max_size=8)


# ------------------------------------------------------------------ IDF


@given(docs)
def test_idf_vectors_are_unit_or_zero(interferences):
    corpus = sorted({f for doc in interferences for f in doc}) or [FaultKey("a", InjKind.DELAY)]
    vec = IdfVectorizer(corpus).fit(interferences)
    for doc in interferences:
        v = vec.vectorize(doc)
        norm = float(np.linalg.norm(v))
        assert norm == 0.0 or math.isclose(norm, 1.0, rel_tol=1e-9)
        assert (v >= 0.0).all()


@given(docs)
def test_idf_weights_nonincreasing_in_frequency(interferences):
    corpus = sorted({f for doc in interferences for f in doc})
    if not corpus:
        return
    vec = IdfVectorizer(corpus).fit(interferences)
    freq = {f: sum(1 for doc in interferences if f in doc) for f in corpus}
    pairs = sorted(freq.items(), key=lambda kv: kv[1])
    for (f1, n1), (f2, n2) in zip(pairs, pairs[1:]):
        if n1 <= n2:
            assert vec.idf_of(f1) >= vec.idf_of(f2) - 1e-12


@given(
    st.lists(st.floats(0.0, 1.0), min_size=2, max_size=6),
    st.lists(st.floats(0.0, 1.0), min_size=2, max_size=6),
)
def test_cosine_distance_symmetric_and_bounded(xs, ys):
    n = min(len(xs), len(ys))
    a, b = np.array(xs[:n]), np.array(ys[:n])
    d1, d2 = cosine_distance(a, b), cosine_distance(b, a)
    assert math.isclose(d1, d2, abs_tol=1e-12)
    assert -1e-9 <= d1 <= 1.0 + 1e-9


@given(st.lists(st.lists(st.floats(0.0, 1.0), min_size=3, max_size=3), min_size=1, max_size=6))
def test_mean_pairwise_distance_bounded(vectors):
    vecs = [np.array(v) for v in vectors]
    d = mean_pairwise_distance(vecs)
    assert -1e-9 <= d <= 1.0 + 1e-9


# ----------------------------------------------------------------- t-test


@given(
    st.lists(st.integers(0, 1000), min_size=2, max_size=8),
)
def test_identical_samples_never_significant(xs):
    assert one_sided_t_pvalue(xs, list(xs)) >= 0.1


@given(
    st.lists(st.integers(0, 1000), min_size=2, max_size=8),
    st.integers(1, 100),
)
def test_uniform_shift_up_is_directional(xs, shift):
    shifted = [x + shift for x in xs]
    p_up = one_sided_t_pvalue(shifted, xs)
    p_down = one_sided_t_pvalue(xs, shifted)
    assert p_up <= p_down + 1e-12


# ------------------------------------------------------------ local states


branches = st.lists(
    st.tuples(st.sampled_from(["b1", "b2", "b3"]), st.booleans()), max_size=3
).map(tuple)
stacks = st.tuples(st.sampled_from(["f", "g"]), st.sampled_from(["h", "i"]))
state_sets = st.frozensets(
    st.builds(LocalState, call_stack=stacks, branch_trace=branches), max_size=4
)


@given(state_sets, state_sets)
def test_state_compatibility_symmetric(a, b):
    assert states_compatible(a, b) == states_compatible(b, a)


@given(state_sets)
def test_nonempty_state_set_compatible_with_itself(states):
    assert states_compatible(states, states)


@given(state_sets, state_sets)
def test_shared_state_implies_compatibility(a, b):
    if a & b:
        assert states_compatible(a, b)


# ---------------------------------------------------------------- cycles


edge_types = st.sampled_from([EdgeType.E_I, EdgeType.E_D, EdgeType.SP_I, EdgeType.SP_D])


def _edges_for_cycle(names):
    out = []
    for i, name in enumerate(names):
        nxt = names[(i + 1) % len(names)]
        out.append(
            CausalEdge(
                src=FaultKey(name, InjKind.EXCEPTION),
                dst=FaultKey(nxt, InjKind.EXCEPTION),
                etype=EdgeType.E_I,
                test_id="t%d" % i,
            )
        )
    return out


@given(st.lists(fault_names, min_size=1, max_size=5, unique=True), st.integers(0, 4))
@settings(max_examples=50)
def test_cycle_key_rotation_invariant(names, rotation):
    edges = _edges_for_cycle(names)
    k = rotation % len(edges)
    rotated = edges[k:] + edges[:k]
    assert Cycle(tuple(edges)).key() == Cycle(tuple(rotated)).key()


@given(st.lists(fault_names, min_size=1, max_size=5, unique=True))
@settings(max_examples=50)
def test_cycle_signature_counts_sum_to_injections(names):
    cycle = Cycle(tuple(_edges_for_cycle(names)))
    sig = cycle.signature()
    d, e, n = (int(part[:-1]) for part in sig.split("|"))
    assert d + e + n == len(cycle.injected_faults())
