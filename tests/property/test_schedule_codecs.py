"""Property round-trips for the fault-schedule params codecs.

A schedule plan's ``events`` payload — concrete ``(site, kind, offset,
params)`` tuples — must survive ``plan_to_obj``/``plan_from_obj`` and the
``params_to_obj``/``params_from_obj`` codec exactly, through a real JSON
round-trip (session and cache files are JSON on disk), for *arbitrary*
event tuples, not just the bundled compositions.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CSnakeConfig
from repro.faults import registered_schedules, schedule_model_for
from repro.instrument.plan import InjectionPlan, make_params
from repro.serialize import plan_from_obj, plan_to_obj
from repro.systems import get_system
from repro.types import FaultKey, InjKind

CONFIG = CSnakeConfig()

_finite = dict(allow_nan=False, allow_infinity=False)

#: Arbitrary composed events: any site id, any registered single kind,
#: non-negative offsets, and float params with identifier-ish names.
_event = st.tuples(
    st.sampled_from(["env.node.raft0", "env.node.raft1", "env.link.raft0~raft1"]),
    st.sampled_from(["node_crash", "partition", "msg_drop"]),
    st.floats(0.0, 1e7, **_finite),
    st.lists(
        st.tuples(
            st.sampled_from(["restart_ms", "duration_ms", "drop_p", "x"]),
            st.floats(0.0, 1e7, **_finite),
        ),
        max_size=3,
        unique_by=lambda kv: kv[0],
    ).map(lambda kvs: tuple(sorted(kvs))),
)


def _via_json(obj):
    return json.loads(json.dumps(obj, sort_keys=True))


@given(
    name=st.sampled_from(["membership_churn", "partition_during_restart"]),
    events=st.lists(_event, min_size=1, max_size=6).map(tuple),
    warmup=st.floats(0.0, 1e6, **_finite),
)
@settings(max_examples=80)
def test_arbitrary_schedule_plans_roundtrip(name, events, warmup):
    plan = InjectionPlan(
        FaultKey("env.node.raft1", InjKind(name)),
        warmup_ms=warmup,
        params=make_params(events=events),
    )
    clone = plan_from_obj(_via_json(plan_to_obj(plan)))
    assert clone == plan
    assert clone.param("events") == events


@given(events=st.lists(_event, min_size=1, max_size=6).map(tuple))
@settings(max_examples=80)
def test_params_codec_exact_inverse(events):
    model = schedule_model_for("membership_churn")
    plan = InjectionPlan(
        FaultKey("env.node.raft0", model.kind),
        warmup_ms=1.0,
        params=make_params(events=events),
    )
    obj = _via_json(model.params_to_obj(plan))
    assert model.params_from_obj(obj) == (("events", events),)


@pytest.mark.parametrize("name", registered_schedules())
def test_bundled_schedule_plans_roundtrip_concretely(name):
    """The real resolved compositions (churn wave, partition-during-
    restart) round-trip through the session plan codec."""
    registry = get_system("miniraft").registry
    model = schedule_model_for(name)
    for anchor in ("env.node.raft0", "env.node.raft1", "env.node.raft2"):
        fault = FaultKey(anchor, model.kind)
        for plan in model.plans_for_spec(fault, CONFIG, registry):
            clone = plan_from_obj(_via_json(plan_to_obj(plan)))
            assert clone == plan
            assert model.plan_sites(clone) == model.plan_sites(plan)
