"""Property-based tests on the virtual-time simulation substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimConfig
from repro.sim import Node, SimEnv


def make_env(seed=0):
    return SimEnv(SimConfig(network_latency_ms=1.0, network_jitter_ms=0.0), seed=seed)


@given(st.lists(st.floats(0.1, 1000.0), min_size=1, max_size=20))
@settings(max_examples=50)
def test_events_execute_in_nondecreasing_time(delays):
    env = make_env()
    node = Node(env, "n")
    times = []
    for d in delays:
        env.schedule_at(d, node, lambda: times.append(env.now))
    env.run(10_000.0)
    assert times == sorted(times)
    assert len(times) == len(delays)


@given(
    st.lists(st.tuples(st.floats(0.1, 100.0), st.floats(0.0, 50.0)), min_size=1, max_size=12)
)
@settings(max_examples=50)
def test_busy_node_serialises_spins(jobs):
    """Total busy time equals the sum of spins; handlers never overlap."""
    env = make_env()
    node = Node(env, "n")
    spans = []

    def work(cost):
        start = env.now
        env.spin(cost)
        spans.append((start, env.now))

    for at, cost in jobs:
        env.schedule_at(at, node, work, cost)
    env.run(1e9)
    spans.sort()
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2 + 1e-6  # no overlap on a single-threaded node


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=20)
def test_same_seed_same_execution(seed):
    def run():
        env = make_env(seed)
        node = Node(env, "n")
        out = []
        env.every(node, 10.0, lambda: out.append(env.rng.random()), jitter_ms=5.0)
        env.run(200.0)
        return out

    assert run() == run()


@given(st.floats(1.0, 50.0), st.floats(0.1, 200.0))
@settings(max_examples=50)
def test_rpc_round_trip_time_accounting(latency, service):
    from repro.errors import RpcTimeout

    env = SimEnv(SimConfig(network_latency_ms=latency, network_jitter_ms=0.0), seed=1)
    a, b = Node(env, "a"), Node(env, "b")
    out = {}

    def callee():
        env.spin(service)
        return "ok"

    def caller():
        t0 = env.now
        try:
            env.rpc(b, callee, timeout_ms=10_000.0)
            out["elapsed"] = env.now - t0
        except RpcTimeout:
            out["elapsed"] = None

    env.schedule_at(1.0, a, caller)
    env.run(1e6)
    if out["elapsed"] is not None:
        expected = 2 * latency + service
        assert abs(out["elapsed"] - expected) < 1e-6


@given(st.floats(0.1, 100.0))
@settings(max_examples=30)
def test_crashed_node_never_executes(delay):
    env = make_env()
    node = Node(env, "n")
    node.crash()
    fired = []
    env.schedule_at(delay, node, lambda: fired.append(1))
    env.run(10_000.0)
    assert fired == []
