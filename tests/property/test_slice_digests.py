"""Property-based tests: slice digests are exactly as sensitive as they
should be.

The cache contract (DESIGN.md, docs/static-analysis.md) is that a site's
slice digest is invariant under *behaviour-neutral* source edits —
comments, blank lines, docstrings — and changes for any executable edit
inside the slice.  Hypothesis drives random combinations of both kinds
of edit against a small instrumented module.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_sources
from repro.instrument.sites import FaultSite
from repro.types import SiteKind

BASE = '''\
def run(svc):
    return svc.handle(4)


class Svc:
    def __init__(self, rt):
        self.rt = rt

    def handle(self, n):
        """DOC"""
        total = 0
        for item in self.rt.loop("svc.scan", range(n)):
            total += self.weigh(item)
        return total

    def weigh(self, item):
        return item * 3
'''

SITES = [FaultSite(site_id="svc.scan", kind=SiteKind.LOOP, system="demo", function="Svc.handle")]
ENTRIES = {"t-run": "demo.m:run"}

BASELINE = analyze_sources("demo", {"demo.m": BASE}, SITES, ENTRIES)

_WORDS = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789 ", min_size=0, max_size=30
)


def _neutral_edits():
    """Textual edits that must not change any digest."""
    comment = st.tuples(
        st.just("comment"), st.integers(min_value=0, max_value=len(BASE.splitlines())), _WORDS
    )
    blank = st.tuples(
        st.just("blank"),
        st.integers(min_value=0, max_value=len(BASE.splitlines())),
        st.integers(min_value=1, max_value=3),
    )
    docstring = st.tuples(st.just("docstring"), st.just(0), _WORDS)
    return st.lists(st.one_of(comment, blank, docstring), min_size=1, max_size=6)


def _apply_neutral(source, edits):
    for kind, pos, payload in edits:
        if kind == "docstring":
            source = source.replace('"""DOC"""', '"""%s"""' % payload, 1)
        else:
            lines = source.splitlines(keepends=True)
            pos = min(pos, len(lines))
            insert = "# %s\n" % payload if kind == "comment" else "\n" * payload
            lines.insert(pos, insert)
            source = "".join(lines)
    return source


@given(_neutral_edits())
@settings(max_examples=40, deadline=None)
def test_digests_invariant_under_comment_blank_and_docstring_edits(edits):
    mutated = _apply_neutral(BASE, edits)
    analysis = analyze_sources("demo", {"demo.m": mutated}, SITES, ENTRIES)
    assert analysis.site_digests == BASELINE.site_digests
    assert analysis.entry_digests == BASELINE.entry_digests
    assert analysis.source_digest == BASELINE.source_digest


_EXEC_EDITS = st.sampled_from(
    [
        ("item * 3", "item * %d"),  # constant in a leaf callee
        ("total = 0", "total = %d"),  # constant in the root function
        ("range(n)", "range(n + %d)"),  # loop bound
    ]
)


@given(_EXEC_EDITS, st.integers(min_value=1, max_value=99), _neutral_edits())
@settings(max_examples=40, deadline=None)
def test_digests_change_for_executable_edits_even_with_neutral_noise(edit, k, noise):
    needle, template = edit
    replacement = template % (k + 3 if "* %d" in template else k)
    mutated = _apply_neutral(BASE.replace(needle, replacement, 1), noise)
    analysis = analyze_sources("demo", {"demo.m": mutated}, SITES, ENTRIES)
    # every edit above lands inside handle's slice (handle or weigh)
    assert analysis.site_digests["svc.scan"] != BASELINE.site_digests["svc.scan"]
    assert analysis.entry_digests["t-run"] != BASELINE.entry_digests["t-run"]
    assert analysis.source_digest != BASELINE.source_digest


@given(_WORDS)
@settings(max_examples=20, deadline=None)
def test_digest_is_a_pure_function_of_normalized_source(text):
    """Same (neutrally mutated) source analyzed twice -> identical digests."""
    mutated = _apply_neutral(BASE, [("comment", 3, text)])
    a = analyze_sources("demo", {"demo.m": mutated}, SITES, ENTRIES)
    b = analyze_sources("demo", {"demo.m": mutated}, SITES, ENTRIES)
    assert a.site_digests == b.site_digests
    assert a.source_digest == b.source_digest
