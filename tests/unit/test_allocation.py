"""Unit tests for the three-phase allocation protocol, on the toy system."""

import pytest

from repro.config import CSnakeConfig
from repro.core.allocation import ThreePhaseAllocator
from repro.core.driver import ExperimentDriver
from repro.instrument.analyzer import analyze
from repro.systems.toy import build_system

FAST = dict(repeats=2, delay_values_ms=(2000.0,), seed=11)


@pytest.fixture(scope="module")
def outcome():
    spec = build_system()
    config = CSnakeConfig(**FAST)
    driver = ExperimentDriver(spec, config)
    faults = analyze(spec.registry).faults
    allocator = ThreePhaseAllocator(driver, faults, config)
    out = allocator.run()
    out._driver = driver  # stash for assertions
    out._faults = faults
    return out


def test_phase_budget_split():
    cfg = CSnakeConfig()
    p1, p2, p3 = cfg.phase_budgets(10)
    assert (p1, p2, p3) == (10, 20, 10)
    assert sum(cfg.phase_budgets(7)) == 28


def test_phase_one_covers_each_reachable_fault_once(outcome):
    phase1 = outcome.records_in_phase(1)
    faults = [r.fault for r in phase1]
    assert len(faults) == len(set(faults))  # each fault at most once
    assert set(faults) | set(outcome.unreachable) == set(outcome._faults)


def test_phase_one_uses_highest_coverage_test(outcome):
    driver = outcome._driver
    for record in outcome.records_in_phase(1):
        cov = driver.coverage_of(record.test_id)
        for t in driver.tests_reaching(record.fault):
            assert cov >= driver.coverage_of(t)


def test_budget_not_exceeded(outcome):
    assert outcome.budget_used <= outcome.budget_total


def test_no_fault_test_pair_repeated(outcome):
    pairs = [(r.fault, r.test_id) for r in outcome.records]
    assert len(pairs) == len(set(pairs))


def test_clustering_covers_observed_faults(outcome):
    observed = {r.fault for r in outcome.records_in_phase(1)}
    assert set(outcome.clustering.by_fault) == observed


def test_phases_two_and_three_ran(outcome):
    assert outcome.records_in_phase(2)
    assert outcome.records_in_phase(3)


def test_sim_scores_in_unit_interval(outcome):
    for score in outcome.cluster_scores.values():
        assert 0.0 <= score <= 1.0 + 1e-9
    for score in outcome.fault_scores.values():
        assert 0.0 <= score <= 1.0 + 1e-9


def test_fault_scores_defined_for_clustered_faults(outcome):
    assert set(outcome.fault_scores) == set(outcome.clustering.by_fault)


def test_records_have_fca_results(outcome):
    for record in outcome.records:
        assert record.result.fault == record.fault
        assert record.result.test_id == record.test_id


def test_deterministic_given_seed():
    spec = build_system()
    config = CSnakeConfig(**FAST)

    def run_once():
        driver = ExperimentDriver(spec, config)
        faults = analyze(spec.registry).faults
        return ThreePhaseAllocator(driver, faults, config).run()

    a, b = run_once(), run_once()
    assert [(r.phase, r.fault, r.test_id) for r in a.records] == [
        (r.phase, r.fault, r.test_id) for r in b.records
    ]
