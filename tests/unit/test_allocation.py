"""Unit tests for the three-phase allocation protocol, on the toy system."""

import pytest

from repro.config import CSnakeConfig
from repro.core.allocation import ThreePhaseAllocator
from repro.core.driver import ExperimentDriver
from repro.instrument.analyzer import analyze
from repro.serialize import fca_to_obj
from repro.systems.toy import build_system

FAST = dict(repeats=2, delay_values_ms=(2000.0,), seed=11)


@pytest.fixture(scope="module")
def outcome():
    spec = build_system()
    config = CSnakeConfig(**FAST)
    driver = ExperimentDriver(spec, config)
    faults = analyze(spec.registry).faults
    allocator = ThreePhaseAllocator(driver, faults, config)
    out = allocator.run()
    out._driver = driver  # stash for assertions
    out._faults = faults
    return out


def test_phase_budget_split():
    cfg = CSnakeConfig()
    p1, p2, p3 = cfg.phase_budgets(10)
    assert (p1, p2, p3) == (10, 20, 10)
    assert sum(cfg.phase_budgets(7)) == 28


def test_phase_one_covers_each_reachable_fault_once(outcome):
    phase1 = outcome.records_in_phase(1)
    faults = [r.fault for r in phase1]
    assert len(faults) == len(set(faults))  # each fault at most once
    assert set(faults) | set(outcome.unreachable) == set(outcome._faults)


def test_phase_one_uses_highest_coverage_test(outcome):
    driver = outcome._driver
    for record in outcome.records_in_phase(1):
        cov = driver.coverage_of(record.test_id)
        for t in driver.tests_reaching(record.fault):
            assert cov >= driver.coverage_of(t)


def test_budget_not_exceeded(outcome):
    assert outcome.budget_used <= outcome.budget_total


def test_no_fault_test_pair_repeated(outcome):
    pairs = [(r.fault, r.test_id) for r in outcome.records]
    assert len(pairs) == len(set(pairs))


def test_clustering_covers_observed_faults(outcome):
    observed = {r.fault for r in outcome.records_in_phase(1)}
    assert set(outcome.clustering.by_fault) == observed


def test_phases_two_and_three_ran(outcome):
    assert outcome.records_in_phase(2)
    assert outcome.records_in_phase(3)


def test_sim_scores_in_unit_interval(outcome):
    for score in outcome.cluster_scores.values():
        assert 0.0 <= score <= 1.0 + 1e-9
    for score in outcome.fault_scores.values():
        assert 0.0 <= score <= 1.0 + 1e-9


def test_fault_scores_defined_for_clustered_faults(outcome):
    assert set(outcome.fault_scores) == set(outcome.clustering.by_fault)


def test_records_have_fca_results(outcome):
    for record in outcome.records:
        assert record.result.fault == record.fault
        assert record.result.test_id == record.test_id


def test_deterministic_given_seed():
    spec = build_system()
    config = CSnakeConfig(**FAST)

    def run_once():
        driver = ExperimentDriver(spec, config)
        faults = analyze(spec.registry).faults
        return ThreePhaseAllocator(driver, faults, config).run()

    a, b = run_once(), run_once()
    assert [(r.phase, r.fault, r.test_id) for r in a.records] == [
        (r.phase, r.fault, r.test_id) for r in b.records
    ]


# --------------------------------------------------------- adaptive budget


ADAPTIVE = dict(
    adaptive_budget=True,
    schedules=("membership_churn", "partition_during_restart"),
    fault_kinds=("exception", "delay", "negation", "node_crash"),
    budget_per_fault=3,
)


def _adaptive_run(backend=None, workers=3):
    """One adaptive allocation on the toy system, optionally through a
    deferred-batch executor backend."""
    from repro.pipeline import make_executor

    spec = build_system()
    config = CSnakeConfig(**ADAPTIVE, **FAST)
    driver = ExperimentDriver(spec, config)
    faults = analyze(
        spec.registry, fault_kinds=config.fault_kinds, schedules=config.schedules
    ).faults
    if backend is None:
        return ThreePhaseAllocator(driver, faults, config).run()
    with make_executor(workers, backend) as executor:
        return ThreePhaseAllocator(driver, faults, config, executor=executor).run()


def _view(outcome):
    return [
        (r.phase, r.fault, r.test_id, fca_to_obj(r.result)) for r in outcome.records
    ]


def test_adaptive_split_carves_a_quarter():
    spec = build_system()
    on = ThreePhaseAllocator(
        ExperimentDriver(spec, CSnakeConfig(adaptive_budget=True, **FAST)),
        [],
        CSnakeConfig(adaptive_budget=True, **FAST),
    )
    assert on._adaptive_split(20) == (15, 5)
    assert on._adaptive_split(1) == (1, 0)  # too small to split
    off = ThreePhaseAllocator(
        ExperimentDriver(spec, CSnakeConfig(**FAST)), [], CSnakeConfig(**FAST)
    )
    assert off._adaptive_split(20) == (20, 0)


def test_adaptive_allocation_spends_on_promising_faults():
    outcome = _adaptive_run()
    # The ranking only contains faults with committed finite p-values, in
    # ascending promise order, and every record carries a result.
    assert outcome.budget_used <= outcome.budget_total
    for record in outcome.records:
        assert record.result is not None
    pairs = [(r.fault, r.test_id) for r in outcome.records]
    assert len(pairs) == len(set(pairs))  # adaptive repeats use *new* tests


def test_adaptive_allocation_identical_across_backends():
    """The determinism-under-adaptivity rule: reallocation decisions read
    only committed results in schedule order, so eager (serial), thread,
    and process campaigns pick identical reallocations."""
    serial = _adaptive_run()
    thread = _adaptive_run("thread")
    assert _view(serial) == _view(thread)
    try:
        process = _adaptive_run("process", workers=2)
    except (ImportError, OSError, PermissionError) as exc:
        pytest.skip("process backend unavailable: %s" % exc)
    assert _view(serial) == _view(process)
