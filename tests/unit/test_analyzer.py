"""Unit tests for the static analyzer's fault-selection rules."""

import pytest

from repro.errors import UnknownSite
from repro.instrument import SiteRegistry
from repro.instrument.analyzer import StaticAnalyzer, analyze
from repro.types import InjKind


def test_throw_sites_become_exception_faults():
    reg = SiteRegistry("s")
    reg.throw("s.t1", "F.a")
    result = analyze(reg)
    assert [f.kind for f in result.faults] == [InjKind.EXCEPTION]


def test_reflection_and_security_exceptions_excluded():
    reg = SiteRegistry("s")
    reg.throw("s.refl", "F.a", reflection_related=True)
    reg.throw("s.sec", "F.b", security_related=True)
    reg.throw("s.ok", "F.c")
    result = analyze(reg)
    assert result.fault_sites() == ["s.ok"]
    assert any("reflection" in r for r in result.excluded["s.refl"])
    assert any("security" in r for r in result.excluded["s.sec"])


def test_test_only_exceptions_excluded():
    reg = SiteRegistry("s")
    reg.throw("s.test_only", "F.a", test_only=True)
    result = analyze(reg)
    assert result.fault_sites() == []


def test_constant_bound_loops_excluded():
    reg = SiteRegistry("s")
    reg.loop("s.const", "F.a", constant_bound=True)
    reg.loop("s.var", "F.b")
    result = analyze(reg)
    assert result.fault_sites() == ["s.var"]


def test_short_loops_without_io_pruned():
    reg = SiteRegistry("s")
    # Ten loops: sizes 1..10; bottom 10% (1 loop) pruned unless it does I/O.
    for i in range(10):
        reg.loop("s.loop%02d" % i, "F.f%d" % i, body_size=i + 1)
    result = analyze(reg)
    assert "s.loop00" not in result.fault_sites()
    assert "s.loop01" in result.fault_sites()


def test_short_loop_with_io_kept():
    reg = SiteRegistry("s")
    for i in range(10):
        reg.loop("s.loop%02d" % i, "F.f%d" % i, body_size=i + 1, does_io=(i == 0))
    result = analyze(reg)
    assert "s.loop00" in result.fault_sites()


def test_detector_filters_of_section7():
    reg = SiteRegistry("s")
    reg.detector("s.final", "F.a", final_only=True)
    reg.detector("s.const", "F.b", constant_return=True)
    reg.detector("s.unused", "F.c", unused_return=True)
    reg.detector("s.prim", "F.d", primitive_only=True)
    reg.detector("s.real", "F.e")
    result = analyze(reg)
    assert result.fault_sites() == ["s.real"]
    assert len(result.excluded) == 4


def test_branch_sites_never_injectable():
    reg = SiteRegistry("s")
    reg.branch("s.b", "F.a")
    result = analyze(reg)
    assert result.faults == []
    assert result.counts["branch"] == 1


def test_counts_include_all_kinds():
    reg = SiteRegistry("s")
    reg.loop("s.l", "F.a")
    reg.throw("s.t", "F.b")
    reg.detector("s.d", "F.c")
    reg.branch("s.b", "F.d")
    reg.lib_call("s.lib", "F.e")
    result = analyze(reg)
    assert result.counts["loop"] == 1
    assert result.counts["throw"] == 1
    assert result.counts["detector"] == 1
    assert result.counts["branch"] == 1
    assert result.counts["lib_call"] == 1
    assert result.counts["injectable"] == 4


def test_registry_rejects_conflicting_redefinition():
    reg = SiteRegistry("s")
    reg.loop("s.l", "F.a")
    with pytest.raises(ValueError):
        reg.throw("s.l", "F.a")


def test_registry_idempotent_identical_declaration():
    reg = SiteRegistry("s")
    reg.loop("s.l", "F.a")
    reg.loop("s.l", "F.a")
    assert len(reg) == 1


def test_registry_unknown_site_raises():
    reg = SiteRegistry("s")
    with pytest.raises(UnknownSite):
        reg.get("s.missing")


def test_sibling_and_child_loop_queries():
    reg = SiteRegistry("s")
    reg.loop("s.parent", "F.a")
    reg.loop("s.child0", "F.a", parent="s.parent", order=0)
    reg.loop("s.child1", "F.a", parent="s.parent", order=1)
    reg.loop("s.child2", "F.a", parent="s.parent", order=2)
    children = {s.site_id for s in reg.children_of("s.parent")}
    assert children == {"s.child0", "s.child1", "s.child2"}
    after = {s.site_id for s in reg.siblings_after("s.child1")}
    assert after == {"s.child2"}
    # Top-level loops (no parent) have no siblings.
    assert reg.siblings_after("s.parent") == []


def test_prune_fraction_configurable():
    reg = SiteRegistry("s")
    for i in range(10):
        reg.loop("s.loop%02d" % i, "F.f%d" % i, body_size=i + 1)
    result = StaticAnalyzer(reg, loop_prune_frac=0.5).analyze()
    assert len(result.fault_sites()) == 5
