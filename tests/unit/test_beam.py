"""Unit tests for the beam search cycle detector (Algorithm 1)."""

from repro.config import CSnakeConfig
from repro.core.beam import BeamSearch
from repro.types import EdgeType

from tests.helpers import dly, edge, exc, neg, state


S = state(("f1", "f0"))


def e(src, dst, etype=EdgeType.E_I, test_id="t1", s=S):
    return edge(src, dst, etype=etype, test_id=test_id, src_states=[s], dst_states=[s])


def search(edges, **cfg):
    config = CSnakeConfig(**cfg)
    return BeamSearch(config).search(edges)


def test_two_edge_cycle_across_tests():
    edges = [
        e(exc("a"), exc("b"), test_id="t1"),
        e(exc("b"), exc("a"), test_id="t2"),
    ]
    result = search(edges)
    assert len(result.cycles) == 1
    cycle = result.cycles[0]
    assert len(cycle) == 2
    assert cycle.tests() == ["t1", "t2"]


def test_self_edge_is_one_cycle():
    result = search([e(exc("a"), exc("a"))])
    assert len(result.cycles) == 1
    assert len(result.cycles[0]) == 1


def test_three_edge_cycle():
    edges = [
        e(dly("L"), exc("x"), etype=EdgeType.E_D, test_id="t1"),
        e(exc("x"), neg("n"), test_id="t2"),
        e(neg("n"), dly("L"), etype=EdgeType.SP_I, test_id="t3"),
    ]
    result = search(edges)
    assert len(result.cycles) == 1
    assert result.cycles[0].signature() == "1D|1E|1N"


def test_no_cycle_in_dag():
    edges = [e(exc("a"), exc("b")), e(exc("b"), exc("c"))]
    result = search(edges)
    assert result.cycles == []


def test_incompatible_states_block_cycle():
    s1 = state(("f1", "f0"))
    s2 = state(("g1", "g0"))
    edges = [
        edge(exc("a"), exc("b"), test_id="t1", src_states=[s1], dst_states=[s1]),
        edge(exc("b"), exc("a"), test_id="t2", src_states=[s2], dst_states=[s2]),
    ]
    assert search(edges).cycles == []
    # With the check disabled, the (unsound) cycle appears.
    assert len(search(edges, compat_check=False).cycles) == 1


def test_cycle_closure_also_checks_compatibility():
    """The chain stitches a->b->a, but the returning edge's interference
    state differs from the first edge's injection state."""
    s1, s2 = state(("f1", "f0")), state(("g1", "g0"))
    edges = [
        edge(exc("a"), exc("b"), test_id="t1", src_states=[s1], dst_states=[s1]),
        edge(exc("b"), exc("a"), test_id="t2", src_states=[s1], dst_states=[s2]),
    ]
    assert search(edges).cycles == []


def test_rotated_cycles_deduplicated():
    edges = [
        e(exc("a"), exc("b"), test_id="t1"),
        e(exc("b"), exc("c"), test_id="t2"),
        e(exc("c"), exc("a"), test_id="t3"),
    ]
    result = search(edges)
    assert len(result.cycles) == 1  # not three rotations


def test_beam_width_limits_exploration():
    # A long chain needing width > 1 at an intermediate level.
    edges = [
        e(exc("a"), exc("b")),
        e(exc("a"), exc("c")),
        e(exc("b"), exc("d")),
        e(exc("c"), exc("d")),
        e(exc("d"), exc("a")),
    ]
    wide = search(edges, beam_width=100)
    assert len(wide.cycles) == 2  # via b and via c


def test_max_chain_len_bounds_cycle_size():
    edges = [
        e(exc("a"), exc("b")),
        e(exc("b"), exc("c")),
        e(exc("c"), exc("d")),
        e(exc("d"), exc("a")),
    ]
    assert search(edges, max_chain_len=3).cycles == []
    assert len(search(edges, max_chain_len=4).cycles) == 1


def test_max_delay_faults_cap():
    edges = [
        e(dly("L1"), dly("L2"), etype=EdgeType.SP_D, test_id="t1"),
        e(dly("L2"), dly("L1"), etype=EdgeType.SP_D, test_id="t2"),
    ]
    unlimited = search(edges)
    assert len(unlimited.cycles) == 1
    capped = search(edges, max_delay_faults=1)
    assert capped.cycles == []


def test_delay_cap_allows_single_delay_cycles():
    edges = [
        e(dly("L"), exc("x"), etype=EdgeType.E_D, test_id="t1"),
        e(exc("x"), dly("L"), etype=EdgeType.SP_I, test_id="t2"),
    ]
    capped = search(edges, max_delay_faults=1)
    assert len(capped.cycles) == 1


def test_icfg_edges_do_not_count_as_injections():
    edges = [
        e(dly("L2"), dly("L1"), etype=EdgeType.ICFG, test_id="t1"),
        e(dly("L1"), dly("L2"), etype=EdgeType.SP_D, test_id="t2"),
    ]
    capped = search(edges, max_delay_faults=1)
    assert len(capped.cycles) == 1
    assert capped.cycles[0].signature() == "1D|0E|0N"


def test_chain_ranking_prefers_low_simscore():
    """With beam width 1, only the conditional (low SimScore) 3-cycle
    survives the intermediate level and gets to close."""
    config = CSnakeConfig(beam_width=1)
    scores = {
        exc("a"): 0.1,
        exc("b"): 0.1,
        exc("c"): 0.1,
        exc("p"): 0.9,
        exc("q"): 0.9,
        exc("r"): 0.9,
    }
    edges = [
        e(exc("a"), exc("b")),
        e(exc("b"), exc("c")),
        e(exc("c"), exc("a")),
        e(exc("p"), exc("q")),
        e(exc("q"), exc("r")),
        e(exc("r"), exc("p")),
    ]
    result = BeamSearch(config, scores).search(edges)
    assert result.cycles  # the low-score cycle closes
    assert all(exc("p") not in c.injected_faults() for c in result.cycles)
    wide = BeamSearch(CSnakeConfig(beam_width=100), scores).search(edges)
    assert len(wide.cycles) == 2  # with enough width both close


def test_parallel_workers_find_same_cycles():
    edges = [
        e(exc("a%d" % i), exc("a%d" % ((i + 1) % 5)), test_id="t%d" % i) for i in range(5)
    ]
    serial = search(edges)
    parallel = search(edges, beam_workers=4)
    assert {c.key() for c in serial.cycles} == {c.key() for c in parallel.cycles}


def test_edges_never_reused_within_chain():
    # Single edge a->a plus a->b: the self-cycle must come out once and the
    # walk must not loop the self-edge forever.
    edges = [e(exc("a"), exc("a")), e(exc("a"), exc("b"))]
    result = search(edges, max_chain_len=6)
    assert len(result.cycles) == 1


def test_chains_explored_counter():
    edges = [e(exc("a"), exc("b")), e(exc("b"), exc("a"))]
    result = search(edges)
    assert result.chains_explored >= 2
