"""Unit tests for the bench harness helpers."""

from repro.bench import bench_config, format_table
from repro.bench.runners import BUDGET_PER_FAULT


def test_format_table_alignment():
    out = format_table(["A", "Blong"], [["x", 1], ["yy", 22]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("A")
    assert "-" in lines[1]


def test_bench_config_overrides():
    cfg = bench_config("minihdfs2", beam_width=5)
    assert cfg.beam_width == 5
    assert cfg.budget_per_fault == BUDGET_PER_FAULT["minihdfs2"]
    assert cfg.repeats == 3


def test_bench_config_default_budget():
    cfg = bench_config("unknown-system")
    assert cfg.budget_per_fault == 8
